"""Tests for the repro.store package: DSN parsing, migrations,
provenance, dedupe, the run ledger, and gc.

The cache-integration surface (store-backed ``ResultCache``, engine
ledger attribution, cross-process races, service replicas) lives in
``test_store_cache.py``; this file covers the store package itself.
"""

import hashlib
import importlib
import importlib.util
import json
import os
import time

import numpy as np
import pytest

from repro.results import CommResult
from repro.store import (
    MIGRATIONS,
    SCHEMA_VERSION,
    PostgresBackend,
    SQLiteBackend,
    StoreError,
    StoreUnavailableError,
    backend_for_dsn,
    open_store,
    parse_dsn,
    run_migrations,
    store_from_env,
)

DIGEST_A = "a" * 64
DIGEST_B = "b" * 64


def make_result(seed=0, **kw):
    rng = np.random.default_rng(seed)
    defaults = dict(
        scheme="netsparse", matrix_name="arabic", k=16, n_nodes=8,
        total_time=rng.random() * 1e-3,
        per_node_time=rng.random(8),
        recv_wire_bytes=rng.integers(0, 1 << 40, 8),
        sent_wire_bytes=rng.integers(0, 1 << 40, 8),
        useful_payload_bytes=rng.integers(0, 1 << 40, 8),
        link_bandwidth=12.5e9,
        extras={"arr": rng.random(4).astype(np.float32)},
    )
    defaults.update(kw)
    return CommResult(**defaults)


@pytest.fixture
def store(tmp_path):
    return open_store(f"sqlite:///{tmp_path}/store.sqlite3")


# -- DSN parsing ---------------------------------------------------------


@pytest.mark.parametrize("dsn,backend,location", [
    ("sqlite:////abs/store.db", "sqlite", "/abs/store.db"),
    ("sqlite:///rel/store.db", "sqlite", "rel/store.db"),
    ("sqlite:///:memory:", "sqlite", ":memory:"),
    (":memory:", "sqlite", ":memory:"),
    ("/abs/bare.db", "sqlite", "/abs/bare.db"),
    ("rel/bare.db", "sqlite", "rel/bare.db"),
    ("postgres://u@h/db", "postgres", "postgres://u@h/db"),
    ("postgresql://u@h/db", "postgres", "postgresql://u@h/db"),
])
def test_parse_dsn_variants(dsn, backend, location):
    parsed = parse_dsn(dsn)
    assert parsed.backend == backend
    assert parsed.location == location
    assert parsed.raw == dsn


def test_parse_dsn_rejects_garbage():
    with pytest.raises(StoreError):
        parse_dsn("")
    with pytest.raises(StoreError):
        parse_dsn("mysql://nope")


def test_memory_dsn_flag():
    assert parse_dsn(":memory:").memory
    assert not parse_dsn("/tmp/x.db").memory


def test_backend_for_dsn_kinds():
    assert isinstance(backend_for_dsn(":memory:"), SQLiteBackend)
    assert isinstance(backend_for_dsn("postgres://u@h/db"), PostgresBackend)


# -- env literal pinning -------------------------------------------------


def test_env_var_names_pinned():
    # cache.py duplicates the literal so the zero-config path never
    # imports the store package; this is the promised pinning test.
    from repro.parallel.cache import ENV_STORE_DSN as cache_name
    from repro.store import ENV_STORE_DSN as store_name

    assert cache_name == store_name == "REPRO_STORE_DSN"


# -- migrations ----------------------------------------------------------


def test_migrations_idempotent(tmp_path):
    store = open_store(f"sqlite:///{tmp_path}/m.sqlite3", migrate=False)
    first = store.migrate()
    assert first == [m.version for m in MIGRATIONS]
    assert store.migrate() == []
    assert store.schema_version() == SCHEMA_VERSION


def test_open_migrates_by_default(store):
    assert store.schema_version() == SCHEMA_VERSION
    assert store.migrate() == []


def test_run_migrations_direct():
    backend = SQLiteBackend(":memory:")
    assert run_migrations(backend) == [m.version for m in MIGRATIONS]
    assert run_migrations(backend) == []


def test_postgres_dialect_renders_all_migrations():
    # The schema must be *expressible* on Postgres even though the
    # driver is absent here: every DDL statement renders with no shim
    # token left behind.
    backend = PostgresBackend("postgres://u@h/db")
    for mig in MIGRATIONS:
        for stmt in mig.statements:
            rendered = backend.sql(stmt)
            assert "{" not in rendered and "}" not in rendered
            assert "?" not in rendered
    assert "BIGSERIAL" in backend.sql("{AUTOPK}")


def test_postgres_connect_gated_without_driver():
    backend = PostgresBackend("postgres://u@h/db")
    if backend._driver() is not None:  # pragma: no cover - not in CI image
        pytest.skip("a psycopg driver is installed here")
    with pytest.raises(StoreUnavailableError, match="psycopg"):
        backend.connect()


# -- results: round-trip, provenance, dedupe -----------------------------


def test_result_round_trip_bit_identical(store):
    res = make_result()
    assert store.put_result(DIGEST_A, res, meta={"scheme": "netsparse"},
                            elapsed=1.25)
    rec = store.get_result(DIGEST_A)
    back = rec.result
    assert back.total_time == res.total_time          # exact, not approx
    assert np.array_equal(back.per_node_time, res.per_node_time)
    assert back.per_node_time.dtype == res.per_node_time.dtype
    assert np.array_equal(back.extras["arr"], res.extras["arr"])
    assert back.extras["arr"].dtype == np.float32
    assert rec.elapsed == 1.25
    assert rec.meta == {"scheme": "netsparse"}


def test_provenance_complete_on_every_row(store, monkeypatch):
    # `repro.store.provenance` the *attribute* is the function (the
    # package re-export shadows the submodule); fetch the module itself.
    p = importlib.import_module("repro.store.provenance")

    monkeypatch.setenv("REPRO_GIT_SHA", "cafebabe" * 5)
    p.git_sha.cache_clear()
    from repro.parallel.jobs import CODE_SALT

    fd = hashlib.sha256(json.dumps({"plan": 1}).encode()).hexdigest()
    store.put_result(DIGEST_A, make_result(),
                     meta={"faults_digest": fd}, elapsed=0.5)
    rec = store.get_result(DIGEST_A)
    assert rec.provenance["code_salt"] == CODE_SALT
    assert rec.provenance["git_sha"] == "cafebabe" * 5
    assert rec.provenance["faults_digest"] == fd
    assert rec.provenance["kernel_tier"]
    assert rec.provenance["schema_version"] == SCHEMA_VERSION
    p.git_sha.cache_clear()


def test_double_put_converges_to_one_row(store):
    assert store.put_result(DIGEST_A, make_result(0), elapsed=1.0) is True
    # Deterministic content: the loser of the race changes nothing.
    assert store.put_result(DIGEST_A, make_result(0), elapsed=9.0) is False
    assert store.counts()["results"] == 1
    assert store.get_result(DIGEST_A).elapsed == 1.0


def test_get_missing_result(store):
    assert store.get_result(DIGEST_B) is None


def test_non_comm_results_pickle(store):
    store.put_result(DIGEST_A, {"any": "object", "n": 3})
    assert store.get_result(DIGEST_A).result == {"any": "object", "n": 3}


# -- artifacts -----------------------------------------------------------


def test_artifact_content_addressing_dedupes(store):
    sha1 = store.put_artifact(b"payload", kind="bench", name="a.json")
    sha2 = store.put_artifact(b"payload", kind="bench", name="b.json")
    assert sha1 == sha2
    assert store.counts()["artifacts"] == 1
    art = store.get_artifact(sha1)
    assert art["content"] == b"payload"
    assert art["nbytes"] == 7


def test_latest_artifacts_newest_first(store):
    store.put_artifact(b"one", kind="bench", name="one.json")
    time.sleep(0.01)
    store.put_artifact(b"two", kind="bench", name="two.json")
    store.put_artifact(b"other", kind="report", name="r.json")
    latest = store.latest_artifacts("bench", limit=2)
    assert [a["name"] for a in latest] == ["two.json", "one.json"]


# -- run ledger ----------------------------------------------------------


def _seed_ledger(store):
    meta = {"scheme": "netsparse", "matrix": "arabic", "k": 8,
            "scale_name": "tiny", "seed": 7}
    store.record_run(DIGEST_A, source="executed", elapsed=2.0,
                     worker="w1", meta=meta, experiment="table1")
    store.record_run(DIGEST_A, source="cache", elapsed=0.0,
                     worker="w2", meta=meta, experiment="table2")
    store.record_run(DIGEST_B, source="memo", elapsed=0.0, worker="w1",
                     meta={"scheme": "suopt", "matrix": "stokes", "k": 16,
                           "scale_name": "small"}, experiment="table1")


def test_history_filters(store):
    _seed_ledger(store)
    assert len(store.history()) == 3
    assert len(store.history(experiment="table1")) == 2
    assert len(store.history(scheme="netsparse")) == 2
    assert len(store.history(matrix="stokes")) == 1
    assert len(store.history(scale="tiny")) == 2
    assert len(store.history(source="executed")) == 1
    assert len(store.history(digest=DIGEST_B)) == 1
    assert len(store.history(limit=1)) == 1
    assert store.history(since=time.time() + 60) == []
    rows = store.history(experiment="table1", scheme="netsparse")
    assert len(rows) == 1
    row = rows[0]
    assert row["source"] == "executed"
    assert row["k"] == 8 and row["scale"] == "tiny" and row["seed"] == 7
    assert row["worker"] == "w1"


def test_history_newest_first(store):
    store.record_run(DIGEST_A, source="executed")
    time.sleep(0.01)
    store.record_run(DIGEST_B, source="cache")
    rows = store.history()
    assert [r["digest"] for r in rows] == [DIGEST_B, DIGEST_A]


def test_ledger_is_append_only(store):
    _seed_ledger(store)
    # No update/delete surface exists on the ledger; even gc keeps it
    # unless the caller explicitly opts in (see test_gc_*).
    assert not hasattr(store, "delete_run")
    assert not hasattr(store, "update_run")


# -- describe / counts / gc ---------------------------------------------


def test_describe_payload(store):
    store.put_result(DIGEST_A, make_result())
    store.put_artifact(b"x", kind="bench", name="x")
    store.record_run(DIGEST_A, source="executed")
    info = store.describe()
    assert info["backend"] == "sqlite"
    assert info["schema_version"] == SCHEMA_VERSION
    assert info["latest_schema_version"] == SCHEMA_VERSION
    assert info["results"] == 1
    assert info["artifacts"] == 1
    assert info["ledger"] == 1
    assert "dsn" in info


def test_gc_reclaims_results_and_artifacts_keeps_ledger(store):
    store.put_result(DIGEST_A, make_result())
    store.put_artifact(b"x", kind="bench", name="x")
    store.record_run(DIGEST_A, source="executed")
    removed = store.gc(older_than_days=0.0)
    assert removed == {"results": 1, "artifacts": 1}
    counts = store.counts()
    assert counts["results"] == 0
    assert counts["artifacts"] == 0
    assert counts["ledger"] == 1          # append-only by default


def test_gc_dry_run_touches_nothing(store):
    store.put_result(DIGEST_A, make_result())
    removed = store.gc(older_than_days=0.0, dry_run=True)
    assert removed["results"] == 1
    assert store.counts()["results"] == 1


def test_gc_ledger_opt_in(store):
    store.record_run(DIGEST_A, source="executed")
    removed = store.gc(older_than_days=0.0, include_ledger=True)
    assert removed["ledger"] == 1
    assert store.counts()["ledger"] == 0


def test_gc_respects_cutoff(store):
    store.put_result(DIGEST_A, make_result())
    assert store.gc(older_than_days=30.0) == {"results": 0, "artifacts": 0}
    assert store.counts()["results"] == 1


# -- env opt-in ----------------------------------------------------------


def test_store_from_env(tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_STORE_DSN", raising=False)
    assert store_from_env() is None
    monkeypatch.setenv("REPRO_STORE_DSN", f"sqlite:///{tmp_path}/e.sqlite3")
    store = store_from_env()
    assert store is not None
    assert store.schema_version() == SCHEMA_VERSION


# -- bench_compare --from-store ------------------------------------------


def _load_bench_compare():
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    path = os.path.join(root, "scripts", "bench_compare.py")
    spec = importlib.util.spec_from_file_location("bench_compare", path)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def _snapshot(stamp, wall):
    return json.dumps({
        "schema": "repro.bench/v1", "timestamp": stamp, "scale": "tiny",
        "results": [{"test": "benchmarks/t.py::test_a", "wall_s": wall}],
        "memory": {"peak_rss_mb": 100.0},
    }).encode("utf-8")


def test_bench_compare_from_store(tmp_path, capsys):
    bc = _load_bench_compare()
    dsn = f"sqlite:///{tmp_path}/bench.sqlite3"
    store = open_store(dsn)
    store.put_artifact(_snapshot("2026-08-07T01:00:00", 1.0),
                       kind="bench", name="BENCH_2026-08-07.json")
    time.sleep(0.01)
    store.put_artifact(_snapshot("2026-08-08T01:00:00", 1.6),
                       kind="bench", name="BENCH_2026-08-08.json")
    assert bc.main(["--from-store", dsn]) == 0
    out = capsys.readouterr().out
    assert "REGRESSION" in out
    # --strict surfaces the regression as a failure exit.
    assert bc.main(["--from-store", dsn, "--strict"]) == 1


def test_bench_compare_from_store_no_baseline(tmp_path, capsys):
    bc = _load_bench_compare()
    dsn = f"sqlite:///{tmp_path}/bench.sqlite3"
    open_store(dsn).put_artifact(_snapshot("2026-08-08T01:00:00", 1.0),
                                 kind="bench", name="only.json")
    assert bc.main(["--from-store", dsn]) == 0
    assert "no baseline" in capsys.readouterr().out


def test_bench_compare_from_store_needs_dsn(monkeypatch, capsys):
    bc = _load_bench_compare()
    monkeypatch.delenv("REPRO_STORE_DSN", raising=False)
    assert bc.main(["--from-store"]) == 2


def test_report_cli_streams_artifact_with_ledger_row(tmp_path, monkeypatch):
    """`netsparse report` mirrors its markdown into the artifact table
    and appends a ledger row carrying the artifact sha, so
    `store history` points at the report a run produced."""
    from repro.cli import main

    dsn = f"sqlite:///{tmp_path}/report.sqlite3"
    monkeypatch.setenv("REPRO_STORE_DSN", dsn)
    out = tmp_path / "report.md"
    assert main(["report", "--scale", "tiny", "--only", "table1",
                 "-o", str(out), "--no-cache"]) == 0

    store = open_store(dsn)
    arts = store.latest_artifacts("report", limit=5)
    assert len(arts) == 1
    assert arts[0]["name"] == "report.md"
    assert arts[0]["content"] == out.read_bytes()
    assert arts[0]["meta"]["scale"] == "tiny"
    rows = store.history(experiment="report", source="report")
    assert len(rows) == 1
    assert rows[0]["digest"] == arts[0]["sha256"]


def test_report_cli_survives_broken_store(tmp_path, monkeypatch, capsys):
    """A store that cannot open must not fail the report itself."""
    from repro.cli import main

    monkeypatch.setenv("REPRO_STORE_DSN", "bogus://nowhere")
    out = tmp_path / "report.md"
    assert main(["report", "--scale", "tiny", "--only", "table1",
                 "-o", str(out), "--no-cache"]) == 0
    assert out.exists()
    assert "store upload skipped" in capsys.readouterr().err
