"""Tests for event-time fault injection in the DES substrates."""

import pytest

from repro.config import NetSparseConfig
from repro.dessim import run_des_gather
from repro.dessim.components import NetPacket, SerialLink
from repro.faults import (
    CacheFault,
    FaultInjector,
    FaultPlan,
    LinkFault,
    NicFault,
    StragglerFault,
)
from repro.network.packetsim import Packet, PacketNetwork
from repro.network.topology import LeafSpine
from repro.sim import Simulator, Store
from repro.sparse.suite import load_benchmark

MAT = "queen"
K = 16

# A DES gather finishes in microseconds; the horizon maps the plan's
# fractional windows onto that timescale so mid-run faults land mid-run.
HORIZON = 2e-5

# Non-lossy faults only: the bare DES gather has no watchdog loop, so a
# dropped PR would deadlock completion.  Packet drops are exercised at
# the link and packet-network levels below.
SAFE_PLAN = FaultPlan(
    name="safe",
    seed=11,
    nics=(NicFault(node=-1, dead_frac=0.5),),
    caches=(CacheFault(rack=-1, at=0.4),),
    stragglers=(StragglerFault(node=-1, slowdown=2.0),),
)


def des_run(plan=None, **kw):
    mat = load_benchmark(MAT, "tiny")
    injector = (FaultInjector(plan, horizon=HORIZON)
                if plan is not None else None)
    res = run_des_gather(mat, K, n_racks=2, nodes_per_rack=4,
                         fault_injector=injector, **kw)
    return res, injector


class TestDesInjection:
    def test_empty_plan_bit_identical(self):
        clean, _ = des_run()
        empty, inj = des_run(FaultPlan.empty())
        assert empty.finish_time == clean.finish_time  # bitwise
        assert empty.received == clean.received
        assert empty.issued_prs == clean.issued_prs
        assert inj.events == []
        assert empty.extras["faults"]["events"] == []

    def test_same_plan_same_event_log_and_timing(self):
        a, inj_a = des_run(SAFE_PLAN, n_client_units=2)
        b, inj_b = des_run(SAFE_PLAN, n_client_units=2)
        assert a.finish_time == b.finish_time
        assert a.received == b.received
        assert inj_a.summary() == inj_b.summary()
        assert a.extras["faults"] == b.extras["faults"]

    def test_faults_slow_the_gather_but_complete_it(self):
        # No NIC fault here: killing a client unit changes how work is
        # chunked (and can even *help* by deduplicating), so the pure
        # slowdown claim is made on stragglers + cache flushes only.
        plan = FaultPlan(
            name="slow", seed=11,
            caches=(CacheFault(rack=-1, at=0.4),),
            stragglers=(StragglerFault(node=-1, slowdown=2.0),),
        )
        clean, _ = des_run()
        hurt, inj = des_run(plan)
        assert hurt.finish_time > clean.finish_time
        assert hurt.received == clean.received  # same delivered sets
        assert inj.stats_flushes > 0
        kinds = {e.kind for e in inj.events}
        assert {"cache.flush", "node.straggle"} <= kinds

    def test_dead_units_complete_with_the_same_property_set(self):
        clean, _ = des_run(n_client_units=2)
        hurt, inj = des_run(SAFE_PLAN, n_client_units=2)
        assert inj.stats_dead_units > 0
        # Survivors re-cover the dead units' work: same unique
        # properties everywhere (duplicate *deliveries* may differ —
        # fewer units share one Idx Filter more effectively).
        for node, got in clean.received.items():
            assert sorted(set(hurt.received[node])) == sorted(set(got))

    def test_single_client_unit_survives_nic_fault(self):
        plan = FaultPlan(name="nic", nics=(NicFault(dead_frac=0.9),))
        res, inj = des_run(plan)  # default 1 client unit: nothing to kill
        assert inj.stats_dead_units == 0
        assert res.finish_time > 0

    def test_horizon_validation(self):
        with pytest.raises(ValueError):
            FaultInjector(FaultPlan.empty(), horizon=0.0)


class TestLinkDrops:
    def link_run(self, plan, n_packets=40):
        sim = Simulator()
        sink = Store(sim)
        link = SerialLink(sim, "dut", sink, NetSparseConfig())
        inj = FaultInjector(plan, horizon=1e9)  # window covers the run
        link.drop_fn = inj._make_drop(sim, link.name, plan.links[0])
        pkts = [NetPacket("read", 0, 1, [object()], 0)
                for _ in range(n_packets)]

        def feed():
            for p in pkts:
                yield link.send(p)

        sim.process(feed())
        sim.run()
        return link, inj

    def test_drops_are_deterministic_by_ordinal(self):
        plan = FaultPlan(name="lossy", seed=5,
                         links=(LinkFault(drop_rate=0.5),))
        link_a, inj_a = self.link_run(plan)
        link_b, inj_b = self.link_run(plan)
        assert link_a.packets_dropped == link_b.packets_dropped
        assert link_a.packets_dropped > 0
        assert inj_a.summary()["events"] == inj_b.summary()["events"]

    def test_seed_changes_the_drop_pattern(self):
        mk = lambda s: FaultPlan(name="lossy", seed=s,  # noqa: E731
                                 links=(LinkFault(drop_rate=0.5),))
        _, inj_a = self.link_run(mk(1), n_packets=64)
        _, inj_b = self.link_run(mk(2), n_packets=64)
        ords_a = [e.detail["ordinal"] for e in inj_a.events]
        ords_b = [e.detail["ordinal"] for e in inj_b.events]
        assert ords_a != ords_b


class TestPacketNetworkHook:
    def test_install_packetsim_drops_and_counts(self):
        sim = Simulator()
        topo = LeafSpine(n_racks=2, nodes_per_rack=2, n_spines=1)
        net = PacketNetwork(sim, topo)
        plan = FaultPlan(name="lossy", seed=2,
                         links=(LinkFault(drop_rate=0.6),))
        inj = FaultInjector(plan, horizon=1e9).install_packetsim(net)
        n = 30

        def sender():
            for _ in range(n):
                yield from net.inject(Packet(src=0, dst=3, size_bytes=1500))

        sim.process(sender())
        sim.run()
        assert net.stats_dropped > 0
        assert net.stats_dropped == inj.stats_dropped
        # Every packet either arrived or was dropped on some hop.
        assert net.stats_delivered + net.stats_dropped == n

    def test_empty_plan_installs_nothing(self):
        sim = Simulator()
        topo = LeafSpine(n_racks=2, nodes_per_rack=2, n_spines=1)
        net = PacketNetwork(sim, topo)
        FaultInjector(FaultPlan.empty()).install_packetsim(net)
        assert net.drop_hook is None
