"""Tests for RIG Units: DES client/server and the batch-timing model."""

import numpy as np
import pytest

from repro.core.rig import (
    RigClientUnit,
    RigServerUnit,
    rig_generation_time,
)
from repro.sim import Simulator, Store


def wire(sim, latency=1e-6):
    """A Store pair joined by a fixed-latency forwarder."""
    a, b = Store(sim), Store(sim)

    def fwd():
        while True:
            item = yield a.get()
            yield sim.timeout(latency)
            yield b.put(item)

    sim.process(fwd())
    return a, b


def build_loop(sim, payload=64, **client_kw):
    """Client on node 0 wired to a server on node 1 and back."""
    c2s_in, c2s_out = wire(sim)
    s2c_in, s2c_out = wire(sim)
    client = RigClientUnit(
        sim, unit_id=0, node=0, tx_queue=c2s_in, rx_queue=s2c_out,
        idx_filter=set(), **client_kw
    )
    server = RigServerUnit(
        sim, unit_id=1, node=1, rx_queue=c2s_out, tx_queue=s2c_in,
        payload_bytes=payload,
    )
    return client, server


class TestRigDES:
    def test_simple_gather_completes(self):
        sim = Simulator()
        client, server = build_loop(sim)
        done = client.execute([10, 11, 12])
        sim.run()
        assert done.processed
        assert client.stats_issued == 3
        assert server.stats_served == 3
        assert sorted(client.received_idxs) == [10, 11, 12]

    def test_every_needed_property_arrives_exactly_once(self):
        sim = Simulator()
        client, server = build_loop(sim)
        idxs = [1, 2, 1, 3, 2, 1, 4]
        client.execute(idxs)
        sim.run()
        assert sorted(client.received_idxs) == [1, 2, 3, 4]

    def test_filtering_uses_shared_idx_filter(self):
        sim = Simulator()
        client, server = build_loop(sim)
        client.idx_filter.add(5)  # some other unit already fetched 5
        client.execute([5, 6])
        sim.run()
        assert client.stats_filtered == 1
        assert client.stats_issued == 1
        assert client.received_idxs == [6]

    def test_coalescing_counts_in_flight_duplicates(self):
        sim = Simulator()
        client, server = build_loop(sim)
        client.execute([7, 7, 7])
        sim.run()
        # Network RTT >> cycle: the later 7s are outstanding dupes.
        assert client.stats_issued == 1
        assert client.stats_coalesced == 2

    def test_duplicates_after_completion_filtered(self):
        sim = Simulator()
        client, server = build_loop(sim)

        def two_commands():
            yield client.execute([9])
            yield client.execute([9])

        sim.process(two_commands())
        sim.run()
        assert client.stats_issued == 1
        assert client.stats_filtered == 1

    def test_pending_table_limits_outstanding(self):
        sim = Simulator()
        client, server = build_loop(sim, pending_entries=2)
        client.execute(list(range(100, 120)))
        # Track the maximum outstanding PRs over the run.
        peak = [0]

        def watcher():
            while True:
                peak[0] = max(peak[0], len(client.pending))
                yield sim.timeout(1e-7)

        sim.process(watcher())
        sim.run(until=1e-3)
        assert peak[0] <= 2
        assert sorted(client.received_idxs) == list(range(100, 120))

    def test_disable_flags(self):
        sim = Simulator()
        client, server = build_loop(
            sim, enable_filtering=False, enable_coalescing=False
        )
        client.execute([3, 3])
        sim.run()
        assert client.stats_issued == 2
        assert server.stats_served == 2


class TestRigGenerationTime:
    FREQ = 2.2e9
    CMD = 1e-6

    def test_zero_work(self):
        assert rig_generation_time(0, 16, 1024) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            rig_generation_time(10, 0, 1024)
        with pytest.raises(ValueError):
            rig_generation_time(10, 4, 0)

    def test_single_batch_no_parallelism(self):
        t = rig_generation_time(1000, 16, 1000, freq=self.FREQ,
                                cmd_overhead=self.CMD)
        assert t == pytest.approx(self.CMD + 1000 / self.FREQ)

    def test_many_batches_parallelize(self):
        n = 16 * 10_000
        serial = rig_generation_time(n, 1, 10_000, freq=self.FREQ,
                                     cmd_overhead=0.0)
        parallel = rig_generation_time(n, 16, 10_000, freq=self.FREQ,
                                       cmd_overhead=0.0)
        assert parallel < serial / 8

    def test_tiny_batches_pay_command_overhead(self):
        n = 64 * 1024
        tiny = rig_generation_time(n, 16, 32, freq=self.FREQ,
                                   cmd_overhead=self.CMD)
        good = rig_generation_time(n, 16, 4096, freq=self.FREQ,
                                   cmd_overhead=self.CMD)
        assert tiny > 10 * good

    def test_huge_batches_lose_parallelism(self):
        n = 1 << 20
        huge = rig_generation_time(n, 16, n, freq=self.FREQ,
                                   cmd_overhead=self.CMD)
        good = rig_generation_time(n, 16, n // 16, freq=self.FREQ,
                                   cmd_overhead=self.CMD)
        assert huge > 5 * good

    def test_sweet_spot_is_interior(self):
        """The Figure 15 shape: some middle batch size beats both ends."""
        n = 256 * 1024
        sizes = [64, 1024, 16 * 1024, n]
        times = [
            rig_generation_time(n, 16, b, freq=self.FREQ, cmd_overhead=self.CMD)
            for b in sizes
        ]
        best = int(np.argmin(times))
        assert best not in (0, len(sizes) - 1)
