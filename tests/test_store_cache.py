"""Integration tests: store-backed ResultCache, engine ledger
attribution, cross-process convergence, and cross-replica coalescing.

The store package's own unit tests live in ``test_store.py``; this
file proves the wiring *behind* existing surfaces — ``ResultCache``,
``ExecutionEngine``, the job service — behaves identically with and
without the shared tier.
"""

import multiprocessing
import os
import sqlite3

import numpy as np
import pytest

from repro.config import NetSparseConfig
from repro.parallel import ExecutionEngine, ResultCache, SimJob
from repro.results import CommResult
from repro.store import open_store

MAT, K = "arabic", 4


def make_job(**overrides):
    base = dict(scheme="netsparse", matrix=MAT, k=K,
                config=NetSparseConfig(), scale_name="tiny")
    base.update(overrides)
    return SimJob(**base)


def make_result(seed=0):
    rng = np.random.default_rng(seed)
    return CommResult(
        scheme="netsparse", matrix_name=MAT, k=K, n_nodes=8,
        total_time=rng.random() * 1e-3,
        per_node_time=rng.random(8),
        recv_wire_bytes=rng.integers(0, 1 << 40, 8),
        sent_wire_bytes=rng.integers(0, 1 << 40, 8),
        useful_payload_bytes=rng.integers(0, 1 << 40, 8),
        link_bandwidth=12.5e9,
        extras={"arr": rng.random(16).astype(np.float32)},
    )


@pytest.fixture
def dsn(tmp_path):
    return f"sqlite:///{tmp_path}/store.sqlite3"


# -- store-backed ResultCache -------------------------------------------


def test_store_tier_bit_identical_to_filesystem(tmp_path, dsn):
    digest = "d" * 64
    res = make_result()
    store = open_store(dsn)

    fs_only = ResultCache(tmp_path / "fs")
    fs_only.put(digest, res, meta={"scheme": "netsparse"}, elapsed=1.0)
    via_fs = fs_only.get(digest).result

    writer = ResultCache(tmp_path / "w", store=store)
    writer.put(digest, res, meta={"scheme": "netsparse"}, elapsed=1.0)
    # A different machine: empty filesystem tier, same store.
    reader = ResultCache(tmp_path / "r", store=store)
    entry = reader.get(digest)
    via_store = entry.result

    for got in (via_fs, via_store):
        assert got.total_time == res.total_time       # exact, not approx
        assert got.per_node_time.tobytes() == res.per_node_time.tobytes()
        assert got.per_node_time.dtype == res.per_node_time.dtype
        arr = got.extras["arr"]
        assert arr.dtype == np.float32
        assert arr.tobytes() == res.extras["arr"].tobytes()


def test_store_hit_backfills_filesystem(tmp_path, dsn):
    digest = "d" * 64
    store = open_store(dsn)
    store.put_result(digest, make_result(), meta={}, elapsed=2.5)
    cache = ResultCache(tmp_path / "fs", store=store)
    assert cache.get(digest) is not None
    # Second read must be served locally (no store needed at all).
    assert cache._get_local(digest) is not None
    assert cache._get_local(digest).elapsed == 2.5


def test_env_opt_in(tmp_path, dsn, monkeypatch):
    monkeypatch.delenv("REPRO_STORE_DSN", raising=False)
    assert ResultCache(tmp_path / "a").store is None
    monkeypatch.setenv("REPRO_STORE_DSN", dsn)
    cache = ResultCache(tmp_path / "b")
    assert cache.store is not None
    assert cache.store.schema_version() >= 1
    assert cache.info().store is not None


def test_bad_dsn_degrades_to_filesystem(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_STORE_DSN", "postgres://nobody@nowhere/db")
    cache = ResultCache(tmp_path / "fs")
    assert cache.store is None              # gated driver -> disabled
    digest = "d" * 64
    cache.put(digest, make_result(), meta={}, elapsed=0.1)
    assert cache.get(digest) is not None    # filesystem tier unaffected


def test_wal_mode_and_busy_timeout(dsn):
    store = open_store(dsn)
    conn = store.backend.connect()
    assert conn.execute("PRAGMA journal_mode").fetchone()[0] == "wal"
    assert conn.execute("PRAGMA busy_timeout").fetchone()[0] == 10_000


# -- satellite: stranded *.tmp accounting --------------------------------


def test_info_counts_and_clear_reclaims_stranded_tmp(tmp_path):
    cache = ResultCache(tmp_path / "fs")
    digest = "d" * 64
    cache.put(digest, {"x": 1}, meta={}, elapsed=0.0)
    stray = cache._path(digest).parent / "stray0001.tmp"
    stray.write_bytes(b"half-written entry")

    info = cache.info()
    assert info.n_entries == 1
    assert info.tmp_files == 1
    assert info.tmp_bytes == len(b"half-written entry")
    assert "stranded tmp" in info.format()

    assert cache.clear() == 2               # entry + stranded tmp
    assert not stray.exists()
    assert cache.info().tmp_files == 0


# -- engine ledger attribution -------------------------------------------


def test_engine_records_executed_then_memo_then_cache(tmp_path, dsn):
    store = open_store(dsn)
    job = make_job()
    digest = job.digest()

    eng_a = ExecutionEngine(jobs=1,
                            cache=ResultCache(tmp_path / "a", store=store))
    eng_a.context["experiment"] = "exp-a"
    eng_a.run_jobs([job])          # miss everywhere -> executed
    eng_a.run_jobs([job])          # in-process memo
    eng_a.close()

    eng_b = ExecutionEngine(jobs=1,
                            cache=ResultCache(tmp_path / "b", store=store))
    eng_b.run_jobs([job])          # local miss, store hit -> cache
    assert eng_b.stats.executed == 0
    eng_b.close()

    sources = [r["source"] for r in store.history(digest=digest)]
    assert sorted(sources) == ["cache", "executed", "memo"]
    executed = store.history(digest=digest, source="executed")
    assert len(executed) == 1
    row = executed[0]
    assert row["experiment"] == "exp-a"
    assert row["scheme"] == "netsparse" and row["matrix"] == MAT
    assert row["k"] == K and row["scale"] == "tiny"
    assert row["elapsed"] > 0
    assert row["worker"]


def test_engine_describe_reports_store(tmp_path, dsn):
    store = open_store(dsn)
    eng = ExecutionEngine(jobs=1,
                          cache=ResultCache(tmp_path / "c", store=store))
    assert eng.describe()["store_dsn"] == dsn
    eng.close()
    no_store = ExecutionEngine(jobs=1, cache=ResultCache(tmp_path / "d"))
    assert no_store.describe()["store_dsn"] is None
    no_store.close()


# -- cross-process convergence -------------------------------------------


def _racing_put(dsn, barrier, marker, queue):
    from repro.store import open_store as _open

    store = _open(dsn)
    barrier.wait(timeout=30)
    inserted = store.put_result("e" * 64, {"winner": marker},
                                meta={}, elapsed=float(marker))
    queue.put((marker, inserted))


def test_cross_process_race_converges_to_one_row(dsn):
    open_store(dsn)                 # migrate before the race
    ctx = multiprocessing.get_context("spawn")
    barrier = ctx.Barrier(2)
    queue = ctx.Queue()
    procs = [ctx.Process(target=_racing_put,
                         args=(dsn, barrier, i, queue)) for i in range(2)]
    for p in procs:
        p.start()
    outcomes = [queue.get(timeout=60) for _ in procs]
    for p in procs:
        p.join(timeout=60)
        assert p.exitcode == 0

    inserted = [m for m, ok in outcomes if ok]
    assert len(inserted) == 1       # exactly one writer won
    store = open_store(dsn)
    assert store.counts()["results"] == 1
    rec = store.get_result("e" * 64)
    assert rec.result == {"winner": inserted[0]}
    assert rec.elapsed == float(inserted[0])


# -- cross-replica coalescing via the service ----------------------------


def test_two_replicas_share_one_execution(tmp_path, dsn):
    from repro.service import ServiceClient, serve_in_background

    store = open_store(dsn)
    req = {"scheme": "netsparse", "matrix": MAT, "k": K,
           "scale_name": "tiny"}

    eng_a = ExecutionEngine(jobs=1,
                            cache=ResultCache(tmp_path / "a", store=store))
    bg_a = serve_in_background(eng_a)
    try:
        ca = ServiceClient(bg_a.url, timeout=120)
        first = ca.wait(ca.submit(req).job_id, timeout=120)
    finally:
        bg_a.stop()
        eng_a.close()
    assert eng_a.stats.executed == 1

    # Replica restart: fresh engine, fresh filesystem cache, same store.
    eng_b = ExecutionEngine(jobs=1,
                            cache=ResultCache(tmp_path / "b", store=store))
    bg_b = serve_in_background(eng_b)
    try:
        cb = ServiceClient(bg_b.url, timeout=120)
        sub = cb.submit(req)
        second = cb.wait(sub.job_id, timeout=120)
        status = cb.status(sub.job_id)
    finally:
        bg_b.stop()
        eng_b.close()
    assert eng_b.stats.executed == 0
    assert status.source == "cache"

    ra, rb = first.comm_result(), second.comm_result()
    assert ra.total_time == rb.total_time
    assert ra.per_node_time.tobytes() == rb.per_node_time.tobytes()

    digest = make_job().digest()
    executed = store.history(digest=digest, source="executed")
    assert len(executed) == 1       # one execution, ever, across replicas
    workers = {r["worker"] for r in store.history(digest=digest)}
    assert any(w.startswith("service:") for w in workers)


def test_service_stats_include_store_section(tmp_path, dsn):
    from repro.service import ServiceClient, serve_in_background

    store = open_store(dsn)
    eng = ExecutionEngine(jobs=1,
                          cache=ResultCache(tmp_path / "c", store=store))
    bg = serve_in_background(eng)
    try:
        stats = ServiceClient(bg.url).stats()
    finally:
        bg.stop()
        eng.close()
    assert stats["store"] is not None
    assert stats["store"]["info"]["backend"] == "sqlite"
    assert stats["store"]["info"]["schema_version"] >= 1


def _worker_env_roundtrip(dsn, queue):
    # A pool worker's view: env opt-in only, no objects shared.
    os.environ["REPRO_STORE_DSN"] = dsn
    from repro.parallel.cache import ResultCache as RC

    import tempfile

    cache = RC(tempfile.mkdtemp())
    entry = cache.get("f" * 64)
    queue.put(entry.result if entry else None)


def test_env_opt_in_crosses_process_boundary(dsn):
    store = open_store(dsn)
    store.put_result("f" * 64, {"seen": "cross-process"}, meta={})
    ctx = multiprocessing.get_context("spawn")
    queue = ctx.Queue()
    proc = ctx.Process(target=_worker_env_roundtrip, args=(dsn, queue))
    proc.start()
    got = queue.get(timeout=60)
    proc.join(timeout=60)
    assert got == {"seen": "cross-process"}


def test_sqlite_file_is_actually_shared(dsn, tmp_path):
    # Belt and braces: a raw sqlite3 connection sees the rows the
    # store API wrote (no hidden per-connection state).
    store = open_store(dsn)
    store.put_result("9" * 64, {"x": 1}, meta={})
    path = store.backend.location
    with sqlite3.connect(path) as conn:
        n = conn.execute("SELECT COUNT(*) FROM results").fetchone()[0]
    assert n == 1
