"""Distributed kernel execution must match single-node references
exactly, on every benchmark family."""

import numpy as np
import pytest

from repro.cluster.execute import (
    distributed_sddmm,
    distributed_spmm,
    distributed_spmv,
)
from repro.sparse import sddmm, spmm, spmv
from repro.sparse.suite import MATRIX_NAMES, load_benchmark


@pytest.fixture(scope="module", params=list(MATRIX_NAMES))
def matrix(request):
    return load_benchmark(request.param, "tiny").with_random_values(seed=5)


def test_distributed_spmm_matches_reference(matrix):
    rng = np.random.default_rng(0)
    b = rng.normal(size=(matrix.n_cols, 8))
    run = distributed_spmm(matrix, b, n_nodes=16)
    np.testing.assert_allclose(run.output, spmm(matrix, b), rtol=1e-10)
    assert run.n_nodes == 16
    assert run.prs_issued <= run.pr_candidates


def test_distributed_spmv_matches_reference(matrix):
    rng = np.random.default_rng(1)
    x = rng.normal(size=matrix.n_cols)
    run = distributed_spmv(matrix, x, n_nodes=8)
    np.testing.assert_allclose(run.output, spmv(matrix, x), rtol=1e-10)
    assert run.output.ndim == 1


def test_distributed_sddmm_matches_reference(matrix):
    rng = np.random.default_rng(2)
    u = rng.normal(size=(matrix.n_rows, 4))
    v = rng.normal(size=(matrix.n_cols, 4))
    run = distributed_sddmm(matrix, u, v, n_nodes=8)
    reference = sddmm(matrix, u, v)
    np.testing.assert_allclose(run.output, reference.vals, rtol=1e-10)


def test_fc_rate_reported(matrix):
    rng = np.random.default_rng(3)
    b = rng.normal(size=(matrix.n_cols, 2))
    run = distributed_spmm(matrix, b, n_nodes=16)
    if matrix.name in ("arabic", "queen"):
        assert run.fc_rate > 0.3        # heavy reuse matrices
    assert 0.0 <= run.fc_rate < 1.0
    assert run.properties_moved <= run.prs_issued


def test_node_count_does_not_change_numerics(matrix):
    rng = np.random.default_rng(4)
    b = rng.normal(size=(matrix.n_cols, 3))
    a = distributed_spmm(matrix, b, n_nodes=4).output
    c = distributed_spmm(matrix, b, n_nodes=32).output
    np.testing.assert_allclose(a, c, rtol=1e-10)


def test_shape_validation():
    mat = load_benchmark("queen", "tiny")
    with pytest.raises(ValueError):
        distributed_spmm(mat, np.zeros((3, 2)), 4)
    with pytest.raises(ValueError):
        distributed_spmv(mat, np.zeros(3), 4)
    with pytest.raises(ValueError):
        distributed_sddmm(mat, np.zeros((3, 2)),
                          np.zeros((mat.n_cols, 2)), 4)
    with pytest.raises(ValueError):
        distributed_sddmm(mat, np.zeros((mat.n_rows, 2)),
                          np.zeros((mat.n_cols, 3)), 4)


def test_structure_only_matrix_uses_unit_values():
    mat = load_benchmark("queen", "tiny")   # no values attached
    rng = np.random.default_rng(5)
    b = rng.normal(size=(mat.n_cols, 2))
    run = distributed_spmm(mat, b, n_nodes=8)
    np.testing.assert_allclose(run.output, spmm(mat, b), rtol=1e-10)
