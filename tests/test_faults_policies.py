"""Tests for backoff and graceful-degradation policies."""

import pytest

from repro.faults.policies import (
    BackoffPolicy,
    DegradePolicy,
    ExponentialBackoff,
    FixedBackoff,
    backoff_from_spec,
)


class TestFixedBackoff:
    def test_constant_delay(self):
        assert FixedBackoff(0.0).delay(0) == 0.0
        assert FixedBackoff(0.25).delay(5) == 0.25

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            FixedBackoff(-1.0)


class TestExponentialBackoff:
    def test_grows_and_caps(self):
        bo = ExponentialBackoff(base=1e-4, factor=2.0, max_delay=4e-4,
                                jitter=0.0)
        delays = [bo.delay(a) for a in range(5)]
        assert delays == sorted(delays)
        assert delays[0] == pytest.approx(1e-4)
        assert delays[-1] == pytest.approx(4e-4)  # capped

    def test_jitter_deterministic_and_bounded(self):
        bo = ExponentialBackoff(base=1e-3, factor=1.0, max_delay=1.0,
                                jitter=0.5, seed=3)
        d0 = bo.delay(0)
        assert d0 == bo.delay(0)  # same seed + attempt -> same delay
        assert 0.5e-3 <= d0 <= 1e-3  # within [(1-jitter)*d, d]
        # A different seed jitters differently (overwhelmingly likely).
        assert d0 != ExponentialBackoff(base=1e-3, factor=1.0,
                                        max_delay=1.0, jitter=0.5,
                                        seed=4).delay(0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ExponentialBackoff(factor=0.5)
        with pytest.raises(ValueError):
            ExponentialBackoff(jitter=2.0)
        with pytest.raises(ValueError):
            ExponentialBackoff().delay(-1)


class TestBackoffFromSpec:
    def test_coercions(self):
        assert backoff_from_spec(None).delay(3) == 0.0
        assert backoff_from_spec("fixed").delay(0) == 0.0
        exp = backoff_from_spec("exponential", seed=9)
        assert isinstance(exp, ExponentialBackoff)
        assert exp.seed == 9
        mine = FixedBackoff(0.5)
        assert backoff_from_spec(mine) is mine

    def test_unknown_spec_rejected(self):
        with pytest.raises(ValueError):
            backoff_from_spec("random")

    def test_base_class_is_abstract(self):
        with pytest.raises(NotImplementedError):
            BackoffPolicy().delay(0)


class TestDegradePolicy:
    def test_defaults_on_none_off(self):
        assert DegradePolicy().bypass_dead_cache
        assert DegradePolicy().reroute_failed_tor
        assert DegradePolicy().reissue_rig
        none = DegradePolicy.none()
        assert not (none.bypass_dead_cache or none.reroute_failed_tor
                    or none.reissue_rig)
