"""Shard store + streamed generation determinism (tests for the
out-of-core trace pipeline's storage layer).

The load-bearing invariant: a matrix generated chunk-by-chunk into the
shard store is **bit-identical** — same canonical nonzero stream, same
``structural_digest`` — to the one-shot in-memory generator, so every
existing partition-trace cache key stays valid across storage tiers.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.partition import (
    ShardedOneDPartition,
    balanced_by_nnz,
    build_partition,
    sharded_balanced_by_nnz,
)
from repro.sparse import synthetic
from repro.sparse.matrix import COOMatrix
from repro.sparse.shards import (
    ShardedCOOMatrix,
    drop_pages,
    from_coo,
    is_sharded,
    write_sharded,
)
from repro.sparse.suite import BENCHMARKS, load_benchmark

GENERATOR_CASES = [
    (synthetic.web_crawl, dict(n=3000, mean_degree=10.0, locality=0.7,
                               block_size=128, escape_frac=0.08, seed=3)),
    (synthetic.road_network, dict(n=12000, mean_degree=2.2,
                                  long_range_frac=0.25, seed=5)),
    (synthetic.banded_fem, dict(n=2000, mean_degree=18.0, band=40, seed=7)),
    (synthetic.coupled_flow, dict(n=2700, mean_degree=12.0, band=24,
                                  n_fields=3, coupling_frac=0.3, seed=9)),
]


@pytest.fixture()
def shard_env(tmp_path, monkeypatch):
    """Isolated shard root + a cleared suite memo for every test."""
    from repro.sparse import suite

    monkeypatch.setenv("REPRO_SHARD_DIR", str(tmp_path / "shards"))
    suite._memo.clear()
    yield tmp_path
    suite._memo.clear()


class TestStreamedGeneration:
    @pytest.mark.parametrize("gen,kw", GENERATOR_CASES,
                             ids=[g.__name__ for g, _ in GENERATOR_CASES])
    def test_chunks_bit_identical_to_one_shot(self, gen, kw):
        ref = gen(**kw)
        chunks = list(synthetic.stream_chunks(gen, chunk_nnz=4096, **kw))
        assert len(chunks) > 1          # actually exercised chunking
        rows = np.concatenate([r for r, c in chunks])
        cols = np.concatenate([c for r, c in chunks])
        np.testing.assert_array_equal(rows, ref.rows)
        np.testing.assert_array_equal(cols, ref.cols)
        built = COOMatrix(kw["n"], kw["n"], rows, cols, None, "t")
        assert built.structural_digest() == ref.structural_digest()

    def test_chunk_size_invariance(self):
        gen, kw = GENERATOR_CASES[0]
        digests = set()
        for chunk_nnz in (1000, 4096, 10**9):
            chunks = list(synthetic.stream_chunks(gen, chunk_nnz=chunk_nnz,
                                                  **kw))
            rows = np.concatenate([r for r, _ in chunks])
            cols = np.concatenate([c for _, c in chunks])
            m = COOMatrix(kw["n"], kw["n"], rows, cols, None, "t")
            digests.add(m.structural_digest())
        assert len(digests) == 1

    def test_unregistered_generator_rejected(self):
        with pytest.raises(ValueError, match="streamed twin"):
            synthetic.stream_chunks(synthetic.zipf_sample, n=10)

    @pytest.mark.parametrize("name", sorted(BENCHMARKS))
    def test_benchmark_stream_matches_generate(self, name):
        spec = BENCHMARKS[name]
        ref = spec.generate(scale="tiny", seed=7)
        chunks = list(spec.stream(scale="tiny", seed=7, chunk_nnz=1 << 15))
        rows = np.concatenate([r for r, _ in chunks])
        cols = np.concatenate([c for _, c in chunks])
        built = COOMatrix(ref.n_rows, ref.n_cols, rows, cols, None, name)
        assert built.structural_digest() == ref.structural_digest()


class TestShardStore:
    def _write(self, tmp_path, gen, kw, chunk_nnz=4096):
        ref = gen(**kw)
        sm = write_sharded(
            str(tmp_path / "m"), kw["n"], kw["n"],
            synthetic.stream_chunks(gen, chunk_nnz=chunk_nnz, **kw),
            name="t",
        )
        return ref, sm

    def test_roundtrip_and_manifest(self, tmp_path):
        gen, kw = GENERATOR_CASES[1]
        ref, sm = self._write(tmp_path, gen, kw)
        assert is_sharded(sm) and not is_sharded(ref)
        assert sm.nnz == ref.nnz
        assert sm.shape == (ref.n_rows, ref.n_cols)
        assert sm.n_shards > 1
        assert sm.structural_digest() == ref.structural_digest()
        manifest = json.load(open(os.path.join(sm.path, "manifest.json")))
        assert manifest["schema"] == "repro.shards/v1"
        assert manifest["nnz"] == ref.nnz
        back = sm.to_coo()
        np.testing.assert_array_equal(back.rows, ref.rows)
        np.testing.assert_array_equal(back.cols, ref.cols)

    def test_reopen_existing_store(self, tmp_path):
        gen, kw = GENERATOR_CASES[2]
        ref, sm = self._write(tmp_path, gen, kw)
        again = ShardedCOOMatrix(sm.path)
        assert again.structural_digest() == ref.structural_digest()
        assert again.nnz == ref.nnz

    def test_from_coo_roundtrip(self, tmp_path):
        gen, kw = GENERATOR_CASES[3]
        ref = gen(**kw)
        sm = from_coo(ref, str(tmp_path / "m"), shard_nnz=4096)
        assert sm.n_shards > 1
        assert sm.structural_digest() == ref.structural_digest()

    def test_window_reads(self, tmp_path):
        gen, kw = GENERATOR_CASES[0]
        ref, sm = self._write(tmp_path, gen, kw)
        # cols_slice windows equal the materialized stream, across
        # shard boundaries.
        rng = np.random.default_rng(0)
        for _ in range(8):
            a, b = sorted(rng.integers(0, ref.nnz + 1, size=2).tolist())
            np.testing.assert_array_equal(sm.cols_slice(a, b), ref.cols[a:b])
        # nnz_before_row equals searchsorted on the dense rows.
        for row in [0, 1, kw["n"] // 3, kw["n"] - 1, kw["n"]]:
            assert sm.nnz_before_row(row) == int(
                np.searchsorted(ref.rows, row, side="left")
            )
        np.testing.assert_array_equal(
            sm.row_nnz(), np.bincount(ref.rows, minlength=ref.n_rows)
        )

    def test_resident_nnz_is_zero(self, tmp_path):
        gen, kw = GENERATOR_CASES[2]
        _, sm = self._write(tmp_path, gen, kw)
        assert sm.resident_nnz == 0

    def test_drop_pages_tolerates_plain_arrays(self):
        drop_pages(np.arange(10))    # no memmap under it: a no-op


class TestShardedPartition:
    @pytest.mark.parametrize("kind", ["rows", "nnz"])
    def test_traces_match_dense(self, shard_env, kind):
        mat = load_benchmark("stokes", "tiny")
        smat = load_benchmark("stokes", "tiny", sharded=True)
        dense = build_partition(mat, 16, kind=kind)
        sharded = build_partition(smat, 16, kind=kind)
        assert isinstance(sharded, ShardedOneDPartition)
        np.testing.assert_array_equal(dense.row_starts, sharded.row_starts)
        np.testing.assert_array_equal(dense.node_nnz(), sharded.node_nnz())
        for dt, st in zip(dense.node_traces(), sharded.node_traces()):
            np.testing.assert_array_equal(dt.idxs, st.idxs)
            np.testing.assert_array_equal(dt.owner, st.owner)
            assert dt.owner.dtype == st.owner.dtype
            np.testing.assert_array_equal(dt.remote, st.remote)
            np.testing.assert_array_equal(dt.remote_idxs, st.remote_idxs)
            np.testing.assert_array_equal(dt.remote_pos, st.remote_pos)
            np.testing.assert_array_equal(dt.remote_unique, st.remote_unique)
            assert dt.unique_remote_count() == st.unique_remote_count()

    def test_release_bounds_residency(self, shard_env):
        smat = load_benchmark("queen", "tiny", sharded=True)
        part = ShardedOneDPartition(smat, 8)
        assert part.resident_trace_nnz() == 0
        traces = part.node_traces()
        _ = traces[0].remote_idxs
        assert part.resident_trace_nnz() > 0
        released = part.release_traces()
        assert released > 0
        assert part.resident_trace_nnz() == 0
        # Windows re-materialize transparently after release.
        np.testing.assert_array_equal(
            traces[0].idxs, smat.cols_slice(0, traces[0].n_nonzeros)
        )

    def test_balanced_helper_matches_dense(self, shard_env):
        mat = load_benchmark("uk", "tiny")
        smat = load_benchmark("uk", "tiny", sharded=True)
        dense = balanced_by_nnz(mat, 8)
        sharded = sharded_balanced_by_nnz(smat, 8)
        np.testing.assert_array_equal(dense.row_starts, sharded.row_starts)

    def test_validation(self, shard_env):
        smat = load_benchmark("queen", "tiny", sharded=True)
        with pytest.raises(ValueError):
            ShardedOneDPartition(smat, 0)
        with pytest.raises(ValueError):
            ShardedOneDPartition(smat, smat.n_rows + 1)
        with pytest.raises(ValueError):
            ShardedOneDPartition(smat, 4, row_starts=np.array([0, 1, 2]))


class TestSuiteShardedLoading:
    def test_digest_matches_dense_twin(self, shard_env):
        dense = load_benchmark("arabic", "tiny")
        sharded = load_benchmark("arabic", "tiny", sharded=True)
        assert is_sharded(sharded)
        assert sharded.structural_digest() == dense.structural_digest()
        assert sharded.nnz == dense.nnz

    def test_memoized_and_reused_from_disk(self, shard_env):
        from repro.sparse import suite

        a = load_benchmark("queen", "tiny", sharded=True)
        b = load_benchmark("queen", "tiny", sharded=True)
        assert a is b                       # memo hit
        suite._memo.clear()
        c = load_benchmark("queen", "tiny", sharded=True)
        assert c is not a                   # reloaded ...
        assert c.path == a.path             # ... from the same store
        assert c.structural_digest() == a.structural_digest()

    def test_sharded_scales_env(self, shard_env, monkeypatch):
        from repro.sparse.suite import sharded_scales

        assert {"large", "paper"} <= sharded_scales()
        monkeypatch.setenv("REPRO_SHARDED_SCALES", "tiny,small")
        assert {"tiny", "small", "large", "paper"} <= sharded_scales()
        mat = load_benchmark("queen", "tiny")   # default now sharded
        assert is_sharded(mat)
