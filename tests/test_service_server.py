"""End-to-end job-server tests over real sockets.

Each test runs a :class:`JobServer` on its own background event-loop
thread (ephemeral port) with a private engine + cache, and talks to it
with the pure-stdlib :class:`ServiceClient` — exactly the deployment
shape, minus the network."""

import threading
import time

import numpy as np
import pytest

import repro.parallel.engine as engine_mod
from repro.parallel import ExecutionEngine, ResultCache, engine_scope
from repro.service import (
    ServiceClient,
    ServiceError,
    serve_in_background,
)

TINY = {"scheme": "netsparse", "matrix": "arabic", "k": 8,
        "scale_name": "tiny"}


@pytest.fixture
def server(tmp_path):
    eng = ExecutionEngine(jobs=2, cache=ResultCache(tmp_path / "cache"))
    bg = serve_in_background(eng, queue_limit=4)
    yield bg
    bg.stop()
    eng.close()


@pytest.fixture
def client(server):
    return ServiceClient(server.url, timeout=60)


# -- basic lifecycle -----------------------------------------------------


def test_healthz(client):
    health = client.healthz()
    assert health["ok"] is True
    assert health["protocol"] == 1


def test_submit_and_result_bit_identical(client, tmp_path):
    st = client.submit(TINY)
    assert st.state in ("queued", "running", "done")
    res = client.wait(st.job_id, timeout=60)
    comm = res.comm_result()

    with engine_scope(ExecutionEngine(jobs=1, cache=None)):
        from repro.parallel import simulate

        direct = simulate(TINY["scheme"], TINY["matrix"], k=TINY["k"],
                          scale_name=TINY["scale_name"])
    assert comm.total_time == direct.total_time
    assert np.array_equal(comm.per_node_time, direct.per_node_time)
    assert comm.per_node_time.dtype == direct.per_node_time.dtype
    assert np.array_equal(comm.recv_wire_bytes, direct.recv_wire_bytes)


def test_repeat_submission_served_from_cache(client):
    first = client.submit(TINY)
    client.wait(first.job_id, timeout=60)
    again = client.submit(TINY)
    assert again.state == "done"
    assert again.source == "cache"
    assert again.job_id != first.job_id
    counters = client.stats()["service"]["counters"]
    assert counters.get("service.cache_hits", 0) >= 1


def test_unknown_job_404(client):
    with pytest.raises(ServiceError) as exc:
        client.status("no-such-job")
    assert exc.value.status == 404


def test_bad_request_400(client):
    with pytest.raises(ServiceError) as exc:
        client.submit({"scheme": "netsparse"})   # missing matrix/k
    assert exc.value.status == 400
    assert exc.value.code == "missing_field"


def test_result_before_done_409(client, monkeypatch):
    gate = threading.Event()
    real = engine_mod.timed_execute

    def slow(job):
        gate.wait(30)
        return real(job)

    monkeypatch.setattr(engine_mod, "timed_execute", slow)
    st = client.submit(dict(TINY, k=11))
    try:
        with pytest.raises(ServiceError) as exc:
            client.result(st.job_id)
        assert exc.value.status == 409
    finally:
        gate.set()
    client.wait(st.job_id, timeout=60)


# -- coalescing ----------------------------------------------------------


def test_duplicate_inflight_submissions_coalesce(client, monkeypatch):
    gate = threading.Event()
    n_executions = []
    real = engine_mod.timed_execute

    def slow(job):
        n_executions.append(job.digest())
        gate.wait(30)
        return real(job)

    monkeypatch.setattr(engine_mod, "timed_execute", slow)
    req = dict(TINY, k=13)
    first = client.submit(req)
    dupes = [client.submit(req) for _ in range(3)]
    gate.set()
    client.wait(first.job_id, timeout=60)

    assert all(d.job_id == first.job_id for d in dupes)
    assert all(d.coalesced for d in dupes)
    assert len(n_executions) == 1
    counters = client.stats()["service"]["counters"]
    assert counters.get("service.coalesced", 0) == 3


def test_sweep_coalesces_against_inflight(client, monkeypatch):
    gate = threading.Event()
    real = engine_mod.timed_execute

    def slow(job):
        gate.wait(30)
        return real(job)

    monkeypatch.setattr(engine_mod, "timed_execute", slow)
    single = client.submit(dict(TINY, k=8))
    sweep = client.submit_sweep({
        "schemes": ["netsparse"], "matrices": ["arabic"],
        "ks": [8, 16], "scale_name": "tiny",
    })
    gate.set()
    assert sweep["n_jobs"] == 2
    assert sweep["n_coalesced"] == 1
    coalesced = [j for j in sweep["jobs"] if j.coalesced]
    assert len(coalesced) == 1
    assert coalesced[0].job_id == single.job_id
    for j in sweep["jobs"]:
        client.wait(j.job_id, timeout=60)


# -- admission control ---------------------------------------------------


def test_admission_overflow_429(client, monkeypatch):
    gate = threading.Event()
    real = engine_mod.timed_execute

    def slow(job):
        gate.wait(30)
        return real(job)

    monkeypatch.setattr(engine_mod, "timed_execute", slow)
    admitted = [client.submit(dict(TINY, k=20 + i)) for i in range(4)]
    try:
        with pytest.raises(ServiceError) as exc:
            client.submit(dict(TINY, k=99))
        assert exc.value.status == 429
        assert exc.value.code == "queue_full"
        assert exc.value.retry_after is not None
        # Duplicates of admitted jobs still coalesce at full queue.
        dup = client.submit(dict(TINY, k=20))
        assert dup.coalesced
    finally:
        gate.set()
    for st in admitted:
        client.wait(st.job_id, timeout=60)
    counters = client.stats()["service"]["counters"]
    assert counters.get("service.rejected", 0) == 1
    # Queue drained: submissions flow again.
    post = client.submit(dict(TINY, k=99))
    client.wait(post.job_id, timeout=60)


# -- failure and cancellation -------------------------------------------


def test_failed_job_reports_error(client, monkeypatch):
    def boom(job):
        raise RuntimeError("synthetic kernel fault")

    monkeypatch.setattr(engine_mod, "timed_execute", boom)
    st = client.submit(dict(TINY, k=31))
    deadline = time.monotonic() + 30
    while not client.status(st.job_id).terminal:
        assert time.monotonic() < deadline
        time.sleep(0.02)
    final = client.status(st.job_id)
    assert final.state == "failed"
    assert "synthetic kernel fault" in final.error
    with pytest.raises(ServiceError) as exc:
        client.wait(st.job_id, timeout=5)
    assert exc.value.code == "job_failed"


def test_cancel_queued_job(client, monkeypatch):
    gate = threading.Event()
    real = engine_mod.timed_execute

    def slow(job):
        gate.wait(30)
        return real(job)

    monkeypatch.setattr(engine_mod, "timed_execute", slow)
    # Fill both workers, then queue two more; the queued ones are
    # cancellable, the running ones are not.
    running = [client.submit(dict(TINY, k=40 + i)) for i in range(2)]
    queued = [client.submit(dict(TINY, k=50 + i)) for i in range(2)]
    time.sleep(0.2)                      # let the pool pick two up
    cancelled = client.cancel(queued[-1].job_id)
    gate.set()
    assert cancelled.state in ("queued", "cancelled")
    deadline = time.monotonic() + 30
    while not client.status(queued[-1].job_id).terminal:
        assert time.monotonic() < deadline
        time.sleep(0.02)
    assert client.status(queued[-1].job_id).state == "cancelled"
    for st in running + queued[:1]:
        client.wait(st.job_id, timeout=60)
    with pytest.raises(ServiceError) as exc:
        client.cancel(running[0].job_id)   # already terminal
    assert exc.value.status == 409


# -- websocket event streams --------------------------------------------


def test_ws_lifecycle_ordering(client):
    st = client.submit(dict(TINY, k=17))
    client.wait(st.job_id, timeout=60)
    events = list(client.events(st.job_id))

    states = [e["state"] for e in events if e["type"] == "status"]
    assert states == ["queued", "running", "done"]
    seqs = [e["seq"] for e in events]
    assert seqs == sorted(seqs) == list(range(len(events)))
    spans = [e["name"] for e in events if e["type"] == "span"]
    assert any(n.startswith("cluster.stage.") for n in spans)
    assert "engine.job" in spans
    # Spans land strictly between running and done.
    kinds = [e["type"] for e in events]
    first_span = kinds.index("span")
    assert kinds[:first_span] == ["status", "status"]
    assert kinds[-1] == "status"


def test_ws_live_follow(client, monkeypatch):
    gate = threading.Event()
    real = engine_mod.timed_execute

    def slow(job):
        gate.wait(30)
        return real(job)

    monkeypatch.setattr(engine_mod, "timed_execute", slow)
    st = client.submit(dict(TINY, k=23))
    got = []

    def follow():
        for ev in client.events(st.job_id):
            got.append(ev)

    t = threading.Thread(target=follow, daemon=True)
    t.start()
    time.sleep(0.3)                       # subscriber attached mid-flight
    gate.set()
    t.join(30)
    assert not t.is_alive()
    states = [e["state"] for e in got if e["type"] == "status"]
    assert states == ["queued", "running", "done"]


def test_ws_cached_submission_replays_terminal_stream(client):
    st = client.submit(dict(TINY, k=8))
    client.wait(st.job_id, timeout=60)
    again = client.submit(dict(TINY, k=8))
    events = list(client.events(again.job_id))
    states = [e["state"] for e in events if e["type"] == "status"]
    assert states == ["queued", "done"]   # no execution, no spans


def test_ws_unknown_job_handshake_rejected(client):
    with pytest.raises(ServiceError) as exc:
        next(iter(client.events("nope")))
    assert exc.value.status == 404


# -- shutdown ------------------------------------------------------------


def test_graceful_drain_finishes_inflight(tmp_path, monkeypatch):
    gate = threading.Event()
    real = engine_mod.timed_execute

    def slow(job):
        gate.wait(30)
        return real(job)

    monkeypatch.setattr(engine_mod, "timed_execute", slow)
    eng = ExecutionEngine(jobs=2, cache=ResultCache(tmp_path / "cache"))
    bg = serve_in_background(eng, queue_limit=8)
    c = ServiceClient(bg.url, timeout=60)
    st = c.submit(dict(TINY, k=19))

    stopper = threading.Thread(target=bg.stop, daemon=True)
    stopper.start()
    time.sleep(0.3)
    # Draining: new submissions refused, existing job still tracked.
    with pytest.raises((ServiceError, OSError)) as exc:
        c.submit(dict(TINY, k=77))
    if isinstance(exc.value, ServiceError):
        assert exc.value.status == 503
    gate.set()
    stopper.join(60)
    assert not stopper.is_alive()
    # The drained job really executed: its result is in the cache.
    from repro.service.protocol import JobRequest

    digest = JobRequest.from_dict(dict(TINY, k=19)).to_sim_job().digest()
    assert eng.cache.get(digest) is not None
    eng.close()
