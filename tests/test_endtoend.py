"""Tests for the end-to-end strong-scaling model and the correctness of
distributed execution (the communication layer must never change the
numerics)."""

import numpy as np
import pytest

from repro.cluster import simulate_netsparse, simulate_saopt, simulate_suopt
from repro.cluster.endtoend import (
    end_to_end_time,
    per_node_compute_times,
    single_node_time,
)
from repro.config import NetSparseConfig
from repro.core.filtering import filter_and_coalesce
from repro.partition import OneDPartition
from repro.sparse import spmm
from repro.sparse.suite import load_benchmark

CFG16 = NetSparseConfig(n_nodes=16, n_racks=4, nodes_per_rack=4)


@pytest.fixture(scope="module")
def matrix():
    return load_benchmark("arabic", "tiny")


@pytest.fixture(scope="module")
def comm(matrix):
    from repro.network import LeafSpine

    topo = LeafSpine(n_racks=4, nodes_per_rack=4, n_spines=2)
    return simulate_netsparse(matrix, 16, CFG16, topo)


def test_single_node_time_positive(matrix):
    assert single_node_time(matrix, 16) > 0


def test_per_node_compute_imbalance(matrix):
    times = per_node_compute_times(matrix, 16, 16)
    assert times.shape == (16,)
    # Power-law rows create compute imbalance: ideal speedup < n_nodes.
    ideal = single_node_time(matrix, 16) / times.max()
    assert 1 < ideal < 16


def test_end_to_end_combines_phases(matrix, comm):
    res = end_to_end_time(matrix, 16, comm, overlap=0.0)
    assert res.total_time == pytest.approx(res.compute_time + comm.total_time)
    assert res.speedup_over_single_node > 0
    assert res.ideal_speedup >= res.speedup_over_single_node


def test_overlap_interpolates(matrix, comm):
    serial = end_to_end_time(matrix, 16, comm, overlap=0.0)
    perfect = end_to_end_time(matrix, 16, comm, overlap=1.0)
    half = end_to_end_time(matrix, 16, comm, overlap=0.5)
    assert perfect.total_time <= half.total_time <= serial.total_time
    assert perfect.total_time == pytest.approx(
        max(serial.compute_time, comm.total_time)
    )


def test_overlap_validation(matrix, comm):
    with pytest.raises(ValueError):
        end_to_end_time(matrix, 16, comm, overlap=1.5)


def test_comm_to_comp_ratio(matrix, comm):
    res = end_to_end_time(matrix, 16, comm)
    assert res.comm_to_comp_ratio == pytest.approx(
        comm.total_time / res.compute_time
    )


def test_netsparse_scales_better_than_baselines(matrix):
    """The Figure 13 ordering: NetSparse > SAOpt > SUOpt end-to-end."""
    from repro.network import LeafSpine
    from repro.sparse.suite import scale_factor

    topo = LeafSpine(n_racks=4, nodes_per_rack=4, n_spines=2)
    k = 16
    sc = scale_factor("arabic", matrix)
    ns = end_to_end_time(
        matrix, k, simulate_netsparse(matrix, k, CFG16, topo, scale=sc)
    )
    sa = end_to_end_time(matrix, k, simulate_saopt(matrix, k, CFG16, scale=sc))
    su = end_to_end_time(matrix, k, simulate_suopt(matrix, k, CFG16))
    assert ns.speedup_over_single_node > sa.speedup_over_single_node
    assert ns.speedup_over_single_node > su.speedup_over_single_node


class TestDistributedCorrectness:
    """INVARIANT: however communication is filtered/coalesced/cached,
    the distributed SpMM output equals the single-node reference."""

    def test_distributed_spmm_with_filtering_matches_reference(self, matrix):
        k = 8
        m = matrix.with_random_values(seed=11)
        rng = np.random.default_rng(12)
        b = rng.normal(size=(m.n_cols, k))
        reference = spmm(m, b)

        n_nodes = 16
        part = OneDPartition(m, n_nodes)
        out_shards = []
        csr = m.to_csr()
        for node, tr in enumerate(part.node_traces()):
            # The node fetches remote properties through the filtered
            # PR pipeline: only issued PRs move data.
            remote_idx = tr.remote_idxs
            fr = filter_and_coalesce(remote_idx, n_units=4, batch_size=64,
                                     inflight_window=32)
            fetched = np.unique(remote_idx[fr.issued_mask])
            needed = np.unique(remote_idx)
            # Every needed property was fetched (the core invariant).
            np.testing.assert_array_equal(fetched, needed)
            # Local property table: own shard + fetched remotes.
            local_b = np.zeros_like(b)
            lo, hi = part.col_starts[node], part.col_starts[node + 1]
            local_b[lo:hi] = b[lo:hi]
            local_b[fetched] = b[fetched]
            rows = list(part.rows_of(node))
            shard = np.zeros((len(rows), k))
            for i, r in enumerate(rows):
                cols = csr.row_slice(r)
                vals = csr.data[csr.indptr[r]:csr.indptr[r + 1]]
                shard[i] = (vals[:, None] * local_b[cols]).sum(axis=0)
            out_shards.append(shard)
        result = part.gather_outputs(out_shards)
        np.testing.assert_allclose(result, reference, rtol=1e-10)
