"""Golden equivalence for reuse-distance profile scoring.

:class:`repro.core.reusedist.StreamProfile` must reproduce the
delayed-insert Property Cache replay *bit-for-bit* under every
geometry — its closed form, its contended-subset replay and its
full-replay delegation are three routes to one answer.  These tests
pin all three against :func:`repro.core.pcache_fast.delayed_cache_hits`
(itself golden-tested against the :class:`PropertyCache` executable
spec in ``tests/test_fast_kernels.py``) and, end to end, against a
:class:`PropertyCache` driven through
:class:`repro.cluster.model.DelayedInsertCache` with the geometry a
real capacity / line-size sweep point derives.
"""

import numpy as np
import pytest

from repro.cluster.model import DelayedInsertCache
from repro.core.pcache import PropertyCache, n_sets_for
from repro.core.pcache_fast import delayed_cache_hits, property_cache_hits
from repro.core.reusedist import (
    StreamProfile,
    build_profile,
    profile_stats,
    reset_profile_stats,
    score_many,
)

POLICIES = PropertyCache.POLICIES


def make_stream(rng, space, size=600):
    """Uniform + skewed + duplicate-heavy segments in one stream."""
    return np.concatenate([
        rng.integers(0, space, size=size // 2),
        rng.zipf(1.5, size=size // 3) % space,
        np.repeat(rng.integers(0, space, size=4), (size // 6) // 4 or 1),
    ])


class TestScoreGolden:
    """profile.score == delayed_cache_hits, all geometries, all paths."""

    @pytest.mark.parametrize("policy", POLICIES)
    @pytest.mark.parametrize(
        "n_sets,ways", [(0, 1), (1, 1), (1, 2), (3, 2), (10, 4),
                        (10, 16), (64, 16), (4096, 16)]
    )
    @pytest.mark.parametrize("delay", [0, 1, 7, 150, 10**6])
    def test_matches_pinned_kernel(self, policy, n_sets, ways, delay):
        seed = (n_sets * 7919 + ways * 131 + min(delay, 997)
                + POLICIES.index(policy))
        rng = np.random.default_rng(seed)
        space = max(4 * max(n_sets, 1) * ways, 8)
        for stream in (
            make_stream(rng, space),
            np.zeros(64, dtype=np.int64),
            rng.integers(0, 4, size=200),        # heavily contended
        ):
            want = delayed_cache_hits(stream, n_sets, ways, delay,
                                      policy=policy)[0]
            got = StreamProfile(stream).score(n_sets, ways, delay,
                                              policy=policy)
            np.testing.assert_array_equal(got, want)

    def test_one_profile_many_geometries(self):
        """The planner's actual usage: score a whole knob grid from one
        profile, never rebuilding, never cross-contaminating."""
        rng = np.random.default_rng(42)
        stream = make_stream(rng, 512)
        prof = build_profile(stream)
        points = [(n_sets, ways, delay, policy)
                  for n_sets in (1, 7, 32, 1024)
                  for ways in (1, 4, 16)
                  for delay in (0, 5, 100)
                  for policy in POLICIES]
        masks = score_many(prof, points)
        for (n_sets, ways, delay, policy), got in zip(points, masks):
            want = delayed_cache_hits(stream, n_sets, ways, delay,
                                      policy=policy)[0]
            np.testing.assert_array_equal(got, want)
        # Scoring must not have mutated the profile.
        np.testing.assert_array_equal(prof.idxs, stream)

    def test_empty_stream(self):
        prof = StreamProfile(np.array([], dtype=np.int64))
        assert prof.score(8, 2, 3).size == 0
        assert prof.n_unique() == 0

    def test_zero_sets(self):
        stream = np.arange(10) % 3
        got = StreamProfile(stream).score(0, 4, 1)
        assert not got.any()


class TestScoringPaths:
    """Each of the three scoring routes is really exercised — and
    agrees with the pinned kernel on the stream that forces it."""

    def _delta(self, stream, n_sets, ways, delay):
        reset_profile_stats()
        got = StreamProfile(stream).score(n_sets, ways, delay)
        want = delayed_cache_hits(stream, n_sets, ways, delay)[0]
        np.testing.assert_array_equal(got, want)
        return profile_stats()

    def test_closed_form_eviction_free(self):
        # 8 uniques over 16 sets x 4 ways: no set ever exceeds ways.
        stream = np.tile(np.arange(8), 50)
        stats = self._delta(stream, 16, 4, delay=3)
        assert stats["closed_form"] == 1
        assert stats["hybrid"] == stats["delegated"] == 0

    def test_hybrid_partial_contention(self):
        # Set 0 receives 8 distinct values (> 2 ways); sets 1..63 one
        # value each — a small contended minority.
        hot = np.arange(8) * 64            # all map to set 0 of 64
        cold = np.arange(1, 64)            # one value per other set
        rng = np.random.default_rng(7)
        stream = rng.permutation(np.concatenate([np.tile(hot, 20),
                                                 np.tile(cold, 3)]))
        stats = self._delta(stream, 64, 2, delay=5)
        assert stats["hybrid"] == 1
        assert stats["closed_form"] == stats["delegated"] == 0

    def test_delegates_when_fully_contended(self):
        # Everything lands in one set and exceeds ways: the subset
        # replay would walk the full stream, so score() must delegate.
        stream = np.tile(np.arange(40), 10)
        stats = self._delta(stream, 1, 4, delay=2)
        assert stats["delegated"] == 1
        assert stats["closed_form"] == stats["hybrid"] == 0

    def test_counters_accumulate(self):
        reset_profile_stats()
        prof = build_profile(np.arange(100) % 10)
        prof.score(16, 4, 1)
        prof.score(16, 4, 2)
        stats = profile_stats()
        assert stats["profiles_built"] == 1
        assert stats["scores"] == 2
        assert stats["build_seconds"] >= 0.0
        assert stats["score_seconds"] > 0.0


class TestCapacitySweepGolden:
    """End to end against the PropertyCache executable spec with the
    geometry real sweep points derive: capacities x ways x segmented
    line sizes, exactly as the cluster model's cache stage does."""

    @pytest.mark.parametrize("capacity_kb", [1, 32, 1024])
    @pytest.mark.parametrize("ways", [2, 16])
    @pytest.mark.parametrize("property_bytes", [8, 16, 100, 600])
    def test_matches_property_cache(self, capacity_kb, ways,
                                    property_bytes):
        capacity = capacity_kb * 1024
        n_sets = n_sets_for(capacity, ways, property_bytes)
        rng = np.random.default_rng(capacity_kb * 31 + ways * 7
                                    + property_bytes)
        stream = make_stream(rng, max(4 * max(n_sets, 1) * ways, 16))
        delay = 37

        got = StreamProfile(stream).score(n_sets, ways, delay)
        want_fast = property_cache_hits(stream, capacity, ways,
                                        property_bytes, delay)[0]
        np.testing.assert_array_equal(got, want_fast)

        pc = PropertyCache(capacity_bytes=capacity, ways=ways)
        pc.configure(property_bytes)
        assert pc.n_sets == n_sets
        want_ref = DelayedInsertCache(pc, delay).process(stream)
        np.testing.assert_array_equal(got, want_ref)


class TestProfileStructure:
    def test_reuse_distances(self):
        prof = StreamProfile(np.array([5, 3, 5, 5, 3]))
        # reuses: pos2 (d=2), pos3 (d=3), pos4 (d=3)
        np.testing.assert_array_equal(sorted(prof.reuse_distances()),
                                      [2, 3, 3])

    def test_reuse_histogram_partitions_all_reuses(self):
        rng = np.random.default_rng(3)
        prof = StreamProfile(rng.integers(0, 50, size=400))
        hist = prof.reuse_histogram()
        assert sum(hist.values()) == prof.reuse_distances().size

    def test_n_unique(self):
        assert StreamProfile(np.array([1, 1, 2, 9])).n_unique() == 3
