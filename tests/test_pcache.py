"""Tests for the segmented set-associative Property Cache."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pcache import PropertyCache, SegmentSelector


class TestSegmentSelector:
    def test_mode_16b_single_segment(self):
        sel = SegmentSelector(32, 16)
        sel.configure(16)
        assert sel.segments_per_property == 1
        assert sel.enable_mask(5) == 1 << 5

    def test_mode_32b_two_adjacent_segments(self):
        sel = SegmentSelector(32, 16)
        sel.configure(32)
        assert sel.segments_per_property == 2
        # The paper's example: segment bits 1110X -> segments 28,29...
        # With LSB ignored, bits 11100 (28) and 11101 (29) map to the
        # same pair {28, 29}.
        assert sel.enable_mask(28) == sel.enable_mask(29)
        assert sel.enable_mask(28) == (1 << 28) | (1 << 29)

    def test_mode_512b_all_segments(self):
        sel = SegmentSelector(32, 16)
        sel.configure(512)
        assert sel.segments_per_property == 32
        assert sel.enable_mask(0) == (1 << 32) - 1

    def test_non_power_of_two_rounds_up(self):
        sel = SegmentSelector(32, 16)
        sel.configure(48)  # 3 segments -> round to 4
        assert sel.segments_per_property == 4

    def test_oversized_property_rejected(self):
        sel = SegmentSelector(32, 16)
        with pytest.raises(ValueError):
            sel.configure(1024)

    def test_bad_inputs(self):
        with pytest.raises(ValueError):
            SegmentSelector(33, 16)
        sel = SegmentSelector(32, 16)
        with pytest.raises(ValueError):
            sel.configure(0)
        sel.configure(16)
        with pytest.raises(ValueError):
            sel.enable_mask(32)


class TestPropertyCache:
    def make(self, capacity=16 * 1024, ways=4, prop_bytes=64):
        c = PropertyCache(capacity_bytes=capacity, ways=ways)
        c.configure(prop_bytes)
        return c

    def test_requires_configure(self):
        c = PropertyCache()
        with pytest.raises(RuntimeError):
            c.lookup(0)

    def test_miss_then_insert_then_hit(self):
        c = self.make()
        assert not c.lookup(42)
        c.insert(42)
        assert c.lookup(42)
        assert c.stats.lookups == 2
        assert c.stats.hits == 1

    def test_lookup_does_not_insert(self):
        c = self.make()
        c.lookup(7)
        assert not c.contains(7)

    def test_duplicate_insert_is_noop(self):
        c = self.make()
        c.insert(1)
        c.insert(1)
        assert c.stats.insertions == 1
        assert c.stats.evictions == 0

    def test_lru_eviction_within_set(self):
        c = self.make(capacity=4 * 64, ways=4, prop_bytes=64)  # 1 set, 4 ways
        assert c.n_sets == 1
        for i in range(4):
            c.insert(i)
        c.lookup(0)       # 0 becomes MRU; LRU is now 1
        c.insert(99)      # evicts 1
        assert c.contains(0)
        assert not c.contains(1)
        assert c.contains(99)
        assert c.stats.evictions == 1

    def test_capacity_constant_across_property_sizes(self):
        """The segmented design's point: total capacity is usable for
        every property size; slot count scales inversely with size."""
        c = PropertyCache(capacity_bytes=32 * 1024, ways=16)
        c.configure(16)
        slots_16 = c.n_slots
        c.configure(512)
        slots_512 = c.n_slots
        assert slots_16 == 32 * slots_512
        assert slots_16 * 16 == 32 * 1024
        assert slots_512 * 512 == 32 * 1024

    def test_sub_min_line_property_occupies_min_line(self):
        c = PropertyCache(capacity_bytes=1024, ways=2)
        c.configure(4)  # K=1: 4 B rides a 16 B slot
        assert c.slot_bytes == 16
        assert c.n_slots == 64

    def test_configure_invalidates(self):
        c = self.make()
        c.insert(5)
        c.configure(64)
        assert not c.contains(5)
        assert c.stats.lookups == 0

    def test_zero_capacity_never_hits(self):
        c = PropertyCache(capacity_bytes=0, ways=16)
        c.configure(64)
        c.insert(3)
        assert not c.lookup(3)

    def test_validation(self):
        with pytest.raises(ValueError):
            PropertyCache(capacity_bytes=-1)
        with pytest.raises(ValueError):
            PropertyCache(ways=0)

    def test_hit_rate_stat(self):
        c = self.make()
        c.insert(1)
        c.lookup(1)
        c.lookup(2)
        assert c.stats.hit_rate == 0.5

    @settings(max_examples=100, deadline=None)
    @given(ops=st.lists(
        st.tuples(st.sampled_from(["lookup", "insert"]), st.integers(0, 50)),
        max_size=300,
    ))
    def test_property_hit_implies_prior_insert(self, ops):
        """INVARIANT: a lookup can only hit an idx inserted earlier and
        not yet evicted; occupancy never exceeds ways per set."""
        c = PropertyCache(capacity_bytes=8 * 64, ways=2)
        c.configure(64)
        inserted = set()
        for op, idx in ops:
            if op == "insert":
                c.insert(idx)
                inserted.add(idx)
            else:
                hit = c.lookup(idx)
                if hit:
                    assert idx in inserted
        for s in c._sets:
            assert len(s) <= c.ways

    @settings(max_examples=50, deadline=None)
    @given(idxs=st.lists(st.integers(0, 30), max_size=200))
    def test_property_infinite_cache_hits_all_reuse(self, idxs):
        """With capacity >> working set, every re-reference hits."""
        c = PropertyCache(capacity_bytes=1 << 20, ways=16)
        c.configure(64)
        seen = set()
        hits = 0
        for idx in idxs:
            if c.lookup(idx):
                hits += 1
            else:
                c.insert(idx)
            if idx in seen:
                pass
            seen.add(idx)
        expected_hits = len(idxs) - len(set(idxs))
        assert hits == expected_hits
