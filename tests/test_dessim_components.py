"""Unit tests for the DES cluster's components: links, NIC, ToR."""

import numpy as np
import pytest

from repro.config import NetSparseConfig
from repro.core.rig import ReadPR, ResponsePR
from repro.dessim.components import NetPacket, SerialLink, packet_wire_bytes
from repro.dessim.nic import DesHostNic
from repro.dessim.switch import DesSpine, DesToR
from repro.sim import Simulator, Store

CFG = NetSparseConfig()


def read_pr(idx, src=0, tid=0):
    return ReadPR(idx=idx, src_node=src, src_tid=tid)


class TestSerialLink:
    def test_wire_bytes_and_counters(self):
        sim = Simulator()
        sink = Store(sim)
        link = SerialLink(sim, "l", sink, CFG)
        pkt = NetPacket("read", 0, 1, [read_pr(1), read_pr(2)], 0)

        def feed():
            yield link.send(pkt)

        sim.process(feed())
        sim.run()
        assert len(sink) == 1
        assert link.packets_carried == 1
        assert link.prs_carried == 2
        assert link.bytes_carried == packet_wire_bytes(pkt, CFG)

    def test_packet_wire_bytes_matches_protocol(self):
        pkt1 = NetPacket("read", 0, 1, [read_pr(1)], 0)
        assert packet_wire_bytes(pkt1, CFG) == 78
        pkt3 = NetPacket("response", 0, 1,
                         [read_pr(i) for i in range(3)], 64)
        assert packet_wire_bytes(pkt3, CFG) == 64 + 3 * (18 + 64)

    def test_serialization_time(self):
        sim = Simulator()
        sink = Store(sim)
        link = SerialLink(sim, "l", sink, CFG, bandwidth=1e6, latency=0.5)
        pkt = NetPacket("read", 0, 1, [read_pr(1)], 0)  # 78 B

        def feed():
            yield link.send(pkt)

        sim.process(feed())
        sim.run()
        assert sim.now == pytest.approx(78 / 1e6 + 0.5)

    def test_fifo_across_packets(self):
        sim = Simulator()
        sink = Store(sim)
        link = SerialLink(sim, "l", sink, CFG)
        pkts = [NetPacket("read", 0, 1, [read_pr(i)], 0) for i in range(5)]

        def feed():
            for p in pkts:
                yield link.send(p)

        sim.process(feed())
        sim.run()
        assert [p.prs[0].idx for p in sink.items] == list(range(5))


class TestDesToR:
    def build(self, enable_cache=True):
        sim = Simulator()
        tor = DesToR(sim, rack=0, hosts=[0, 1], payload_bytes=64,
                     config=CFG, rack_of=lambda n: n // 2,
                     enable_cache=enable_cache, concat_delay=1e-7)
        host_sinks = {h: Store(sim) for h in (0, 1)}
        spine_sink = Store(sim)
        for h, sink in host_sinks.items():
            tor.host_links[h] = SerialLink(sim, f"d{h}", sink, CFG)
        tor.spine_links.append(SerialLink(sim, "up", spine_sink, CFG))
        return sim, tor, host_sinks, spine_sink

    def test_read_miss_forwarded_upstream(self):
        sim, tor, hosts, spine = self.build()
        pkt = NetPacket("read", 0, 3, [read_pr(500, src=0)], 0)

        def feed():
            yield tor.rx.put(pkt)

        sim.process(feed())
        sim.run()
        assert len(spine) == 1
        assert len(hosts[0]) == 0

    def test_response_cached_then_read_turns_around(self):
        sim, tor, hosts, spine = self.build()

        def feed():
            # A response for idx 500 passes through toward host 1.
            resp = ResponsePR(idx=500, dst_node=1, dst_tid=0,
                              request_id=1, payload_bytes=64)
            yield tor.rx.put(NetPacket("response", 3, 1, [resp], 64))
            yield sim.timeout(1e-5)
            # A later read for 500 from host 0 hits and turns around.
            yield tor.rx.put(NetPacket("read", 0, 3, [read_pr(500, 0)], 0))

        sim.process(feed())
        sim.run()
        assert tor.stats_turnaround == 1
        assert len(spine) == 0                  # never left the rack
        assert len(hosts[1]) == 1               # original response
        assert len(hosts[0]) == 1               # turned-around response
        back = hosts[0].items[0]
        assert back.pr_type == "response"
        assert back.prs[0].idx == 500

    def test_cache_disabled_never_turns_around(self):
        sim, tor, hosts, spine = self.build(enable_cache=False)

        def feed():
            resp = ResponsePR(idx=7, dst_node=1, dst_tid=0,
                              request_id=1, payload_bytes=64)
            yield tor.rx.put(NetPacket("response", 3, 1, [resp], 64))
            yield sim.timeout(1e-5)
            yield tor.rx.put(NetPacket("read", 0, 3, [read_pr(7, 0)], 0))

        sim.process(feed())
        sim.run()
        assert tor.stats_turnaround == 0
        assert len(spine) == 1

    def test_mixed_packet_splits_hits_and_misses(self):
        sim, tor, hosts, spine = self.build()

        def feed():
            resp = ResponsePR(idx=1, dst_node=1, dst_tid=0,
                              request_id=1, payload_bytes=64)
            yield tor.rx.put(NetPacket("response", 3, 1, [resp], 64))
            yield sim.timeout(1e-5)
            prs = [read_pr(1, 0), read_pr(2, 0)]   # 1 hits, 2 misses
            yield tor.rx.put(NetPacket("read", 0, 3, prs, 0))

        sim.process(feed())
        sim.run()
        assert tor.stats_turnaround == 1
        assert len(spine) == 1
        assert spine.items[0].prs[0].idx == 2


class TestDesSpine:
    def test_routes_by_destination_rack(self):
        sim = Simulator()
        spine = DesSpine(sim, 0, rack_of=lambda n: n // 2)
        sinks = {r: Store(sim) for r in (0, 1)}
        for r, sink in sinks.items():
            spine.tor_links[r] = SerialLink(sim, f"s->t{r}", sink, CFG)

        def feed():
            yield spine.rx.put(NetPacket("read", 0, 3, [read_pr(9)], 0))
            yield spine.rx.put(NetPacket("read", 2, 0, [read_pr(8)], 0))

        sim.process(feed())
        sim.run()
        assert len(sinks[1]) == 1   # node 3 -> rack 1
        assert len(sinks[0]) == 1   # node 0 -> rack 0


class TestDesHostNic:
    def test_destination_solver_uses_col_owner(self):
        sim = Simulator()
        col_owner = np.array([0, 0, 1, 1, 2, 2], dtype=np.int64)
        nic = DesHostNic(sim, node=0, col_owner=col_owner,
                         payload_bytes=64, config=CFG, concat_delay=1e-8)
        sink = Store(sim)
        nic.uplink = SerialLink(sim, "up", sink, CFG)
        nic.execute_gather([3, 5])
        sim.run(until=1e-3)
        dests = sorted(p.dst_node for p in sink.items)
        assert dests == [1, 2]

    def test_unwired_nic_raises(self):
        sim = Simulator()
        nic = DesHostNic(sim, node=0,
                         col_owner=np.zeros(4, dtype=np.int64),
                         payload_bytes=64, config=CFG, concat_delay=0.0)
        with pytest.raises(RuntimeError):
            nic.execute_gather([1])

    def test_gather_splits_over_units(self):
        sim = Simulator()
        col_owner = np.ones(100, dtype=np.int64)
        nic = DesHostNic(sim, node=0, col_owner=col_owner,
                         payload_bytes=64, config=CFG, n_client_units=4)
        nic.uplink = SerialLink(sim, "up", Store(sim), CFG)
        events = nic.execute_gather(list(range(8)))
        assert len(events) == 4
