"""Wire-protocol tests: dataclass <-> JSON round-trips, version and
unknown-field tolerance, canonical digests, bit-exact result encoding."""

import dataclasses

import numpy as np
import pytest

from repro.config import NetSparseConfig
from repro.results import CommResult
from repro.service import protocol as proto


def _request(**over):
    base = dict(scheme="netsparse", matrix="arabic", k=16,
                scale_name="tiny", seed=7)
    base.update(over)
    return proto.JobRequest(**base)


# -- round-trips ---------------------------------------------------------


def test_job_request_round_trip():
    jr = _request(config={"n_nodes": 32})
    again = proto.JobRequest.from_dict(proto.loads(proto.dumps(jr)))
    assert again == jr


def test_sweep_request_round_trip():
    sw = proto.SweepRequest(schemes=["netsparse", "suopt"],
                            matrices=["arabic"], ks=[8, 16],
                            scale_name="tiny")
    again = proto.SweepRequest.from_dict(proto.loads(proto.dumps(sw)))
    assert again == sw


def test_job_status_round_trip():
    st = proto.JobStatus(job_id="j1", digest="d" * 64, state="running",
                         created=1.5, describe={"scheme": "netsparse"})
    again = proto.JobStatus.from_dict(proto.loads(proto.dumps(st)))
    assert again == st
    assert not st.terminal
    assert dataclasses.replace(st, state="done").terminal


# -- tolerance and rejection --------------------------------------------


def test_unknown_fields_are_dropped():
    data = _request().to_dict()
    data["some_future_field"] = {"nested": True}
    jr = proto.JobRequest.from_dict(data)
    assert jr == _request()


def test_newer_protocol_version_rejected():
    data = _request().to_dict()
    data["v"] = proto.PROTOCOL_VERSION + 1
    with pytest.raises(proto.ProtocolError) as exc:
        proto.JobRequest.from_dict(data)
    assert exc.value.code == "bad_version"


def test_missing_required_field_rejected():
    with pytest.raises(proto.ProtocolError) as exc:
        proto.JobRequest.from_dict({"scheme": "netsparse", "matrix": "a"})
    assert exc.value.code == "missing_field"


def test_non_object_rejected():
    with pytest.raises(proto.ProtocolError):
        proto.JobRequest.from_dict([1, 2, 3])


def test_bad_json_rejected():
    with pytest.raises(proto.ProtocolError) as exc:
        proto.loads(b"{nope")
    assert exc.value.code == "bad_json"


def test_unknown_config_field_rejected():
    with pytest.raises(proto.ProtocolError) as exc:
        proto.config_from_overrides({"definitely_not_a_knob": 1})
    assert exc.value.code == "bad_config"


def test_unknown_feature_flag_rejected():
    with pytest.raises(proto.ProtocolError) as exc:
        proto.config_from_overrides({"features": {"warp_drive": True}})
    assert exc.value.code == "bad_config"


def test_bad_scheme_maps_to_protocol_error():
    with pytest.raises(proto.ProtocolError) as exc:
        _request(scheme="nope").to_sim_job()
    assert exc.value.code == "bad_job"


# -- canonical digests ---------------------------------------------------


def test_digest_ignores_field_order_and_extras():
    a = proto.JobRequest.from_dict(
        {"scheme": "netsparse", "matrix": "arabic", "k": 16,
         "scale_name": "tiny", "junk": 1})
    b = proto.JobRequest.from_dict(
        {"k": 16, "scale_name": "tiny", "matrix": "arabic",
         "scheme": "netsparse"})
    assert a.to_sim_job().digest() == b.to_sim_job().digest()


def test_config_overrides_change_digest():
    base = _request().to_sim_job().digest()
    other = _request(config={"n_nodes": 32}).to_sim_job().digest()
    assert base != other


def test_config_overrides_apply():
    job = _request(config={"n_nodes": 32,
                           "features": {"property_cache": False}}).to_sim_job()
    assert job.config.n_nodes == 32
    assert job.config.features.property_cache is False
    defaults = NetSparseConfig()
    assert job.config.link_bandwidth == defaults.link_bandwidth


def test_sweep_expand_dedupes():
    sw = proto.SweepRequest(schemes=["netsparse", "netsparse"],
                            matrices=["arabic"], ks=[8, 8, 16])
    jobs = sw.expand()
    assert len(jobs) == 2
    assert {j.k for j in jobs} == {8, 16}


# -- bit-exact result transport -----------------------------------------


def _fake_result():
    rng = np.random.default_rng(3)
    return CommResult(
        scheme="netsparse", matrix_name="arabic", k=16, n_nodes=8,
        total_time=rng.random() * 1e-3,
        per_node_time=rng.random(8),
        recv_wire_bytes=rng.integers(0, 1 << 40, 8),
        sent_wire_bytes=rng.integers(0, 1 << 40, 8),
        useful_payload_bytes=rng.integers(0, 1 << 40, 8),
        link_bandwidth=12.5e9,
        extras={"nested": {"arr": rng.random(3).astype(np.float32),
                           "scalar": np.float64(0.1)}},
    )


def test_result_round_trip_bit_identical():
    res = _fake_result()
    wire = proto.loads(proto.dumps(proto.encode_result(res)))
    back = proto.decode_result(wire)
    assert back.scheme == res.scheme
    assert back.total_time == res.total_time          # exact, not approx
    assert np.array_equal(back.per_node_time, res.per_node_time)
    assert back.per_node_time.dtype == res.per_node_time.dtype
    inner = back.extras["nested"]
    assert np.array_equal(inner["arr"], res.extras["nested"]["arr"])
    assert inner["arr"].dtype == np.float32
    assert inner["scalar"] == 0.1


def test_decode_rejects_non_result():
    with pytest.raises(proto.ProtocolError):
        proto.decode_result({"total_time": 1.0})


def test_job_result_wrapper():
    res = _fake_result()
    jr = proto.JobResult(job_id="j1", digest="d" * 64, elapsed=0.5,
                         result=proto.encode_result(res))
    again = proto.JobResult.from_dict(proto.loads(proto.dumps(jr)))
    assert again.comm_result().total_time == res.total_time
