"""Concurrency hardening tests: cache writers racing ``clear()``,
engine lifecycle (idempotent/concurrent close, leak-free
reconfiguration), and the async submit bridge's coalescing semantics."""

import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

import repro.parallel.engine as engine_mod
from repro.config import NetSparseConfig
from repro.parallel import (
    ExecutionEngine,
    ResultCache,
    SimJob,
    engine_scope,
    get_engine,
    set_engine,
)


def _job(k=8, matrix="arabic"):
    return SimJob(scheme="netsparse", matrix=matrix, k=k,
                  config=NetSparseConfig(), scale_name="tiny")


# -- ResultCache under concurrency --------------------------------------


def test_cache_put_get_clear_stress(tmp_path):
    """Many writers, readers, and clearers on one cache root: no
    exceptions, no torn reads, no leftover temp files."""
    cache = ResultCache(tmp_path)
    digests = [f"{i:02x}" + "ab" * 31 for i in range(16)]
    stop = threading.Event()
    errors = []

    def writer(seed):
        i = seed
        while not stop.is_set():
            d = digests[i % len(digests)]
            try:
                cache.put(d, {"payload": d}, meta={"scheme": "netsparse"},
                          elapsed=0.5)
            except Exception as exc:       # pragma: no cover
                errors.append(("put", exc))
            i += 1

    def reader():
        while not stop.is_set():
            for d in digests:
                try:
                    entry = cache.get(d)
                except Exception as exc:   # pragma: no cover
                    errors.append(("get", exc))
                    continue
                if entry is not None and entry.result != {"payload": d}:
                    errors.append(("torn", d))

    def clearer():
        while not stop.is_set():
            try:
                cache.clear()
            except Exception as exc:       # pragma: no cover
                errors.append(("clear", exc))
            time.sleep(0.002)

    threads = ([threading.Thread(target=writer, args=(i,)) for i in range(4)]
               + [threading.Thread(target=reader) for _ in range(2)]
               + [threading.Thread(target=clearer)])
    for t in threads:
        t.start()
    time.sleep(1.0)
    stop.set()
    for t in threads:
        t.join(10)
        assert not t.is_alive()
    assert errors == []
    cache.clear()
    assert list(tmp_path.glob("*/*.tmp")) == []
    assert list(tmp_path.glob("*/*.pkl")) == []


def test_cache_put_survives_concurrent_rmtree(tmp_path, monkeypatch):
    """A clear() sweeping the shard directory between mkdir and rename
    costs the writer one retry, not an exception."""
    import shutil

    cache = ResultCache(tmp_path)
    digest = "cd" * 32
    shard = tmp_path / digest[:2]
    real_mkstemp = engine_mod.ResultCache  # keep linters quiet
    del real_mkstemp

    original_replace = engine_mod.ResultCache.put.__globals__["os"].replace
    calls = {"n": 0}

    def racing_replace(src, dst):
        if calls["n"] == 0:
            calls["n"] += 1
            shutil.rmtree(shard)           # an external `cache clear`
        return original_replace(src, dst)

    monkeypatch.setattr("repro.parallel.cache.os.replace", racing_replace)
    cache.put(digest, {"ok": 1}, meta={}, elapsed=0.0)
    assert cache.get(digest).result == {"ok": 1}
    assert calls["n"] == 1                 # the race really happened


def test_cache_info_tolerates_disappearing_entries(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put("ef" * 32, {"x": 1}, meta={"scheme": "s"}, elapsed=1.0)
    info = cache.info()
    assert info.n_entries == 1
    assert info.sim_seconds == 1.0


# -- engine lifecycle ----------------------------------------------------


def test_close_idempotent_and_concurrent(tmp_path):
    eng = ExecutionEngine(jobs=2, cache=ResultCache(tmp_path))
    eng.run_jobs([_job(8)])                # spin up state
    with ThreadPoolExecutor(max_workers=8) as pool:
        list(pool.map(lambda _: eng.close(), range(8)))
    eng.close()                            # and once more, re-entrant
    assert eng.describe()["closed"] is True
    # Post-close: sync paths still answer (serially), submit refuses.
    assert eng.run_job(_job(8)) is not None
    with pytest.raises(RuntimeError):
        eng.submit(_job(16))


def test_close_drains_inflight_bridge_work(tmp_path, monkeypatch):
    gate = threading.Event()
    real = engine_mod.timed_execute

    def slow(job):
        gate.wait(30)
        return real(job)

    monkeypatch.setattr(engine_mod, "timed_execute", slow)
    eng = ExecutionEngine(jobs=1, cache=ResultCache(tmp_path))
    handle = eng.submit(_job(9))
    closer = threading.Thread(target=eng.close, daemon=True)
    closer.start()
    time.sleep(0.2)
    assert closer.is_alive()               # close() is waiting, not killing
    gate.set()
    closer.join(30)
    assert not closer.is_alive()
    assert handle.result(5) is not None    # the drained job completed
    assert eng.cache.get(handle.digest) is not None


def test_configure_engine_failure_keeps_previous(tmp_path, monkeypatch):
    from repro.parallel import configure_engine

    previous = get_engine()
    real_init = ResultCache.__init__

    def boom(self, root=None):
        raise OSError("synthetic cache failure")

    monkeypatch.setattr(ResultCache, "__init__", boom)
    with pytest.raises(OSError):
        configure_engine(jobs=2, cache_dir=tmp_path)
    monkeypatch.setattr(ResultCache, "__init__", real_init)
    # The old default engine is still installed and still working.
    assert get_engine() is previous
    assert previous.run_job(_job(8)) is not None


def test_set_engine_swap_is_atomic():
    """Hammer set_engine from many threads: every engine handed in is
    handed back out exactly once (no lost or duplicated references)."""
    sentinel = get_engine()
    engines = [ExecutionEngine() for _ in range(32)]
    returned = []
    lock = threading.Lock()

    def swap(e):
        prev = set_engine(e)
        with lock:
            returned.append(prev)

    threads = [threading.Thread(target=swap, args=(e,)) for e in engines]
    for t in threads:
        t.start()
    for t in threads:
        t.join(10)
    final = set_engine(sentinel)           # restore the default
    with lock:
        returned.append(final)
    # Conservation: {sentinel} + engines == set(returned)
    assert set(map(id, returned)) == {id(sentinel)} | set(map(id, engines))
    assert len(returned) == len(engines) + 1


def test_engine_scope_restores_on_exception():
    before = get_engine()
    inner = ExecutionEngine()
    with pytest.raises(ValueError):
        with engine_scope(inner):
            assert get_engine() is inner
            raise ValueError("boom")
    assert get_engine() is before


# -- async submit bridge -------------------------------------------------


def test_submit_sources_memo_cache_inflight(tmp_path, monkeypatch):
    eng = ExecutionEngine(jobs=1, cache=ResultCache(tmp_path))
    gate = threading.Event()
    real = engine_mod.timed_execute

    def slow(job):
        gate.wait(30)
        return real(job)

    monkeypatch.setattr(engine_mod, "timed_execute", slow)
    first = eng.submit(_job(8))
    assert first.source == "executed"
    dup = eng.submit(_job(8))
    assert dup.source == "inflight"
    assert dup.future is first.future      # literally shared
    assert dup.cancel() is False           # someone else is waiting
    gate.set()
    result = first.result(30)
    assert dup.result(5) is result

    memo = eng.submit(_job(8))
    assert memo.source == "memo" and memo.done()
    eng._memo.clear()                      # force the disk-cache path
    cached = eng.submit(_job(8))
    assert cached.source == "cache" and cached.done()
    assert cached.result().total_time == result.total_time  # same bits
    assert eng.stats.executed == 1
    eng.close()


def test_submit_cancel_queued(tmp_path, monkeypatch):
    gate = threading.Event()
    real = engine_mod.timed_execute

    def slow(job):
        gate.wait(30)
        return real(job)

    monkeypatch.setattr(engine_mod, "timed_execute", slow)
    eng = ExecutionEngine(jobs=1, cache=None)   # one worker: 2nd queues
    running = eng.submit(_job(8))
    queued = eng.submit(_job(16))
    assert queued.cancel() is True
    gate.set()
    assert running.result(30) is not None
    with pytest.raises(Exception):
        queued.result(5)                   # CancelledError
    assert len(eng._inflight) == 0         # cancelled job deregistered
    # A fresh submission of the cancelled digest executes normally.
    redo = eng.submit(_job(16))
    assert redo.source == "executed"
    assert redo.result(30) is not None
    eng.close()


def test_submit_concurrent_same_digest_single_execution(tmp_path,
                                                        monkeypatch):
    executions = []
    real = engine_mod.timed_execute

    def counting(job):
        executions.append(job.digest())
        return real(job)

    monkeypatch.setattr(engine_mod, "timed_execute", counting)
    eng = ExecutionEngine(jobs=4, cache=ResultCache(tmp_path))
    with ThreadPoolExecutor(max_workers=8) as pool:
        handles = list(pool.map(lambda _: eng.submit(_job(8)), range(16)))
    results = {id(h.result(60)) for h in handles}
    assert len(executions) == 1
    assert len(results) == 1               # the one result object, shared
    assert eng.stats.jobs == 16
    assert eng.stats.executed == 1
    eng.close()
