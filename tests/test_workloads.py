"""Tests for repro.workloads: registry, trace-name protocol, generator
determinism, and engine/cache integration of the ``wl:`` names."""

import numpy as np
import pytest

from repro.config import NetSparseConfig
from repro.parallel import ExecutionEngine, ResultCache, SimJob
from repro.sparse.suite import load_benchmark, scale_factor
from repro.workloads import (
    WORKLOADS,
    WorkloadFamily,
    is_workload_trace,
    list_workloads,
    load_workload_trace,
    parse_trace_name,
    register_workload,
    trace_digest,
    workload_trace_name,
)

SCALE = "tiny"
SEED = 7
FAMILIES = ("allreduce_topk", "allreduce_randk", "pagerank",
            "pagerank_dynamic")


class TestRegistry:
    def test_builtin_families_registered(self):
        assert list_workloads() == sorted(FAMILIES)
        kinds = {WORKLOADS[f].kind for f in FAMILIES}
        assert kinds == {"allreduce", "spmv"}

    def test_duplicate_registration_rejected(self):
        family = WORKLOADS["pagerank"]
        with pytest.raises(ValueError, match="duplicate"):
            register_workload(family)

    def test_reserved_characters_rejected(self):
        bad = WorkloadFamily(name="a:b", kind="spmv", description="",
                             generator=lambda **kw: None)
        with pytest.raises(ValueError, match="must not contain"):
            register_workload(bad)


class TestTraceNames:
    def test_roundtrip(self):
        name = workload_trace_name("pagerank", 3)
        assert name == "wl:pagerank:r3"
        assert is_workload_trace(name)
        assert parse_trace_name(name) == ("pagerank", 3)

    def test_malformed_names(self):
        for bad in ("pagerank", "wl:pagerank", "wl:pagerank:rX",
                    "wl:pagerank:3"):
            with pytest.raises(ValueError):
                parse_trace_name(bad)

    def test_unknown_family_is_keyerror(self):
        with pytest.raises(KeyError, match="available"):
            parse_trace_name("wl:nosuch:r0")
        with pytest.raises(KeyError):
            trace_digest("nosuch", SCALE)

    def test_benchmark_names_unaffected(self):
        assert not is_workload_trace("arabic")
        mat = load_benchmark("queen", SCALE, seed=SEED)
        assert mat.name == "queen"


class TestDispatch:
    """``wl:`` names resolve through the benchmark front door."""

    def test_load_benchmark_routes_to_workloads(self):
        name = workload_trace_name("allreduce_topk", 0)
        via_suite = load_benchmark(name, SCALE, seed=SEED)
        direct = load_workload_trace(name, SCALE, SEED)
        assert via_suite is direct  # same memoized object
        assert via_suite.name == name

    def test_scale_factor_routes_to_workloads(self):
        name = workload_trace_name("pagerank", 0)
        mat = load_benchmark(name, SCALE, seed=SEED)
        sc = scale_factor(name, mat)
        assert sc == mat.nnz / (WORKLOADS["pagerank"].paper_nnz_m * 1e6)
        assert 0 < sc < 1

    def test_round_names(self):
        names = WORKLOADS["pagerank"].round_names(3)
        assert names == ["wl:pagerank:r0", "wl:pagerank:r1",
                         "wl:pagerank:r2"]


class TestDeterminism:
    @pytest.mark.parametrize("family", FAMILIES)
    def test_fresh_regeneration_is_digest_identical(self, family):
        cached = trace_digest(family, SCALE, SEED, round_idx=1)
        fresh = trace_digest(family, SCALE, SEED, round_idx=1, fresh=True)
        again = trace_digest(family, SCALE, SEED, round_idx=1, fresh=True)
        assert cached == fresh == again

    @pytest.mark.parametrize("family", FAMILIES)
    def test_rounds_differ(self, family):
        digests = [trace_digest(family, SCALE, SEED, round_idx=r)
                   for r in range(3)]
        assert len(set(digests)) == 3

    def test_seeds_differ(self):
        assert (trace_digest("allreduce_topk", SCALE, seed=7)
                != trace_digest("allreduce_topk", SCALE, seed=8))

    def test_families_do_not_share_streams(self):
        a = load_workload_trace("wl:allreduce_topk:r0", SCALE, SEED)
        b = load_workload_trace("wl:allreduce_randk:r0", SCALE, SEED)
        assert a.structural_digest() != b.structural_digest()


class TestWorkloadShapes:
    def test_topk_reuses_support_across_rounds(self):
        """Persistent hot coordinates: a worker's top-k support repeats
        across rounds far more than its random-k support (which is
        redrawn uniformly every step)."""

        def overlap(family):
            def nz(r):
                mat = load_workload_trace(f"wl:{family}:r{r}", SCALE, SEED)
                return np.unique(mat.rows.astype(np.int64) * mat.n_cols
                                 + mat.cols)

            r0, r1 = nz(0), nz(1)
            return (np.intersect1d(r0, r1, assume_unique=True).size
                    / min(r0.size, r1.size))

        assert overlap("allreduce_topk") > 2 * overlap("allreduce_randk")

    def test_pagerank_frontiers_are_nested(self):
        supports = [
            set(load_workload_trace(f"wl:pagerank:r{r}", SCALE, SEED)
                .rows.tolist())
            for r in range(3)
        ]
        assert supports[2] <= supports[1] <= supports[0]
        assert len(supports[2]) < len(supports[0])

    def test_dynamic_mode_churns_every_round(self):
        rows = [
            set(load_workload_trace(
                f"wl:pagerank_dynamic:r{r}", SCALE, SEED).rows.tolist())
            for r in (1, 2)
        ]
        assert rows[0] != rows[1]
        assert rows[1] - rows[0]  # genuinely new rows, not just shrinkage

    @pytest.mark.parametrize("family", FAMILIES)
    def test_traces_are_square_and_in_range(self, family):
        mat = load_workload_trace(f"wl:{family}:r0", SCALE, SEED)
        assert mat.n_rows == mat.n_cols
        assert mat.nnz > 0
        assert mat.cols.max() < mat.n_cols and mat.rows.max() < mat.n_rows


def _round_jobs(family, rounds=2, schemes=("netsparse", "saopt", "suopt")):
    cfg = NetSparseConfig()
    batch = WORKLOADS[family].default_rig_batch
    return [
        SimJob(scheme=s, matrix=workload_trace_name(family, r), k=1,
               config=cfg, scale_name=SCALE, seed=SEED,
               rig_batch=batch if s == "netsparse" else None)
        for r in range(rounds) for s in schemes
    ]


class TestEngineIntegration:
    @pytest.mark.parametrize("family", ("allreduce_topk", "pagerank"))
    def test_all_schemes_execute(self, family):
        with ExecutionEngine() as eng:
            ns, sa, su = eng.run_jobs(_round_jobs(family, rounds=1))
        assert 0 < ns.total_time < sa.total_time
        assert su.total_time > 0

    @pytest.mark.parametrize("family", ("allreduce_topk", "pagerank_dynamic"))
    def test_parallel_fanout_is_bit_identical(self, family, tmp_path):
        jobs = _round_jobs(family)
        with ExecutionEngine(jobs=1) as eng:
            serial = eng.run_jobs(jobs)
        with ExecutionEngine(jobs=2, cache=ResultCache(tmp_path)) as eng:
            fanned = eng.run_jobs(jobs)
        for a, b in zip(serial, fanned):
            assert a.total_time == b.total_time
            np.testing.assert_array_equal(a.per_node_time, b.per_node_time)

    def test_result_cache_replays_workload_jobs(self, tmp_path):
        jobs = _round_jobs("allreduce_randk")
        cache = ResultCache(tmp_path)
        with ExecutionEngine(cache=cache) as eng:
            first = eng.run_jobs(jobs)
            assert eng.stats.executed == len(jobs)
        with ExecutionEngine(cache=ResultCache(tmp_path)) as eng:
            second = eng.run_jobs(jobs)
            assert eng.stats.cache_hits == len(jobs)
        for a, b in zip(first, second):
            assert a.total_time == b.total_time

    def test_round_digests_separate_cache_entries(self):
        cfg = NetSparseConfig()
        a = SimJob(scheme="suopt", matrix="wl:pagerank:r0", k=1,
                   config=cfg, scale_name=SCALE, seed=SEED)
        b = SimJob(scheme="suopt", matrix="wl:pagerank:r1", k=1,
                   config=cfg, scale_name=SCALE, seed=SEED)
        assert a.digest() != b.digest()
