"""Packet-level network DES tests, including flow-model cross-validation."""

import numpy as np
import pytest

from repro.network import LeafSpine, flow_completion_time
from repro.network.packetsim import Packet, PacketNetwork
from repro.network.topology import LINK_BANDWIDTH_BYTES
from repro.sim import Simulator


def make_net(queue_packets=64, **kw):
    sim = Simulator()
    topo = LeafSpine(n_racks=2, nodes_per_rack=2, n_spines=1)
    net = PacketNetwork(sim, topo, queue_packets=queue_packets, **kw)
    return sim, topo, net


def test_single_packet_delivery_latency():
    sim, topo, net = make_net()
    pkt = Packet(src=0, dst=3, size_bytes=1500)
    sim.process(net.inject(pkt))
    sim.run()
    assert net.stats_delivered == 1
    hops = topo.hop_count(0, 3)
    wire = hops * 1500 / LINK_BANDWIDTH_BYTES
    assert pkt.latency == pytest.approx(wire + topo.one_way_latency(0, 3))


def test_self_packet_immediate():
    sim, topo, net = make_net()
    pkt = Packet(src=1, dst=1, size_bytes=100)
    sim.process(net.inject(pkt))
    sim.run()
    assert pkt.latency == 0.0
    assert len(net.rx[1]) == 1


def test_fifo_on_shared_link():
    sim, topo, net = make_net()
    pkts = [Packet(src=0, dst=1, size_bytes=1500) for _ in range(10)]

    def sender():
        for p in pkts:
            yield from net.inject(p)

    sim.process(sender())
    sim.run()
    deliveries = [p.delivered_at for p in pkts]
    assert deliveries == sorted(deliveries)
    assert net.stats_delivered == 10


def test_backpressure_blocks_injection():
    sim, topo, net = make_net(queue_packets=1)
    inject_times = []

    def sender():
        for _ in range(5):
            p = Packet(src=0, dst=3, size_bytes=15_000_000)  # 300us wire each
            yield from net.inject(p)
            inject_times.append(sim.now)

    sim.process(sender())
    sim.run()
    # With a 1-packet queue the 3rd+ injections must wait for drain.
    assert inject_times[0] == 0.0
    assert inject_times[-1] > inject_times[0]
    assert net.stats_delivered == 5


def test_switch_hook_consumes_packet():
    consumed = []

    def hook(pkt, link_id):
        if pkt.payload == "eat me":
            consumed.append(pkt)
            return None
        return pkt

    sim, topo, net = make_net(switch_hook=hook)
    p1 = Packet(src=0, dst=3, size_bytes=100, payload="eat me")
    p2 = Packet(src=0, dst=3, size_bytes=100, payload="pass")
    sim.process(net.inject(p1))
    sim.process(net.inject(p2))
    sim.run()
    assert len(consumed) >= 1
    assert net.stats_delivered == 1


def test_never_dropping_hook_is_bit_identical_to_no_hook():
    """The lossless default must be exactly the historical behaviour;
    a hook that never fires must not perturb timing either."""

    def run(**kw):
        sim, topo, net = make_net(**kw)
        pkts = [Packet(src=0, dst=3, size_bytes=1500) for _ in range(8)]

        def sender():
            for p in pkts:
                yield from net.inject(p)

        sim.process(sender())
        sim.run()
        return [p.latency for p in pkts], net

    base_lat, base_net = run()
    hook_lat, hook_net = run(drop_hook=lambda pkt, link_id: False)
    assert hook_lat == base_lat  # bitwise-identical floats
    assert hook_net.stats_dropped == 0
    assert hook_net.stats_delivered == base_net.stats_delivered
    assert hook_net.stats_bytes == base_net.stats_bytes


def test_drop_hook_discards_and_counts():
    dropped_ids = set()

    def drop_every_third(pkt, link_id):
        if pkt.packet_id % 3 == 0 and pkt.delivered_at == 0.0:
            dropped_ids.add(pkt.packet_id)
            return True
        return False

    sim, topo, net = make_net(drop_hook=drop_every_third)
    pkts = [Packet(src=0, dst=3, size_bytes=1500) for _ in range(9)]

    def sender():
        for p in pkts:
            yield from net.inject(p)

    sim.process(sender())
    sim.run()
    assert net.stats_dropped == len(dropped_ids) > 0
    assert net.stats_delivered == len(pkts) - len(dropped_ids)
    for p in pkts:
        delivered = p.delivered_at > 0.0
        assert delivered == (p.packet_id not in dropped_ids)


def test_packetsim_agrees_with_flowmodel_on_incast():
    """Cross-validation: DES completion time matches the analytic flow
    model within 15% for an incast pattern (the flow model ignores
    store-and-forward pipelining, hence the tolerance)."""
    sim = Simulator()
    topo = LeafSpine(n_racks=2, nodes_per_rack=4, n_spines=2)
    net = PacketNetwork(sim, topo, queue_packets=256)
    n = topo.n_nodes
    mtu, per_sender = 1500, 200
    tm = np.zeros((n, n))
    done = []

    def sender(src):
        for _ in range(per_sender):
            yield from net.inject(Packet(src=src, dst=0, size_bytes=mtu))

    for s in range(1, n):
        tm[s, 0] = per_sender * mtu
        sim.process(sender(s))

    def sink():
        total = per_sender * (n - 1)
        for _ in range(total):
            yield net.rx[0].get()
        done.append(sim.now)

    sim.process(sink())
    sim.run()
    analytic = flow_completion_time(topo, tm).total_time
    assert done, "sink never finished"
    assert done[0] == pytest.approx(analytic, rel=0.15)
