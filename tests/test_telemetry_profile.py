"""`netsparse profile` / `netsparse version`: CLI regression coverage.

The profile regression pins the ISSUE's acceptance scenario: profiling
table7 at tiny scale must light up the filter/coalesce/cache counters
(including the arabic-labelled siblings) and write all three artifact
files.
"""

import json

import pytest

from repro import telemetry
from repro.cli import main
from repro.telemetry import load_chrome_trace
from repro.telemetry.profile import profile_experiment


@pytest.fixture(autouse=True)
def _telemetry_off():
    telemetry.disable()
    yield
    telemetry.disable()


@pytest.fixture(scope="module")
def table7_profile(tmp_path_factory):
    """One shared tiny table7 profile run (the expensive part)."""
    out = tmp_path_factory.mktemp("prof")
    telemetry.disable()
    prof = profile_experiment("table7", scale="tiny", out_dir=str(out))
    telemetry.disable()
    return prof


class TestProfileRegression:
    def test_pipeline_counters_nonzero(self, table7_profile):
        counters = {k: c.value
                    for k, c in table7_profile.registry.counters.items()}
        for name in ("cluster.filter.candidates", "cluster.filter.drops",
                     "cluster.filter.coalesced", "cluster.filter.issued",
                     "pcache.lookups", "pcache.hits", "concat.packets",
                     "engine.jobs", "engine.executed"):
            assert counters.get(name, 0) > 0, f"dead counter: {name}"
        # drops < candidates, hits <= lookups: basic sanity of the stages.
        assert counters["cluster.filter.drops"] < \
            counters["cluster.filter.candidates"]
        assert counters["pcache.hits"] <= counters["pcache.lookups"]

    def test_arabic_labelled_counters_nonzero(self, table7_profile):
        counters = {k: c.value
                    for k, c in table7_profile.registry.counters.items()}
        for name in ("cluster.filter.drops{matrix=arabic}",
                     "cluster.filter.coalesced{matrix=arabic}",
                     "pcache.hits{matrix=arabic}"):
            assert counters.get(name, 0) > 0, f"dead counter: {name}"

    def test_stage_spans_recorded(self, table7_profile):
        wall = table7_profile.registry.span_totals("wall")
        for name in ("cluster.stage.filter", "cluster.stage.cache",
                     "cluster.stage.respond", "cluster.stage.timing",
                     "engine.job", "profile.table7"):
            assert name in wall, f"missing span: {name}"
            assert wall[name][1] >= 0

    def test_artifacts_written_and_loadable(self, table7_profile):
        prof = table7_profile
        data = json.load(open(prof.json_path))
        assert data["schema"] == "repro.telemetry/v1"
        assert data["meta"]["experiment"] == "table7"
        assert data["counters"]["cluster.filter.issued"] > 0

        events = load_chrome_trace(prof.trace_path)
        span_names = {e["name"] for e in events if "duration" in e}
        assert "cluster.stage.filter" in span_names

        header, *rows = open(prof.csv_path).read().splitlines()
        assert header == "metric,kind,field,value"
        assert len(rows) > 10

    def test_table_matches_untelemetered_run(self, table7_profile):
        """Telemetry must observe, never perturb: the profiled table
        equals the plain run's table."""
        from repro.experiments import run_experiment

        assert telemetry.active() is None
        plain = run_experiment("table7", scale="tiny")
        assert table7_profile.table.columns == plain.columns
        assert table7_profile.table.rows == plain.rows

    def test_unknown_experiment_raises(self, tmp_path):
        with pytest.raises(KeyError):
            profile_experiment("nonesuch", scale="tiny",
                               out_dir=str(tmp_path))


class TestProfileCli:
    def test_profile_smoke_exits_zero(self, tmp_path, capsys):
        rc = main(["profile", "--smoke", "-o", str(tmp_path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "[smoke] telemetry instrumentation live" in out
        assert (tmp_path / "profile_table7_tiny.json").exists()
        assert (tmp_path / "profile_table7_tiny.trace.json").exists()
        assert (tmp_path / "profile_table7_tiny.csv").exists()

    def test_profile_unknown_experiment_fails(self, tmp_path, capsys):
        rc = main(["profile", "nonesuch", "--scale", "tiny",
                   "-o", str(tmp_path)])
        assert rc == 1

    def test_profile_leaves_telemetry_disabled(self, tmp_path):
        main(["profile", "--smoke", "-o", str(tmp_path)])
        assert telemetry.active() is None


class TestVersion:
    def test_version_flag(self, capsys):
        import repro

        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert f"netsparse {repro.__version__}" in capsys.readouterr().out

    def test_version_subcommand(self, capsys):
        import repro

        assert main(["version"]) == 0
        assert f"netsparse {repro.__version__}" in capsys.readouterr().out

    def test_version_is_nonempty_string(self):
        import repro

        assert isinstance(repro.__version__, str) and repro.__version__
