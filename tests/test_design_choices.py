"""Tests for the design-choice ablations: cache replacement policies,
RIG scheduling policies, and the Idx Filter capacity math."""

import numpy as np
import pytest

from repro.config import NetSparseConfig
from repro.core.pcache import PropertyCache
from repro.core.rig import rig_generation_time


class TestCachePolicies:
    def run_policy(self, policy, idxs, ways=4, capacity=4 * 64):
        cache = PropertyCache(capacity_bytes=capacity, ways=ways,
                              policy=policy)
        cache.configure(64)
        hits = 0
        for idx in idxs:
            if cache.lookup(idx):
                hits += 1
            else:
                cache.insert(idx)
        return hits

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            PropertyCache(policy="mru")

    def test_all_policies_agree_without_evictions(self):
        idxs = [1, 2, 3, 1, 2, 3]
        results = {
            p: self.run_policy(p, idxs, ways=8, capacity=8 * 64)
            for p in PropertyCache.POLICIES
        }
        assert len(set(results.values())) == 1
        assert results["lru"] == 3

    def test_lru_beats_fifo_on_skewed_reuse(self):
        """A hot idx re-referenced between cold streams survives under
        LRU but ages out under FIFO."""
        rng = np.random.default_rng(0)
        idxs = []
        for i in range(400):
            idxs.append(0)                      # the hot property
            idxs.extend(rng.integers(1, 40, size=3).tolist())
        lru = self.run_policy("lru", idxs)
        fifo = self.run_policy("fifo", idxs)
        assert lru > fifo

    def test_random_policy_deterministic(self):
        rng = np.random.default_rng(1)
        idxs = rng.integers(0, 50, size=500).tolist()
        a = self.run_policy("random", idxs)
        b = self.run_policy("random", idxs)
        assert a == b

    def test_policies_all_functional_under_pressure(self):
        rng = np.random.default_rng(2)
        idxs = rng.integers(0, 100, size=1000).tolist()
        for policy in PropertyCache.POLICIES:
            hits = self.run_policy(policy, idxs)
            assert 0 < hits < len(idxs)


class TestRigSchedulingPolicy:
    def test_round_robin_matches_least_loaded_on_uniform_batches(self):
        # Equal-size batches: both policies interleave identically.
        ll = rig_generation_time(16 * 1024, 4, 1024, policy="least_loaded")
        rr = rig_generation_time(16 * 1024, 4, 1024, policy="round_robin")
        assert rr == pytest.approx(ll, rel=1e-9)

    def test_least_loaded_never_worse(self):
        for n in (10_000, 100_000, 1_000_000):
            for batch in (512, 4096, 65536):
                ll = rig_generation_time(n, 16, batch,
                                         policy="least_loaded")
                rr = rig_generation_time(n, 16, batch,
                                         policy="round_robin")
                assert ll <= rr * (1 + 1e-12)

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            rig_generation_time(10, 2, 5, policy="random")


class TestIdxFilterSizing:
    def test_one_bit_per_column(self):
        cfg = NetSparseConfig()
        assert cfg.idx_filter_bytes(8) == 1
        assert cfg.idx_filter_bytes(9) == 2
        assert cfg.idx_filter_bytes(0) == 0

    def test_paper_claim_100_billion_columns(self):
        """§5.2: 16 GB of SNIC DRAM fits filters for matrices with
        ~100 billion columns."""
        cfg = NetSparseConfig()
        assert cfg.idx_filter_max_columns() >= 100e9
        assert cfg.idx_filter_bytes(int(100e9)) <= 16 * 1024**3

    def test_validation(self):
        with pytest.raises(ValueError):
            NetSparseConfig().idx_filter_bytes(-1)
