"""Tests for the SUOpt / SAOpt / vanilla-SA baselines."""

import pytest

from repro.baselines import (
    saopt_goodput_curve,
    simulate_saopt,
    simulate_suopt,
    vanilla_sa_transfer,
)
from repro.baselines.saopt import saopt_pr_counts
from repro.baselines.software import per_core_payload_rate
from repro.config import NetSparseConfig
from repro.sparse.suite import load_benchmark

CFG16 = NetSparseConfig(n_nodes=16, n_racks=4, nodes_per_rack=4)


@pytest.fixture(scope="module")
def arabic():
    return load_benchmark("arabic", "tiny")


@pytest.fixture(scope="module")
def europe():
    return load_benchmark("europe", "tiny")


class TestSuopt:
    def test_receive_everything_not_owned(self, arabic):
        res = simulate_suopt(arabic, 16, CFG16)
        payload = 64
        # Every node receives all columns it does not own.
        n_cols = arabic.n_cols
        own = n_cols // 16
        assert res.recv_wire_bytes[0] == pytest.approx(
            (n_cols - own) * payload, rel=0.01
        )

    def test_time_is_line_rate_bound(self, arabic):
        res = simulate_suopt(arabic, 16, CFG16)
        expected = res.recv_wire_bytes.max() / CFG16.link_bandwidth
        assert res.total_time == pytest.approx(expected)

    def test_goodput_is_tiny(self, arabic):
        """SU moves the whole array; useful fraction is tiny (Table 1)."""
        res = simulate_suopt(arabic, 16, CFG16)
        assert res.useful_payload_bytes.sum() < 0.15 * res.recv_wire_bytes.sum()

    def test_k_scaling(self, arabic):
        r1 = simulate_suopt(arabic, 1, CFG16)
        r128 = simulate_suopt(arabic, 128, CFG16)
        assert r128.total_time == pytest.approx(128 * r1.total_time)


class TestSaopt:
    def test_pr_counts_shapes(self, arabic):
        sent, served, part = saopt_pr_counts(arabic, CFG16)
        assert sent.shape == (16, CFG16.host_cores)
        assert served.shape == (16, CFG16.host_cores)
        # Conservation: every sent PR is served somewhere.
        assert sent.sum() == served.sum()

    def test_per_rank_filtering_weaker_than_global(self, arabic):
        """Per-rank dedup keeps cross-rank duplicates: total sent PRs
        exceed the node-global unique count (the paper's -#PR gap)."""
        sent, _, part = saopt_pr_counts(arabic, CFG16)
        global_unique = sum(
            t.unique_remote_count() for t in part.node_traces()
        )
        assert sent.sum() >= global_unique

    def test_time_scales_with_software_cost(self, arabic):
        fast = simulate_saopt(arabic, 16, CFG16)
        slow_cfg = NetSparseConfig(
            n_nodes=16, n_racks=4, nodes_per_rack=4,
            sw_pr_cost_fixed=CFG16.sw_pr_cost_fixed * 10,
            sw_pr_cost_per_byte=CFG16.sw_pr_cost_per_byte * 10,
        )
        slow = simulate_saopt(arabic, 16, slow_cfg)
        assert slow.total_time > 5 * fast.total_time

    def test_scale_validation(self, arabic):
        with pytest.raises(ValueError):
            simulate_saopt(arabic, 16, CFG16, scale=-1.0)

    def test_europe_has_few_duplicates(self, europe):
        res = simulate_saopt(europe, 16, CFG16)
        # Nearly no reuse: sent PRs ~ candidates.
        assert res.n_prs_issued >= 0.9 * res.n_pr_candidates


class TestVanillaSa:
    def test_transfer_rate_positive(self, arabic):
        res = vanilla_sa_transfer(arabic, k=32, n_nodes=2)
        assert res.transfer_rate_gbps > 0
        assert 0 < res.goodput < res.line_utilization < 1

    def test_low_line_utilization(self, arabic):
        """The motivation claim: vanilla SA utilizes <5% of the line."""
        res = vanilla_sa_transfer(arabic, k=32, n_nodes=2)
        assert res.line_utilization < 0.05

    def test_europe_slower_than_webcrawl(self, arabic, europe):
        """Mostly-local matrices waste scan time per byte moved."""
        ra = vanilla_sa_transfer(arabic, k=32, n_nodes=2)
        re = vanilla_sa_transfer(europe, k=32, n_nodes=2)
        assert re.transfer_rate_bytes < ra.transfer_rate_bytes


class TestSoftwareModel:
    def test_per_core_rate_increases_with_k(self):
        assert per_core_payload_rate(128) > per_core_payload_rate(1)

    def test_goodput_curve_linear_then_saturates(self):
        curve = saopt_goodput_curve([1, 2, 4, 8, 16, 32, 64], k=16)
        goodputs = [g for _, g in curve]
        assert goodputs == sorted(goodputs)
        # Linear region: 2 cores = 2x of 1 core.
        assert goodputs[1] == pytest.approx(2 * goodputs[0], rel=1e-9)
        assert goodputs[-1] <= 1.0

    def test_calibration_lands_near_paper(self):
        """64 cores at K=16 should reach ~10% goodput, K=128 ~40%
        (§8.1 / Figure 10 / Table 7's SAOpt goodput column)."""
        (_, g16), = saopt_goodput_curve([64], k=16)
        (_, g128), = saopt_goodput_curve([64], k=128)
        assert 0.05 < g16 < 0.2
        assert 0.25 < g128 < 0.6

    def test_curve_validates_cores(self):
        with pytest.raises(ValueError):
            saopt_goodput_curve([0], k=16)
