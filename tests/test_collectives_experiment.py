"""Tests for the collectives experiments, the DES round driver, and the
``netsparse collectives`` CLI."""

import json

import pytest

from repro.cli import main
from repro.dessim import run_des_rounds
from repro.experiments import EXPERIMENTS
from repro.experiments.collectives import (
    collectives_report,
    run_collectives,
    run_collectives_des,
)
from repro.parallel import ExecutionEngine, engine_scope, get_engine, set_engine
from repro.workloads import WORKLOADS, load_workload_trace

SEED = 7


def _traces(family, n_rounds):
    return [load_workload_trace(name, "tiny", SEED)
            for name in WORKLOADS[family].round_names(n_rounds)]


class TestDesRounds:
    @pytest.fixture(scope="class")
    def sweeps(self):
        traces = _traces("allreduce_topk", 2)
        return (run_des_rounds(traces, k=1, keep_cache=False),
                run_des_rounds(traces, k=1, keep_cache=True))

    def test_one_result_per_round(self, sweeps):
        flush, keep = sweeps
        assert len(flush) == len(keep) == 2

    def test_persistent_cache_never_changes_delivery(self, sweeps):
        flush, keep = sweeps
        for f, k in zip(flush, keep):
            assert f.received == k.received

    def test_persistent_cache_raises_reuse_round_hits(self, sweeps):
        flush, keep = sweeps
        assert (keep[1].extras["round_cache"]["hit_rate"]
                > flush[1].extras["round_cache"]["hit_rate"])
        # Round 0 starts cold either way.
        assert (keep[0].extras["round_cache"]["hits"]
                == flush[0].extras["round_cache"]["hits"])

    def test_round_cache_stats_are_deltas(self, sweeps):
        _, keep = sweeps
        for r in keep:
            rc = r.extras["round_cache"]
            assert 0 <= rc["hits"] <= rc["lookups"]

    def test_empty_and_mismatched_rounds_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            run_des_rounds([], k=1)
        a = load_workload_trace("wl:pagerank:r0", "tiny", SEED)
        from repro.sparse.matrix import COOMatrix

        smaller = COOMatrix(a.n_rows // 2, a.n_cols // 2,
                            a.rows[:4] % (a.n_rows // 2),
                            a.cols[:4] % (a.n_cols // 2), None, "half")
        with pytest.raises(ValueError, match="share dimensions"):
            run_des_rounds([a, smaller], k=1)


class TestCollectivesExperiment:
    @pytest.fixture(scope="class")
    def table(self):
        with engine_scope(ExecutionEngine()):
            return run_collectives(
                scale="tiny",
                families=("allreduce_topk", "pagerank_dynamic"),
                n_rounds=2,
            )

    def test_registered(self):
        assert "collectives" in EXPERIMENTS
        assert "collectives_des" in EXPERIMENTS

    def test_table_shape(self, table):
        assert table.exp_id == "collectives"
        assert table.column("workload") == ["allreduce_topk",
                                            "pagerank_dynamic"]
        assert set(table.column("kind")) == {"allreduce", "spmv"}
        assert table.column("rounds") == [2, 2]

    def test_netsparse_ahead_of_baselines(self, table):
        assert all(x > 1.0 for x in table.column("NS/SUOpt x"))
        assert all(x > 1.0 for x in table.column("NS/SAOpt x"))

    def test_resampled_family_churns_more_than_topk(self, table):
        churn = dict(zip(table.column("workload"), table.column("churn %")))
        assert churn["pagerank_dynamic"] >= 0.0
        assert all(0.0 <= c <= 100.0 for c in churn.values())

    def test_report_renders_both_tables(self, table):
        des = run_collectives_des(families=("allreduce_topk",), n_rounds=2)
        md = collectives_report(table, des)
        assert md.startswith("# Sparse ML collective workloads")
        assert "| workload |" in md
        assert "keep hit %" in md
        assert "Best analytic speedup" in md

    def test_des_experiment_keep_beats_flush(self):
        des = run_collectives_des(families=("pagerank",), n_rounds=2)
        row = des.row_by("workload", "pagerank")
        flush_pct = row[des.columns.index("flush hit %")]
        keep_pct = row[des.columns.index("keep hit %")]
        assert keep_pct >= flush_pct


class TestCollectivesCli:
    def test_smoke_writes_artifacts_and_passes(self, tmp_path, capsys):
        previous = set_engine(None)
        try:
            rc = main(["collectives", "--smoke", "-o", str(tmp_path)])
        finally:
            get_engine().close()
            set_engine(previous)
        out = capsys.readouterr().out
        assert rc == 0
        assert "[smoke] both families ran on both substrates" in out
        md = tmp_path / "collectives_tiny.md"
        metrics = tmp_path / "collectives_tiny.metrics.json"
        assert md.exists() and metrics.exists()
        text = md.read_text()
        assert "Sparse ML collective workloads" in text
        assert "allreduce_topk" in text and "pagerank" in text
        dumped = json.loads(metrics.read_text())
        counters = dumped.get("counters", {})
        assert counters.get("pcache.lookups", 0) > 0
        assert counters.get("dessim.prs.issued", 0) > 0
