"""Golden-equivalence suite: fast kernels vs their reference backends.

The fast kernels (`repro.core.pcache_fast`, the vectorized paths in
`repro.core.rig` / `repro.core.concat`) claim *bit-identical* results
to the original per-element Python implementations, which remain
selectable via ``REPRO_KERNELS=reference``.  This suite is the claim's
enforcement: sweeps over seeds, cache geometries (ways / segments /
delay), concat windows and RIG shapes, plus whole-model runs, assert
exact equality — never approximate.
"""

import dataclasses
import os

import numpy as np
import pytest

from repro.cluster import build_cluster_topology, simulate_netsparse
from repro.cluster.model import DelayedInsertCache
from repro.config import NetSparseConfig
from repro.core import kernels
from repro.core.concat import (
    _window_concat_fast,
    _window_concat_reference,
    window_concat,
)
from repro.core.pcache import PropertyCache, n_sets_for
from repro.core.pcache_fast import delayed_cache_hits, property_cache_hits
from repro.core.rig import rig_generation_time
from repro.partition import (
    TraceCache,
    balanced_by_nnz,
    cached_partition,
    get_trace_cache,
    set_trace_cache,
)
from repro.partition.oned import OneDPartition
from repro.sim import Simulator
from repro.sparse.matrix import COOMatrix
from repro.sparse.suite import load_benchmark


# ---------------------------------------------------------------------
# backend switch
# ---------------------------------------------------------------------


# The suite must pass under either backend (the CI matrix runs a
# REPRO_KERNELS=reference leg), so the expected default is whatever the
# environment selected — "fast" when unset.
_ENV_BACKEND = os.environ.get("REPRO_KERNELS", "fast")


class TestBackendSwitch:
    def test_default_tracks_environment(self):
        assert kernels.get_backend() in kernels.BACKENDS
        assert kernels.get_backend() == _ENV_BACKEND
        # "pool" still runs the fast kernels — only fanned out.
        assert kernels.is_fast() == (_ENV_BACKEND != "reference")
        assert kernels.is_pool() == (_ENV_BACKEND == "pool")

    def test_set_backend_returns_previous(self):
        other = "reference" if _ENV_BACKEND == "fast" else "fast"
        prev = kernels.set_backend(other)
        try:
            assert prev == _ENV_BACKEND
            assert kernels.get_backend() == other
            assert kernels.is_fast() == (other == "fast")
        finally:
            kernels.set_backend(prev)
        assert kernels.get_backend() == _ENV_BACKEND

    def test_pool_backend_is_fast(self):
        with kernels.use_backend("pool"):
            assert kernels.is_fast()
            assert kernels.is_pool()
        assert kernels.get_backend() == _ENV_BACKEND

    def test_use_backend_restores_on_error(self):
        other = "reference" if _ENV_BACKEND == "fast" else "fast"
        with pytest.raises(RuntimeError):
            with kernels.use_backend(other):
                assert kernels.get_backend() == other
                raise RuntimeError("boom")
        assert kernels.get_backend() == _ENV_BACKEND

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            kernels.set_backend("cuda")
        with pytest.raises(ValueError):
            with kernels.use_backend(""):
                pass  # pragma: no cover


# ---------------------------------------------------------------------
# delayed-insert Property Cache
# ---------------------------------------------------------------------


def reference_cache_hits(idxs, n_sets, ways, delay, policy="lru"):
    """The executable spec: PropertyCache driven by DelayedInsertCache."""
    # Default geometry: 16-byte properties occupy one 16-byte segment,
    # so capacity = n_sets * ways * 16 configures exactly n_sets sets.
    pc = PropertyCache(
        capacity_bytes=n_sets * ways * 16, ways=ways, policy=policy
    )
    pc.configure(16)
    assert pc.n_sets == n_sets
    hits = DelayedInsertCache(pc, delay).process(np.asarray(idxs))
    return hits, pc.stats


class TestPcacheGolden:
    @pytest.mark.parametrize("policy", PropertyCache.POLICIES)
    @pytest.mark.parametrize(
        "n_sets,ways", [(0, 1), (1, 1), (1, 2), (3, 2), (10, 4), (64, 16)]
    )
    @pytest.mark.parametrize("delay", [0, 1, 7, 150, 10**6])
    def test_hit_sequence_and_stats_match(self, policy, n_sets, ways, delay):
        seed = (
            n_sets * 7919
            + ways * 131
            + min(delay, 997)
            + PropertyCache.POLICIES.index(policy)
        )
        rng = np.random.default_rng(seed)
        space = max(4 * max(n_sets, 1) * ways, 8)
        for stream in (
            rng.integers(0, space, size=500),          # uniform
            rng.zipf(1.5, size=500) % space,           # skewed: real hits
            np.zeros(64, dtype=np.int64),              # pathological dupes
        ):
            fast_hits, fast_stats = delayed_cache_hits(
                stream, n_sets, ways, delay, policy=policy
            )
            ref_hits, ref_stats = reference_cache_hits(
                stream, n_sets, ways, delay, policy=policy
            )
            np.testing.assert_array_equal(fast_hits, ref_hits)
            assert fast_stats == ref_stats

    def test_empty_stream(self):
        fast_hits, fast_stats = delayed_cache_hits(
            np.array([], dtype=np.int64), 4, 2, 3
        )
        ref_hits, ref_stats = reference_cache_hits(
            np.array([], dtype=np.int64), 4, 2, 3
        )
        assert fast_hits.size == ref_hits.size == 0
        assert fast_stats == ref_stats

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            delayed_cache_hits(np.arange(4), 2, 2, 1, policy="mru")

    def test_duplicate_inflight_misses_both_travel(self):
        # delay=3 keeps both 7s in flight: neither may hit (no MSHR).
        hits, stats = delayed_cache_hits(
            np.array([7, 7, 1, 2]), n_sets=4, ways=4, delay=3
        )
        assert not hits.any()
        ref_hits, _ = reference_cache_hits(
            np.array([7, 7, 1, 2]), n_sets=4, ways=4, delay=3
        )
        np.testing.assert_array_equal(hits, ref_hits)
        # both travel, but the second insert finds 7 present: no-op
        assert stats.insertions == 3

    @pytest.mark.parametrize(
        "property_bytes,n_segments,segment_bytes",
        [
            (16, 32, 16),    # one segment
            (100, 32, 16),   # several segments, power-of-two rounding
            (512, 32, 16),   # exactly the max line
            (513, 32, 16),   # tiled across whole lines
            (4096, 8, 64),   # large property, fat segments
            (1, 1, 16),      # degenerate selector
        ],
    )
    def test_property_cache_hits_uses_configured_geometry(
        self, property_bytes, n_segments, segment_bytes
    ):
        capacity, ways, delay = 1 << 14, 4, 5
        pc = PropertyCache(
            capacity_bytes=capacity,
            ways=ways,
            n_segments=n_segments,
            segment_bytes=segment_bytes,
        )
        pc.configure(property_bytes)
        assert pc.n_sets == n_sets_for(
            capacity, ways, property_bytes, n_segments, segment_bytes
        )
        rng = np.random.default_rng(property_bytes)
        idxs = rng.integers(0, 4 * max(pc.n_sets, 1) * ways, size=600)
        fast_hits, fast_stats = property_cache_hits(
            idxs,
            capacity_bytes=capacity,
            ways=ways,
            property_bytes=property_bytes,
            delay=delay,
            n_segments=n_segments,
            segment_bytes=segment_bytes,
        )
        ref_hits = DelayedInsertCache(pc, delay).process(idxs)
        np.testing.assert_array_equal(fast_hits, ref_hits)
        assert fast_stats == pc.stats


# ---------------------------------------------------------------------
# window concatenation
# ---------------------------------------------------------------------


class TestConcatGolden:
    @pytest.mark.parametrize("max_prs", [1, 2, 5, 16])
    @pytest.mark.parametrize("window", [1, 2, 7, 64, 10**9])
    def test_sweep(self, max_prs, window):
        rng = np.random.default_rng(max_prs * 1000 + min(window, 999))
        for n_dests, n in ((1, 40), (17, 999), (128, 2048)):
            dests = rng.integers(0, n_dests, size=n)
            fast = _window_concat_fast(dests, max_prs, window)
            ref = _window_concat_reference(dests, max_prs, window)
            assert fast == ref

    def test_sparse_destination_space_falls_back_exactly(self):
        # Raw row-id destinations: keyspace >> 4n forces the np.unique
        # path inside the fast kernel; results must still be identical.
        rng = np.random.default_rng(3)
        dests = rng.choice(
            np.array([3, 999_983, 7_654_321], dtype=np.int64), size=200
        )
        fast = _window_concat_fast(dests, 5, 8)
        ref = _window_concat_reference(dests, 5, 8)
        assert fast == ref

    def test_window_concat_dispatches_on_backend(self):
        dests = np.tile(np.arange(4), 25)
        fast = window_concat(dests, 8, 10)
        with kernels.use_backend("reference"):
            ref = window_concat(dests, 8, 10)
        assert fast == ref
        assert fast.n_prs == 100

    def test_empty_stream_short_circuits(self):
        stats = window_concat(np.array([], dtype=np.int64), 4, 10)
        assert stats.n_prs == stats.n_packets == 0
        assert stats.per_dest_prs == {}

    def test_degenerate_windows_mean_no_concatenation(self):
        dests = np.array([2, 2, 2, 5, 5])
        for max_prs, window in ((1, 100), (8, 1), (8, 0)):
            stats = window_concat(dests, max_prs, window)
            ref = _window_concat_reference(dests, max_prs, max(window, 1))
            assert stats == ref
            assert stats.n_packets == dests.size


# ---------------------------------------------------------------------
# RIG batch-dispatch makespan
# ---------------------------------------------------------------------


class TestRigGolden:
    @pytest.mark.parametrize("policy", ["least_loaded", "round_robin"])
    def test_random_sweep_is_bit_identical(self, policy):
        rng = np.random.default_rng(11)
        for _ in range(200):
            n_idxs = int(rng.integers(1, 5000))
            n_units = int(rng.integers(1, 12))
            batch = int(rng.integers(1, 300))
            freq = float(rng.uniform(1e8, 3e9))
            ovh = float(rng.uniform(1e-8, 1e-5))
            fast = rig_generation_time(
                n_idxs, n_units, batch, freq, ovh, policy=policy
            )
            with kernels.use_backend("reference"):
                ref = rig_generation_time(
                    n_idxs, n_units, batch, freq, ovh, policy=policy
                )
            assert fast == ref  # exact float equality, not approx

    def test_zero_and_negative_idxs(self):
        for backend in kernels.BACKENDS:
            with kernels.use_backend(backend):
                assert rig_generation_time(0, 4, 32) == 0.0
                assert rig_generation_time(-3, 4, 32) == 0.0

    def test_validation_identical_across_backends(self):
        for backend in kernels.BACKENDS:
            with kernels.use_backend(backend):
                with pytest.raises(ValueError):
                    rig_generation_time(10, 0, 32)
                with pytest.raises(ValueError):
                    rig_generation_time(10, 4, 0)
                with pytest.raises(ValueError):
                    rig_generation_time(10, 4, 32, policy="fastest_first")


# ---------------------------------------------------------------------
# whole cluster model
# ---------------------------------------------------------------------


def _assert_equal(x, y, path):
    if isinstance(x, np.ndarray) or isinstance(y, np.ndarray):
        np.testing.assert_array_equal(x, y, err_msg=path)
    elif isinstance(x, dict):
        assert set(x) == set(y), path
        for key in x:
            _assert_equal(x[key], y[key], f"{path}[{key!r}]")
    elif isinstance(x, (list, tuple)):
        assert len(x) == len(y), path
        for i, (xi, yi) in enumerate(zip(x, y)):
            _assert_equal(xi, yi, f"{path}[{i}]")
    else:
        assert x == y, path


def assert_results_equal(a, b):
    """Field-by-field exact equality of two CommResults."""
    assert type(a) is type(b)
    for f in dataclasses.fields(type(a)):
        _assert_equal(getattr(a, f.name), getattr(b, f.name), f.name)


CFG16 = NetSparseConfig(n_nodes=16, n_racks=4, nodes_per_rack=4)


class TestModelGolden:
    @pytest.mark.parametrize("name", ["queen", "stokes"])
    def test_commresult_bit_identical(self, name):
        mat = load_benchmark(name, "tiny")
        topo = build_cluster_topology(CFG16)
        fast = simulate_netsparse(mat, 8, CFG16, topo)
        with kernels.use_backend("reference"):
            ref = simulate_netsparse(mat, 8, CFG16, topo)
        assert_results_equal(fast, ref)

    def test_faulted_run_bit_identical(self):
        # faults= perturbs the *result* analytically; the kernels under
        # it must still agree, and the shared TraceCache entry is safe.
        from repro.faults import FaultPlan
        from repro.parallel.jobs import SimJob, execute_job

        plan = FaultPlan.scaled(0.5, seed=13)
        job = SimJob(
            scheme="netsparse",
            matrix="queen",
            k=8,
            config=CFG16,
            scale_name="tiny",
            faults=plan.canonical_json(),
        )
        fast = execute_job(job)
        with kernels.use_backend("reference"):
            ref = execute_job(job)
        assert_results_equal(fast, ref)


# ---------------------------------------------------------------------
# TraceCache
# ---------------------------------------------------------------------


def random_matrix(seed=0, n=60, nnz=600, name=""):
    rng = np.random.default_rng(seed)
    mat = COOMatrix(
        n_rows=n,
        n_cols=n,
        rows=rng.integers(0, n, size=nnz),
        cols=rng.integers(0, n, size=nnz),
        name=name,
    )
    return mat.canonicalize()


class TestTraceCache:
    def test_structural_keying_ignores_name_and_values(self):
        cache = TraceCache()
        a = random_matrix(seed=1, name="a")
        b = random_matrix(seed=1, name="b").with_random_values(seed=9)
        assert a.structural_digest() == b.structural_digest()
        part_a = cache.get_partition(a, 4)
        part_b = cache.get_partition(b, 4)
        assert part_a is part_b
        assert cache.hits == 1 and cache.misses == 1 and len(cache) == 1

    def test_distinct_structures_and_rules_get_distinct_entries(self):
        cache = TraceCache()
        a, b = random_matrix(seed=1), random_matrix(seed=2)
        assert a.structural_digest() != b.structural_digest()
        cache.get_partition(a, 4)
        cache.get_partition(b, 4)
        cache.get_partition(a, 8)            # node count is part of the key
        cache.get_partition(a, 4, kind="nnz")
        assert cache.misses == 4 and cache.hits == 0 and len(cache) == 4

    def test_nnz_kind_matches_balanced_by_nnz(self):
        cache = TraceCache()
        mat = random_matrix(seed=3)
        part = cache.get_partition(mat, 4, kind="nnz")
        direct = balanced_by_nnz(mat, 4)
        np.testing.assert_array_equal(part.row_starts, direct.row_starts)

    def test_explicit_row_starts_keyed_by_digest(self):
        cache = TraceCache()
        mat = random_matrix(seed=4)
        starts = np.array([0, 10, 25, 40, mat.n_rows], dtype=np.int64)
        part = cache.get_partition(mat, 4, row_starts=starts)
        again = cache.get_partition(mat, 4, row_starts=starts.copy())
        assert part is again
        assert cache.hits == 1
        np.testing.assert_array_equal(part.row_starts, starts)
        # ...and distinct from the default "rows" entry
        assert cache.get_partition(mat, 4) is not part

    def test_lru_eviction_is_bounded(self):
        cache = TraceCache(max_entries=2)
        mats = [random_matrix(seed=s) for s in (1, 2, 3)]
        for mat in mats:
            cache.get_partition(mat, 4)
        assert len(cache) == 2 and cache.evictions == 1
        cache.get_partition(mats[0], 4)      # oldest was evicted: rebuild
        assert cache.misses == 4

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            TraceCache().get_partition(random_matrix(), 4, kind="2d")
        with pytest.raises(ValueError):
            TraceCache(max_entries=0)

    def test_cached_partition_uses_swappable_global(self):
        mine = TraceCache()
        previous = set_trace_cache(mine)
        try:
            mat = random_matrix(seed=5)
            part = cached_partition(mat, 4)
            assert get_trace_cache() is mine
            assert mine.misses == 1
            assert cached_partition(mat, 4) is part
            assert mine.hits == 1
            assert isinstance(part, OneDPartition)
        finally:
            set_trace_cache(previous)
        assert get_trace_cache() is previous

    def test_stats_snapshot(self):
        cache = TraceCache(max_entries=3)
        part = cache.get_partition(random_matrix(seed=6), 4)
        snap = cache.stats()
        assert snap == {
            "entries": 1,
            "max_entries": 3,
            "hits": 0,
            "misses": 1,
            "evictions": 0,
            "contended_builds": 0,
            "spills": 0,
            "reloads": 0,
            "resident_nnz": part.resident_trace_nnz(),
        }
        assert snap["resident_nnz"] > 0
        assert cache.clear() == 1
        assert len(cache) == 0


# ---------------------------------------------------------------------
# per-Simulator request ids (satellite: module-global counter removed)
# ---------------------------------------------------------------------


class _ProbeRecorder:
    def __init__(self):
        self.issued_ids = []

    def issued(self, request_id):
        self.issued_ids.append(request_id)

    def completed(self, request_id):
        pass


def _run_gather(idxs):
    """One fresh DES gather; returns the request ids it issued."""
    from repro.core.rig import RigClientUnit, RigServerUnit
    from repro.sim import Store

    sim = Simulator()

    def wire():
        a, b = Store(sim), Store(sim)

        def fwd():
            while True:
                item = yield a.get()
                yield sim.timeout(1e-6)
                yield b.put(item)

        sim.process(fwd())
        return a, b

    c2s_in, c2s_out = wire()
    s2c_in, s2c_out = wire()
    client = RigClientUnit(
        sim, unit_id=0, node=0, tx_queue=c2s_in, rx_queue=s2c_out,
        idx_filter=set(),
    )
    probe = _ProbeRecorder()
    client.latency_probe = probe
    RigServerUnit(
        sim, unit_id=1, node=1, rx_queue=c2s_out, tx_queue=s2c_in,
        payload_bytes=64,
    )
    client.execute(idxs)
    sim.run()
    return probe.issued_ids


class TestRequestIdDeterminism:
    def test_counter_is_per_simulator(self):
        sim = Simulator()
        assert [sim.next_request_id() for _ in range(3)] == [0, 1, 2]
        assert Simulator().next_request_id() == 0
        assert sim.next_request_id() == 3

    def test_identical_runs_issue_identical_ids(self):
        first = _run_gather([1, 2, 3, 4])
        # An unrelated simulation in between must not shift the ids —
        # exactly what the old module-global itertools.count() broke.
        _run_gather(list(range(50)))
        second = _run_gather([1, 2, 3, 4])
        assert first == second
        assert first[0] == 0
        assert first == list(range(len(first)))
