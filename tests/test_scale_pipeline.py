"""End-to-end determinism of the out-of-core pipeline.

Three claims, each enforced with exact equality:

1. The windowed kernels (incremental cache replayer, streamed window
   concat, the pool fan-out) are bit-identical to their one-shot twins.
2. Trace spill-then-reload through :class:`TraceCache` reproduces the
   original traces bit-for-bit and reports its spill telemetry.
3. ``simulate_netsparse`` produces the same :class:`CommResult`
   regardless of storage tier (dense vs sharded) and kernel tier
   (``fast`` / ``reference`` / ``pool``), including under the parallel
   execution engine's process fan-out.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.cluster import build_cluster_topology, simulate_netsparse
from repro.config import NetSparseConfig
from repro.core import kernels, poolexec
from repro.core.concat import (
    merge_concat_stats,
    window_concat,
    window_concat_stream,
)
from repro.core.pcache_fast import DelayedCacheReplayer, delayed_cache_hits
from repro.core import pcache_numba
from repro.partition import TraceCache, set_trace_cache
from repro.parallel import ExecutionEngine, SimJob
from repro.parallel.jobs import execute_job
from repro.sparse.suite import MatrixMemo, load_benchmark


def _assert_equal(x, y, path):
    if isinstance(x, np.ndarray) or isinstance(y, np.ndarray):
        np.testing.assert_array_equal(x, y, err_msg=path)
    elif isinstance(x, dict):
        assert set(x) == set(y), path
        for key in x:
            _assert_equal(x[key], y[key], f"{path}[{key!r}]")
    elif isinstance(x, (list, tuple)):
        assert len(x) == len(y), path
        for i, (xi, yi) in enumerate(zip(x, y)):
            _assert_equal(xi, yi, f"{path}[{i}]")
    else:
        assert x == y, path


def assert_results_equal(a, b):
    """Field-by-field exact equality of two CommResults."""
    assert type(a) is type(b)
    for f in dataclasses.fields(type(a)):
        _assert_equal(getattr(a, f.name), getattr(b, f.name), f.name)


CFG16 = NetSparseConfig(n_nodes=16, n_racks=4, nodes_per_rack=4)


@pytest.fixture()
def shard_env(tmp_path, monkeypatch):
    from repro.sparse import suite

    monkeypatch.setenv("REPRO_SHARD_DIR", str(tmp_path / "shards"))
    suite._memo.clear()
    yield tmp_path
    suite._memo.clear()


# ---------------------------------------------------------------------
# incremental cache replayer
# ---------------------------------------------------------------------


class TestDelayedCacheReplayer:
    GEOMETRIES = [(64, 4, 0), (64, 4, 32), (16, 2, 100), (1, 8, 7)]

    @pytest.mark.parametrize("policy", ["lru", "fifo", "random"])
    @pytest.mark.parametrize("n_sets,ways,delay", GEOMETRIES)
    def test_windowed_feed_matches_one_shot(self, policy, n_sets, ways,
                                            delay):
        rng = np.random.default_rng(42)
        idxs = rng.integers(0, 5000, size=20_000)
        ref_hits, ref_stats = delayed_cache_hits(idxs, n_sets, ways, delay,
                                                 policy=policy)
        rep = DelayedCacheReplayer(n_sets, ways, delay, policy=policy)
        masks = [rep.feed(w) for w in np.array_split(idxs, 13)]
        stats = rep.finish()
        np.testing.assert_array_equal(np.concatenate(masks), ref_hits)
        assert stats == ref_stats

    def test_iterable_input_matches_array(self):
        rng = np.random.default_rng(3)
        idxs = rng.integers(0, 800, size=6000)
        ref = delayed_cache_hits(idxs, 32, 4, 16)
        windowed = delayed_cache_hits(
            iter(np.array_split(idxs, 7)), 32, 4, 16
        )
        np.testing.assert_array_equal(windowed[0], ref[0])
        assert windowed[1] == ref[1]

    def test_feed_after_finish_rejected(self):
        rep = DelayedCacheReplayer(8, 2, 4)
        rep.feed(np.arange(10))
        rep.finish()
        with pytest.raises(RuntimeError):
            rep.feed(np.arange(3))

    @pytest.mark.parametrize("policy", ["lru", "fifo"])
    def test_pure_python_array_kernel_golden(self, policy):
        rng = np.random.default_rng(11)
        idxs = rng.integers(0, 900, size=8000)
        ref_hits, ref_stats = delayed_cache_hits(idxs, 32, 4, 24,
                                                 policy=policy)
        hits, (n_hits, n_ins, n_ev) = pcache_numba.replay_hits(
            idxs, 32, 4, 24, policy
        )
        np.testing.assert_array_equal(hits, ref_hits)
        assert (n_hits, n_ins, n_ev) == (
            ref_stats.hits, ref_stats.insertions, ref_stats.evictions
        )

    def test_array_kernel_policy_support(self):
        assert pcache_numba.supports("lru")
        assert pcache_numba.supports("fifo")
        assert not pcache_numba.supports("random")
        with pytest.raises(ValueError):
            pcache_numba.replay_hits(np.arange(4), 4, 2, 0, "random")


# ---------------------------------------------------------------------
# streamed window concat
# ---------------------------------------------------------------------


class TestWindowConcatStream:
    @pytest.mark.parametrize("window_prs", [1, 7, 64])
    @pytest.mark.parametrize("max_prs", [1, 4, 9])
    def test_matches_one_shot(self, window_prs, max_prs):
        rng = np.random.default_rng(5)
        dests = rng.integers(0, 16, size=9973)
        ref = window_concat(dests, max_prs, window_prs)
        streamed = window_concat_stream(
            np.array_split(dests, 11), max_prs, window_prs
        )
        assert streamed == ref

    def test_empty_stream(self):
        stats = window_concat_stream([], 4, 8)
        assert stats.n_prs == stats.n_packets == 0
        assert merge_concat_stats([]).n_prs == 0


# ---------------------------------------------------------------------
# process-pool fan-out
# ---------------------------------------------------------------------


class TestPoolExec:
    def _tasks(self, n=4):
        rng = np.random.default_rng(17)
        return [
            (rng.integers(0, 1200, size=5000), 64, 4, 31 + i, "lru")
            for i in range(n)
        ]

    def test_parallel_matches_serial(self):
        tasks = self._tasks()
        try:
            parallel = poolexec.map_cache_replays(tasks)
        finally:
            poolexec.shutdown()
        serial = [
            delayed_cache_hits(i, s, w, d, policy=p)
            for i, s, w, d, p in tasks
        ]
        for (ph, ps), (sh, ss) in zip(parallel, serial):
            np.testing.assert_array_equal(ph, sh)
            assert ps == ss

    def test_disable_env_forces_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_POOL_DISABLE", "1")
        assert not poolexec.pool_available()
        out = poolexec.map_cache_replays(self._tasks(2))
        assert len(out) == 2    # serial path, still correct shape

    def test_worker_count_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_POOL_JOBS", "3")
        assert poolexec.pool_workers() == 3


# ---------------------------------------------------------------------
# trace spill tier
# ---------------------------------------------------------------------


class TestTraceSpill:
    def test_spill_then_reload_bit_identical(self, tmp_path):
        mat = load_benchmark("queen", "tiny")
        fresh = TraceCache().get_partition(mat, 8)
        expect = [
            (np.array(t.idxs), np.array(t.owner), np.array(t.remote_idxs))
            for t in fresh.node_traces()
        ]

        tc = TraceCache(max_resident_nnz=mat.nnz // 2,
                        spill_dir=str(tmp_path / "spill"))
        part = tc.get_partition(mat, 8)
        tc.get_partition(mat, 16)       # push the first entry over budget
        assert tc.stats()["spills"] >= 1
        assert part.is_spilled
        assert part.resident_trace_nnz() == 0

        reloaded = tc.get_partition(mat, 8)
        assert reloaded is part
        for tr, (idxs, owner, remote_idxs) in zip(part.node_traces(),
                                                  expect):
            np.testing.assert_array_equal(tr.idxs, idxs)
            np.testing.assert_array_equal(tr.owner, owner)
            assert tr.owner.dtype == owner.dtype
            np.testing.assert_array_equal(tr.remote_idxs, remote_idxs)
        assert tc.stats()["reloads"] >= 1

    def test_no_budget_means_no_spilling(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE_SPILL_NNZ", raising=False)
        tc = TraceCache()
        assert tc.max_resident_nnz is None
        mat = load_benchmark("queen", "tiny")
        tc.get_partition(mat, 8)
        tc.get_partition(mat, 16)
        assert tc.stats()["spills"] == 0

    def test_budget_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_SPILL_NNZ", "12345")
        assert TraceCache().max_resident_nnz == 12345

    def test_sharded_entries_release_instead_of_spilling(self, shard_env):
        smat = load_benchmark("stokes", "tiny", sharded=True)
        tc = TraceCache(max_resident_nnz=1)
        part = tc.get_partition(smat, 8)
        _ = part.node_traces()[0].idxs      # materialize one window
        tc.get_partition(smat, 16)
        assert tc.stats()["spills"] >= 1
        assert part.resident_trace_nnz() == 0
        # Windowed traces rebuild from the shard store on demand.
        assert part.node_traces()[0].idxs.size > 0


# ---------------------------------------------------------------------
# whole-model parity across storage and kernel tiers
# ---------------------------------------------------------------------


class TestModelTierParity:
    def _run(self, mat, backend, topo):
        # Fresh trace cache per run: dense and sharded twins share a
        # structural digest (by design), so without this the second
        # tier would silently reuse the first tier's traces.
        prev = set_trace_cache(TraceCache())
        try:
            with kernels.use_backend(backend):
                return simulate_netsparse(mat, 8, CFG16, topo)
        finally:
            set_trace_cache(prev)
            poolexec.shutdown()

    @pytest.mark.parametrize("name", ["arabic", "stokes"])
    def test_commresult_invariant(self, shard_env, name):
        topo = build_cluster_topology(CFG16)
        dense = load_benchmark(name, "tiny")
        sharded = load_benchmark(name, "tiny", sharded=True)
        ref = self._run(dense, "reference", topo)
        for mat in (dense, sharded):
            for backend in ("fast", "pool"):
                assert_results_equal(self._run(mat, backend, topo), ref)


# ---------------------------------------------------------------------
# engine fan-out over sharded inputs
# ---------------------------------------------------------------------


class TestEngineShardedFanout:
    def test_jobs_fanout_matches_serial_dense(self, tmp_path, monkeypatch):
        from repro.sparse import suite

        jobs = [
            SimJob(scheme="netsparse", matrix=m, k=16,
                   config=NetSparseConfig(), scale_name="tiny", seed=7)
            for m in ("queen", "stokes")
        ]
        expect = [execute_job(j) for j in jobs]     # dense, in-process

        monkeypatch.setenv("REPRO_SHARD_DIR", str(tmp_path / "shards"))
        monkeypatch.setenv("REPRO_SHARDED_SCALES", "tiny")
        suite._memo.clear()
        prev = set_trace_cache(TraceCache())
        try:
            with ExecutionEngine(jobs=2) as eng:
                got = eng.run_jobs(jobs)
        finally:
            set_trace_cache(prev)
            suite._memo.clear()
        for g, e in zip(got, expect):
            assert_results_equal(g, e)


# ---------------------------------------------------------------------
# suite memo
# ---------------------------------------------------------------------


class _FakeMatrix:
    def __init__(self, nnz):
        self.nnz = nnz


class TestMatrixMemo:
    def test_weight_aware_eviction(self):
        memo = MatrixMemo(max_resident_nnz=100)
        a = memo.get_or_load(("a",), lambda: _FakeMatrix(60))
        memo.get_or_load(("b",), lambda: _FakeMatrix(60))
        assert memo.stats()["evictions"] == 1       # a fell out
        assert memo.stats()["resident_nnz"] == 60
        a2 = memo.get_or_load(("a",), lambda: _FakeMatrix(60))
        assert a2 is not a                          # rebuilt after evict
        assert memo.stats()["misses"] == 3

    def test_oversized_newest_entry_is_kept(self):
        memo = MatrixMemo(max_resident_nnz=10)
        big = memo.get_or_load(("big",), lambda: _FakeMatrix(1000))
        assert memo.get_or_load(("big",), lambda: _FakeMatrix(1000)) is big
        assert memo.stats() == {
            "entries": 1, "resident_nnz": 1000, "max_resident_nnz": 10,
            "hits": 1, "misses": 1, "evictions": 0,
        }

    def test_lru_order(self):
        memo = MatrixMemo(max_resident_nnz=100)
        memo.get_or_load(("a",), lambda: _FakeMatrix(40))
        memo.get_or_load(("b",), lambda: _FakeMatrix(40))
        memo.get_or_load(("a",), lambda: _FakeMatrix(40))   # touch a
        memo.get_or_load(("c",), lambda: _FakeMatrix(40))   # evicts b
        assert memo.get_or_load(("a",), lambda: _FakeMatrix(99)).nnz == 40

    def test_sharded_weight_uses_resident_nnz(self, shard_env):
        smat = load_benchmark("queen", "tiny", sharded=True)
        memo = MatrixMemo(max_resident_nnz=10)
        memo.get_or_load(("s",), lambda: smat)
        # mmap-backed matrices weigh ~nothing, so they never evict.
        memo.get_or_load(("t",), lambda: _FakeMatrix(5))
        assert memo.stats()["entries"] == 2
