"""Unit tests for the discrete-event simulation engine."""

import pytest

from repro.sim import Simulator, Interrupt
from repro.sim.engine import AllOf


def test_timeout_advances_clock():
    sim = Simulator()

    def proc():
        yield sim.timeout(5.0)
        return sim.now

    p = sim.process(proc())
    sim.run()
    assert p.value == 5.0
    assert sim.now == 5.0


def test_numeric_yield_is_timeout_sugar():
    sim = Simulator()

    def proc():
        yield 2.5
        yield 2.5
        return sim.now

    p = sim.process(proc())
    sim.run()
    assert p.value == 5.0


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1.0)


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []
    for delay in (3.0, 1.0, 2.0):
        sim.call_at(delay, lambda d=delay: order.append(d))
    sim.run()
    assert order == [1.0, 2.0, 3.0]


def test_equal_time_events_fire_in_schedule_order():
    sim = Simulator()
    order = []
    for tag in range(5):
        sim.call_at(1.0, lambda t=tag: order.append(t))
    sim.run()
    assert order == [0, 1, 2, 3, 4]


def test_call_at_rejects_past():
    sim = Simulator()
    sim.call_at(2.0, lambda: None)
    sim.run()
    with pytest.raises(ValueError):
        sim.call_at(1.0, lambda: None)


def test_process_waits_on_process():
    sim = Simulator()

    def worker():
        yield sim.timeout(4.0)
        return "done"

    def boss():
        result = yield sim.process(worker())
        return (result, sim.now)

    p = sim.process(boss())
    sim.run()
    assert p.value == ("done", 4.0)


def test_event_succeed_wakes_waiter():
    sim = Simulator()
    ev = sim.event()
    seen = []

    def waiter():
        value = yield ev
        seen.append((value, sim.now))

    def trigger():
        yield sim.timeout(3.0)
        ev.succeed(42)

    sim.process(waiter())
    sim.process(trigger())
    sim.run()
    assert seen == [(42, 3.0)]


def test_event_cannot_trigger_twice():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(RuntimeError):
        ev.succeed(2)


def test_event_failure_raises_in_waiter():
    sim = Simulator()
    ev = sim.event()
    caught = []

    def waiter():
        try:
            yield ev
        except ValueError as exc:
            caught.append(str(exc))

    sim.process(waiter())
    ev.fail(ValueError("boom"))
    sim.run()
    assert caught == ["boom"]


def test_all_of_waits_for_every_event():
    sim = Simulator()
    times = []

    def proc():
        t1, t2 = sim.timeout(2.0, "a"), sim.timeout(5.0, "b")
        result = yield sim.all_of([t1, t2])
        times.append(sim.now)
        return result

    p = sim.process(proc())
    sim.run()
    assert times == [5.0]
    assert p.value == {0: "a", 1: "b"}


def test_any_of_fires_on_first():
    sim = Simulator()

    def proc():
        t1, t2 = sim.timeout(2.0, "fast"), sim.timeout(5.0, "slow")
        yield sim.any_of([t1, t2])
        return sim.now

    p = sim.process(proc())
    sim.run()
    assert p.value == 2.0


def test_all_of_empty_fires_immediately():
    sim = Simulator()
    cond = AllOf(sim, [])
    assert cond.triggered


def test_interrupt_raises_in_process():
    sim = Simulator()
    log = []

    def sleeper():
        try:
            yield sim.timeout(100.0)
        except Interrupt as i:
            log.append((sim.now, i.cause))

    def interrupter(target):
        yield sim.timeout(3.0)
        target.interrupt("wake up")

    p = sim.process(sleeper())
    sim.process(interrupter(p))
    sim.run()
    assert log == [(3.0, "wake up")]


def test_interrupt_finished_process_is_error():
    sim = Simulator()

    def quick():
        yield sim.timeout(1.0)

    p = sim.process(quick())
    sim.run()
    with pytest.raises(RuntimeError):
        p.interrupt()


def test_run_until_stops_clock():
    sim = Simulator()
    fired = []
    sim.call_at(10.0, lambda: fired.append(True))
    sim.run(until=5.0)
    assert not fired
    assert sim.now == 5.0
    sim.run()
    assert fired


def test_max_events_guard():
    sim = Simulator()

    def forever():
        while True:
            yield sim.timeout(1.0)

    sim.process(forever())
    with pytest.raises(RuntimeError):
        sim.run(max_events=50)


def test_yield_garbage_raises_type_error():
    sim = Simulator()

    def bad():
        yield "not an event"

    sim.process(bad())
    with pytest.raises(TypeError):
        sim.run()


def test_nondecreasing_dispatch_order_under_load():
    sim = Simulator()
    stamps = []

    def proc(delay):
        yield sim.timeout(delay)
        stamps.append(sim.now)

    import random

    rng = random.Random(3)
    for _ in range(200):
        sim.process(proc(rng.uniform(0, 100)))
    sim.run()
    assert stamps == sorted(stamps)
    assert len(stamps) == 200


def test_process_exception_fails_its_event():
    """A crashing process fails its event; waiters see the exception."""
    sim = Simulator()

    def crasher():
        yield sim.timeout(1.0)
        raise ValueError("kaboom")

    caught = []

    def waiter():
        try:
            yield sim.process(crasher())
        except ValueError as exc:
            caught.append(str(exc))

    sim.process(waiter())
    sim.run()
    assert caught == ["kaboom"]


def test_unobserved_process_failure_is_silent():
    sim = Simulator()

    def crasher():
        yield sim.timeout(1.0)
        raise RuntimeError("nobody listening")

    p = sim.process(crasher())
    sim.run()   # must not raise
    assert p.triggered and not p.ok


def test_all_of_fails_fast_on_failed_member():
    sim = Simulator()
    good = sim.timeout(10.0)
    bad = sim.event()
    caught = []

    def waiter():
        try:
            yield sim.all_of([good, bad])
        except ValueError:
            caught.append(sim.now)

    sim.process(waiter())
    sim.call_at(2.0, lambda: bad.fail(ValueError("x")))
    sim.run()
    assert caught == [2.0]


def test_peek_and_step():
    sim = Simulator()
    sim.call_at(3.0, lambda: None)
    sim.call_at(7.0, lambda: None)
    assert sim.peek() == 3.0
    sim.step()
    assert sim.now == 3.0
    assert sim.peek() == 7.0


def test_events_dispatched_counter():
    sim = Simulator()
    for t in (1.0, 2.0):
        sim.call_at(t, lambda: None)
    sim.run()
    assert sim.events_dispatched == 2
