"""Tests for the experiment registry, ExpTable, and the CLI."""

import pytest

from repro.cli import main
from repro.experiments import (
    EXPERIMENTS,
    ExpTable,
    list_experiments,
    run_experiment,
)

PAPER_ARTIFACTS = {
    # every numbered table/figure from §3 and §9
    "table1", "table2", "table3", "table4", "fig10",
    "fig12", "table7", "fig13", "fig14", "table8",
    "fig15", "fig16", "fig17", "fig18", "fig19",
    "fig20", "table9", "fig21", "fig22",
}


def test_every_paper_artifact_is_registered():
    missing = PAPER_ARTIFACTS - set(EXPERIMENTS)
    assert not missing, f"unregistered paper artifacts: {missing}"


def test_extensions_registered():
    for exp in ("sharing", "des_validation", "concat_virtualization",
                "autotune", "spgemm_preview", "iterative",
                "switch_overheads"):
        assert exp in EXPERIMENTS


def test_list_is_sorted():
    listed = list_experiments()
    assert listed == sorted(listed)


def test_unknown_experiment_raises_helpfully():
    with pytest.raises(KeyError) as exc:
        run_experiment("fig99")
    assert "fig99" in str(exc.value)


def test_duplicate_registration_rejected():
    from repro.experiments.runner import experiment

    with pytest.raises(ValueError):

        @experiment("table1")
        def clash():
            pass


class TestExpTable:
    def sample(self):
        return ExpTable(
            exp_id="x", title="t",
            columns=["name", "value"],
            rows=[["a", 1.5], ["b", 2.5]],
            paper_note="note",
        )

    def test_format_contains_everything(self):
        text = self.sample().format()
        for token in ("x: t", "name", "value", "a", "1.5", "[paper] note"):
            assert token in text

    def test_column_access(self):
        assert self.sample().column("value") == [1.5, 2.5]
        with pytest.raises(ValueError):
            self.sample().column("nope")

    def test_row_by(self):
        assert self.sample().row_by("name", "b") == ["b", 2.5]
        with pytest.raises(KeyError):
            self.sample().row_by("name", "zz")


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "fig22" in out

    def test_run_scale_free_experiment(self, capsys):
        assert main(["run", "table3"]) == 0
        out = capsys.readouterr().out
        assert "header %" in out

    def test_run_with_tiny_scale(self, capsys):
        assert main(["run", "table4", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "unique dests" in out

    def test_run_unknown(self, capsys):
        assert main(["run", "nope"]) == 1


class TestFastExperimentsAtTinyScale:
    """Smoke-run the cheap experiments end to end at tiny scale so the
    harness itself is covered by the unit suite."""

    @pytest.mark.parametrize("exp_id", ["table1", "table2", "table4"])
    def test_motivation(self, exp_id):
        table = run_experiment(exp_id, scale="tiny")
        assert table.rows
        assert table.exp_id == exp_id

    def test_fig10_shape(self):
        table = run_experiment("fig10")
        ks = set(table.column("K"))
        assert ks == {16, 128}

    def test_hardware_tables(self):
        assert run_experiment("fig20").rows
        assert run_experiment("table9").rows
        assert run_experiment("switch_overheads").rows

    def test_sharing_tiny(self):
        table = run_experiment("sharing", scale="tiny", n_nodes=32,
                               nodes_per_rack=4)
        assert len(table.rows) == 6  # 5 matrices + mean
