"""Wire-codec round-trip and robustness tests (Figure 6 layout)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.protocol import (
    NetSparsePacket,
    PRHeader,
    PRType,
    decode_packet,
    encode_packet,
)

pr_strategy = st.builds(
    PRHeader,
    src=st.integers(0, 2**32 - 1),
    src_tid=st.integers(0, 2**16 - 1),
    idx=st.integers(0, 2**64 - 1),
    request_id=st.integers(0, 2**32 - 1),
)


def test_read_packet_roundtrip():
    pkt = NetSparsePacket(PRType.READ, dest=7, prop_len=64,
                          prs=[PRHeader(1, 2, 3, 4)])
    back, payloads = decode_packet(encode_packet(pkt))
    assert back.pr_type == PRType.READ
    assert back.dest == 7
    assert back.prs == pkt.prs
    assert payloads == [b""]


def test_response_packet_carries_payloads():
    pkt = NetSparsePacket(PRType.RESPONSE, dest=1, prop_len=4,
                          prs=[PRHeader(0, 0, 10, 0), PRHeader(0, 0, 11, 1)])
    data = encode_packet(pkt, payloads=[b"abcd", b"wxyz"])
    back, payloads = decode_packet(data)
    assert payloads == [b"abcd", b"wxyz"]
    assert [p.idx for p in back.prs] == [10, 11]


def test_encoded_size_matches_header_model():
    """The codec's concat+PR layer sizes match the analytic model's
    14 + 18N bytes (read direction)."""
    for n in (1, 3, 10):
        pkt = NetSparsePacket(PRType.READ, dest=0, prop_len=0,
                              prs=[PRHeader(0, 0, i, i) for i in range(n)])
        assert len(encode_packet(pkt)) == 14 + 18 * n


def test_payload_count_mismatch():
    pkt = NetSparsePacket(PRType.RESPONSE, dest=0, prop_len=4,
                          prs=[PRHeader(0, 0, 0, 0)])
    with pytest.raises(ValueError):
        encode_packet(pkt, payloads=[])


def test_payload_size_mismatch():
    pkt = NetSparsePacket(PRType.RESPONSE, dest=0, prop_len=4,
                          prs=[PRHeader(0, 0, 0, 0)])
    with pytest.raises(ValueError):
        encode_packet(pkt, payloads=[b"toolongpayload"])


def test_decode_rejects_truncation():
    pkt = NetSparsePacket(PRType.READ, dest=0, prop_len=0,
                          prs=[PRHeader(0, 0, 0, 0)])
    data = encode_packet(pkt)
    with pytest.raises(ValueError):
        decode_packet(data[:-1])
    with pytest.raises(ValueError):
        decode_packet(data + b"x")
    with pytest.raises(ValueError):
        decode_packet(b"\x00" * 4)


def test_decode_rejects_bad_type():
    pkt = NetSparsePacket(PRType.READ, dest=0, prop_len=0,
                          prs=[PRHeader(0, 0, 0, 0)])
    data = bytearray(encode_packet(pkt))
    data[0:2] = (99).to_bytes(2, "big")
    with pytest.raises(ValueError):
        decode_packet(bytes(data))


@settings(max_examples=200, deadline=None)
@given(
    prs=st.lists(pr_strategy, min_size=1, max_size=20),
    dest=st.integers(0, 2**32 - 1),
    pr_type=st.sampled_from([PRType.READ, PRType.RESPONSE]),
    prop_len=st.integers(0, 64),
)
def test_property_roundtrip(prs, dest, pr_type, prop_len):
    """INVARIANT: decode(encode(p)) == p for any well-formed packet."""
    pkt = NetSparsePacket(pr_type, dest, prop_len, prs)
    back, payloads = decode_packet(encode_packet(pkt))
    assert back.pr_type == pkt.pr_type
    assert back.dest == pkt.dest
    assert back.prop_len == pkt.prop_len
    assert back.prs == pkt.prs
    if pr_type == PRType.RESPONSE:
        assert all(len(b) == prop_len for b in payloads)
