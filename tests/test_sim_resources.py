"""Unit tests for Store (backpressure FIFO) and Resource."""

import pytest

from repro.sim import Resource, Simulator, Store


def test_store_fifo_order():
    sim = Simulator()
    store = Store(sim)
    got = []

    def producer():
        for i in range(5):
            yield store.put(i)
            yield sim.timeout(1.0)

    def consumer():
        for _ in range(5):
            item = yield store.get()
            got.append(item)

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert got == [0, 1, 2, 3, 4]


def test_store_capacity_blocks_producer():
    sim = Simulator()
    store = Store(sim, capacity=2)
    put_times = []

    def producer():
        for i in range(4):
            yield store.put(i)
            put_times.append(sim.now)

    def slow_consumer():
        while True:
            yield sim.timeout(10.0)
            yield store.get()

    sim.process(producer())
    sim.process(slow_consumer())
    sim.run(until=100.0)
    # First two puts immediate; third blocked until t=10, fourth until t=20.
    assert put_times == [0.0, 0.0, 10.0, 20.0]


def test_store_get_blocks_until_item():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer():
        item = yield store.get()
        got.append((item, sim.now))

    def producer():
        yield sim.timeout(7.0)
        yield store.put("x")

    sim.process(consumer())
    sim.process(producer())
    sim.run()
    assert got == [("x", 7.0)]


def test_store_try_put_try_get():
    sim = Simulator()
    store = Store(sim, capacity=1)
    assert store.try_put("a")
    assert not store.try_put("b")
    assert store.try_get() == "a"
    assert store.try_get() is None


def test_store_max_occupancy_tracked():
    sim = Simulator()
    store = Store(sim, capacity=10)
    for i in range(7):
        store.try_put(i)
    for _ in range(7):
        store.try_get()
    assert store.max_occupancy == 7
    assert len(store) == 0


def test_store_rejects_nonpositive_capacity():
    sim = Simulator()
    with pytest.raises(ValueError):
        Store(sim, capacity=0)


def test_backpressure_chain_propagates():
    """A slow tail stage throttles the head of a 3-stage pipeline."""
    sim = Simulator()
    a, b = Store(sim, capacity=1), Store(sim, capacity=1)
    head_done = []

    def head():
        for i in range(5):
            yield a.put(i)
        head_done.append(sim.now)

    def middle():
        while True:
            item = yield a.get()
            yield b.put(item)

    def tail():
        while True:
            yield sim.timeout(100.0)
            yield b.get()

    sim.process(head())
    sim.process(middle())
    sim.process(tail())
    sim.run(until=10_000.0)
    # The chain holds 3 items (slot in a, middle's hand, slot in b), so
    # items 0-2 flow in immediately; items 3 and 4 each wait for one
    # tail drain (t=100, t=200).  The head's final put lands at t=200.
    assert head_done == [200.0]


def test_resource_mutual_exclusion():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    timeline = []

    def user(tag, hold):
        yield res.acquire()
        timeline.append(("start", tag, sim.now))
        yield sim.timeout(hold)
        timeline.append(("end", tag, sim.now))
        res.release()

    sim.process(user("a", 5.0))
    sim.process(user("b", 3.0))
    sim.run()
    assert timeline == [
        ("start", "a", 0.0),
        ("end", "a", 5.0),
        ("start", "b", 5.0),
        ("end", "b", 8.0),
    ]


def test_resource_counted_capacity():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    starts = []

    def user(tag):
        yield res.acquire()
        starts.append((tag, sim.now))
        yield sim.timeout(10.0)
        res.release()

    for tag in range(4):
        sim.process(user(tag))
    sim.run()
    assert [t for _, t in starts] == [0.0, 0.0, 10.0, 10.0]


def test_resource_release_without_acquire():
    sim = Simulator()
    res = Resource(sim)
    with pytest.raises(RuntimeError):
        res.release()
