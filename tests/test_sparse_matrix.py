"""Unit tests for COO/CSR containers."""

import numpy as np
import pytest

from repro.sparse import COOMatrix, CSRMatrix


def small_coo():
    #     0 1 2 3
    # 0 [ .  a  .  b ]
    # 1 [ c  .  .  . ]
    # 2 [ .  d  e  . ]
    return COOMatrix(
        3, 4,
        rows=np.array([0, 0, 1, 2, 2]),
        cols=np.array([1, 3, 0, 1, 2]),
        vals=np.array([1.0, 2.0, 3.0, 4.0, 5.0]),
    )


def test_shape_and_nnz():
    m = small_coo()
    assert m.shape == (3, 4)
    assert m.nnz == 5


def test_row_out_of_range_rejected():
    with pytest.raises(ValueError):
        COOMatrix(2, 2, rows=np.array([2]), cols=np.array([0]))


def test_col_out_of_range_rejected():
    with pytest.raises(ValueError):
        COOMatrix(2, 2, rows=np.array([0]), cols=np.array([5]))


def test_mismatched_lengths_rejected():
    with pytest.raises(ValueError):
        COOMatrix(2, 2, rows=np.array([0, 1]), cols=np.array([0]))


def test_canonicalize_sorts_and_dedups():
    m = COOMatrix(
        2, 2,
        rows=np.array([1, 0, 1, 0]),
        cols=np.array([1, 1, 1, 0]),
        vals=np.array([9.0, 8.0, 7.0, 6.0]),
    )
    c = m.canonicalize()
    assert c.nnz == 3
    assert list(c.rows) == [0, 0, 1]
    assert list(c.cols) == [0, 1, 1]


def test_coo_csr_roundtrip():
    m = small_coo()
    back = m.to_csr().to_coo()
    assert list(back.rows) == list(m.rows)
    assert list(back.cols) == list(m.cols)
    np.testing.assert_allclose(back.vals, m.vals)


def test_csr_row_slice():
    csr = small_coo().to_csr()
    assert list(csr.row_slice(0)) == [1, 3]
    assert list(csr.row_slice(1)) == [0]
    assert list(csr.row_slice(2)) == [1, 2]


def test_csr_validation():
    with pytest.raises(ValueError):
        CSRMatrix(2, 2, indptr=np.array([0, 1]), indices=np.array([0]))
    with pytest.raises(ValueError):
        CSRMatrix(2, 2, indptr=np.array([0, 2, 1]), indices=np.array([0, 1]))


def test_scipy_roundtrip_matches():
    m = small_coo()
    sp = m.to_scipy().toarray()
    dense = np.zeros((3, 4))
    dense[m.rows, m.cols] = m.vals
    np.testing.assert_allclose(sp, dense)
    back = CSRMatrix.from_scipy(m.to_scipy())
    np.testing.assert_allclose(back.to_scipy().toarray(), dense)


def test_degrees():
    m = small_coo()
    assert list(m.row_degrees()) == [2, 1, 2]
    assert list(m.col_degrees()) == [1, 2, 1, 1]


def test_bandwidth_and_offset():
    m = small_coo()
    assert m.bandwidth() == 3  # nonzero (0, 3)
    assert m.mean_abs_offset() == pytest.approx((1 + 3 + 1 + 1 + 0) / 5)


def test_with_random_values_deterministic():
    m = COOMatrix(2, 2, rows=np.array([0, 1]), cols=np.array([1, 0]))
    a = m.with_random_values(seed=1)
    b = m.with_random_values(seed=1)
    np.testing.assert_array_equal(a.vals, b.vals)
    assert (a.vals > 0).all()


def test_empty_matrix():
    m = COOMatrix(3, 3, rows=np.array([], dtype=int), cols=np.array([], dtype=int))
    assert m.nnz == 0
    assert m.bandwidth() == 0
    assert m.to_csr().nnz == 0
