"""repro.telemetry core: registry semantics, disabled-mode guarantees,
exporter round trips."""

import json

import numpy as np
import pytest

from repro import telemetry
from repro.config import NetSparseConfig
from repro.sparse.suite import load_benchmark, scale_factor
from repro.telemetry import (
    MetricsRegistry,
    chrome_trace_dict,
    load_chrome_trace,
    metrics_csv_lines,
    metrics_dict,
    telemetry_scope,
    write_chrome_trace,
    write_metrics_csv,
    write_metrics_json,
)


@pytest.fixture(autouse=True)
def _telemetry_off():
    """Every test starts and ends with telemetry disabled."""
    telemetry.disable()
    yield
    telemetry.disable()


# -- counter / gauge / histogram semantics -----------------------------


class TestMetrics:
    def test_counter_get_or_create_and_inc(self):
        reg = MetricsRegistry()
        c = reg.counter("cluster.filter.drops")
        assert c is reg.counter("cluster.filter.drops")
        c.inc()
        c.inc(41)
        assert reg.counters["cluster.filter.drops"].value == 42

    def test_counter_rejects_decrease(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("a.b").inc(-1)

    def test_invalid_metric_names_rejected(self):
        reg = MetricsRegistry()
        for bad in ("", "a..b", ".a", "a.", "a b", "a,b"):
            with pytest.raises(ValueError):
                reg.counter(bad)

    def test_labelled_count_increments_base_and_sibling(self):
        reg = MetricsRegistry()
        reg.count("pcache.hits", 3, matrix="arabic")
        reg.count("pcache.hits", 2, matrix="uk")
        assert reg.counters["pcache.hits"].value == 5
        assert reg.counters["pcache.hits{matrix=arabic}"].value == 3
        assert reg.counters["pcache.hits{matrix=uk}"].value == 2

    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry()
        reg.set_gauge("engine.pool.workers", 4)
        reg.set_gauge("engine.pool.workers", 8)
        assert reg.gauges["engine.pool.workers"].value == 8.0

    def test_histogram_summary_and_percentiles(self):
        reg = MetricsRegistry()
        h = reg.histogram("concat.prs_per_packet")
        for v in range(1, 101):
            h.observe(v)
        s = h.summary()
        assert s["count"] == 100 and s["min"] == 1 and s["max"] == 100
        assert s["mean"] == pytest.approx(50.5)
        assert h.percentile(0) == 1 and h.percentile(100) == 100
        assert h.percentile(50) == pytest.approx(50.5)
        assert s["p99"] == pytest.approx(99.01)

    def test_empty_histogram_summary(self):
        assert MetricsRegistry().histogram("x.y").summary() == {"count": 0}


# -- spans and probes --------------------------------------------------


class TestSpans:
    def test_wall_span_context_manager_records(self):
        reg = MetricsRegistry()
        with reg.span("cluster.stage.filter", matrix="arabic"):
            pass
        (s,) = reg.spans
        assert s.name == "cluster.stage.filter"
        assert s.clock == "wall"
        assert s.duration >= 0
        assert s.args == {"matrix": "arabic"}

    def test_sim_span_explicit_times(self):
        reg = MetricsRegistry()
        reg.add_span("dessim.gather", 1.5, 2.5, clock="sim", nodes=8)
        (s,) = reg.spans
        assert (s.start, s.duration, s.clock) == (1.5, 2.5, "sim")

    def test_bad_clock_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().add_span("a.b", 0, 1, clock="cpu")

    def test_span_totals_by_clock(self):
        reg = MetricsRegistry()
        reg.add_span("a.b", 0, 1.0, clock="sim")
        reg.add_span("a.b", 2, 3.0, clock="sim")
        reg.add_span("a.b", 0, 0.5, clock="wall")
        assert reg.span_totals("sim") == {"a.b": (2, 4.0)}
        assert reg.span_totals("wall") == {"a.b": (1, 0.5)}
        assert reg.span_totals() == {"a.b": (3, 4.5)}

    def test_probe_records_instant_and_feeds_histogram(self):
        reg = MetricsRegistry()
        reg.probe("dessim.queue.sample", value=7.0, clock="sim", at=0.25)
        (p,) = reg.probes
        assert p.at == 0.25 and p.value == 7.0
        assert reg.histograms["dessim.queue.sample"].samples == [7.0]


# -- enable/disable and the zero-overhead module API -------------------


class TestActivation:
    def test_disabled_by_default_and_noop(self):
        assert telemetry.active() is None
        assert not telemetry.enabled()
        # None of these may raise or allocate registries when disabled.
        telemetry.count("a.b", 3)
        telemetry.observe("a.b", 1.0)
        telemetry.set_gauge("a.b", 2.0)
        telemetry.add_span("a.b", 0, 1)
        telemetry.probe("a.b", 1.0)
        with telemetry.span("a.b", k=16):
            pass
        assert telemetry.active() is None

    def test_scope_installs_and_restores(self):
        outer = MetricsRegistry()
        telemetry.enable(outer)
        with telemetry_scope() as inner:
            assert telemetry.active() is inner
            assert inner is not outer
            telemetry.count("x.y")
        assert telemetry.active() is outer
        assert "x.y" not in outer.counters
        telemetry.disable()

    def test_module_api_records_into_active_registry(self):
        with telemetry_scope() as reg:
            telemetry.count("cluster.filter.drops", 5, matrix="uk")
            telemetry.observe("concat.prs_per_packet", 9.5)
            with telemetry.span("cluster.stage.filter"):
                pass
        assert reg.counters["cluster.filter.drops"].value == 5
        assert reg.histograms["concat.prs_per_packet"].count == 1
        assert len(reg.spans) == 1


# -- disabled-mode bit-identical simulation ----------------------------


class TestBitIdentical:
    def test_simulate_netsparse_identical_with_and_without_telemetry(self):
        from repro.cluster import simulate_netsparse

        mat = load_benchmark("arabic", "tiny")
        sc = scale_factor("arabic", mat)
        cfg = NetSparseConfig()

        baseline = simulate_netsparse(mat, 16, cfg, scale=sc)
        with telemetry_scope() as reg:
            instrumented = simulate_netsparse(mat, 16, cfg, scale=sc)
        rerun = simulate_netsparse(mat, 16, cfg, scale=sc)

        for r in (instrumented, rerun):
            assert r.total_time == baseline.total_time
            assert np.array_equal(r.per_node_time, baseline.per_node_time)
            assert np.array_equal(r.recv_wire_bytes, baseline.recv_wire_bytes)
            assert np.array_equal(r.sent_wire_bytes, baseline.sent_wire_bytes)
            assert r.n_filtered == baseline.n_filtered
            assert r.n_coalesced == baseline.n_coalesced
            assert r.cache_hits == baseline.cache_hits
            assert r.n_packets == baseline.n_packets
        # ...and the instrumented run actually recorded the stages.
        assert reg.counters["cluster.filter.candidates"].value > 0
        stage_spans = {s.name for s in reg.spans}
        assert {"cluster.stage.filter", "cluster.stage.cache",
                "cluster.stage.respond",
                "cluster.stage.timing"} <= stage_spans

    def test_des_gather_identical_with_and_without_telemetry(self):
        from repro.dessim import run_des_gather

        mat = load_benchmark("queen", "tiny")
        base = run_des_gather(mat, k=4, n_racks=2, nodes_per_rack=2)
        with telemetry_scope() as reg:
            instrumented = run_des_gather(mat, k=4, n_racks=2,
                                          nodes_per_rack=2)
        assert instrumented.finish_time == base.finish_time
        assert instrumented.issued_prs == base.issued_prs
        assert instrumented.fabric_bytes == base.fabric_bytes
        assert instrumented.received == base.received
        sim_spans = [s for s in reg.spans if s.clock == "sim"]
        assert any(s.name == "dessim.gather" and s.duration > 0
                   for s in sim_spans)
        assert reg.counters["dessim.prs.issued"].value == base.issued_prs


# -- exporters ---------------------------------------------------------


def _loaded_registry():
    reg = MetricsRegistry()
    reg.count("cluster.filter.drops", 12, matrix="arabic")
    reg.set_gauge("engine.pool.workers", 4)
    reg.observe("concat.prs_per_packet", 5.5)
    reg.observe("concat.prs_per_packet", 7.5)
    reg.add_span("cluster.stage.filter", 0.125, 1.0, clock="wall",
                 matrix="arabic", k=16)
    reg.add_span("dessim.gather", 0.001, 0.002, clock="sim", nodes=8)
    reg.probe("pcache.sample", value=3.0, clock="sim", at=0.0015)
    return reg


class TestExport:
    def test_metrics_json_dump(self, tmp_path):
        path = write_metrics_json(_loaded_registry(), str(tmp_path / "m.json"),
                                  meta={"experiment": "table7"})
        data = json.loads(open(path).read())
        assert data["schema"] == "repro.telemetry/v1"
        assert data["meta"]["experiment"] == "table7"
        assert data["counters"]["cluster.filter.drops"] == 12
        assert data["counters"]["cluster.filter.drops{matrix=arabic}"] == 12
        assert data["histograms"]["concat.prs_per_packet"]["count"] == 2
        assert data["spans"]["wall"]["cluster.stage.filter"]["total_s"] == 1.0
        assert data["spans"]["sim"]["dessim.gather"]["count"] == 1

    def test_csv_covers_every_metric_kind(self, tmp_path):
        path = write_metrics_csv(_loaded_registry(), str(tmp_path / "m.csv"))
        lines = open(path).read().splitlines()
        assert lines[0] == "metric,kind,field,value"
        kinds = {ln.split(",")[1] for ln in lines[1:]}
        assert {"counter", "gauge", "histogram", "span.wall",
                "span.sim"} <= kinds

    def test_chrome_trace_round_trip(self, tmp_path):
        reg = _loaded_registry()
        path = write_chrome_trace(reg, str(tmp_path / "t.trace.json"))
        events = load_chrome_trace(path)

        spans = [e for e in events if "duration" in e]
        probes = [e for e in events if "at" in e]
        assert len(spans) == len(reg.spans)
        assert len(probes) == len(reg.probes)
        by_name = {e["name"]: e for e in spans}
        filt = by_name["cluster.stage.filter"]
        assert filt["clock"] == "wall"
        assert filt["start"] == pytest.approx(0.125, abs=1e-8)
        assert filt["duration"] == pytest.approx(1.0, abs=1e-8)
        assert filt["args"] == {"matrix": "arabic", "k": 16}
        gather = by_name["dessim.gather"]
        assert gather["clock"] == "sim"
        assert gather["start"] == pytest.approx(0.001, abs=1e-9)
        assert gather["duration"] == pytest.approx(0.002, abs=1e-9)
        (p,) = probes
        assert p["clock"] == "sim"
        assert p["args"]["value"] == 3.0

    def test_chrome_trace_separates_clock_processes(self):
        trace = chrome_trace_dict(_loaded_registry())
        spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        pids = {e["name"]: e["pid"] for e in spans}
        assert pids["cluster.stage.filter"] != pids["dessim.gather"]
        proc_names = {
            e["pid"]: e["args"]["name"]
            for e in trace["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert set(proc_names.values()) == {"wall-clock", "simulated-time"}

    def test_metrics_dict_matches_snapshot(self):
        reg = _loaded_registry()
        d = metrics_dict(reg)
        assert d["counters"] == reg.snapshot()["counters"]
        assert "exported_at" in d

    def test_csv_quotes_commas_in_labelled_names(self):
        reg = MetricsRegistry()
        reg.count("a.b", 1, x=1, y=2)     # -> a.b{x=1,y=2}
        lines = metrics_csv_lines(reg)
        assert any(ln.startswith('"a.b{x=1,y=2}"') for ln in lines)
