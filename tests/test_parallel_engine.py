"""Tests for the job-based execution engine (repro.parallel).

Covers job-digest stability/sensitivity, disk-cache correctness
(bit-identical replay, invalidation on any identity change, corrupt
entry tolerance), parallel == serial equivalence, and the CLI surface
(``--jobs`` / ``--cache-dir`` / ``netsparse cache``).
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.cli import main
from repro.config import NetSparseConfig
from repro.experiments.runner import run_schemes
from repro.parallel import (
    ExecutionEngine,
    ResultCache,
    SimJob,
    configure_engine,
    engine_scope,
    get_engine,
    set_engine,
    simulate,
    simulate_many,
)

MAT = "queen"  # smallest tiny-scale benchmark in the suite
K = 16


def _job(**overrides) -> SimJob:
    base = dict(scheme="netsparse", matrix=MAT, k=K,
                config=NetSparseConfig(), scale_name="tiny")
    base.update(overrides)
    return SimJob(**base)


def _assert_identical(a, b):
    assert a.scheme == b.scheme
    assert a.total_time == b.total_time  # bitwise, no tolerance
    np.testing.assert_array_equal(a.per_node_time, b.per_node_time)
    np.testing.assert_array_equal(a.recv_wire_bytes, b.recv_wire_bytes)
    np.testing.assert_array_equal(a.sent_wire_bytes, b.sent_wire_bytes)


class TestJobDigest:
    def test_digest_is_stable(self):
        assert _job().digest() == _job().digest()
        # Equal configs built separately hash equally too.
        assert (_job(config=NetSparseConfig()).digest()
                == _job(config=NetSparseConfig()).digest())

    @pytest.mark.parametrize("override", [
        {"scheme": "suopt"},
        {"k": 128},
        {"seed": 8},
        {"scale_name": "small"},
        {"rig_batch": 4096},
        {"scale": 0.25},
        {"partition": "nnz"},
        {"topology": ("leafspine", 2, 4, 1)},
        {"config": NetSparseConfig(n_nodes=64)},
        {"config": NetSparseConfig().with_features(property_cache=False)},
        {"faults": '{"name":"x","seed":0,"links":[{"scope":"all",'
                   '"start":0.0,"end":1.0,"drop_rate":0.1,'
                   '"corrupt_rate":0.0,"degrade":1.0}]}'},
    ])
    def test_digest_changes_with_identity(self, override):
        assert _job(**override).digest() != _job().digest()

    def test_rejects_unknown_scheme_partition_topology(self):
        with pytest.raises(ValueError):
            _job(scheme="magic")
        with pytest.raises(ValueError):
            _job(partition="columns")
        with pytest.raises(ValueError):
            _job(topology=("fattree", 2, 4, 1))

    def test_job_is_frozen_and_picklable(self):
        import pickle

        job = _job()
        with pytest.raises(dataclasses.FrozenInstanceError):
            job.k = 1
        assert pickle.loads(pickle.dumps(job)).digest() == job.digest()


class TestCacheCorrectness:
    def test_cache_hit_replays_bit_identical_result(self, tmp_path):
        job = _job()
        with ExecutionEngine(cache=ResultCache(tmp_path)) as eng:
            first = eng.run_job(job)
            assert eng.stats.executed == 1
        # Fresh engine, same disk cache: hit, nothing executed.
        with ExecutionEngine(cache=ResultCache(tmp_path)) as eng:
            second = eng.run_job(job)
            assert eng.stats.cache_hits == 1
            assert eng.stats.executed == 0
            assert eng.stats.hit_rate == 1.0
        _assert_identical(first, second)

    def test_changed_config_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        with ExecutionEngine(cache=cache) as eng:
            eng.run_job(_job())
        with ExecutionEngine(cache=cache) as eng:
            eng.run_job(_job(config=NetSparseConfig(n_rig_units=16)))
            assert eng.stats.cache_hits == 0
            assert eng.stats.executed == 1

    def test_in_batch_duplicates_are_memo_hits(self):
        with ExecutionEngine() as eng:
            a, b = eng.run_jobs([_job(), _job()])
            assert eng.stats.executed == 1
            assert eng.stats.memo_hits == 1
        _assert_identical(a, b)

    def test_corrupt_entry_reads_as_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = _job()
        with ExecutionEngine(cache=cache) as eng:
            eng.run_job(job)
        path = cache._path(job.digest())
        path.write_bytes(b"not a pickle")
        assert cache.get(job.digest()) is None
        assert not path.exists()  # dropped, not retried forever
        with ExecutionEngine(cache=cache) as eng:
            eng.run_job(job)
            assert eng.stats.executed == 1

    def test_info_and_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        with ExecutionEngine(cache=cache) as eng:
            eng.run_jobs([_job(), _job(scheme="suopt")])
        info = cache.info()
        assert info.n_entries == 2
        assert info.total_bytes > 0
        assert info.by_scheme == {"netsparse": 1, "suopt": 1}
        assert "entries      : 2" in info.format()
        assert cache.clear() == 2
        assert cache.info().n_entries == 0


class TestParallelEqualsSerial:
    def test_jobs4_matches_serial_bitwise(self, tmp_path):
        jobs = [
            _job(scheme=s, k=k)
            for s in ("netsparse", "saopt", "suopt", "hybrid")
            for k in (1, 16)
        ]
        with ExecutionEngine(jobs=1) as eng:
            serial = eng.run_jobs(jobs)
        with ExecutionEngine(jobs=4, cache=ResultCache(tmp_path)) as eng:
            par = eng.run_jobs(jobs)
            assert eng.stats.executed == len(jobs)
        for a, b in zip(serial, par):
            _assert_identical(a, b)
        # And the parallel run populated the cache for all jobs.
        assert ResultCache(tmp_path).info().n_entries == len(jobs)


class TestEngineGlobals:
    def test_engine_scope_restores_previous(self):
        outer = get_engine()
        inner = ExecutionEngine()
        with engine_scope(inner):
            assert get_engine() is inner
        assert get_engine() is outer

    def test_configure_engine_installs_default(self, tmp_path):
        previous = set_engine(None)
        try:
            eng = configure_engine(jobs=2, cache_dir=tmp_path)
            assert get_engine() is eng
            assert eng.jobs == 2
            assert eng.cache is not None
            uncached = configure_engine(jobs=1, use_cache=False)
            assert uncached.cache is None
        finally:
            get_engine().close()
            set_engine(previous)

    def test_simulate_front_door(self):
        with engine_scope(ExecutionEngine()):
            res = simulate("netsparse", MAT, K, scale_name="tiny")
            (again,) = simulate_many([_job()])
            assert get_engine().stats.memo_hits == 1
        _assert_identical(res, again)


class TestRunnerIntegration:
    def test_run_schemes_goes_through_engine(self):
        with engine_scope(ExecutionEngine()) as eng:
            out = run_schemes(MAT, K, scale_name="tiny",
                              schemes=("netsparse", "suopt"))
            assert eng.stats.jobs == 2
        direct = simulate("netsparse", MAT, K, scale_name="tiny")
        _assert_identical(out["netsparse"], direct)
        assert out["suopt"].scheme == "suopt"

    def test_run_schemes_explicit_topology_bypasses_engine(self):
        from repro.cluster import build_cluster_topology

        topo = build_cluster_topology(NetSparseConfig())
        with engine_scope(ExecutionEngine()) as eng:
            out = run_schemes(MAT, K, scale_name="tiny", topology=topo,
                              schemes=("netsparse",))
            # Arbitrary topology objects are not content-addressable.
            assert eng.stats.jobs == 0
        assert out["netsparse"].total_time > 0


class TestCli:
    def test_run_uses_cache_and_prints_stats(self, tmp_path, capsys):
        previous = set_engine(None)
        try:
            assert main(["run", "fig14", "--scale", "tiny",
                         "--cache-dir", str(tmp_path)]) == 0
            cold = capsys.readouterr().out
            assert "[engine]" in cold and "executed=" in cold
            assert main(["run", "fig14", "--scale", "tiny",
                         "--cache-dir", str(tmp_path), "--jobs", "2"]) == 0
            warm = capsys.readouterr().out
            assert "hit-rate=100%" in warm

            def tables(text):
                return [ln for ln in text.splitlines()
                        if ln.startswith("|")]

            assert tables(cold) == tables(warm)
        finally:
            get_engine().close()
            set_engine(previous)

    def test_no_cache_flag(self, tmp_path, capsys):
        previous = set_engine(None)
        try:
            assert main(["run", "fig14", "--scale", "tiny", "--no-cache",
                         "--cache-dir", str(tmp_path)]) == 0
            capsys.readouterr()
            assert ResultCache(tmp_path).info().n_entries == 0
        finally:
            get_engine().close()
            set_engine(previous)

    def test_cache_info_and_clear_subcommands(self, tmp_path, capsys):
        with ExecutionEngine(cache=ResultCache(tmp_path)) as eng:
            eng.run_job(_job())
        assert main(["cache", "info", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "entries      : 1" in out
        assert main(["cache", "clear", "--cache-dir", str(tmp_path)]) == 0
        assert "removed 1 cached files" in capsys.readouterr().out
        assert ResultCache(tmp_path).info().n_entries == 0

    def test_unknown_experiment_fails(self, tmp_path, capsys):
        previous = set_engine(None)
        try:
            assert main(["run", "nonesuch", "--no-cache"]) == 1
        finally:
            get_engine().close()
            set_engine(previous)
