"""Unit tests for the flow-level timing model."""

import numpy as np
import pytest

from repro.network import LeafSpine, flow_completion_time
from repro.network.topology import LINK_BANDWIDTH_BYTES


@pytest.fixture(scope="module")
def topo():
    return LeafSpine(n_racks=2, nodes_per_rack=4, n_spines=2)


def test_single_flow_time(topo):
    n = topo.n_nodes
    tm = np.zeros((n, n))
    tm[0, 1] = LINK_BANDWIDTH_BYTES  # one second of wire bytes
    res = flow_completion_time(topo, tm)
    assert res.total_time == pytest.approx(1.0 + res.latency_term)
    assert res.latency_term == pytest.approx(2.4e-6)


def test_zero_traffic(topo):
    n = topo.n_nodes
    res = flow_completion_time(topo, np.zeros((n, n)))
    assert res.total_time == 0.0


def test_incast_bottleneck_is_receiver(topo):
    """Many senders to one receiver: the receiver's host link binds."""
    n = topo.n_nodes
    tm = np.zeros((n, n))
    for s in range(1, n):
        tm[s, 0] = LINK_BANDWIDTH_BYTES / 4
    res = flow_completion_time(topo, tm)
    expected = (n - 1) / 4  # all bytes through node 0's ejection link
    assert res.total_time == pytest.approx(expected + res.latency_term, rel=1e-6)
    assert res.tail_node == 0


def test_efficiency_derates_linearly(topo):
    n = topo.n_nodes
    tm = np.zeros((n, n))
    tm[0, 5] = LINK_BANDWIDTH_BYTES
    full = flow_completion_time(topo, tm, efficiency=1.0)
    half = flow_completion_time(topo, tm, efficiency=0.5)
    assert (half.total_time - half.latency_term) == pytest.approx(
        2 * (full.total_time - full.latency_term), rel=1e-9
    )


def test_efficiency_validation(topo):
    n = topo.n_nodes
    with pytest.raises(ValueError):
        flow_completion_time(topo, np.zeros((n, n)), efficiency=0.0)
    with pytest.raises(ValueError):
        flow_completion_time(topo, np.zeros((n, n)), efficiency=1.5)


def test_traffic_shape_validation(topo):
    with pytest.raises(ValueError):
        flow_completion_time(topo, np.zeros((3, 3)))


def test_explicit_latency_override(topo):
    n = topo.n_nodes
    tm = np.zeros((n, n))
    tm[0, 1] = 100.0
    res = flow_completion_time(topo, tm, latency_rtt=1.0)
    assert res.latency_term == 1.0


def test_diagonal_traffic_ignored(topo):
    n = topo.n_nodes
    tm = np.zeros((n, n))
    np.fill_diagonal(tm, 1e12)
    res = flow_completion_time(topo, tm)
    assert res.total_time == 0.0
    assert res.node_send_time.max() == 0.0


def test_tail_node_identifies_heaviest(topo):
    n = topo.n_nodes
    tm = np.zeros((n, n))
    tm[2, 6] = 5 * LINK_BANDWIDTH_BYTES
    tm[1, 4] = 1 * LINK_BANDWIDTH_BYTES
    res = flow_completion_time(topo, tm)
    assert res.tail_node in (2, 6)
    assert res.node_send_time[2] == pytest.approx(5.0)
