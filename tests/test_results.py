"""Tests for the CommResult record and its derived statistics."""

import numpy as np
import pytest

from repro.results import CommResult


def make(per_node_time, recv=None, useful=None, **kw):
    n = len(per_node_time)
    defaults = dict(
        scheme="test",
        matrix_name="m",
        k=16,
        n_nodes=n,
        total_time=float(max(per_node_time)),
        per_node_time=np.asarray(per_node_time, dtype=float),
        recv_wire_bytes=np.asarray(recv if recv is not None else [0.0] * n),
        sent_wire_bytes=np.zeros(n),
        useful_payload_bytes=np.asarray(
            useful if useful is not None else [0.0] * n
        ),
        link_bandwidth=50e9,
    )
    defaults.update(kw)
    return CommResult(**defaults)


def test_tail_node_is_argmax():
    res = make([1.0, 5.0, 2.0])
    assert res.tail_node == 1


def test_fc_rate():
    res = make([1.0], n_pr_candidates=100, n_filtered=30, n_coalesced=20)
    assert res.fc_rate == pytest.approx(0.5)
    assert make([1.0]).fc_rate == 0.0


def test_avg_prs_per_packet():
    res = make([1.0], n_prs_issued=100, n_packets=20)
    assert res.avg_prs_per_packet == 5.0
    assert make([1.0]).avg_prs_per_packet == 0.0


def test_cache_hit_rate():
    res = make([1.0], cache_lookups=50, cache_hits=10)
    assert res.cache_hit_rate == 0.2
    assert make([1.0]).cache_hit_rate == 0.0


def test_goodput_and_utilization():
    res = make([2.0], recv=[100e9], useful=[50e9])
    # total_time 2s at 50 GB/s line.
    assert res.line_utilization(0) == pytest.approx(1.0)
    assert res.goodput(0) == pytest.approx(0.5)


def test_goodput_defaults_to_tail():
    res = make([1.0, 4.0], recv=[10.0, 200e9], useful=[1.0, 100e9])
    assert res.goodput() == res.goodput(1)


def test_zero_time_rates_are_zero():
    res = make([0.0], recv=[100.0], useful=[100.0], total_time=0.0)
    assert res.goodput() == 0.0
    assert res.line_utilization() == 0.0


def test_tail_traffic_bytes():
    res = make([1.0, 9.0], recv=[5.0, 7.0])
    assert res.tail_traffic_bytes() == 7.0


def test_active_nodes_curve_monotone():
    res = make([1.0, 2.0, 3.0, 4.0])
    t, active = res.active_nodes_over_time(20)
    assert active[0] == 4
    assert active[-1] == 0
    assert (np.diff(active) <= 0).all()
    assert t[0] == 0.0 and t[-1] == pytest.approx(4.0)
