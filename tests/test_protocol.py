"""Tests for the NetSparse protocol header math (§6.1.1, Table 3)."""

import pytest

from repro.config import NetSparseConfig
from repro.core.protocol import (
    NetSparsePacket,
    PRHeader,
    PRType,
    concat_header_savings,
    header_traffic_fraction,
    sa_pair_header_bytes,
)

CFG = NetSparseConfig()


def prs(n):
    return [PRHeader(src=0, src_tid=0, idx=i, request_id=i) for i in range(n)]


def test_vanilla_header_is_78_bytes():
    # §6.1.1: 50 + 10 + 18 = 78.
    assert CFG.vanilla_pr_header == 78


def test_concat_packet_formula_matches_paper():
    # §6.1.1: a packet with N PRs has 50 + 14 + 18N = 64 + 18N header.
    for n in (2, 5, 10):
        assert CFG.concat_packet_bytes(n, 0) == 64 + 18 * n


def test_single_pr_packet_uses_solo_header():
    assert CFG.concat_packet_bytes(1, 0) == 78
    assert CFG.concat_packet_bytes(1, 64) == 78 + 64


def test_concat_always_cheaper_for_n_over_1():
    for n in range(2, 60):
        for payload in (0, 4, 64, 512):
            solo = n * (CFG.vanilla_pr_header + payload)
            packed = CFG.concat_packet_bytes(n, payload)
            assert packed < solo


def test_concat_header_savings():
    assert concat_header_savings(1) == 0.0
    # N=2: 156 solo vs 64 + 36 = 100 -> saves 56.
    assert concat_header_savings(2) == 56.0
    with pytest.raises(ValueError):
        concat_header_savings(0)


def test_max_prs_per_packet_respects_mtu():
    for k in (1, 16, 128):
        payload = CFG.property_bytes(k)
        n = CFG.max_prs_per_packet(payload)
        assert CFG.concat_packet_bytes(n, payload) <= CFG.mtu or n == 1
        assert CFG.concat_packet_bytes(n + 1, payload) > CFG.mtu


def test_max_prs_read_direction():
    # Read PRs have no payload: (1500 - 64) / 18 = 79 PRs.
    assert CFG.max_prs_per_packet(0) == 79


def test_table3_header_fractions():
    """Table 3: header share of SA traffic for K = 1 .. 256.

    The paper's numbers (97.6 ... 13.5%) count the request+response
    pair; our formula 156/(156+4K) must land within a point or two.
    """
    paper = {1: 97.6, 2: 95.2, 4: 90.9, 8: 83.3, 16: 71.4,
             32: 55.6, 64: 38.5, 128: 23.8, 256: 13.5}
    for k, expected in paper.items():
        got = header_traffic_fraction(k) * 100
        assert got == pytest.approx(expected, abs=2.5), f"K={k}"


def test_header_fraction_decreases_with_k():
    fracs = [header_traffic_fraction(k) for k in (1, 4, 16, 64, 256)]
    assert fracs == sorted(fracs, reverse=True)


def test_sa_pair_header_bytes():
    assert sa_pair_header_bytes(CFG) == 156


def test_packet_validation():
    with pytest.raises(ValueError):
        NetSparsePacket(PRType.READ, dest=0, prop_len=0, prs=[])
    with pytest.raises(ValueError):
        NetSparsePacket("bogus", dest=0, prop_len=0, prs=prs(1))


def test_packet_wire_bytes():
    pkt = NetSparsePacket(PRType.RESPONSE, dest=3, prop_len=64, prs=prs(4))
    assert pkt.payload_bytes() == 256
    assert pkt.wire_bytes(CFG) == 64 + 4 * (18 + 64)
    assert pkt.fits_mtu(CFG)
    read = NetSparsePacket(PRType.READ, dest=3, prop_len=64, prs=prs(4))
    assert read.payload_bytes() == 0


def test_property_bytes_validation():
    assert CFG.property_bytes(16) == 64
    with pytest.raises(ValueError):
        CFG.property_bytes(0)
