"""Tests for the future-work extensions: autotuning, iterative kernels
with sampling, and the SpGeMM communication analysis."""

import numpy as np
import pytest

from repro.cluster.iterative import (
    run_iterations,
    sample_matrix,
)
from repro.config import NetSparseConfig
from repro.core.autotune import tune_rig_batch
from repro.core.rig import rig_generation_time
from repro.sparse import COOMatrix
from repro.sparse.spgemm import spgemm, spgemm_comm_analysis
from repro.sparse.suite import load_benchmark
from repro.sparse.synthetic import web_crawl


class TestAutotune:
    def evaluate(self, batch):
        # The real makespan tradeoff: small batches pay command
        # overhead, huge ones lose unit parallelism.
        return rig_generation_time(1 << 20, 16, batch, freq=2.2e9,
                                   cmd_overhead=1e-6)

    def test_finds_interior_optimum(self):
        result = tune_rig_batch(self.evaluate)
        ladder_best = min(
            (self.evaluate(1 << b) for b in range(10, 21, 2))
        )
        assert result.best_time <= ladder_best
        assert 1024 < result.best_batch < (1 << 20)

    def test_refinement_only_improves(self):
        coarse = tune_rig_batch(self.evaluate, refine_steps=0)
        refined = tune_rig_batch(self.evaluate, refine_steps=3)
        assert refined.best_time <= coarse.best_time

    def test_probe_budget_is_small(self):
        result = tune_rig_batch(self.evaluate)
        assert result.n_evaluations <= 14

    def test_speedup_over_static(self):
        result = tune_rig_batch(self.evaluate, ladder=[1024, 32 * 1024])
        assert result.speedup_over(1024) >= 1.0
        with pytest.raises(KeyError):
            result.speedup_over(999)

    def test_validation(self):
        with pytest.raises(ValueError):
            tune_rig_batch(self.evaluate, ladder=[0])


class TestSampling:
    def test_sample_keeps_fraction(self):
        mat = web_crawl(n=2048, mean_degree=16, seed=0)
        sampled = sample_matrix(mat, 0.5, seed=1)
        assert 0.4 * mat.nnz < sampled.nnz < 0.6 * mat.nnz
        assert sampled.n_rows == mat.n_rows

    def test_sample_full_is_identity(self):
        mat = web_crawl(n=512, mean_degree=4, seed=0)
        assert sample_matrix(mat, 1.0, seed=0) is mat

    def test_sample_preserves_values(self):
        mat = web_crawl(n=512, mean_degree=4, seed=0).with_random_values(1)
        sampled = sample_matrix(mat, 0.5, seed=2)
        # Each surviving (row, col, val) triple exists in the original.
        orig = {(r, c): v for r, c, v in
                zip(mat.rows, mat.cols, mat.vals)}
        for r, c, v in zip(sampled.rows, sampled.cols, sampled.vals):
            assert orig[(int(r), int(c))] == v

    def test_sample_validation(self):
        mat = web_crawl(n=512, mean_degree=4, seed=0)
        with pytest.raises(ValueError):
            sample_matrix(mat, 0.0, seed=0)


class TestIterativeKernel:
    CFG = NetSparseConfig(n_nodes=16, n_racks=4, nodes_per_rack=4)

    def topo(self):
        from repro.network import LeafSpine

        return LeafSpine(n_racks=4, nodes_per_rack=4, n_spines=2)

    def test_aggregates_iterations(self):
        mat = load_benchmark("queen", "tiny")
        res = run_iterations(mat, 16, 4, self.CFG, self.topo(), scale=0.01)
        assert res.n_iterations == 4
        assert res.total_time == pytest.approx(
            sum(r.total_time for r in res.per_iteration)
        )
        assert res.total_wire_bytes > 0

    def test_unsampled_iterations_identical(self):
        mat = load_benchmark("queen", "tiny")
        res = run_iterations(mat, 16, 3, self.CFG, self.topo(), scale=0.01)
        times = [r.total_time for r in res.per_iteration]
        assert times[0] == times[1] == times[2]
        assert res.time_cv == 0.0

    def test_sampling_varies_iterations(self):
        mat = load_benchmark("queen", "tiny")
        res = run_iterations(mat, 16, 4, self.CFG, self.topo(),
                             sample_fraction=0.5, scale=0.01, seed=3)
        assert res.time_cv > 0.0
        assert res.mean_time < run_iterations(
            mat, 16, 1, self.CFG, self.topo(), scale=0.01
        ).mean_time

    def test_validation(self):
        mat = load_benchmark("queen", "tiny")
        with pytest.raises(ValueError):
            run_iterations(mat, 16, 0, self.CFG)


class TestSpGemm:
    def make_pair(self):
        a = web_crawl(n=4096, mean_degree=4, seed=1, name="A",
                      block_size=256).with_random_values(2)
        b = web_crawl(n=4096, mean_degree=3, seed=3, name="B",
                      block_size=256).with_random_values(4)
        return a, b

    def test_reference_kernel_matches_scipy(self):
        a, b = self.make_pair()
        c = spgemm(a, b)
        expected = (a.to_scipy() @ b.to_scipy()).toarray()
        np.testing.assert_allclose(c.to_scipy().toarray(), expected,
                                   rtol=1e-12)

    def test_dimension_check(self):
        a, _ = self.make_pair()
        bad = COOMatrix(100, 100, np.array([0]), np.array([1]))
        with pytest.raises(ValueError):
            spgemm(a, bad)
        with pytest.raises(ValueError):
            spgemm_comm_analysis(a, bad, 8)

    def test_comm_accounting(self):
        a, b = self.make_pair()
        stats = spgemm_comm_analysis(a, b, 8)
        assert stats.unique_row_requests <= stats.row_requests
        assert stats.issued_after_fc <= stats.row_requests
        assert stats.issued_after_fc >= stats.unique_row_requests
        # SU replicates all of B: orders of magnitude of overfetch.
        assert stats.su_overfetch > 5
        assert stats.useful_bytes <= stats.sa_bytes

    def test_filtering_helps_spgemm_too(self):
        """The paper's future-work premise: the same idx-reuse that
        NetSparse exploits for SpMM exists in SpGeMM row requests."""
        a, b = self.make_pair()
        stats = spgemm_comm_analysis(a, b, 8)
        assert stats.fc_rate > 0.3

    def test_max_row_bytes_for_cache_tiling(self):
        a, b = self.make_pair()
        stats = spgemm_comm_analysis(a, b, 8)
        row_nnz = np.bincount(b.rows, minlength=b.n_rows)
        assert stats.max_row_bytes == row_nnz.max() * 8
