"""Tests for Idx-Filter / Pending-PR-Table semantics (filter + coalesce)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.filtering import filter_and_coalesce


def test_no_duplicates_nothing_dropped():
    idxs = np.arange(100)
    res = filter_and_coalesce(idxs, n_units=4, batch_size=8, inflight_window=16)
    assert res.n_issued == 100
    assert res.n_dropped == 0
    assert res.fc_rate == 0.0


def test_empty_stream():
    res = filter_and_coalesce(np.array([], dtype=np.int64))
    assert res.n_total == 0
    assert res.fc_rate == 0.0


def test_same_unit_duplicate_coalesced():
    # Two occurrences within the window, same unit (single unit).
    idxs = np.array([5, 5])
    res = filter_and_coalesce(idxs, n_units=1, batch_size=10, inflight_window=100)
    assert res.n_issued == 1
    assert res.n_coalesced == 1
    assert res.n_filtered == 0


def test_completed_duplicate_filtered_any_unit():
    # Second occurrence far beyond the window, on a different unit.
    idxs = np.array([7] + [100 + i for i in range(50)] + [7])
    res = filter_and_coalesce(idxs, n_units=2, batch_size=4, inflight_window=10)
    assert res.n_filtered == 1
    assert res.n_coalesced == 0
    assert res.n_issued == 51


def test_cross_unit_inflight_duplicate_escapes():
    """Duplicates in flight from different units are NOT eliminated
    (the paper's no-cross-unit-synchronization design decision)."""
    # batch_size=1 -> positions 0 and 1 are units 0 and 1.
    idxs = np.array([9, 9])
    res = filter_and_coalesce(idxs, n_units=2, batch_size=1, inflight_window=100)
    assert res.n_issued == 2
    assert res.n_dropped == 0


def test_filtering_disabled():
    idxs = np.array([7] + list(range(100, 150)) + [7])
    res = filter_and_coalesce(
        idxs, n_units=2, batch_size=4, inflight_window=10,
        enable_filtering=False,
    )
    assert res.n_filtered == 0
    # Different batch -> possibly different unit; the late duplicate is
    # "completed" so coalescing doesn't catch it either.
    assert res.n_coalesced == 0


def test_coalescing_disabled():
    idxs = np.array([5, 5])
    res = filter_and_coalesce(
        idxs, n_units=1, batch_size=10, inflight_window=100,
        enable_coalescing=False,
    )
    assert res.n_issued == 2


def test_unit_assignment_round_robin():
    idxs = np.arange(12)
    res = filter_and_coalesce(idxs, n_units=3, batch_size=2, inflight_window=1)
    np.testing.assert_array_equal(
        res.unit_of, [0, 0, 1, 1, 2, 2, 0, 0, 1, 1, 2, 2]
    )


def test_parameter_validation():
    with pytest.raises(ValueError):
        filter_and_coalesce(np.array([1]), n_units=0)
    with pytest.raises(ValueError):
        filter_and_coalesce(np.array([1]), batch_size=0)
    with pytest.raises(ValueError):
        filter_and_coalesce(np.array([1]), inflight_window=-1)


def test_fc_rate_definition():
    idxs = np.array([1, 1, 1, 1])
    res = filter_and_coalesce(idxs, n_units=1, batch_size=8, inflight_window=100)
    assert res.n_issued == 1
    assert res.fc_rate == pytest.approx(0.75)


@settings(max_examples=200, deadline=None)
@given(
    idxs=st.lists(st.integers(0, 30), max_size=300),
    n_units=st.integers(1, 8),
    batch=st.integers(1, 64),
    window=st.integers(0, 200),
    filt=st.booleans(),
    coal=st.booleans(),
)
def test_property_first_occurrence_always_issued(idxs, n_units, batch, window,
                                                 filt, coal):
    """INVARIANT: the set of issued idxs equals the set of needed idxs —
    elimination never loses a property."""
    arr = np.array(idxs, dtype=np.int64)
    res = filter_and_coalesce(
        arr, n_units=n_units, batch_size=batch, inflight_window=window,
        enable_filtering=filt, enable_coalescing=coal,
    )
    issued = set(arr[res.issued_mask].tolist())
    assert issued == set(idxs)
    # Bookkeeping adds up.
    assert res.n_issued + res.n_filtered + res.n_coalesced == len(idxs)


@settings(max_examples=100, deadline=None)
@given(
    idxs=st.lists(st.integers(0, 10), min_size=1, max_size=200),
    window=st.integers(0, 50),
)
def test_property_single_unit_full_dedup_within_window_or_filter(idxs, window):
    """With one unit and both mechanisms on, every duplicate is dropped:
    coalescing catches in-flight ones, filtering the completed ones."""
    arr = np.array(idxs, dtype=np.int64)
    res = filter_and_coalesce(arr, n_units=1, batch_size=32,
                              inflight_window=window)
    assert res.n_issued == len(set(idxs))


@settings(max_examples=100, deadline=None)
@given(idxs=st.lists(st.integers(0, 20), max_size=200))
def test_property_disabling_both_issues_everything(idxs):
    arr = np.array(idxs, dtype=np.int64)
    res = filter_and_coalesce(arr, enable_filtering=False,
                              enable_coalescing=False)
    assert res.n_issued == len(idxs)
