"""Tests for the FaultPlan schema: validation, identity, determinism."""

import pickle

import pytest

from repro.faults import (
    CacheFault,
    FaultPlan,
    LinkFault,
    NicFault,
    StragglerFault,
    SwitchFault,
    hash_uniform,
    select_nodes,
)


class TestHashUniform:
    def test_deterministic_and_in_range(self):
        draws = [hash_uniform(7, "drop.link3", n) for n in range(200)]
        assert draws == [hash_uniform(7, "drop.link3", n) for n in range(200)]
        assert all(0.0 <= d < 1.0 for d in draws)

    def test_streams_and_seeds_independent(self):
        assert hash_uniform(7, "a", 0) != hash_uniform(7, "b", 0)
        assert hash_uniform(7, "a", 0) != hash_uniform(8, "a", 0)
        assert hash_uniform(7, "a", 0) != hash_uniform(7, "a", 1)

    def test_roughly_uniform(self):
        draws = [hash_uniform(1, "u", n) for n in range(2000)]
        mean = sum(draws) / len(draws)
        assert 0.45 < mean < 0.55


class TestSelectNodes:
    def test_global_scopes_touch_every_node(self):
        for scope in ("all", "host", "fabric"):
            assert list(select_nodes(scope, 8, 4)) == list(range(8))

    def test_rack_and_node_scopes(self):
        assert list(select_nodes("rack:1", 8, 4)) == [4, 5, 6, 7]
        assert list(select_nodes("node:3", 8, 4)) == [3]
        assert list(select_nodes("node:99", 8, 4)) == []
        assert list(select_nodes("rack:5", 8, 4)) == []

    def test_unknown_scope_rejected(self):
        with pytest.raises(ValueError):
            select_nodes("switch:0", 8, 4)


class TestFaultValidation:
    def test_link_fault_bounds(self):
        with pytest.raises(ValueError):
            LinkFault(drop_rate=1.5)
        with pytest.raises(ValueError):
            LinkFault(start=0.8, end=0.2)
        with pytest.raises(ValueError):
            LinkFault(degrade=0.0)
        with pytest.raises(ValueError):
            LinkFault(scope="bogus")

    def test_loss_rate_combines_and_caps(self):
        lf = LinkFault(drop_rate=0.2, corrupt_rate=0.1)
        assert lf.loss_rate == pytest.approx(0.3)
        assert LinkFault(drop_rate=0.9, corrupt_rate=0.9).loss_rate == 0.95

    def test_other_faults_bounds(self):
        with pytest.raises(ValueError):
            SwitchFault(rack=-1)
        with pytest.raises(ValueError):
            NicFault(dead_frac=1.0)
        with pytest.raises(ValueError):
            CacheFault(at=2.0)
        with pytest.raises(ValueError):
            StragglerFault(slowdown=0.5)

    def test_plan_type_checks_entries(self):
        with pytest.raises(TypeError):
            FaultPlan(links=(SwitchFault(),))


class TestFaultPlanIdentity:
    def test_empty_plan(self):
        plan = FaultPlan.empty()
        assert plan.is_empty()
        assert FaultPlan.scaled(0.0).is_empty()
        assert not FaultPlan.scaled(0.5).is_empty()

    def test_json_round_trip_preserves_digest(self):
        plan = FaultPlan.scaled(0.66, seed=13)
        again = FaultPlan.from_json(plan.canonical_json())
        assert again == plan
        assert again.digest() == plan.digest()

    def test_digest_sensitive_to_content(self):
        base = FaultPlan.scaled(0.5)
        assert base.digest() == FaultPlan.scaled(0.5).digest()
        assert base.digest() != FaultPlan.scaled(0.50001).digest()
        assert base.digest() != FaultPlan.scaled(0.5, seed=1).digest()
        assert base.digest() != FaultPlan.empty().digest()

    def test_plan_hashable_and_picklable(self):
        plan = FaultPlan.scaled(0.5)
        assert hash(plan) == hash(FaultPlan.scaled(0.5))
        assert pickle.loads(pickle.dumps(plan)) == plan

    def test_scaled_knobs_grow_with_intensity(self):
        lo, hi = FaultPlan.scaled(0.25), FaultPlan.scaled(0.75)
        assert lo.links[0].loss_rate < hi.links[0].loss_rate
        assert lo.links[0].degrade > hi.links[0].degrade
        assert lo.switches[0].window < hi.switches[0].window
        assert lo.nics[0].dead_frac < hi.nics[0].dead_frac
        assert lo.caches[0].flush_frac < hi.caches[0].flush_frac
        assert lo.stragglers[0].slowdown < hi.stragglers[0].slowdown
