"""Tests for the resilience experiment, its CLI, and fault-aware jobs."""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.config import NetSparseConfig
from repro.experiments.resilience import degradation_report, run_resilience
from repro.faults import FaultPlan
from repro.parallel import (
    ExecutionEngine,
    ResultCache,
    SimJob,
    engine_scope,
    get_engine,
    set_engine,
)

MAT = "queen"
K = 16


def _job(**overrides) -> SimJob:
    base = dict(scheme="netsparse", matrix=MAT, k=K,
                config=NetSparseConfig(), scale_name="tiny")
    base.update(overrides)
    return SimJob(**base)


class TestFaultAwareJobs:
    def test_faults_change_the_digest(self):
        plain = _job()
        faulty = _job(faults=FaultPlan.scaled(0.5).canonical_json())
        other = _job(faults=FaultPlan.scaled(0.7).canonical_json())
        assert plain.digest() != faulty.digest()
        assert faulty.digest() != other.digest()
        assert faulty.digest() == _job(
            faults=FaultPlan.scaled(0.5).canonical_json()
        ).digest()

    def test_invalid_faults_rejected_eagerly(self):
        with pytest.raises(ValueError):
            _job(faults=FaultPlan.scaled(0.5))  # the object, not its JSON
        with pytest.raises(json.JSONDecodeError):
            _job(faults="not json")

    def test_executed_result_carries_the_penalty(self):
        plan = FaultPlan.scaled(0.5)
        with ExecutionEngine() as eng:
            clean, hurt = eng.run_jobs([
                _job(), _job(faults=plan.canonical_json()),
            ])
        assert hurt.total_time > clean.total_time
        assert hurt.extras["faults"]["plan"] == plan.canonical_dict()
        assert "faults" not in clean.extras

    def test_faulty_and_clean_never_share_cache_entries(self, tmp_path):
        plan = FaultPlan.scaled(0.5)
        jobs = [_job(), _job(faults=plan.canonical_json())]
        with ExecutionEngine(cache=ResultCache(tmp_path)) as eng:
            first = eng.run_jobs(jobs)
            assert eng.stats.executed == 2
        with ExecutionEngine(cache=ResultCache(tmp_path)) as eng:
            second = eng.run_jobs(jobs)
            assert eng.stats.cache_hits == 2
        for a, b in zip(first, second):
            assert a.total_time == b.total_time
            np.testing.assert_array_equal(a.per_node_time, b.per_node_time)


class TestResilienceExperiment:
    @pytest.fixture(scope="class")
    def table(self):
        with engine_scope(ExecutionEngine()):
            return run_resilience(scale="tiny", matrices=("queen",),
                                  intensities=(0.0, 0.5, 1.0))

    def test_rows_cover_the_sweep(self, table):
        assert table.exp_id == "resilience"
        assert table.column("intensity") == [0.0, 0.5, 1.0]
        assert table.row_by("intensity", 0.0)[-1] == 1.0  # no penalty

    def test_speedup_strictly_decreasing(self, table):
        speedups = table.column("NS/SUOpt x")
        assert all(a > b for a, b in zip(speedups, speedups[1:])), speedups

    def test_penalty_strictly_increasing(self, table):
        penalties = table.column("NS penalty x")
        assert all(a < b for a, b in zip(penalties, penalties[1:]))

    def test_degradation_report_markdown(self, table):
        md = degradation_report(table)
        assert md.startswith("# NetSparse degradation report")
        assert "| intensity |" in md.replace("|intensity", "| intensity")
        assert "retains" in md
        # One markdown row per sweep point (+ header + separator).
        assert sum(ln.startswith("|") for ln in md.splitlines()) == 5


class TestResilienceCli:
    def test_smoke_writes_artifacts_and_passes(self, tmp_path, capsys):
        previous = set_engine(None)
        try:
            rc = main(["resilience", "--smoke", "-o", str(tmp_path)])
        finally:
            get_engine().close()
            set_engine(previous)
        out = capsys.readouterr().out
        assert rc == 0
        assert "[smoke] degradation monotone" in out
        assert "faults." in out
        md = tmp_path / "resilience_tiny.md"
        metrics = tmp_path / "resilience_tiny.metrics.json"
        assert md.exists() and metrics.exists()
        assert "degradation report" in md.read_text()
        dumped = json.loads(metrics.read_text())
        counters = dumped.get("counters", {})
        assert any(k.startswith("faults.") and v > 0
                   for k, v in counters.items())
