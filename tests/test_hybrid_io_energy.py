"""Tests for the hybrid baseline, matrix I/O, DES monitoring, and the
communication energy model."""

import numpy as np
import pytest

from repro.baselines.hybrid import (
    choose_threshold,
    simulate_hybrid,
    split_columns,
)
from repro.baselines.saopt import simulate_saopt
from repro.baselines.su import simulate_suopt
from repro.config import NetSparseConfig
from repro.hw.energy import EnergyCoefficients, communication_energy
from repro.sparse.io import (
    load_npz,
    read_matrix_market,
    save_npz,
    write_matrix_market,
)
from repro.sparse.suite import load_benchmark
from repro.sparse.synthetic import web_crawl

CFG16 = NetSparseConfig(n_nodes=16, n_racks=4, nodes_per_rack=4)


class TestHybridBaseline:
    @pytest.fixture(scope="class")
    def crawl(self):
        return load_benchmark("arabic", "tiny")

    def test_split_partitions_columns(self, crawl):
        split = split_columns(crawl, 16, threshold=2, k=16, config=CFG16)
        assert split.n_su_columns > 0
        assert split.n_sa_columns > 0
        assert (split.sa_prs_per_node >= 0).all()

    def test_threshold_monotone(self, crawl):
        lo = split_columns(crawl, 16, threshold=1, k=16, config=CFG16)
        hi = split_columns(crawl, 16, threshold=8, k=16, config=CFG16)
        assert lo.n_su_columns >= hi.n_su_columns
        assert lo.sa_prs_per_node.sum() <= hi.sa_prs_per_node.sum()

    def test_hybrid_never_loses_to_saopt(self, crawl):
        """The hybrid degenerates to SAOpt at threshold=inf, so the
        tuned hybrid is at least as fast."""
        sc = 0.01
        hy = simulate_hybrid(crawl, 16, CFG16, scale=sc)
        sa = simulate_saopt(crawl, 16, CFG16, scale=sc)
        assert hy.total_time <= sa.total_time * 1.001

    def test_hybrid_beats_su_on_reuse_heavy_matrix(self, crawl):
        hy = simulate_hybrid(crawl, 16, CFG16, scale=0.01)
        su = simulate_suopt(crawl, 16, CFG16)
        assert hy.total_time < su.total_time

    def test_choose_threshold_returns_candidate(self, crawl):
        t = choose_threshold(crawl, 16, CFG16, candidates=(1, 4, 15))
        assert t in (1, 4, 15)

    def test_extras_recorded(self, crawl):
        hy = simulate_hybrid(crawl, 16, CFG16, threshold=2, scale=0.01)
        assert hy.extras["threshold"] == 2
        assert hy.scheme == "hybrid"


class TestMatrixIO:
    def test_npz_roundtrip(self, tmp_path):
        mat = web_crawl(n=256, mean_degree=4, seed=1).with_random_values(2)
        path = tmp_path / "m.npz"
        save_npz(mat, path)
        back = load_npz(path)
        assert back.shape == mat.shape
        np.testing.assert_array_equal(back.rows, mat.rows)
        np.testing.assert_array_equal(back.cols, mat.cols)
        np.testing.assert_allclose(back.vals, mat.vals)
        assert back.name == mat.name

    def test_npz_structure_only(self, tmp_path):
        mat = web_crawl(n=128, mean_degree=4, seed=1)
        path = tmp_path / "p.npz"
        save_npz(mat, path)
        assert load_npz(path).vals is None

    def test_mtx_roundtrip_real(self, tmp_path):
        mat = web_crawl(n=128, mean_degree=4, seed=3).with_random_values(4)
        path = tmp_path / "m.mtx"
        write_matrix_market(mat, path)
        back = read_matrix_market(path)
        assert back.shape == mat.shape
        assert back.nnz == mat.nnz
        np.testing.assert_allclose(back.vals, mat.vals)

    def test_mtx_roundtrip_pattern(self, tmp_path):
        mat = web_crawl(n=128, mean_degree=4, seed=3)
        path = tmp_path / "p.mtx"
        write_matrix_market(mat, path)
        back = read_matrix_market(path)
        assert back.vals is None
        assert back.nnz == mat.nnz

    def test_mtx_symmetric_expansion(self, tmp_path):
        path = tmp_path / "s.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real symmetric\n"
            "3 3 3\n"
            "1 1 5.0\n"
            "2 1 7.0\n"
            "3 2 9.0\n"
        )
        mat = read_matrix_market(path)
        dense = mat.to_scipy().toarray()
        expected = np.array([[5, 7, 0], [7, 0, 9], [0, 9, 0]], dtype=float)
        np.testing.assert_allclose(dense, expected)

    def test_mtx_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.mtx"
        path.write_text("not a matrix\n1 2 3\n")
        with pytest.raises(ValueError):
            read_matrix_market(path)

    def test_mtx_rejects_array_format(self, tmp_path):
        path = tmp_path / "arr.mtx"
        path.write_text("%%MatrixMarket matrix array real general\n2 2\n")
        with pytest.raises(ValueError):
            read_matrix_market(path)


class TestMonitoring:
    def test_latency_probe_stats(self):
        from repro.dessim.monitoring import LatencyProbe
        from repro.sim import Simulator

        sim = Simulator()
        probe = LatencyProbe(sim)

        def proc():
            probe.issued(1)
            probe.issued(2)
            yield sim.timeout(3.0)
            probe.completed(1)
            yield sim.timeout(2.0)
            probe.completed(2)
            probe.completed(99)   # never issued

        sim.process(proc())
        sim.run()
        stats = probe.stats()
        assert stats.count == 2
        assert stats.max == pytest.approx(5.0)
        assert probe.unmatched_completions == 1
        assert probe.outstanding == 0

    def test_queue_monitor_samples(self):
        from repro.dessim.monitoring import QueueMonitor
        from repro.sim import Simulator, Store

        sim = Simulator()
        store = Store(sim)
        monitor = QueueMonitor(sim, {"q": store}, period=1.0)

        def filler():
            for i in range(5):
                store.try_put(i)
                yield sim.timeout(1.0)

        sim.process(filler())
        sim.run(until=6.0)
        stats = monitor.occupancy_stats()
        assert stats["q"]["max"] >= 4

    def test_queue_monitor_validation(self):
        from repro.dessim.monitoring import QueueMonitor
        from repro.sim import Simulator

        with pytest.raises(ValueError):
            QueueMonitor(Simulator(), {}, period=0.0)

    def test_des_cluster_latency_probe(self):
        from repro.dessim import DesCluster
        from repro.partition import OneDPartition

        mat = web_crawl(n=512, mean_degree=4, seed=2, block_size=64)
        part = OneDPartition(mat, 8)
        cluster = DesCluster(n_racks=2, nodes_per_rack=4, k=16,
                             n_cols=mat.n_cols,
                             col_owner=part.col_owner.astype("int64"),
                             probe_latency=True)
        idxs = {n: t.remote_idxs.tolist()
                for n, t in enumerate(part.node_traces()) if t.remote.any()}
        res = cluster.run_gather(idxs)
        lat = res.extras["latency"]
        assert lat.count == res.issued_prs
        assert 0 < lat.p50 <= lat.p99 <= lat.max


class TestEnergyModel:
    def comm(self, scheme, prs=1000, cache_lookups=0):
        from repro.results import CommResult

        return CommResult(
            scheme=scheme, matrix_name="m", k=16, n_nodes=4,
            total_time=1.0,
            per_node_time=np.ones(4),
            recv_wire_bytes=np.full(4, 1e6),
            sent_wire_bytes=np.full(4, 1e6),
            useful_payload_bytes=np.full(4, 5e5),
            link_bandwidth=50e9,
            n_prs_issued=prs,
            cache_lookups=cache_lookups,
        )

    def test_network_term_proportional_to_bytes(self):
        small = communication_energy(self.comm("suopt"))
        assert small.network_j > 0
        assert small.host_software_j == 0
        assert small.nic_processing_j == 0

    def test_netsparse_pays_rig_energy(self):
        e = communication_energy(self.comm("netsparse", cache_lookups=500))
        assert e.nic_processing_j > 0
        assert e.host_software_j == 0

    def test_saopt_pays_cpu_energy(self):
        e = communication_energy(self.comm("saopt"))
        assert e.host_software_j > 0
        assert e.nic_processing_j == 0

    def test_totals_add_up(self):
        e = communication_energy(self.comm("netsparse"))
        assert e.total_j == pytest.approx(
            e.network_j + e.nic_processing_j + e.host_software_j
        )

    def test_custom_coefficients(self):
        double = EnergyCoefficients(link_j_per_byte=2 * 4e-12 * 8)
        base = communication_energy(self.comm("suopt"))
        up = communication_energy(self.comm("suopt"), coeffs=double)
        assert up.network_j > base.network_j
