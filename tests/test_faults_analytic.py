"""Tests for analytic fault penalties on the trace-level substrate."""

import numpy as np
import pytest

from repro.faults import (
    DegradePolicy,
    FaultPlan,
    LinkFault,
    NicFault,
    SwitchFault,
    apply_faults,
    fault_events,
)
from repro.parallel import ExecutionEngine, engine_scope, simulate

MAT = "queen"
K = 16


@pytest.fixture(scope="module")
def baselines():
    """One fault-free result per scheme (tiny scale, computed once)."""
    with engine_scope(ExecutionEngine()):
        return {
            s: simulate(s, MAT, K, scale_name="tiny")
            for s in ("netsparse", "suopt", "saopt")
        }


class TestEmptyPlan:
    def test_returns_the_same_object(self, baselines):
        res = baselines["netsparse"]
        assert apply_faults(res, FaultPlan.empty()) is res
        assert apply_faults(res, FaultPlan.scaled(0.0)) is res


class TestDeterminism:
    def test_same_plan_identical_output(self, baselines):
        res = baselines["netsparse"]
        plan = FaultPlan.scaled(0.6, seed=3)
        a = apply_faults(res, plan)
        b = apply_faults(res, plan)
        assert a.total_time == b.total_time  # bitwise
        np.testing.assert_array_equal(a.per_node_time, b.per_node_time)
        assert a.extras["faults"] == b.extras["faults"]

    def test_event_log_sorted_and_stable(self):
        plan = FaultPlan.scaled(0.8)
        events = fault_events(plan)
        assert events == fault_events(plan)
        keys = [(e["t"], e["kind"], e["target"]) for e in events]
        assert keys == sorted(keys)
        kinds = {e["kind"] for e in events}
        assert {"link.fault", "switch.fail", "nic.rig_units_fail",
                "cache.flush", "node.straggle"} <= kinds


class TestPenaltyStructure:
    def test_faults_slow_everything_down(self, baselines):
        plan = FaultPlan.scaled(0.5)
        for scheme, res in baselines.items():
            hurt = apply_faults(res, plan)
            assert hurt.total_time > res.total_time
            assert (hurt.per_node_time >= res.per_node_time).all()
            finfo = hurt.extras["faults"]
            assert finfo["max_factor"] > 1.0
            assert finfo["plan"] == plan.canonical_dict()

    def test_netsparse_only_penalties_spare_baselines(self, baselines):
        """RIG/cache faults touch no shared mechanism: software schemes
        pass through them unscathed."""
        plan = FaultPlan(name="ns-only", nics=(NicFault(dead_frac=0.5),))
        su = apply_faults(baselines["suopt"], plan)
        ns = apply_faults(baselines["netsparse"], plan)
        assert su.total_time == baselines["suopt"].total_time
        assert ns.total_time > baselines["netsparse"].total_time

    def test_speedup_decreases_monotonically(self, baselines):
        """The resilience experiment's core claim, at the apply_faults
        level: NS-over-SU speedup strictly decreases with intensity."""
        speedups = []
        for i in (0.0, 0.25, 0.5, 0.75, 1.0):
            plan = FaultPlan.scaled(i)
            su = apply_faults(baselines["suopt"], plan)
            ns = apply_faults(baselines["netsparse"], plan)
            speedups.append(su.total_time / ns.total_time)
        assert all(a > b for a, b in zip(speedups, speedups[1:])), speedups

    def test_degradation_policy_prices_missing_mechanisms(self, baselines):
        """Turning every graceful-degradation mode off must cost at
        least as much on every fault class it governs."""
        res = baselines["netsparse"]
        for plan in (
            FaultPlan(name="rig", nics=(NicFault(dead_frac=0.4),)),
            FaultPlan(name="tor", switches=(SwitchFault(start=0.2, end=0.8),)),
        ):
            graceful = apply_faults(res, plan)
            hard = apply_faults(res, plan, policy=DegradePolicy.none())
            assert hard.total_time >= graceful.total_time

    def test_scoped_link_fault_hits_only_its_rack(self, baselines):
        res = baselines["netsparse"]
        plan = FaultPlan(
            name="rack0", links=(LinkFault(scope="rack:0", drop_rate=0.3),)
        )
        hurt = apply_faults(res, plan)
        per = hurt.per_node_time / res.per_node_time
        n_rack = min(16, res.n_nodes)  # config default nodes_per_rack
        assert (per[:n_rack] > 1.0).all()
        assert np.allclose(per[n_rack:], 1.0)
