"""Unit tests for 1D partitioning and node traces."""

import numpy as np
import pytest

from repro.partition import OneDPartition
from repro.sparse import COOMatrix
from repro.sparse.synthetic import web_crawl


def toy():
    # The Figure 1 example: 8x8 matrix over 4 nodes (2 rows each).
    rows = np.array([0, 1, 1, 2, 2, 3, 4, 5, 6, 7])
    cols = np.array([4, 1, 6, 2, 6, 3, 3, 5, 0, 7])
    return COOMatrix(8, 8, rows, cols)


def test_block_starts_even_division():
    p = OneDPartition(toy(), 4)
    assert list(p.row_starts) == [0, 2, 4, 6, 8]


def test_block_starts_uneven_division():
    m = COOMatrix(10, 10, np.arange(10), np.arange(10))
    p = OneDPartition(m, 3)
    sizes = np.diff(p.row_starts)
    assert sizes.sum() == 10
    assert sizes.max() - sizes.min() <= 1
    assert list(sizes) == [4, 3, 3]


def test_col_owner_covers_all_columns():
    p = OneDPartition(toy(), 4)
    assert p.owner_of_col(0) == 0
    assert p.owner_of_col(7) == 3
    counts = np.bincount(p.col_owner, minlength=4)
    assert counts.sum() == 8


def test_too_many_nodes_rejected():
    with pytest.raises(ValueError):
        OneDPartition(toy(), 100)
    with pytest.raises(ValueError):
        OneDPartition(toy(), 0)


def test_node_traces_cover_all_nonzeros():
    p = OneDPartition(toy(), 4)
    traces = p.node_traces()
    assert sum(t.n_nonzeros for t in traces) == 10


def test_figure1_remote_pattern():
    """Check against the worked example in the paper's Figure 1."""
    p = OneDPartition(toy(), 4)
    traces = p.node_traces()
    # Node 0 owns rows/cols {0,1}: nonzero (0,4) is remote, (1,1) local.
    t0 = traces[0]
    assert set(t0.remote_idxs.tolist()) == {4, 6}
    # Node 1 owns {2,3}: nonzeros at cols 2,6,3 — col 6 remote.
    t1 = traces[1]
    assert set(t1.remote_idxs.tolist()) == {6}
    # Writes (rows) are always local by construction of 1D partitioning.
    for node, t in enumerate(traces):
        assert t.idxs.size == t.owner.size


def test_trace_row_major_order():
    m = web_crawl(n=1024, mean_degree=6, seed=1)
    p = OneDPartition(m, 8)
    csr = m.to_csr()
    t3 = p.node_traces()[3]
    expected = np.concatenate(
        [csr.row_slice(r) for r in p.rows_of(3)]
    )
    np.testing.assert_array_equal(t3.idxs, expected)


def test_remote_mask_consistent_with_owner():
    m = web_crawl(n=2048, mean_degree=8, seed=2)
    p = OneDPartition(m, 16)
    for t in p.node_traces():
        np.testing.assert_array_equal(t.remote, t.owner != t.node)


def test_unique_remote_count():
    p = OneDPartition(toy(), 4)
    t0 = p.node_traces()[0]
    assert t0.unique_remote_count() == 2
    # A node with no remotes:
    m = COOMatrix(4, 4, np.array([0, 1, 2, 3]), np.array([0, 1, 2, 3]))
    t = OneDPartition(m, 2).node_traces()[0]
    assert t.unique_remote_count() == 0


def test_scatter_gather_roundtrip():
    m = web_crawl(n=512, mean_degree=4, seed=3)
    p = OneDPartition(m, 8)
    b = np.random.default_rng(0).normal(size=(512, 3))
    shards = p.scatter_properties(b)
    assert len(shards) == 8
    np.testing.assert_array_equal(p.gather_outputs(shards), b)


def test_gather_wrong_shard_count():
    m = web_crawl(n=512, mean_degree=4, seed=3)
    p = OneDPartition(m, 8)
    with pytest.raises(ValueError):
        p.gather_outputs([np.zeros((1, 1))] * 7)


def test_node_nnz_sums_to_total():
    m = web_crawl(n=4096, mean_degree=8, seed=4)
    p = OneDPartition(m, 32)
    nnz = p.node_nnz()
    assert nnz.sum() == m.nnz
    traces = p.node_traces()
    np.testing.assert_array_equal(nnz, [t.n_nonzeros for t in traces])


class TestBalancedByNnz:
    def test_balances_skewed_matrix(self):
        from repro.partition import balanced_by_nnz
        from repro.sparse.suite import load_benchmark

        mat = load_benchmark("arabic", "tiny")
        balanced = balanced_by_nnz(mat, 16)
        equal = OneDPartition(mat, 16)
        bal_ratio = balanced.node_nnz().max() / balanced.node_nnz().mean()
        eq_ratio = equal.node_nnz().max() / equal.node_nnz().mean()
        assert bal_ratio < eq_ratio
        assert bal_ratio < 1.3

    def test_covers_all_rows_and_nonzeros(self):
        from repro.partition import balanced_by_nnz

        m = web_crawl(n=1024, mean_degree=6, seed=4)
        p = balanced_by_nnz(m, 8)
        assert p.row_starts[0] == 0 and p.row_starts[-1] == m.n_rows
        assert (np.diff(p.row_starts) >= 1).all()
        assert p.node_nnz().sum() == m.nnz

    def test_numerics_unchanged(self):
        """Distributed SpMM over a balanced partition still matches the
        reference (ownership moved, correctness did not)."""
        from repro.partition import balanced_by_nnz
        from repro.sparse import spmm

        m = web_crawl(n=512, mean_degree=6, seed=6).with_random_values(7)
        part = balanced_by_nnz(m, 8)
        b = np.random.default_rng(8).normal(size=(m.n_cols, 3))
        csr = m.to_csr()
        shards = []
        for node, tr in enumerate(part.node_traces()):
            local = np.zeros_like(b)
            lo, hi = part.col_starts[node], part.col_starts[node + 1]
            local[lo:hi] = b[lo:hi]
            remote = np.unique(tr.remote_idxs)
            local[remote] = b[remote]
            rows = list(part.rows_of(node))
            shard = np.zeros((len(rows), 3))
            for i, r in enumerate(rows):
                cols = csr.row_slice(r)
                vals = csr.data[csr.indptr[r]:csr.indptr[r + 1]]
                shard[i] = (vals[:, None] * local[cols]).sum(axis=0)
            shards.append(shard)
        np.testing.assert_allclose(
            part.gather_outputs(shards), spmm(m, b), rtol=1e-10
        )

    def test_validation(self):
        from repro.partition import balanced_by_nnz

        m = web_crawl(n=64, mean_degree=4, seed=1)
        with pytest.raises(ValueError):
            balanced_by_nnz(m, 0)
        with pytest.raises(ValueError):
            balanced_by_nnz(m, 100)

    def test_explicit_row_starts_validation(self):
        m = web_crawl(n=64, mean_degree=4, seed=1)
        with pytest.raises(ValueError):
            OneDPartition(m, 2, row_starts=np.array([0, 64]))
        with pytest.raises(ValueError):
            OneDPartition(m, 2, row_starts=np.array([0, 0, 64]))
        with pytest.raises(ValueError):
            OneDPartition(m, 2, row_starts=np.array([1, 32, 64]))
        # A valid custom split works.
        p = OneDPartition(m, 2, row_starts=np.array([0, 10, 64]))
        assert len(list(p.rows_of(0))) == 10
