"""Structural tests for the synthetic matrix generators."""

import numpy as np
import pytest

from repro.partition import OneDPartition
from repro.sparse.suite import BENCHMARKS, MATRIX_NAMES, load_benchmark
from repro.sparse.synthetic import (
    banded_fem,
    coupled_flow,
    power_law_degrees,
    road_network,
    web_crawl,
    zipf_sample,
)


def test_zipf_sample_range_and_skew():
    rng = np.random.default_rng(0)
    s = zipf_sample(rng, 100, 20_000, alpha=1.5)
    assert s.min() >= 0 and s.max() < 100
    counts = np.bincount(s, minlength=100)
    # Rank 0 must dominate rank 50 by a wide margin.
    assert counts[0] > 10 * max(counts[50], 1)


def test_zipf_sample_rejects_empty():
    with pytest.raises(ValueError):
        zipf_sample(np.random.default_rng(0), 0, 5, 1.5)


def test_power_law_degrees_mean_and_tail():
    rng = np.random.default_rng(1)
    deg = power_law_degrees(rng, 50_000, mean_degree=20.0)
    assert deg.min() >= 1
    assert abs(deg.mean() - 20.0) / 20.0 < 0.2
    assert deg.max() > 5 * deg.mean()  # heavy tail exists


@pytest.mark.parametrize("gen", [web_crawl, road_network, banded_fem, coupled_flow])
def test_generators_produce_valid_square_matrices(gen):
    m = gen(n=2048, seed=5)
    assert m.n_rows == m.n_cols == 2048
    assert m.nnz > 0
    assert m.rows.min() >= 0 and m.rows.max() < 2048
    assert m.cols.min() >= 0 and m.cols.max() < 2048
    # canonicalized: sorted, unique
    keys = m.rows * m.n_cols + m.cols
    assert (np.diff(keys) > 0).all()


@pytest.mark.parametrize("gen", [web_crawl, road_network, banded_fem, coupled_flow])
def test_generators_deterministic(gen):
    a = gen(n=1024, seed=9)
    b = gen(n=1024, seed=9)
    np.testing.assert_array_equal(a.rows, b.rows)
    np.testing.assert_array_equal(a.cols, b.cols)
    c = gen(n=1024, seed=10)
    assert c.nnz != a.nnz or not np.array_equal(a.cols[: c.nnz], c.cols[: a.nnz])


def test_banded_fem_is_banded():
    band = 32
    m = banded_fem(n=4096, band=band, seed=2)
    assert m.bandwidth() <= band


def test_road_network_low_degree():
    m = road_network(n=8192, seed=3)
    assert m.nnz / m.n_rows < 4.0


def test_coupled_flow_requires_two_fields():
    with pytest.raises(ValueError):
        coupled_flow(n=1024, n_fields=1)


def test_registry_contains_all_five():
    assert set(BENCHMARKS) == set(MATRIX_NAMES)


def test_load_benchmark_unknown_name():
    with pytest.raises(KeyError):
        load_benchmark("does-not-exist")


def test_load_benchmark_memoizes():
    a = load_benchmark("queen", "tiny")
    b = load_benchmark("queen", "tiny")
    assert a is b


def test_scale_ordering():
    for name in MATRIX_NAMES:
        spec = BENCHMARKS[name]
        assert (
            spec.rows_for_scale("tiny")
            < spec.rows_for_scale("small")
            < spec.rows_for_scale("medium")
        )


def test_unknown_scale_raises():
    with pytest.raises(ValueError):
        BENCHMARKS["queen"].rows_for_scale("galactic")


class TestStructuralOrderings:
    """The paper-critical cross-matrix orderings at 'tiny' scale.

    Table 1 / Table 4 orderings must hold for any scale since they are
    what drives every downstream result (who benefits from filtering,
    caching, concatenation).
    """

    @pytest.fixture(scope="class")
    def stats(self):
        out = {}
        for name in MATRIX_NAMES:
            mat = load_benchmark(name, "tiny")
            part = OneDPartition(mat, 16)
            traces = part.node_traces()
            remote = sum(int(t.remote.sum()) for t in traces)
            useful = sum(t.unique_remote_count() for t in traces)
            uniq = []
            for t in traces:
                d = t.remote_owners
                for s in range(0, d.size - 64, 64):
                    uniq.append(np.unique(d[s : s + 64]).size)
            out[name] = {
                "sa_redundancy": (remote - useful) / max(useful, 1),
                "dest_locality": float(np.mean(uniq)) if uniq else 0.0,
            }
        return out

    def test_arabic_has_most_reuse(self, stats):
        assert stats["arabic"]["sa_redundancy"] > stats["uk"]["sa_redundancy"]
        assert stats["arabic"]["sa_redundancy"] > stats["europe"]["sa_redundancy"]

    def test_europe_has_negligible_reuse(self, stats):
        assert stats["europe"]["sa_redundancy"] < 0.5

    def test_queen_has_best_destination_locality(self, stats):
        others = [
            stats[n]["dest_locality"] for n in MATRIX_NAMES if n != "queen"
        ]
        assert stats["queen"]["dest_locality"] <= min(others)
        assert stats["queen"]["dest_locality"] < 2.0

    def test_webcrawls_spread_more_than_fem(self, stats):
        assert stats["uk"]["dest_locality"] > stats["stokes"]["dest_locality"]
