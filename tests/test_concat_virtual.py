"""Tests for the virtualized Concatenation Queues (§7.2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.concat import DelayQueueConcatenator
from repro.core.concat_virtual import VirtualConcatenator
from repro.sim import Simulator


def collector():
    emitted = []

    def on_emit(prs, dest, pr_type):
        emitted.append((list(prs), dest, pr_type))

    return emitted, on_emit


def make(sim, max_prs=16, delay=1.0, n_physical=8, phys_cap=4, on_emit=None):
    emitted, cb = collector()
    vc = VirtualConcatenator(
        sim, max_prs_per_packet=max_prs, delay=delay,
        on_emit=on_emit or cb, n_physical=n_physical,
        physical_capacity_prs=phys_cap,
    )
    return vc, emitted


def test_full_virtual_cq_flushes_as_one_packet():
    sim = Simulator()
    vc, emitted = make(sim, max_prs=6, phys_cap=2, n_physical=8)
    for i in range(6):
        vc.push(i, dest=3, pr_type="read")
    assert len(emitted) == 1
    assert emitted[0] == (list(range(6)), 3, "read")
    # All physical queues returned to the pool.
    assert vc.physical_in_use == 0


def test_chaining_across_physical_queues():
    sim = Simulator()
    vc, emitted = make(sim, max_prs=100, phys_cap=2, n_physical=8)
    for i in range(5):
        vc.push(i, dest=0, pr_type="read")
    # 5 PRs over 2-entry physical queues -> 3 in use, nothing emitted.
    assert vc.physical_in_use == 3
    assert emitted == []
    vc.flush()
    assert emitted == [([0, 1, 2, 3, 4], 0, "read")]


def test_pool_exhaustion_flushes_fullest_victim():
    sim = Simulator()
    vc, emitted = make(sim, max_prs=100, phys_cap=1, n_physical=3)
    vc.push("a1", dest=0, pr_type="read")
    vc.push("a2", dest=0, pr_type="read")
    vc.push("b1", dest=1, pr_type="read")
    # Pool is exhausted; the next push evicts dest 0 (fullest).
    vc.push("b2", dest=1, pr_type="read")
    assert vc.stats_early_flushes == 1
    assert emitted[0] == (["a1", "a2"], 0, "read")
    vc.flush()
    assert (["b1", "b2"], 1, "read") in emitted


def test_delay_expiry_flushes():
    sim = Simulator()
    vc, emitted = make(sim, delay=2.0)

    def pusher():
        vc.push("x", dest=5, pr_type="response")
        yield sim.timeout(10.0)

    sim.process(pusher())
    sim.run()
    assert emitted == [(["x"], 5, "response")]
    assert vc.stats_packets == 1


def test_mtu_respected_on_overfull_flush():
    sim = Simulator()
    vc, emitted = make(sim, max_prs=4, phys_cap=3, n_physical=8, delay=100.0)
    # Push 4 -> auto flush at occupancy >= max_prs.
    for i in range(4):
        vc.push(i, dest=0, pr_type="read")
    assert all(len(p) <= 4 for p, _, _ in emitted)


def test_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        VirtualConcatenator(sim, 0, 1.0, lambda *a: None)
    with pytest.raises(ValueError):
        VirtualConcatenator(sim, 4, -1.0, lambda *a: None)
    with pytest.raises(ValueError):
        VirtualConcatenator(sim, 4, 1.0, lambda *a: None, n_physical=0)


def test_peak_usage_tracked():
    sim = Simulator()
    vc, _ = make(sim, max_prs=100, phys_cap=1, n_physical=8)
    for d in range(5):
        vc.push("pr", dest=d, pr_type="read")
    assert vc.stats_peak_physical_in_use == 5


@settings(max_examples=150, deadline=None)
@given(
    dests=st.lists(st.integers(0, 9), max_size=200),
    maxp=st.integers(1, 20),
    n_phys=st.integers(1, 16),
    cap=st.integers(1, 8),
)
def test_property_pr_conservation(dests, maxp, n_phys, cap):
    """INVARIANT: virtualization neither loses nor duplicates PRs and
    never exceeds the MTU, under any pool pressure."""
    sim = Simulator()
    emitted, cb = collector()
    vc = VirtualConcatenator(sim, maxp, delay=0.0, on_emit=cb,
                             n_physical=n_phys, physical_capacity_prs=cap)
    for i, d in enumerate(dests):
        vc.push(i, dest=d, pr_type="read")
    vc.flush()
    out = [pr for prs, _, _ in emitted for pr in prs]
    assert sorted(out) == list(range(len(dests)))
    assert all(len(prs) <= maxp for prs, _, _ in emitted)
    # Destination purity: every packet's PRs share its destination.
    for prs, dest, _ in emitted:
        assert all(dests[pr] == dest for pr in prs)


def test_matches_dedicated_cqs_when_pool_is_ample():
    """With a generous pool, virtualized CQs emit the same packet count
    as the per-destination design on the same stream."""
    rng = np.random.default_rng(0)
    dests = rng.integers(0, 6, size=500)

    def run(ctor):
        sim = Simulator()
        emitted, cb = collector()
        cq = ctor(sim, cb)

        def feeder():
            for d in dests:
                cq.push("pr", dest=int(d), pr_type="read")
                yield sim.timeout(0.01)

        sim.process(feeder())
        sim.run()
        cq.flush()
        return len(emitted)

    dedicated = run(lambda sim, cb: DelayQueueConcatenator(
        sim, max_prs_per_packet=10, delay=0.5, on_emit=cb))
    virtual = run(lambda sim, cb: VirtualConcatenator(
        sim, max_prs_per_packet=10, delay=0.5, on_emit=cb,
        n_physical=64, physical_capacity_prs=4))
    assert virtual == pytest.approx(dedicated, rel=0.15)


def test_small_pool_degrades_but_conserves():
    """A starved pool produces more, smaller packets — never lost PRs."""
    rng = np.random.default_rng(1)
    dests = rng.integers(0, 12, size=400)
    sim = Simulator()
    emitted, cb = collector()
    vc = VirtualConcatenator(sim, max_prs_per_packet=16, delay=1e9,
                             on_emit=cb, n_physical=2,
                             physical_capacity_prs=2)
    for i, d in enumerate(dests):
        vc.push(i, dest=int(d), pr_type="read")
    vc.flush()
    assert vc.stats_early_flushes > 0
    out = [pr for prs, _, _ in emitted for pr in prs]
    assert sorted(out) == list(range(400))
