"""Numeric correctness of the reference kernels against scipy/numpy."""

import numpy as np
import pytest

from repro.sparse import COOMatrix, sddmm, spmm, spmv
from repro.sparse.synthetic import web_crawl


@pytest.fixture(scope="module")
def matrix():
    return web_crawl(n=512, mean_degree=8, seed=3).with_random_values(seed=4)


def test_spmv_matches_scipy(matrix):
    x = np.random.default_rng(0).normal(size=matrix.n_cols)
    expected = matrix.to_scipy().tocsr() @ x
    np.testing.assert_allclose(spmv(matrix, x), expected, rtol=1e-12)


def test_spmm_matches_scipy(matrix):
    b = np.random.default_rng(1).normal(size=(matrix.n_cols, 16))
    expected = matrix.to_scipy().tocsr() @ b
    np.testing.assert_allclose(spmm(matrix, b), expected, rtol=1e-12)


def test_spmm_accepts_csr(matrix):
    b = np.random.default_rng(1).normal(size=(matrix.n_cols, 4))
    np.testing.assert_allclose(spmm(matrix.to_csr(), b), spmm(matrix, b))


def test_sddmm_matches_dense(matrix):
    rng = np.random.default_rng(2)
    k = 8
    u = rng.normal(size=(matrix.n_rows, k))
    v = rng.normal(size=(matrix.n_cols, k))
    out = sddmm(matrix, u, v)
    dense = (u @ v.T)
    expected = matrix.vals * dense[matrix.rows, matrix.cols]
    np.testing.assert_allclose(out.vals, expected, rtol=1e-12)
    # Pattern is preserved.
    np.testing.assert_array_equal(out.rows, matrix.rows)
    np.testing.assert_array_equal(out.cols, matrix.cols)


def test_structure_only_matrix_uses_unit_values():
    m = COOMatrix(2, 2, rows=np.array([0, 1]), cols=np.array([1, 0]))
    y = spmv(m, np.array([3.0, 5.0]))
    np.testing.assert_allclose(y, [5.0, 3.0])


def test_spmv_shape_check(matrix):
    with pytest.raises(ValueError):
        spmv(matrix, np.zeros(3))


def test_spmm_shape_check(matrix):
    with pytest.raises(ValueError):
        spmm(matrix, np.zeros((3, 3)))


def test_sddmm_shape_checks(matrix):
    with pytest.raises(ValueError):
        sddmm(matrix, np.zeros((1, 2)), np.zeros((matrix.n_cols, 2)))
    with pytest.raises(ValueError):
        sddmm(matrix, np.zeros((matrix.n_rows, 2)), np.zeros((matrix.n_cols, 3)))


def test_spmm_k1_equals_spmv(matrix):
    x = np.random.default_rng(5).normal(size=matrix.n_cols)
    np.testing.assert_allclose(
        spmm(matrix, x[:, None])[:, 0], spmv(matrix, x), rtol=1e-12
    )
