"""Tests for packet-loss handling: watchdog, discard, retry (§7.1)."""

import pytest

from repro.core.reliability import RigOperationFailed, RigWatchdog
from repro.core.rig import RigClientUnit, RigServerUnit
from repro.sim import Simulator, Store


def lossy_wire(sim, latency=1e-6, drop_fn=None):
    """A Store pair joined by a forwarder that can drop items."""
    a, b = Store(sim), Store(sim)
    dropped = []

    def fwd():
        while True:
            item = yield a.get()
            yield sim.timeout(latency)
            if drop_fn is not None and drop_fn(item):
                dropped.append(item)
                continue
            yield b.put(item)

    sim.process(fwd())
    return a, b, dropped


def build_loop(sim, drop_read=None, drop_resp=None, **client_kw):
    c2s_in, c2s_out, dropped_r = lossy_wire(sim, drop_fn=drop_read)
    s2c_in, s2c_out, dropped_p = lossy_wire(sim, drop_fn=drop_resp)
    client = RigClientUnit(
        sim, unit_id=0, node=0, tx_queue=c2s_in, rx_queue=s2c_out,
        idx_filter=set(), **client_kw
    )
    RigServerUnit(sim, unit_id=1, node=1, rx_queue=c2s_out,
                  tx_queue=s2c_in, payload_bytes=64)
    return client, dropped_r, dropped_p


class TestWatchdog:
    def test_clean_run_completes_first_attempt(self):
        sim = Simulator()
        client, _, _ = build_loop(sim)
        dog = RigWatchdog(sim, client, timeout=1.0)
        op = dog.execute([1, 2, 3])
        sim.run()
        report = op.value
        assert report.completed
        assert report.attempts == 1
        assert report.timeouts == 0
        assert sorted(client.received_idxs) == [1, 2, 3]

    def test_lost_read_triggers_timeout_and_retry(self):
        sim = Simulator()
        drops = {"armed": True}

        def drop_first_read(pr):
            if drops["armed"] and pr.idx == 2:
                drops["armed"] = False   # only the first attempt's PR
                return True
            return False

        client, dropped, _ = build_loop(sim, drop_read=drop_first_read)
        dog = RigWatchdog(sim, client, timeout=1e-3, max_retries=2)
        op = dog.execute([1, 2, 3])
        sim.run()
        report = op.value
        assert report.completed
        assert report.timeouts == 1
        assert report.attempts == 2
        assert len(dropped) == 1
        # Everything arrives despite the loss.
        assert sorted(set(client.received_idxs)) == [1, 2, 3]

    def test_partial_results_discarded_on_failure(self):
        sim = Simulator()
        drops = {"armed": True}

        def drop_first(pr):
            if drops["armed"] and pr.idx == 5:
                drops["armed"] = False
                return True
            return False

        client, _, _ = build_loop(sim, drop_read=drop_first)
        dog = RigWatchdog(sim, client, timeout=1e-3, max_retries=1)
        op = dog.execute([4, 5, 6])
        sim.run()
        report = op.value
        assert report.completed
        # The two properties that did land in attempt 0 were discarded
        # (the whole host buffer is thrown away, §7.1).
        assert report.discarded_properties == 2
        # Final buffer holds exactly the needed set.
        assert sorted(client.received_idxs) == [4, 5, 6]

    def test_permanent_loss_exhausts_retries(self):
        sim = Simulator()
        client, _, _ = build_loop(sim, drop_read=lambda pr: pr.idx == 9)
        dog = RigWatchdog(sim, client, timeout=1e-3, max_retries=2)
        op = dog.execute([8, 9])
        failures = []

        def driver():
            try:
                yield op
            except RigOperationFailed as exc:
                failures.append(str(exc))

        sim.process(driver())
        sim.run()
        assert failures and "3 attempts" in failures[0]

    def test_lost_response_also_detected(self):
        sim = Simulator()
        drops = {"n": 0}

        def drop_first_resp(resp):
            drops["n"] += 1
            return drops["n"] == 1

        client, _, _ = build_loop(sim, drop_resp=drop_first_resp)
        dog = RigWatchdog(sim, client, timeout=1e-3, max_retries=2)
        op = dog.execute([1, 2])
        sim.run()
        assert op.value.completed
        assert op.value.timeouts >= 1

    def test_stale_responses_dropped_not_recorded(self):
        """A response from an aborted attempt arriving after the retry
        started must not corrupt the buffer (delayed, not lost)."""
        sim = Simulator()
        state = {"delayed": False}
        a, b = Store(sim), Store(sim)
        c2s_in, c2s_out, _ = lossy_wire(sim)

        def slow_fwd():
            while True:
                item = yield a.get()
                if not state["delayed"]:
                    state["delayed"] = True
                    # Past two watchdog periods: attempts 0-1 fail, and
                    # this response lands mid-attempt 2.
                    yield sim.timeout(2.2e-3)
                else:
                    yield sim.timeout(1e-6)
                yield b.put(item)

        sim.process(slow_fwd())
        client = RigClientUnit(sim, unit_id=0, node=0, tx_queue=c2s_in,
                               rx_queue=b, idx_filter=set())
        RigServerUnit(sim, unit_id=1, node=1, rx_queue=c2s_out,
                      tx_queue=a, payload_bytes=64)
        dog = RigWatchdog(sim, client, timeout=1e-3, max_retries=3)
        op = dog.execute([7])
        sim.run()
        assert op.value.completed
        assert client.stats_stale_responses >= 1
        assert client.received_idxs.count(7) == 1

    def test_validation(self):
        sim = Simulator()
        client, _, _ = build_loop(sim)
        with pytest.raises(ValueError):
            RigWatchdog(sim, client, timeout=0.0)
        with pytest.raises(ValueError):
            RigWatchdog(sim, client, timeout=1.0, max_retries=-1)

    def test_rollback_lets_the_retry_re_request_everything(self):
        """Discarding a failed attempt must clear its Idx Filter bits:
        the reissue has to be able to ask for the same idxs again."""
        sim = Simulator()
        drops = {"armed": True}

        def drop_first(pr):
            if drops["armed"] and pr.idx == 11:
                drops["armed"] = False
                return True
            return False

        client, _, _ = build_loop(sim, drop_read=drop_first)
        dog = RigWatchdog(sim, client, timeout=1e-3, max_retries=1)
        op = dog.execute([10, 11, 12])
        sim.run()
        assert op.value.completed
        # Attempt 0 filtered nothing in attempt 1's way: all three idxs
        # were re-requested and landed exactly once.
        assert sorted(client.received_idxs) == [10, 11, 12]
        assert client.idx_filter == {10, 11, 12}


class TestWatchdogBackoff:
    def run_with(self, backoff):
        sim = Simulator()
        client, _, _ = build_loop(
            sim, drop_read=lambda pr: pr.idx == 9 and sim.now < 2e-3
        )
        dog = RigWatchdog(sim, client, timeout=1e-3, max_retries=4,
                          backoff=backoff)
        op = dog.execute([9])
        sim.run()
        return op.value

    def test_default_reissues_immediately(self):
        report = self.run_with(None)
        assert report.completed
        assert not any("backoff" in e for e in report.events)

    def test_exponential_backoff_waits_between_attempts(self):
        from repro.faults.policies import ExponentialBackoff

        immediate = self.run_with(None)
        spaced = self.run_with(
            ExponentialBackoff(base=5e-4, factor=2.0, max_delay=1.0,
                               jitter=0.0)
        )
        assert spaced.completed
        assert any("backoff" in e for e in spaced.events)
        # The waits push the completion later than immediate reissue
        # (with 0 jitter the schedule is exact, so this is deterministic).
        assert spaced.elapsed > immediate.elapsed

    def test_spec_string_accepted_and_seeded_per_unit(self):
        from repro.faults.policies import ExponentialBackoff

        sim = Simulator()
        client, _, _ = build_loop(sim)
        dog = RigWatchdog(sim, client, timeout=1.0, backoff="exponential")
        assert isinstance(dog.backoff, ExponentialBackoff)
        assert dog.backoff.seed == client.unit_id

    def test_attempt_and_timeout_counters_recorded(self):
        from repro.telemetry import MetricsRegistry, telemetry_scope

        reg = MetricsRegistry()
        with telemetry_scope(reg):
            report = self.run_with(None)
        assert report.completed
        counters = {k: c.value for k, c in reg.counters.items()}
        assert counters["faults.watchdog.attempts"] == report.attempts
        assert counters["faults.watchdog.timeouts"] == report.timeouts
        assert report.timeouts >= 1


class TestLossyDesFabric:
    def test_des_link_drop_counted(self):
        from repro.config import NetSparseConfig
        from repro.dessim.components import NetPacket, SerialLink

        sim = Simulator()
        sink = Store(sim)
        link = SerialLink(sim, "lossy", sink, NetSparseConfig(),
                          drop_fn=lambda p: p.packet_id % 2 == 0)
        pkts = [NetPacket("read", 0, 1, [object()], 0) for _ in range(6)]

        def feed():
            for p in pkts:
                yield link.send(p)

        sim.process(feed())
        sim.run()
        assert link.packets_dropped + len(sink) == 6
        assert link.packets_dropped >= 1
