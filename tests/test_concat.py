"""Tests for PR concatenation: window model and DES delay queues."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.concat import (
    DelayQueueConcatenator,
    window_concat,
    window_concat_totals,
)
from repro.sim import Simulator


class TestWindowConcat:
    def test_empty(self):
        stats = window_concat(np.array([]), max_prs_per_packet=10, window_prs=8)
        assert stats.n_packets == 0
        assert stats.avg_prs_per_packet == 0.0

    def test_single_dest_packs_fully(self):
        dests = np.zeros(40, dtype=int)
        stats = window_concat(dests, max_prs_per_packet=10, window_prs=40)
        assert stats.n_packets == 4
        assert stats.avg_prs_per_packet == 10.0
        assert stats.n_solo_packets == 0

    def test_window_boundaries_split_packets(self):
        dests = np.zeros(40, dtype=int)
        stats = window_concat(dests, max_prs_per_packet=10, window_prs=5)
        # Each 5-PR window emits one 5-PR packet.
        assert stats.n_packets == 8
        assert stats.avg_prs_per_packet == 5.0

    def test_no_concatenation_degenerate(self):
        dests = np.array([1, 1, 2, 2])
        stats = window_concat(dests, max_prs_per_packet=1, window_prs=100)
        assert stats.n_packets == 4
        assert stats.n_solo_packets == 4

    def test_window_one_is_all_solo(self):
        dests = np.array([3, 3, 3])
        stats = window_concat(dests, max_prs_per_packet=50, window_prs=1)
        assert stats.n_packets == 3
        assert stats.n_solo_packets == 3

    def test_mixed_destinations(self):
        # Window of 6: dests [0,0,0,1,1,2] -> packets: {0:3}, {1:2}, {2:1}.
        dests = np.array([0, 0, 0, 1, 1, 2])
        stats = window_concat(dests, max_prs_per_packet=10, window_prs=6)
        assert stats.n_packets == 3
        assert stats.n_solo_packets == 1
        assert stats.per_dest_prs == {0: 3, 1: 2, 2: 1}
        assert stats.per_dest_packets == {0: 1, 1: 1, 2: 1}

    def test_remainder_of_one_counts_solo(self):
        dests = np.zeros(11, dtype=int)
        stats = window_concat(dests, max_prs_per_packet=10, window_prs=11)
        assert stats.n_packets == 2
        assert stats.n_solo_packets == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            window_concat(np.array([0]), max_prs_per_packet=0, window_prs=5)

    def test_wire_bytes_per_dest(self):
        dests = np.array([0, 0, 1])
        stats = window_concat(dests, max_prs_per_packet=10, window_prs=3)
        bytes_by_dest = stats.wire_bytes_per_dest(pr_payload=64)
        # dest 0: one 2-PR packet: 64 + 2*(18+64) = 228.
        assert bytes_by_dest[0] == 64 + 2 * 82
        # dest 1: solo: 78 + 64.
        assert bytes_by_dest[1] == 78 + 64

    @settings(max_examples=200, deadline=None)
    @given(
        dests=st.lists(st.integers(0, 12), max_size=400),
        maxp=st.integers(1, 40),
        window=st.integers(1, 100),
    )
    def test_property_pr_conservation(self, dests, maxp, window):
        """INVARIANT: concatenation neither loses nor duplicates PRs,
        and no packet exceeds max_prs_per_packet."""
        arr = np.array(dests, dtype=np.int64)
        stats = window_concat(arr, max_prs_per_packet=maxp, window_prs=window)
        assert stats.n_prs == len(dests)
        assert sum(stats.per_dest_prs.values()) == len(dests)
        if len(dests):
            assert stats.n_packets >= -(-len(dests) // maxp)
            assert stats.n_prs <= stats.n_packets * maxp

    @settings(max_examples=100, deadline=None)
    @given(dests=st.lists(st.integers(0, 5), min_size=1, max_size=200))
    def test_property_bigger_window_never_more_packets(self, dests):
        arr = np.array(dests, dtype=np.int64)
        small = window_concat(arr, max_prs_per_packet=20, window_prs=4)
        large = window_concat(arr, max_prs_per_packet=20, window_prs=64)
        assert large.n_packets <= small.n_packets


class TestWindowConcatTotals:
    """window_concat_totals must equal full per-dest accounting exactly
    — it is the batch fastpath behind the cluster model's NIC-concat
    and respond stages, so any drift would break bit-identity."""

    @settings(max_examples=200, deadline=None)
    @given(
        dests=st.lists(st.integers(0, 12), max_size=400),
        maxp=st.integers(1, 40),
        window=st.integers(1, 100),
        payload=st.integers(0, 256),
    )
    def test_property_matches_per_dest_sum(self, dests, maxp, window,
                                           payload):
        arr = np.array(dests, dtype=np.int64)
        stats = window_concat(arr, max_prs_per_packet=maxp,
                              window_prs=window)
        want = sum(stats.wire_bytes_per_dest(pr_payload=payload).values())
        total, n_packets = window_concat_totals(
            arr, max_prs_per_packet=maxp, window_prs=window,
            pr_payload=payload)
        assert total == want
        assert n_packets == stats.n_packets

    def test_custom_headers(self):
        dests = np.array([0, 0, 1, 2, 2, 2])
        stats = window_concat(dests, max_prs_per_packet=2, window_prs=6)
        kwargs = dict(header_upper=40, header_concat=7,
                      header_concat_solo=3, header_pr=11)
        want = sum(stats.wire_bytes_per_dest(pr_payload=9,
                                             **kwargs).values())
        total, n_packets = window_concat_totals(
            dests, max_prs_per_packet=2, window_prs=6, pr_payload=9,
            **kwargs)
        assert total == want
        assert n_packets == stats.n_packets

    def test_empty(self):
        assert window_concat_totals(np.array([], dtype=np.int64),
                                    max_prs_per_packet=5, window_prs=4,
                                    pr_payload=8) == (0, 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            window_concat_totals(np.array([0]), max_prs_per_packet=0,
                                 window_prs=5, pr_payload=8)


class TestDelayQueueConcatenator:
    def collect(self):
        emitted = []

        def on_emit(prs, dest, pr_type):
            emitted.append((list(prs), dest, pr_type))

        return emitted, on_emit

    def test_full_cq_flushes_immediately(self):
        sim = Simulator()
        emitted, on_emit = self.collect()
        cq = DelayQueueConcatenator(sim, max_prs_per_packet=3, delay=1.0,
                                    on_emit=on_emit)
        for i in range(3):
            cq.push(i, dest=7, pr_type="read")
        assert len(emitted) == 1
        assert emitted[0] == ([0, 1, 2], 7, "read")

    def test_expiry_flushes_partial_cq(self):
        sim = Simulator()
        emitted, on_emit = self.collect()
        cq = DelayQueueConcatenator(sim, max_prs_per_packet=10, delay=2.0,
                                    on_emit=on_emit)

        def pusher():
            cq.push("a", dest=1, pr_type="read")
            yield sim.timeout(1.0)
            cq.push("b", dest=1, pr_type="read")

        sim.process(pusher())
        sim.run()
        # Both PRs ride the packet flushed 2.0 after the first arrived.
        assert len(emitted) == 1
        assert emitted[0][0] == ["a", "b"]
        assert sim.now == pytest.approx(2.0)

    def test_expiry_timer_from_first_pr(self):
        sim = Simulator()
        times = []
        cq = DelayQueueConcatenator(
            sim, max_prs_per_packet=10, delay=5.0,
            on_emit=lambda prs, d, t: times.append(sim.now),
        )

        def pusher():
            yield sim.timeout(3.0)
            cq.push("x", dest=0, pr_type="read")

        sim.process(pusher())
        sim.run()
        assert times == [8.0]

    def test_separate_cqs_per_dest_and_type(self):
        sim = Simulator()
        emitted, on_emit = self.collect()
        cq = DelayQueueConcatenator(sim, max_prs_per_packet=2, delay=100.0,
                                    on_emit=on_emit)
        cq.push(1, dest=0, pr_type="read")
        cq.push(2, dest=1, pr_type="read")
        cq.push(3, dest=0, pr_type="response")
        # No CQ full yet.
        assert emitted == []
        cq.push(4, dest=0, pr_type="read")
        assert emitted == [([1, 4], 0, "read")]

    def test_stale_expiry_after_full_flush_is_ignored(self):
        sim = Simulator()
        emitted, on_emit = self.collect()
        cq = DelayQueueConcatenator(sim, max_prs_per_packet=2, delay=1.0,
                                    on_emit=on_emit)
        cq.push(1, dest=0, pr_type="read")
        cq.push(2, dest=0, pr_type="read")  # full -> immediate flush
        sim.run()
        assert len(emitted) == 1  # the expiry callback must not double-emit

    def test_flush_drains_everything(self):
        sim = Simulator()
        emitted, on_emit = self.collect()
        cq = DelayQueueConcatenator(sim, max_prs_per_packet=10, delay=1e9,
                                    on_emit=on_emit)
        cq.push(1, dest=0, pr_type="read")
        cq.push(2, dest=3, pr_type="response")
        cq.flush()
        assert len(emitted) == 2
        assert cq.stats_prs == 2

    def test_zero_delay_still_works(self):
        sim = Simulator()
        emitted, on_emit = self.collect()
        cq = DelayQueueConcatenator(sim, max_prs_per_packet=4, delay=0.0,
                                    on_emit=on_emit)
        cq.push(1, dest=0, pr_type="read")
        cq.flush()
        assert len(emitted) == 1

    def test_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            DelayQueueConcatenator(sim, max_prs_per_packet=0, delay=1.0,
                                   on_emit=lambda *a: None)
        with pytest.raises(ValueError):
            DelayQueueConcatenator(sim, max_prs_per_packet=1, delay=-1.0,
                                   on_emit=lambda *a: None)

    def test_avg_prs_per_packet_stat(self):
        sim = Simulator()
        emitted, on_emit = self.collect()
        cq = DelayQueueConcatenator(sim, max_prs_per_packet=2, delay=1.0,
                                    on_emit=on_emit)
        for i in range(4):
            cq.push(i, dest=0, pr_type="read")
        assert cq.avg_prs_per_packet == 2.0


def test_des_and_window_model_agree_on_steady_stream():
    """Cross-validation: for a uniform-rate stream the DES delay-queue
    concatenator and the vectorized window model produce the same
    packet count (window_prs = delay * arrival rate)."""
    rng = np.random.default_rng(0)
    dests = rng.integers(0, 4, size=600)
    rate = 100.0       # PRs per second
    delay = 0.16       # seconds -> 16-PR windows
    maxp = 8

    sim = Simulator()
    packets = []
    cq = DelayQueueConcatenator(sim, max_prs_per_packet=maxp, delay=delay,
                                on_emit=lambda prs, d, t: packets.append(len(prs)))

    def feeder():
        for d in dests:
            cq.push("pr", dest=int(d), pr_type="read")
            yield sim.timeout(1.0 / rate)

    sim.process(feeder())
    sim.run()
    cq.flush()
    des_packets = len(packets)

    window = window_concat(dests, max_prs_per_packet=maxp,
                           window_prs=int(delay * rate))
    # The models discretize windows differently; require <=20% gap.
    assert des_packets == pytest.approx(window.n_packets, rel=0.2)
    assert sum(packets) == len(dests)
