"""Tests for the workload characterization analyses (§3)."""

import numpy as np
import pytest

from repro.analysis import (
    destination_locality,
    rack_sharing_fraction,
    transfer_redundancy,
    working_set_sizes,
)
from repro.sparse import COOMatrix
from repro.sparse.suite import load_benchmark
from repro.sparse.synthetic import banded_fem, web_crawl


def diag_matrix(n):
    return COOMatrix(n, n, np.arange(n), np.arange(n))


class TestTransferRedundancy:
    def test_diagonal_matrix_needs_nothing(self):
        stats = transfer_redundancy(diag_matrix(64), 8)
        assert stats.useful_transfers == 0
        assert stats.sa_transfers == 0
        # SU still broadcasts everything.
        assert stats.su_transfers == 8 * (64 - 8)

    def test_counts_on_known_pattern(self):
        # 4x4 over 2 nodes; nonzeros (0,3), (1,3), (2,0).
        m = COOMatrix(4, 4, np.array([0, 1, 2]), np.array([3, 3, 0]))
        stats = transfer_redundancy(m, 2)
        # Node 0 needs idx 3 (x2 nonzeros, 1 useful); node 1 needs idx 0.
        assert stats.useful_transfers == 2
        assert stats.sa_transfers == 3
        assert stats.sa_redundant == 1
        assert stats.su_transfers == 2 * 2
        assert stats.su_redundant == 2

    def test_web_crawl_heavy_reuse(self):
        mat = load_benchmark("arabic", "tiny")
        stats = transfer_redundancy(mat, 16)
        assert stats.sa_redundancy_ratio > 3
        assert stats.su_redundancy_ratio > stats.sa_redundancy_ratio

    def test_road_network_minimal_reuse(self):
        mat = load_benchmark("europe", "tiny")
        stats = transfer_redundancy(mat, 16)
        assert stats.sa_redundancy_ratio < 0.5


class TestDestinationLocality:
    def test_banded_is_perfectly_local(self):
        mat = banded_fem(n=4096, band=32, mean_degree=16, seed=0)
        loc = destination_locality(mat, 16, window=64)
        assert loc < 1.6

    def test_validation(self):
        mat = banded_fem(n=1024, band=8, seed=0)
        with pytest.raises(ValueError):
            destination_locality(mat, 8, window=0)

    def test_no_remote_prs_gives_zero(self):
        loc = destination_locality(diag_matrix(128), 8)
        assert loc == 0.0


class TestRackSharing:
    def test_shared_hubs_detected(self):
        """Every node of a rack referencing the same hub column counts
        as shared for all of them."""
        n = 64
        rows = np.arange(1, n)
        cols = np.zeros(n - 1, dtype=int)   # everyone reads column 0
        m = COOMatrix(n, n, rows, cols)
        frac = rack_sharing_fraction(m, 8, nodes_per_rack=4)
        # Node 0 owns col 0; the other 7 nodes all request it.  In each
        # rack of 4 (beyond node 0's own), all requesters share.
        assert frac > 0.9

    def test_private_requests_not_shared(self):
        # Node i reads a column owned by node i+1 that nobody else reads.
        n = 64
        per = n // 8
        rows, cols = [], []
        for node in range(7):
            rows.append(node * per)
            cols.append((node + 1) * per)
        m = COOMatrix(n, n, np.array(rows), np.array(cols))
        frac = rack_sharing_fraction(m, 8, nodes_per_rack=4)
        assert frac == 0.0

    def test_webcrawl_high_sharing(self):
        """The §3 claim: most useful PRs are shared within a rack (85%
        on the real matrices; our hub-structured crawls agree)."""
        mat = load_benchmark("arabic", "tiny")
        frac = rack_sharing_fraction(mat, 16, nodes_per_rack=4)
        assert frac > 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            rack_sharing_fraction(diag_matrix(64), 8, nodes_per_rack=3)


class TestWorkingSets:
    def test_sizes_shape_and_scaling(self):
        mat = web_crawl(n=2048, mean_degree=8, seed=1)
        ws64 = working_set_sizes(mat, 16, nodes_per_rack=4,
                                 property_bytes=64)
        ws4 = working_set_sizes(mat, 16, nodes_per_rack=4, property_bytes=4)
        assert ws64.shape == (4,)
        np.testing.assert_allclose(ws64, 16 * ws4)

    def test_diag_empty_working_set(self):
        ws = working_set_sizes(diag_matrix(128), 8, nodes_per_rack=4)
        assert (ws == 0).all()
