"""Tests for the ASCII figure renderer and the report generator."""

import pytest

from repro.experiments.plot import ascii_bars, render_figure
from repro.experiments.report import generate_report
from repro.experiments.runner import ExpTable


class TestAsciiBars:
    def test_basic_rendering(self):
        out = ascii_bars(["a", "bb"], [1.0, 2.0], width=10)
        lines = out.splitlines()
        assert len(lines) == 2
        assert lines[1].count("#") == 10          # max value fills width
        assert lines[0].count("#") == 5
        assert "1" in lines[0] and "2" in lines[1]

    def test_zero_values_have_no_bar(self):
        out = ascii_bars(["z"], [0.0])
        assert "#" not in out

    def test_log_scale_compresses(self):
        linear = ascii_bars(["a", "b"], [1.0, 1000.0], width=30)
        logged = ascii_bars(["a", "b"], [1.0, 1000.0], width=30,
                            log_scale=True)
        small_linear = linear.splitlines()[0].count("#")
        small_logged = logged.splitlines()[0].count("#")
        assert small_logged > small_linear

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_bars(["a"], [1.0, 2.0])
        with pytest.raises(ValueError):
            ascii_bars(["a"], [-1.0])

    def test_empty(self):
        assert ascii_bars([], []) == "(empty)"


class TestRenderFigure:
    def table(self):
        return ExpTable(
            exp_id="figX", title="demo",
            columns=["matrix", "K", "speedup"],
            rows=[["a", 1, 2.0], ["b", 1, 4.0],
                  ["a", 16, 8.0], ["b", 16, 16.0]],
            paper_note="note",
        )

    def test_ungrouped(self):
        out = render_figure(self.table(), "matrix", "speedup")
        assert "figX" in out and "[paper] note" in out

    def test_grouped_by_k(self):
        out = render_figure(self.table(), "matrix", "speedup",
                            group_col="K")
        assert out.count("-- K =") == 2


class TestReport:
    def test_report_subset(self):
        text = generate_report(scale="tiny", experiments=["table3"])
        assert "## table3" in text
        assert "| K | header % |" in text
        assert "fig12" not in text

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError):
            generate_report(experiments=["figZZ"])

    def test_progress_callback(self):
        seen = []
        generate_report(scale="tiny", experiments=["table9"],
                        progress=lambda e, t: seen.append(e))
        assert seen == ["table9"]
