"""Tests for the compute models and the hardware overhead models."""

import pytest

from repro.accel import SPR_DDR, SPR_HBM, SpadeConfig, spmm_compute_time
from repro.hw import TechModel, rig_unit_area_breakdown, snic_overheads
from repro.hw.snic import snic_storage_bytes, snic_totals
from repro.hw.switch import crossbar_area_range_mm2, switch_totals


class TestSpade:
    def test_time_positive_and_monotone_in_work(self):
        t1 = spmm_compute_time(10_000, 1000, 5000, 16)
        t2 = spmm_compute_time(100_000, 1000, 5000, 16)
        assert 0 < t1 < t2

    def test_memory_bound_for_small_k(self):
        """Sparse kernels are memory bound at small K (low arithmetic
        intensity): doubling bandwidth halves time."""
        fast = SpadeConfig(mem_bandwidth=1600e9)
        slow = SpadeConfig(mem_bandwidth=800e9)
        t_fast = spmm_compute_time(1_000_000, 1_000_000, 1_000_000, 1, fast)
        t_slow = spmm_compute_time(1_000_000, 1_000_000, 1_000_000, 1, slow)
        assert t_slow == pytest.approx(2 * t_fast, rel=1e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            spmm_compute_time(-1, 0, 0, 16)
        with pytest.raises(ValueError):
            spmm_compute_time(10, 10, 10, 0)

    def test_k_scaling_superlinear_region(self):
        t16 = spmm_compute_time(1_000_000, 10_000, 100_000, 16)
        t128 = spmm_compute_time(1_000_000, 10_000, 100_000, 128)
        assert 4 < t128 / t16 <= 9


class TestCpu:
    def test_hbm_faster_than_ddr(self):
        nnz, rows, cols = 1_000_000, 50_000, 200_000
        t_ddr = spmm_compute_time(nnz, rows, cols, 128, SPR_DDR.as_roofline())
        t_hbm = spmm_compute_time(nnz, rows, cols, 128, SPR_HBM.as_roofline())
        assert t_hbm < t_ddr

    def test_spade_faster_than_cpu(self):
        """The accelerator beats both CPUs (why Fig 13 exposes comms)."""
        nnz, rows, cols = 1_000_000, 50_000, 200_000
        t_spade = spmm_compute_time(nnz, rows, cols, 128, SpadeConfig())
        t_ddr = spmm_compute_time(nnz, rows, cols, 128, SPR_DDR.as_roofline())
        assert t_spade < t_ddr


class TestTechModel:
    def test_unsupported_node(self):
        with pytest.raises(ValueError):
            TechModel(33)

    def test_scaling_shrinks_area(self):
        big = TechModel(45).sram("s", 1 << 20, 1e9)
        small = TechModel(10).sram("s", 1 << 20, 1e9)
        assert small.area_mm2 < 0.1 * big.area_mm2

    def test_cam_larger_than_sram(self):
        t = TechModel(10)
        s = t.sram("s", 4096, 1e9)
        c = t.cam("c", 4096, 1e9, entry_bytes=16)
        assert c.area_mm2 > s.area_mm2

    def test_combine_sums(self):
        t = TechModel(10)
        a, b = t.sram("a", 1024, 1e9), t.sram("b", 1024, 1e9)
        both = TechModel.combine("ab", [a, b])
        assert both.area_mm2 == pytest.approx(a.area_mm2 + b.area_mm2)


class TestSnicOverheads:
    """§9.5: the paper's numbers the model must land near."""

    def test_total_area_near_paper(self):
        assert snic_totals().area_mm2 == pytest.approx(1.43, rel=0.25)

    def test_total_power_near_paper(self):
        total = snic_totals()
        assert total.total_power_w == pytest.approx(2.1, rel=0.35)

    def test_l2_dominates_area(self):
        parts = snic_overheads()
        assert parts["L2s"].area_mm2 == max(p.area_mm2 for p in parts.values())

    def test_rig_units_dominate_dynamic_power(self):
        parts = snic_overheads()
        assert parts["RIG Units"].dynamic_w == max(
            p.dynamic_w for p in parts.values()
        )

    def test_pending_table_dominates_rig_area(self):
        shares = rig_unit_area_breakdown()
        assert shares["Pend. PR Table"] == max(shares.values())
        assert shares["Pend. PR Table"] == pytest.approx(0.53, abs=0.1)
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_storage_near_3_5_mb(self):
        assert snic_storage_bytes() == pytest.approx(3.5e6, rel=0.15)


class TestSwitchOverheads:
    def test_area_near_paper(self):
        # Paper: caches 21.3 + concatenators 1.5 mm^2.
        assert switch_totals().area_mm2 == pytest.approx(22.8, rel=0.25)

    def test_power_near_paper(self):
        assert switch_totals().total_power_w == pytest.approx(10.0, rel=0.4)

    def test_crossbar_range(self):
        lo, hi = crossbar_area_range_mm2()
        assert lo == pytest.approx(7.0)
        assert hi == pytest.approx(105.0)


def test_config_feature_levels():
    from repro.config import FeatureFlags

    rig = FeatureFlags.ablation_level("rig")
    assert rig.rig_offload and not rig.filtering
    switch = FeatureFlags.ablation_level("switch")
    assert switch.property_cache and switch.concat_switch
    with pytest.raises(ValueError):
        FeatureFlags.ablation_level("everything")
