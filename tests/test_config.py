"""Tests for NetSparseConfig and FeatureFlags."""

import dataclasses

import pytest

from repro.config import FeatureFlags, NetSparseConfig


def test_defaults_match_table5():
    cfg = NetSparseConfig()
    assert cfg.n_nodes == 128
    assert cfg.n_racks * cfg.nodes_per_rack == 128
    assert cfg.link_bandwidth == pytest.approx(50e9)       # 400 Gbps
    assert cfg.mtu == 1500
    assert cfg.n_rig_units == 32
    assert cfg.rig_batch_nonzeros == 32 * 1024
    assert cfg.pending_pr_entries == 256
    assert cfg.concat_delay_cycles_nic == 500
    assert cfg.concat_delay_cycles_switch == 125
    assert cfg.pcache_bytes == 32 * 1024 * 1024
    assert cfg.pcache_ways == 16
    assert cfg.pcache_segments == 32
    assert cfg.snic_freq == pytest.approx(2.2e9)
    assert cfg.switch_freq == pytest.approx(2.0e9)


def test_config_is_frozen():
    cfg = NetSparseConfig()
    with pytest.raises(dataclasses.FrozenInstanceError):
        cfg.mtu = 9000


def test_n_client_units_is_half():
    assert NetSparseConfig().n_client_units == 16
    assert NetSparseConfig(n_rig_units=8).n_client_units == 4


def test_with_features_returns_new_config():
    cfg = NetSparseConfig()
    off = cfg.with_features(property_cache=False)
    assert off.features.property_cache is False
    assert cfg.features.property_cache is True
    assert off.mtu == cfg.mtu


def test_sw_pr_cost_components():
    cfg = NetSparseConfig()
    assert cfg.sw_pr_cost(0) == pytest.approx(cfg.sw_pr_cost_fixed)
    assert cfg.sw_pr_cost(100) == pytest.approx(
        cfg.sw_pr_cost_fixed + 100 * cfg.sw_pr_cost_per_byte
    )


def test_feature_flags_default_all_on():
    f = FeatureFlags()
    assert all(
        getattr(f, name)
        for name in ("rig_offload", "filtering", "coalescing",
                     "concat_nic", "concat_switch", "property_cache")
    )


def test_ablation_levels_are_cumulative():
    prev_count = -1
    for level in ("rig", "filter", "coalesce", "conc_nic", "switch"):
        f = FeatureFlags.ablation_level(level)
        count = sum(
            getattr(f, name)
            for name in ("rig_offload", "filtering", "coalescing",
                         "concat_nic", "concat_switch", "property_cache")
        )
        assert count > prev_count
        prev_count = count


def test_config_hashable_for_caching():
    a, b = NetSparseConfig(), NetSparseConfig()
    assert hash(a) == hash(b)
    assert a == b
