"""Tests for the packet-level DES cluster, including cross-validation
against the vectorized trace model."""

import pytest

from repro.config import NetSparseConfig
from repro.dessim import DesCluster, run_des_gather
from repro.partition import OneDPartition
from repro.sparse.synthetic import banded_fem, web_crawl


@pytest.fixture(scope="module")
def crawl():
    return web_crawl(n=1024, mean_degree=6, seed=2, block_size=128)


@pytest.fixture(scope="module")
def gathered(crawl):
    return run_des_gather(crawl, k=16, n_racks=2, nodes_per_rack=4)


class TestCorrectness:
    def test_every_needed_property_delivered_exactly_once(self, crawl,
                                                          gathered):
        part = OneDPartition(crawl, 8)
        for node, tr in enumerate(part.node_traces()):
            needed = sorted(set(tr.remote_idxs.tolist()))
            assert gathered.received.get(node, []) == needed

    def test_conservation_of_prs(self, gathered):
        total_delivered = sum(len(v) for v in gathered.received.values())
        # issued = delivered (every issued read produces one response;
        # filtering/coalescing only removes redundant requests).
        assert gathered.issued_prs == total_delivered

    def test_finish_time_positive(self, gathered):
        assert gathered.finish_time > 0

    def test_deterministic(self, crawl):
        a = run_des_gather(crawl, k=16, n_racks=2, nodes_per_rack=4)
        b = run_des_gather(crawl, k=16, n_racks=2, nodes_per_rack=4)
        assert a.finish_time == b.finish_time
        assert a.issued_prs == b.issued_prs
        assert a.fabric_packets == b.fabric_packets


class TestMechanismsInDes:
    def test_filtering_drops_duplicates(self, gathered):
        # The crawl has heavy idx reuse: most candidate PRs are dropped.
        assert gathered.dropped_prs > gathered.issued_prs

    def test_cache_turnarounds_happen(self, gathered):
        assert gathered.cache_turnarounds > 0

    def test_cache_reduces_fabric_traffic(self, crawl):
        with_cache = run_des_gather(crawl, k=16, enable_cache=True)
        no_cache = run_des_gather(crawl, k=16, enable_cache=False)
        assert no_cache.cache_turnarounds == 0
        assert with_cache.fabric_bytes < no_cache.fabric_bytes
        # Correctness is unaffected by caching.
        assert with_cache.received == no_cache.received

    def test_concat_packs_prs(self, crawl):
        packed = run_des_gather(crawl, k=16, enable_concat=True)
        solo = run_des_gather(crawl, k=16, enable_concat=False)
        assert solo.avg_prs_per_fabric_packet <= 1.01
        assert packed.avg_prs_per_fabric_packet > solo.avg_prs_per_fabric_packet
        assert packed.fabric_bytes < solo.fabric_bytes
        assert packed.received == solo.received

    def test_multiple_client_units(self, crawl):
        multi = run_des_gather(crawl, k=16, n_client_units=4)
        part = OneDPartition(crawl, 8)
        for node, tr in enumerate(part.node_traces()):
            needed = sorted(set(tr.remote_idxs.tolist()))
            # Cross-unit duplicates may deliver extras, but everything
            # needed must arrive and nothing unneeded ever does.
            got = multi.received.get(node, [])
            assert set(got) == set(needed)

    def test_banded_matrix_no_cross_rack_traffic_when_local(self):
        """A narrow band within one rack's span never touches spines."""
        mat = banded_fem(n=512, mean_degree=6, band=4, seed=1)
        res = run_des_gather(mat, k=4, n_racks=2, nodes_per_rack=4)
        # Remote requests only target adjacent nodes; only the two
        # rack-boundary nodes (3 -> 4) cross racks.
        assert res.fabric_bytes < res.host_up_bytes.sum() / 2


class TestTraceModelAgreement:
    """The DES and the trace-level cluster model must agree on the
    functional quantities (delivered sets; filter effectiveness within
    tolerance)."""

    def test_delivered_sets_match_trace_model_invariant(self, crawl,
                                                        gathered):
        part = OneDPartition(crawl, 8)
        from repro.core.filtering import filter_and_coalesce

        for node, tr in enumerate(part.node_traces()):
            fr = filter_and_coalesce(tr.remote_idxs, n_units=1,
                                     batch_size=1 << 20,
                                     inflight_window=64)
            trace_set = set(tr.remote_idxs[fr.issued_mask].tolist())
            des_set = set(gathered.received.get(node, []))
            assert des_set == trace_set

    def test_filter_rates_within_tolerance(self, crawl, gathered):
        from repro.core.filtering import filter_and_coalesce

        part = OneDPartition(crawl, 8)
        trace_issued = 0
        for tr in part.node_traces():
            fr = filter_and_coalesce(tr.remote_idxs, n_units=1,
                                     batch_size=1 << 20,
                                     inflight_window=64)
            trace_issued += fr.n_issued
        # The DES's in-flight timing differs from the window model's;
        # allow 25% but require the same magnitude.
        assert gathered.issued_prs == pytest.approx(trace_issued, rel=0.25)


def test_cluster_rejects_incomplete_runs():
    """The runaway guard reports rather than hangs."""
    cluster = DesCluster(n_racks=1, nodes_per_rack=2, k=16, n_cols=64)
    with pytest.raises(RuntimeError):
        cluster.run_gather({0: [63]}, max_events=10)


def test_custom_config_small_pending_table(crawl):
    """A tiny Pending PR Table throttles but never deadlocks."""
    cfg = NetSparseConfig(pending_pr_entries=2)
    res = run_des_gather(crawl, k=16, config=cfg)
    part = OneDPartition(crawl, 8)
    for node, tr in enumerate(part.node_traces()):
        assert set(res.received.get(node, [])) == set(
            tr.remote_idxs.tolist()
        )
