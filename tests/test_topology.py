"""Unit tests for the three topologies, routing, and latency model."""

import numpy as np
import pytest

from repro.network import Dragonfly, HyperX, LeafSpine
from repro.network.topology import LINK_LATENCY_S, SWITCH_LATENCY_S


@pytest.fixture(scope="module")
def leafspine():
    return LeafSpine(n_racks=8, nodes_per_rack=16, n_spines=8)


@pytest.fixture(scope="module")
def hyperx():
    return HyperX(shape=(4, 4, 2), hosts_per_switch=4, width=4)


@pytest.fixture(scope="module")
def dragonfly():
    return Dragonfly(n_groups=4, switches_per_group=8, hosts_per_switch=4,
                     global_link_count=4)


def test_all_have_128_nodes(leafspine, hyperx, dragonfly):
    for topo in (leafspine, hyperx, dragonfly):
        assert topo.n_nodes == 128


def test_leafspine_intra_rack_rtt_matches_table5(leafspine):
    # Same rack: 2 links, 1 switch each way -> 2.4us RTT (Table 5).
    assert leafspine.rtt(0, 1) == pytest.approx(2.4e-6, rel=1e-9)


def test_leafspine_inter_rack_rtt_matches_table5(leafspine):
    # Cross rack: 4 links, 3 switches each way -> 5.4us RTT (Table 5).
    assert leafspine.rtt(0, 127) == pytest.approx(5.4e-6, rel=1e-9)


def test_leafspine_rack_of(leafspine):
    assert leafspine.rack_of(0) == 0
    assert leafspine.rack_of(15) == 0
    assert leafspine.rack_of(16) == 1
    assert leafspine.rack_of(127) == 7


def test_route_same_node_is_empty(leafspine):
    assert leafspine.route(5, 5) == []
    assert leafspine.one_way_latency(5, 5) == 0.0


def test_route_out_of_range(leafspine):
    with pytest.raises(ValueError):
        leafspine.route(0, 500)


def test_routes_are_deterministic(leafspine):
    assert leafspine.route(3, 77) == leafspine.route(3, 77)


def test_leafspine_route_shape(leafspine):
    # intra-rack: host->tor->host = 2 links
    assert len(leafspine.route(0, 1)) == 2
    # inter-rack: host->tor->spine->tor->host = 4 links
    assert len(leafspine.route(0, 127)) == 4


def test_routes_start_and_end_at_hosts(leafspine, hyperx, dragonfly):
    for topo in (leafspine, hyperx, dragonfly):
        route = topo.route(1, topo.n_nodes - 2)
        first, last = topo.links[route[0]], topo.links[route[-1]]
        assert first.src == "h1"
        assert last.dst == f"h{topo.n_nodes - 2}"
        # Consecutive links share endpoints.
        for a, b in zip(route, route[1:]):
            assert topo.links[a].dst == topo.links[b].src


def test_hyperx_dimension_order_hops(hyperx):
    # Hosts on the same switch: 2 links.
    assert len(hyperx.route(0, 1)) == 2
    # All three coordinates differ: 3 switch hops + 2 host links = 5.
    # Node 0 is on switch (0,0,0); the last switch is (3,3,1).
    last_host = hyperx.n_nodes - 1
    assert len(hyperx.route(0, last_host)) == 5


def test_hyperx_diameter_exceeds_leafspine(hyperx, leafspine):
    # The paper explains stokes' HyperX slowdown by the higher hop count.
    assert hyperx.diameter_hops() > leafspine.diameter_hops()


def test_dragonfly_group_of(dragonfly):
    assert dragonfly.group_of(0) == 0
    assert dragonfly.group_of(127) == 3
    assert dragonfly.rack_of(33) == dragonfly.group_of(33)


def test_dragonfly_minimal_route_hops(dragonfly):
    # Same switch: 2. Same group: <=3. Cross group: <=5.
    assert len(dragonfly.route(0, 1)) == 2
    assert len(dragonfly.route(0, 30)) <= 3
    assert len(dragonfly.route(0, 127)) <= 5


def test_one_way_latency_formula(leafspine):
    lat = leafspine.one_way_latency(0, 127)
    assert lat == pytest.approx(4 * LINK_LATENCY_S + 3 * SWITCH_LATENCY_S)


def test_link_loads_conservation(leafspine):
    n = leafspine.n_nodes
    tm = np.zeros((n, n))
    tm[0, 17] = 1000.0
    tm[1, 2] = 500.0
    loads = leafspine.link_loads(tm)
    # Each byte crosses hop_count links.
    expected = 1000.0 * leafspine.hop_count(0, 17) + 500.0 * leafspine.hop_count(1, 2)
    assert loads.sum() == pytest.approx(expected)


def test_link_loads_shape_check(leafspine):
    with pytest.raises(ValueError):
        leafspine.link_loads(np.zeros((3, 3)))


def test_all_topologies_connected(leafspine, hyperx, dragonfly):
    import networkx as nx

    for topo in (leafspine, hyperx, dragonfly):
        g = topo.to_networkx()
        assert nx.is_connected(g)
        # every host present
        hosts = [v for v in g if v.startswith("h")]
        assert len(hosts) == topo.n_nodes


def test_hyperx_trunked_bandwidth(hyperx):
    host_link = hyperx.links[hyperx.route(0, 1)[0]]
    cross = [ln for ln in hyperx.links if ln.kind == "local"][0]
    assert cross.bandwidth == pytest.approx(4 * host_link.bandwidth)


def test_dragonfly_global_links_exist(dragonfly):
    kinds = {ln.kind for ln in dragonfly.links}
    assert {"host", "local", "global"} <= kinds
    n_global = sum(1 for ln in dragonfly.links if ln.kind == "global")
    # 4 groups -> 6 unordered pairs x 4 links x 2 directions.
    assert n_global == 6 * 4 * 2
