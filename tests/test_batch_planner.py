"""Batch planner: grouping rules, engine integration, bit-identity.

The planner (:mod:`repro.parallel.batch`) may only ever change *how
fast* a sweep evaluates, never *what* it evaluates: grouping decisions
are pinned here, and the paper tables the ISSUE names (fig15-18,
autotune, table8) are asserted bit-identical between ``REPRO_BATCH=1``
(planner + fused memos) and ``REPRO_BATCH=0`` (the legacy
every-job-from-scratch path).
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.cluster import reset_batch_state
from repro.config import NetSparseConfig
from repro.core.autotune import tune_rig_batch
from repro.core.batchmode import use_batch
from repro.experiments import run_experiment
from repro.parallel import (
    ExecutionEngine,
    SimJob,
    engine_scope,
    simulate_many,
)
from repro.parallel.batch import execute_group, group_key, plan_batches
from repro.parallel.jobs import timed_execute

MAT = "queen"  # smallest tiny-scale benchmark in the suite
K = 16


def _job(**overrides) -> SimJob:
    base = dict(scheme="netsparse", matrix=MAT, k=K,
                config=NetSparseConfig(), scale_name="tiny")
    base.update(overrides)
    return SimJob(**base)


def _cfg(**overrides) -> NetSparseConfig:
    return dataclasses.replace(NetSparseConfig(), **overrides)


def _assert_identical(a, b):
    assert a.scheme == b.scheme
    assert a.total_time == b.total_time  # bitwise, no tolerance
    np.testing.assert_array_equal(a.per_node_time, b.per_node_time)
    np.testing.assert_array_equal(a.recv_wire_bytes, b.recv_wire_bytes)
    np.testing.assert_array_equal(a.sent_wire_bytes, b.sent_wire_bytes)


class TestGroupKey:
    """Which axes may vary inside one fused group."""

    @pytest.mark.parametrize("override", [
        {"k": 128},
        {"rig_batch": 4096},
        {"config": _cfg(pcache_bytes=1 << 20)},
        {"config": _cfg(pcache_ways=4)},
        {"config": _cfg(pcache_segments=16)},
        {"config": _cfg(pcache_min_line=32)},
        {"config": NetSparseConfig().with_features(property_cache=False)},
    ])
    def test_batchable_axes_share_a_group(self, override):
        assert group_key(_job(**override)) == group_key(_job())

    @pytest.mark.parametrize("override", [
        {"scheme": "suopt"},
        {"matrix": "arabic"},
        {"seed": 8},
        {"scale_name": "small"},
        {"scale": 0.25},
        {"partition": "nnz"},
        {"topology": ("leafspine", 2, 4, 1)},
        {"config": _cfg(n_nodes=64)},
        {"config": _cfg(concat_delay_cycles_nic=1000)},
        {"config": _cfg(mtu=9000)},
        {"config": NetSparseConfig().with_features(concat_nic=False)},
        {"faults": '{"name":"x","seed":0,"links":[{"scope":"all",'
                   '"start":0.0,"end":1.0,"drop_rate":0.1,'
                   '"corrupt_rate":0.0,"degrade":1.0}]}'},
    ])
    def test_residual_axes_split_groups(self, override):
        assert group_key(_job(**override)) != group_key(_job())


class TestPlanBatches:
    def test_mixed_grid_splits_correctly(self):
        # Two matrices x three k values: matrix is residual, k folds.
        jobs = [_job(matrix=m, k=k)
                for m in ("queen", "arabic") for k in (16, 64, 128)]
        plan = plan_batches(jobs)
        assert plan.n_groups == 2
        assert plan.n_jobs == 6
        assert plan.n_folded == 4
        assert [len(g) for g in plan.groups] == [3, 3]
        # Groups appear in first-submission order, members in
        # submission order.
        assert [j.matrix for j in plan.groups[0]] == ["queen"] * 3
        assert [j.k for j in plan.groups[0]] == [16, 64, 128]
        assert [j.matrix for j in plan.groups[1]] == ["arabic"] * 3

    def test_inexpressible_axis_falls_back_to_singletons(self):
        # A concat-delay sweep cannot fold: every job its own group.
        jobs = [_job(config=_cfg(concat_delay_cycles_nic=d))
                for d in (125, 250, 500, 1000)]
        plan = plan_batches(jobs)
        assert plan.n_groups == 4
        assert plan.n_folded == 0
        assert all(len(g) == 1 for g in plan.groups)

    def test_every_job_exactly_once(self):
        jobs = [_job(k=k, seed=s) for k in (16, 64) for s in (7, 8)]
        plan = plan_batches(jobs)
        flat = [j for g in plan.groups for j in g]
        assert sorted(j.digest() for j in flat) == \
            sorted(j.digest() for j in jobs)

    def test_describe(self):
        plan = plan_batches([_job(k=16), _job(k=64), _job(seed=9)])
        assert plan.describe() == {
            "jobs": 3, "groups": 2, "folded": 1, "group_sizes": [2, 1],
        }

    def test_empty(self):
        plan = plan_batches([])
        assert plan.n_jobs == plan.n_groups == plan.n_folded == 0


class TestExecuteGroup:
    def test_bit_identical_to_individual_execution(self):
        jobs = [_job(k=k) for k in (16, 64)]
        reset_batch_state()
        grouped = execute_group(jobs)
        reset_batch_state()
        solo = [timed_execute(j) for j in jobs]
        assert len(grouped) == 2
        for (gr, _), (sr, _) in zip(grouped, solo):
            _assert_identical(gr, sr)


class TestEngineIntegration:
    def _grid(self):
        return [_job(matrix=m, k=k)
                for m in ("queen", "europe") for k in (16, 64, 128)]

    def _run(self, mode, jobs=None):
        reset_batch_state()
        with use_batch(mode):
            with engine_scope(ExecutionEngine()) as eng:
                results = simulate_many(jobs or self._grid())
                stats = eng.stats
        return results, stats

    def test_batched_results_match_legacy_bitwise(self):
        fast, fast_stats = self._run(True)
        slow, slow_stats = self._run(False)
        for a, b in zip(fast, slow):
            _assert_identical(a, b)
        # The planner really ran: group riders carry batched
        # attribution; the legacy leg never does.
        assert fast_stats.batched == 4   # 2 groups of 3 -> 2x2 riders
        assert slow_stats.batched == 0
        assert fast_stats.executed == slow_stats.executed == 6

    def test_single_job_skips_planner(self):
        results, stats = self._run(True, jobs=[_job()])
        assert len(results) == 1
        assert stats.batched == 0

    def test_batched_counter_in_summary(self):
        _, stats = self._run(True)
        assert "batched=4" in stats.summary()
        assert stats.as_dict()["batched"] == 4

    def test_parallel_groups_match_serial(self, tmp_path):
        jobs = self._grid()
        reset_batch_state()
        with use_batch(True), engine_scope(ExecutionEngine()) as eng:
            serial = simulate_many(jobs)
        reset_batch_state()
        with use_batch(True), \
                engine_scope(ExecutionEngine(jobs=2)) as eng:
            parallel = simulate_many(jobs)
            assert eng.stats.batched > 0
        for a, b in zip(serial, parallel):
            _assert_identical(a, b)


class TestEvaluateMany:
    """tune_rig_batch(evaluate_many=...) probes the same points in the
    same order and lands on the same answer as the scalar path."""

    @staticmethod
    def _cost(batch):
        return abs(np.log2(batch) - np.log2(48 * 1024)) + 0.001

    def test_same_probes_same_result(self):
        scalar_calls = []

        def evaluate(batch):
            scalar_calls.append(batch)
            return self._cost(batch)

        many_rounds = []

        def evaluate_many(batches):
            many_rounds.append(list(batches))
            return [self._cost(b) for b in batches]

        a = tune_rig_batch(evaluate)
        b = tune_rig_batch(evaluate_many=evaluate_many)
        assert a.best_batch == b.best_batch
        assert a.best_time == b.best_time
        assert a.probes == b.probes
        assert a.n_evaluations == b.n_evaluations
        # Round granularity changed; the probe sequence did not.
        flat = [x for round_ in many_rounds for x in round_]
        assert flat == scalar_calls

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            tune_rig_batch(evaluate_many=lambda batches: [1.0])

    def test_requires_an_evaluator(self):
        with pytest.raises(ValueError):
            tune_rig_batch()


class TestTraceCacheContention:
    def test_contended_build_counted(self):
        from repro.partition.tracecache import TraceCache
        from repro.sparse.suite import load_benchmark

        mat = load_benchmark(MAT, "tiny")
        cache = TraceCache(max_entries=4)
        cache.get_partition(mat, 4)
        assert cache.contended_builds == 0
        # A second miss while a build for the same key is in flight is
        # the contention the engine's trace-ordered dispatch avoids.
        key = (mat.structural_digest(), 8, "rows")
        cache._building.add(key)
        cache.get_partition(mat, 8)
        assert cache.contended_builds == 1
        assert cache.stats()["contended_builds"] == 1
        # The finished build cleans up its in-flight marker.
        assert key not in cache._building


@pytest.mark.parametrize(
    "exp_id", ["fig15", "fig16", "fig17", "fig18", "autotune", "table8"]
)
def test_experiment_bit_identical_across_modes(exp_id):
    """The ISSUE's acceptance bar: each sweep's full table is
    bit-identical with the planner on and off."""
    tables = {}
    for mode in (True, False):
        reset_batch_state()
        with use_batch(mode), engine_scope(ExecutionEngine()):
            tables[mode] = run_experiment(exp_id, scale="tiny")
    assert tables[True].columns == tables[False].columns
    assert tables[True].rows == tables[False].rows
