"""Tests for the NetSparse cluster model."""

import numpy as np
import pytest

from repro.config import FeatureFlags, NetSparseConfig
from repro.cluster import build_cluster_topology, simulate_netsparse
from repro.cluster.model import _DelayedInsertCache
from repro.core.pcache import PropertyCache
from repro.sparse.suite import load_benchmark


CFG16 = NetSparseConfig(n_nodes=16, n_racks=4, nodes_per_rack=4)


def topo16():
    from repro.network import LeafSpine

    return LeafSpine(n_racks=4, nodes_per_rack=4, n_spines=2)


@pytest.fixture(scope="module")
def arabic_tiny():
    return load_benchmark("arabic", "tiny")


@pytest.fixture(scope="module")
def result(arabic_tiny):
    return simulate_netsparse(arabic_tiny, 16, CFG16, topo16())


def test_basic_sanity(result):
    assert result.total_time > 0
    assert result.n_prs_issued > 0
    assert result.n_prs_issued <= result.n_pr_candidates
    assert result.per_node_time.shape == (16,)
    assert (result.per_node_time >= 0).all()


def test_issued_plus_dropped_equals_candidates(result):
    assert (
        result.n_prs_issued + result.n_filtered + result.n_coalesced
        == result.n_pr_candidates
    )


def test_traffic_is_positive_and_bounded(result):
    assert result.recv_wire_bytes.sum() > 0
    assert result.sent_wire_bytes.sum() > 0
    # Useful payload cannot exceed received wire bytes in aggregate
    # (wire carries payload + headers; every useful byte crosses the wire
    # at most... exactly once plus escaped duplicates).
    assert result.useful_payload_bytes.sum() <= result.recv_wire_bytes.sum()


def test_deterministic(arabic_tiny):
    a = simulate_netsparse(arabic_tiny, 16, CFG16, topo16())
    b = simulate_netsparse(arabic_tiny, 16, CFG16, topo16())
    assert a.total_time == b.total_time
    np.testing.assert_array_equal(a.recv_wire_bytes, b.recv_wire_bytes)
    assert a.n_packets == b.n_packets


def test_scale_validation(arabic_tiny):
    with pytest.raises(ValueError):
        simulate_netsparse(arabic_tiny, 16, CFG16, topo16(), scale=0.0)


def test_filtering_reduces_traffic(arabic_tiny):
    on = simulate_netsparse(arabic_tiny, 16, CFG16, topo16())
    cfg_off = CFG16.with_features(filtering=False, coalescing=False)
    off = simulate_netsparse(arabic_tiny, 16, cfg_off, topo16())
    assert on.n_prs_issued < off.n_prs_issued
    assert on.recv_wire_bytes.sum() < off.recv_wire_bytes.sum()
    assert off.n_filtered == 0 and off.n_coalesced == 0


def test_cache_disabled_means_no_lookups(arabic_tiny):
    cfg = CFG16.with_features(property_cache=False)
    res = simulate_netsparse(arabic_tiny, 16, cfg, topo16())
    assert res.cache_lookups == 0
    assert res.cache_hits == 0


def test_cache_reduces_fabric_traffic(arabic_tiny):
    with_cache = simulate_netsparse(arabic_tiny, 16, CFG16, topo16())
    no_cache = simulate_netsparse(
        arabic_tiny, 16, CFG16.with_features(property_cache=False), topo16()
    )
    assert with_cache.cache_hits > 0
    assert with_cache.extras["fabric_time"] <= no_cache.extras["fabric_time"]


def test_concat_reduces_packet_count(arabic_tiny):
    full = simulate_netsparse(arabic_tiny, 16, CFG16, topo16())
    solo = simulate_netsparse(
        arabic_tiny, 16,
        CFG16.with_features(concat_nic=False, concat_switch=False,
                            property_cache=False),
        topo16(),
    )
    # Without concatenation every PR is its own packet.
    assert solo.avg_prs_per_packet <= 1.01
    assert full.avg_prs_per_packet > 1.5


def test_ablation_monotone_traffic(arabic_tiny):
    """Adding mechanisms never increases tail traffic (Table 8 trend)."""
    levels = ["rig", "filter", "coalesce", "conc_nic", "switch"]
    traffic = []
    for level in levels:
        cfg = NetSparseConfig(
            n_nodes=16, n_racks=4, nodes_per_rack=4,
            features=FeatureFlags.ablation_level(level),
        )
        res = simulate_netsparse(arabic_tiny, 16, cfg, topo16())
        traffic.append(res.recv_wire_bytes.sum())
    for before, after in zip(traffic, traffic[1:]):
        assert after <= before * 1.05  # small slack for window effects


def test_larger_k_more_payload(arabic_tiny):
    from repro.sparse.suite import scale_factor

    sc = scale_factor("arabic", arabic_tiny)
    small = simulate_netsparse(arabic_tiny, 1, CFG16, topo16(), scale=sc)
    large = simulate_netsparse(arabic_tiny, 128, CFG16, topo16(), scale=sc)
    assert large.useful_payload_bytes.sum() == pytest.approx(
        128 * small.useful_payload_bytes.sum()
    )
    assert large.total_time > small.total_time


def test_active_nodes_curve(result):
    t, active = result.active_nodes_over_time(50)
    assert active[0] == 16
    assert active[-1] == 0
    assert (np.diff(active) <= 0).all()


def test_topology_builder_names():
    for name in ("leafspine", "hyperx", "dragonfly"):
        cfg = NetSparseConfig(topology=name)
        topo = build_cluster_topology(cfg)
        assert topo.n_nodes == 128
    with pytest.raises(ValueError):
        build_cluster_topology(NetSparseConfig(topology="torus"))


class TestDelayedInsertCache:
    def make(self, delay):
        pc = PropertyCache(capacity_bytes=1 << 16, ways=4)
        pc.configure(64)
        return _DelayedInsertCache(pc, delay)

    def test_immediate_reuse_misses_within_delay(self):
        front = self.make(delay=5)
        hits = front.process(np.array([1, 1, 1]))
        # All three within the in-flight window: all miss.
        assert not hits.any()

    def test_reuse_after_delay_hits(self):
        front = self.make(delay=2)
        hits = front.process(np.array([1, 9, 9, 9, 1]))
        assert hits[4]  # idx 1 re-referenced after its insert landed

    def test_zero_delay_inserts_next_position(self):
        front = self.make(delay=0)
        hits = front.process(np.array([3, 3]))
        assert not hits[0] and hits[1]

    def test_no_hit_without_insert(self):
        front = self.make(delay=1)
        hits = front.process(np.array([1, 2, 3, 4]))
        assert not hits.any()
