"""Hypothesis property tests on topology routing invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network import Dragonfly, HyperX, LeafSpine

TOPOLOGIES = {
    "leafspine": LeafSpine(n_racks=4, nodes_per_rack=4, n_spines=2),
    "hyperx": HyperX(shape=(2, 2, 2), hosts_per_switch=2, width=2),
    "dragonfly": Dragonfly(n_groups=2, switches_per_group=4,
                           hosts_per_switch=2, global_link_count=2),
}


@settings(max_examples=200, deadline=None)
@given(
    name=st.sampled_from(sorted(TOPOLOGIES)),
    src=st.integers(0, 15),
    dst=st.integers(0, 15),
)
def test_property_route_wellformed(name, src, dst):
    """INVARIANT: every route is a connected chain from the source host
    to the destination host, visiting no host in between."""
    topo = TOPOLOGIES[name]
    route = topo.route(src, dst)
    if src == dst:
        assert route == []
        return
    links = [topo.links[lid] for lid in route]
    assert links[0].src == f"h{src}"
    assert links[-1].dst == f"h{dst}"
    for a, b in zip(links, links[1:]):
        assert a.dst == b.src
        assert not a.dst.startswith("h")   # no host mid-route


@settings(max_examples=100, deadline=None)
@given(
    name=st.sampled_from(sorted(TOPOLOGIES)),
    src=st.integers(0, 15),
    dst=st.integers(0, 15),
)
def test_property_latency_symmetry(name, src, dst):
    """Minimal routes have symmetric hop counts in these fabrics."""
    topo = TOPOLOGIES[name]
    assert topo.hop_count(src, dst) == topo.hop_count(dst, src)
    assert topo.one_way_latency(src, dst) == pytest.approx(
        topo.one_way_latency(dst, src)
    )


@settings(max_examples=60, deadline=None)
@given(
    name=st.sampled_from(sorted(TOPOLOGIES)),
    flows=st.lists(
        st.tuples(st.integers(0, 15), st.integers(0, 15),
                  st.floats(1.0, 1e6)),
        max_size=20,
    ),
)
def test_property_link_load_conservation(name, flows):
    """INVARIANT: total link-bytes equal sum over flows of
    bytes * hop_count — nothing lost, nothing double-counted."""
    topo = TOPOLOGIES[name]
    tm = np.zeros((16, 16))
    for s, d, b in flows:
        tm[s, d] += b
    loads = topo.link_loads(tm)
    expected = sum(
        tm[s, d] * topo.hop_count(s, d)
        for s in range(16)
        for d in range(16)
        if s != d
    )
    assert loads.sum() == pytest.approx(expected)


@settings(max_examples=100, deadline=None)
@given(name=st.sampled_from(sorted(TOPOLOGIES)), node=st.integers(0, 15))
def test_property_rack_is_stable(name, node):
    topo = TOPOLOGIES[name]
    assert 0 <= topo.rack_of(node) < 16
    assert topo.rack_of(node) == topo.rack_of(node)


def test_hop_count_bounds():
    for name, topo in TOPOLOGIES.items():
        diameter = topo.diameter_hops()
        assert 2 <= diameter <= 6, name
