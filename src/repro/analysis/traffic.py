"""Communication-pattern analyses over partitioned matrices (§3)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.partition import OneDPartition, cached_partition
from repro.sparse.matrix import COOMatrix

__all__ = [
    "RedundancyStats",
    "transfer_redundancy",
    "destination_locality",
    "rack_sharing_fraction",
    "working_set_sizes",
]


@dataclass
class RedundancyStats:
    """Useful vs redundant transfer accounting (Table 1)."""

    n_nodes: int
    useful_transfers: int          # unique (node, remote idx) pairs
    sa_transfers: int              # one per remote nonzero
    su_transfers: int              # every node gets every non-owned idx

    @property
    def sa_redundant(self) -> int:
        return self.sa_transfers - self.useful_transfers

    @property
    def su_redundant(self) -> int:
        return self.su_transfers - self.useful_transfers

    @property
    def sa_redundancy_ratio(self) -> float:
        """Redundant per useful (the 1:X of Table 1's SA row)."""
        return self.sa_redundant / max(self.useful_transfers, 1)

    @property
    def su_redundancy_ratio(self) -> float:
        return self.su_redundant / max(self.useful_transfers, 1)


def transfer_redundancy(
    matrix: COOMatrix,
    n_nodes: int,
    partition: Optional[OneDPartition] = None,
) -> RedundancyStats:
    """Count useful / SA / SU property transfers under 1D partitioning."""
    part = partition or cached_partition(matrix, n_nodes)
    traces = part.node_traces()
    useful = sum(t.unique_remote_count() for t in traces)
    sa = sum(int(t.remote.sum()) for t in traces)
    su = sum(
        int(matrix.n_cols - (part.col_starts[p + 1] - part.col_starts[p]))
        for p in range(n_nodes)
    )
    return RedundancyStats(n_nodes, useful, sa, su)


def destination_locality(
    matrix: COOMatrix,
    n_nodes: int,
    window: int = 64,
    partition: Optional[OneDPartition] = None,
) -> float:
    """Average unique destination nodes in ``window`` consecutive PRs
    (Table 4's temporal remote destination locality)."""
    if window < 1:
        raise ValueError("window must be positive")
    part = partition or cached_partition(matrix, n_nodes)
    uniq = []
    for tr in part.node_traces():
        dests = tr.remote_owners
        for s in range(0, dests.size - window, window):
            uniq.append(np.unique(dests[s:s + window]).size)
    return float(np.mean(uniq)) if uniq else 0.0


def rack_sharing_fraction(
    matrix: COOMatrix,
    n_nodes: int,
    nodes_per_rack: int = 16,
    partition: Optional[OneDPartition] = None,
) -> float:
    """Fraction of useful PRs whose property is needed by more than one
    node of the same rack (§3: ~85% on average, the motivation for
    in-switch caching).

    Counted over unique (node, remote idx) pairs — redundant transfers
    are excluded, exactly as the paper specifies.
    """
    if n_nodes % nodes_per_rack:
        raise ValueError("n_nodes must be a multiple of nodes_per_rack")
    part = partition or cached_partition(matrix, n_nodes)
    shared = 0
    total = 0
    n_racks = n_nodes // nodes_per_rack
    traces = part.node_traces()
    for rack in range(n_racks):
        members = range(rack * nodes_per_rack, (rack + 1) * nodes_per_rack)
        idx_count: Dict[int, int] = {}
        member_uniques = []
        for node in members:
            uniq = traces[node].remote_unique
            member_uniques.append(uniq)
            for idx in uniq.tolist():
                idx_count[idx] = idx_count.get(idx, 0) + 1
        for uniq in member_uniques:
            total += uniq.size
            shared += sum(1 for idx in uniq.tolist() if idx_count[idx] > 1)
    return shared / max(total, 1)


def working_set_sizes(
    matrix: COOMatrix,
    n_nodes: int,
    nodes_per_rack: int = 16,
    property_bytes: int = 64,
    partition: Optional[OneDPartition] = None,
) -> np.ndarray:
    """Per-rack remote working set in bytes — what a Property Cache
    would need to hold everything the rack ever fetches (sizes Fig 18's
    saturation point)."""
    part = partition or cached_partition(matrix, n_nodes)
    traces = part.node_traces()
    n_racks = n_nodes // nodes_per_rack
    sizes = np.zeros(n_racks)
    for rack in range(n_racks):
        members = range(rack * nodes_per_rack, (rack + 1) * nodes_per_rack)
        all_idxs = np.concatenate(
            [traces[node].remote_idxs for node in members]
        ) if members else np.zeros(0)
        sizes[rack] = np.unique(all_idxs).size * property_bytes
    return sizes
