"""Workload characterization: the §3 motivation analyses as an API.

Everything the paper measures about a sparse matrix before proposing
hardware: transfer redundancy (Table 1), temporal remote destination
locality (Table 4), intra-rack sharing potential (the "85% of PRs are
useful to more than one node in the same group" claim), and working-set
curves that size the Property Cache.
"""

from repro.analysis.traffic import (
    RedundancyStats,
    destination_locality,
    rack_sharing_fraction,
    transfer_redundancy,
    working_set_sizes,
)

__all__ = [
    "RedundancyStats",
    "destination_locality",
    "rack_sharing_fraction",
    "transfer_redundancy",
    "working_set_sizes",
]
