"""Flow-level network timing model.

Communication phases of sparse kernels are throughput-bound: what
determines completion time is how long the most-loaded resource (host
injection port, host ejection port, or fabric link) needs to drain its
bytes, plus a latency term for the last in-flight round trip.  This is
the same style of idealization the paper applies to its SUOpt baseline
("time needed ... to receive all of the data bytes ... at 100% line
bandwidth") and it is how we convert the exact per-link byte loads from
the trace model into time.

The packet-level DES in :mod:`repro.network.packetsim` validates this
model at small scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.network.topology import Topology

__all__ = ["FlowTimingResult", "flow_completion_time"]


@dataclass
class FlowTimingResult:
    """Timing breakdown of one communication phase."""

    total_time: float             # seconds
    bottleneck_link: int          # link id of the binding resource
    bottleneck_time: float        # drain time of that link
    node_send_time: np.ndarray    # per-node injection drain time
    node_recv_time: np.ndarray    # per-node ejection drain time
    latency_term: float           # zero-load RTT added for the last flight
    link_loads: np.ndarray        # bytes per link

    @property
    def tail_node(self) -> int:
        """The node whose port drains last (paper's 'tail node')."""
        per_node = np.maximum(self.node_send_time, self.node_recv_time)
        return int(np.argmax(per_node))


def flow_completion_time(
    topology: Topology,
    traffic: np.ndarray,
    efficiency: float = 1.0,
    latency_rtt: Optional[float] = None,
) -> FlowTimingResult:
    """Completion time of a traffic matrix on a topology.

    ``traffic[s, d]`` is bytes moved from node s to node d (wire bytes,
    i.e. including whatever headers the caller's protocol adds).
    ``efficiency`` derates all links uniformly (e.g. to model protocol
    or scheduling slack); ``latency_rtt`` defaults to the topology's
    worst-case RTT among communicating pairs.
    """
    traffic = np.asarray(traffic, dtype=np.float64)
    n = topology.n_nodes
    if traffic.shape != (n, n):
        raise ValueError(f"traffic must be ({n}, {n}), got {traffic.shape}")
    if not 0 < efficiency <= 1:
        raise ValueError("efficiency must be in (0, 1]")

    loads = topology.link_loads(traffic)
    bandwidths = np.array([ln.bandwidth for ln in topology.links]) * efficiency
    drain = np.divide(loads, bandwidths)
    bottleneck = int(np.argmax(drain)) if loads.any() else 0

    send_bytes = traffic.sum(axis=1) - np.diag(traffic)
    recv_bytes = traffic.sum(axis=0) - np.diag(traffic)
    # Host ports run at the host-link rate.
    host_bw = np.empty(n)
    for node in range(n):
        lid = topology.route(node, (node + 1) % n)
        host_bw[node] = topology.links[lid[0]].bandwidth if lid else np.inf
    host_bw *= efficiency
    node_send = send_bytes / host_bw
    node_recv = recv_bytes / host_bw

    if latency_rtt is None:
        latency_rtt = _worst_rtt(topology, traffic)

    total = float(max(drain.max() if loads.any() else 0.0,
                      node_send.max(), node_recv.max()) + latency_rtt)
    return FlowTimingResult(
        total_time=total,
        bottleneck_link=bottleneck,
        bottleneck_time=float(drain[bottleneck]) if loads.any() else 0.0,
        node_send_time=node_send,
        node_recv_time=node_recv,
        latency_term=latency_rtt,
        link_loads=loads,
    )


def _worst_rtt(topology: Topology, traffic: np.ndarray) -> float:
    worst = 0.0
    src_ids, dst_ids = np.nonzero(traffic)
    for s, d in zip(src_ids.tolist(), dst_ids.tolist()):
        if s != d:
            worst = max(worst, topology.rtt(s, d))
    return worst
