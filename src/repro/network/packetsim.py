"""Packet-level DES network on top of :mod:`repro.sim`.

Store-and-forward model: every directed link has a bounded input queue
and a serializer process (wire time = bytes / bandwidth, then the link's
propagation latency).  Bounded queues + blocking puts give the lossless
backpressure behaviour of the paper's InfiniBand-like fabric (§7.1) —
packets are never dropped, upstream stalls instead.

This simulator exists to *validate* the flow-level timing model and the
DES NetSparse components at small scale; the 128-node experiments use
the vectorized trace model.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.sim import Simulator, Store
from repro.network.topology import SWITCH_LATENCY_S, Topology

__all__ = ["Packet", "PacketNetwork"]

_packet_ids = itertools.count()


@dataclass
class Packet:
    """A network packet (wire size includes all headers)."""

    src: int
    dst: int
    size_bytes: int
    payload: Any = None
    packet_id: int = field(default_factory=lambda: next(_packet_ids))
    created_at: float = 0.0
    delivered_at: float = 0.0

    @property
    def latency(self) -> float:
        return self.delivered_at - self.created_at


class PacketNetwork:
    """DES network: inject packets at hosts, receive them at hosts.

    ``queue_packets`` bounds each link's input queue (backpressure
    domain).  An optional ``switch_hook(packet, link_id)`` observes each
    hop — the NetSparse switch models (cache, concatenators) plug in
    there in the integration tests.

    The fabric itself is lossless (§7.1: bounded queues + blocking puts
    — congestion stalls, it never drops).  Losses model *hardware
    failures* only, via the optional ``drop_hook(packet, link_id) ->
    bool``: returning True discards the packet after its wire traversal
    of that link (``stats_dropped`` counts them).  With no hook
    installed — the default — the simulation is bit-identical to the
    historical lossless-only behaviour.
    """

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        queue_packets: int = 64,
        switch_hook: Optional[Callable[[Packet, int], Optional[Packet]]] = None,
        drop_hook: Optional[Callable[[Packet, int], bool]] = None,
    ):
        self.sim = sim
        self.topology = topology
        self.switch_hook = switch_hook
        self.drop_hook = drop_hook
        self.link_queues: List[Store] = [
            Store(sim, capacity=queue_packets, name=f"link{ln.link_id}")
            for ln in topology.links
        ]
        self.rx: Dict[int, Store] = {
            node: Store(sim, name=f"rx{node}") for node in range(topology.n_nodes)
        }
        self.stats_delivered = 0
        self.stats_bytes = 0
        self.stats_dropped = 0
        for link in topology.links:
            sim.process(self._link_proc(link.link_id), name=f"link{link.link_id}")

    def _link_proc(self, link_id: int):
        link = self.topology.links[link_id]
        queue = self.link_queues[link_id]
        while True:
            packet: Packet = yield queue.get()
            # Serialization occupies the link; propagation is pipelined
            # (detached), so back-to-back packets overlap in flight.
            yield self.sim.timeout(packet.size_bytes / link.bandwidth)
            self.sim.process(self._propagate(packet, link_id, link.latency))

    def _propagate(self, packet: "Packet", link_id: int, latency: float):
        yield self.sim.timeout(latency)
        if self.drop_hook is not None and self.drop_hook(packet, link_id):
            self.stats_dropped += 1
            return
        yield from self._forward(packet, link_id)

    def _forward(self, packet: Packet, arrived_on: int):
        if self.switch_hook is not None:
            maybe = self.switch_hook(packet, arrived_on)
            if maybe is None:
                return  # hook consumed the packet (e.g. cache hit turnaround)
            packet = maybe
        route = self.topology.route(packet.src, packet.dst)
        pos = route.index(arrived_on)
        if pos == len(route) - 1:
            packet.delivered_at = self.sim.now
            self.stats_delivered += 1
            self.stats_bytes += packet.size_bytes
            yield self.rx[packet.dst].put(packet)
        else:
            # Switch traversal time before the next hop (Table 5: 300 ns).
            yield self.sim.timeout(SWITCH_LATENCY_S)
            yield self.link_queues[route[pos + 1]].put(packet)

    def inject(self, packet: Packet):
        """Process generator: put ``packet`` onto its first link.

        Blocks (backpressure) when the first-hop queue is full.  A
        self-addressed packet is delivered immediately.
        """
        packet.created_at = self.sim.now
        if packet.src == packet.dst:
            packet.delivered_at = self.sim.now
            self.stats_delivered += 1
            yield self.rx[packet.dst].put(packet)
            return
        route = self.topology.route(packet.src, packet.dst)
        yield self.link_queues[route[0]].put(packet)
