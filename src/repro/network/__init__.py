"""Cluster network substrate.

- :mod:`repro.network.topology` — leaf-spine, HyperX and Dragonfly
  topologies with deterministic routing and per-link load accounting.
- :mod:`repro.network.flowmodel` — fast bandwidth/bottleneck timing
  model used by the cluster-level experiments.
- :mod:`repro.network.packetsim` — packet-level DES network used to
  validate the flow model at small scale.
"""

from repro.network.topology import Dragonfly, HyperX, LeafSpine, Topology
from repro.network.flowmodel import FlowTimingResult, flow_completion_time

__all__ = [
    "Dragonfly",
    "FlowTimingResult",
    "HyperX",
    "LeafSpine",
    "Topology",
    "flow_completion_time",
]
