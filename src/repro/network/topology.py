"""Network topologies with deterministic routing (Table 5, §9.6).

The paper's default machine is a 128-node leaf-spine network: 8 racks
of 16 nodes, every node attached to a Top-of-Rack (ToR) switch, ToRs
fully connected to a layer of spine switches (Figure 11).  §9.6 also
evaluates a 4x4x2 HyperX and a 4-group Dragonfly with the same
bisection bandwidth.

All topologies expose the same interface:

- ``route(src, dst)``   — the deterministic sequence of link ids a
  packet traverses between two *hosts*.
- ``rack_of``           — the ToR/group a host hangs off (the property
  cache domain).
- ``link_loads(tm)``    — per-link byte loads for a traffic matrix.
- ``one_way_latency``   — zero-load latency along a route, from the
  paper's 450 ns/link + 300 ns/switch model (giving the quoted
  2.4 µs intra-rack and 5.4 µs inter-rack RTTs on leaf-spine).

Latency units are seconds; bandwidth is bytes/second.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

__all__ = ["Link", "Topology", "LeafSpine", "HyperX", "Dragonfly"]

#: Table 5 constants.
LINK_BANDWIDTH_BPS = 400e9               # 400 Gbps per link
LINK_BANDWIDTH_BYTES = LINK_BANDWIDTH_BPS / 8
LINK_LATENCY_S = 450e-9                  # one-way per network link
SWITCH_LATENCY_S = 300e-9                # per switch traversal


@dataclass
class Link:
    """A directed link in the fabric."""

    link_id: int
    src: str
    dst: str
    kind: str                     # "host" | "tor" | "spine" | "local" | "global"
    bandwidth: float = LINK_BANDWIDTH_BYTES
    latency: float = LINK_LATENCY_S


class Topology:
    """Base class: host attachment, link table, routing, load accounting."""

    def __init__(self, n_nodes: int):
        self.n_nodes = n_nodes
        self.links: List[Link] = []
        self._link_index: Dict[Tuple[str, str], int] = {}
        self._route_cache: Dict[Tuple[int, int], List[int]] = {}

    # -- construction helpers -----------------------------------------

    def _add_link(self, src: str, dst: str, kind: str,
                  bandwidth: float = LINK_BANDWIDTH_BYTES) -> int:
        key = (src, dst)
        if key in self._link_index:
            return self._link_index[key]
        link = Link(len(self.links), src, dst, kind, bandwidth)
        self.links.append(link)
        self._link_index[key] = link.link_id
        return link.link_id

    def _add_bidir(self, a: str, b: str, kind: str,
                   bandwidth: float = LINK_BANDWIDTH_BYTES) -> None:
        self._add_link(a, b, kind, bandwidth)
        self._add_link(b, a, kind, bandwidth)

    def _link(self, src: str, dst: str) -> int:
        try:
            return self._link_index[(src, dst)]
        except KeyError:
            raise KeyError(f"no link {src} -> {dst} in {type(self).__name__}") from None

    # -- interface ------------------------------------------------------

    @property
    def n_links(self) -> int:
        return len(self.links)

    def rack_of(self, node: int) -> int:
        """The cache/sharing domain (ToR switch or group) of a host."""
        raise NotImplementedError

    def _route_uncached(self, src: int, dst: int) -> List[int]:
        raise NotImplementedError

    def route(self, src: int, dst: int) -> List[int]:
        """Link ids traversed from host ``src`` to host ``dst``."""
        if src == dst:
            return []
        if not (0 <= src < self.n_nodes and 0 <= dst < self.n_nodes):
            raise ValueError(f"host out of range: {src}, {dst}")
        key = (src, dst)
        cached = self._route_cache.get(key)
        if cached is None:
            cached = self._route_uncached(src, dst)
            self._route_cache[key] = cached
        return cached

    def hop_count(self, src: int, dst: int) -> int:
        return len(self.route(src, dst))

    def one_way_latency(self, src: int, dst: int) -> float:
        """Zero-load latency: per-link wire time + per-switch time.

        Every link except the last terminates at a switch.
        """
        hops = self.hop_count(src, dst)
        if hops == 0:
            return 0.0
        return hops * LINK_LATENCY_S + (hops - 1) * SWITCH_LATENCY_S

    def rtt(self, src: int, dst: int) -> float:
        return self.one_way_latency(src, dst) + self.one_way_latency(dst, src)

    def link_loads(self, traffic: np.ndarray) -> np.ndarray:
        """Accumulate a (N, N) byte traffic matrix onto the links."""
        traffic = np.asarray(traffic)
        if traffic.shape != (self.n_nodes, self.n_nodes):
            raise ValueError(
                f"traffic matrix must be ({self.n_nodes}, {self.n_nodes})"
            )
        loads = np.zeros(self.n_links)
        src_ids, dst_ids = np.nonzero(traffic)
        for s, d in zip(src_ids, dst_ids):
            if s == d:
                continue
            for lid in self.route(int(s), int(d)):
                loads[lid] += traffic[s, d]
        return loads

    def diameter_hops(self) -> int:
        """Maximum host-to-host hop count (sampled exactly: all pairs)."""
        worst = 0
        for s in range(self.n_nodes):
            for d in range(self.n_nodes):
                if s != d:
                    worst = max(worst, self.hop_count(s, d))
        return worst

    def to_networkx(self):
        """Undirected graph view for structural validation in tests."""
        import networkx as nx

        g = nx.Graph()
        for link in self.links:
            g.add_edge(link.src, link.dst, kind=link.kind)
        return g


class LeafSpine(Topology):
    """The paper's default: racks of hosts under ToRs, ToRs x spines.

    Deterministic routing picks the spine by a (src, dst) hash —
    the fixed per-flow ECMP choice real fabrics make.
    """

    def __init__(
        self,
        n_racks: int = 8,
        nodes_per_rack: int = 16,
        n_spines: int = 8,
        link_bandwidth: float = LINK_BANDWIDTH_BYTES,
    ):
        super().__init__(n_racks * nodes_per_rack)
        self.n_racks = n_racks
        self.nodes_per_rack = nodes_per_rack
        self.n_spines = n_spines
        for node in range(self.n_nodes):
            tor = f"tor{node // nodes_per_rack}"
            self._add_bidir(f"h{node}", tor, "host", link_bandwidth)
        for r in range(n_racks):
            for s in range(n_spines):
                self._add_bidir(f"tor{r}", f"spine{s}", "spine", link_bandwidth)

    def rack_of(self, node: int) -> int:
        return node // self.nodes_per_rack

    def tor_name(self, rack: int) -> str:
        return f"tor{rack}"

    def _route_uncached(self, src: int, dst: int) -> List[int]:
        src_rack, dst_rack = self.rack_of(src), self.rack_of(dst)
        if src_rack == dst_rack:
            return [
                self._link(f"h{src}", f"tor{src_rack}"),
                self._link(f"tor{src_rack}", f"h{dst}"),
            ]
        spine = (src * 131 + dst * 31) % self.n_spines
        return [
            self._link(f"h{src}", f"tor{src_rack}"),
            self._link(f"tor{src_rack}", f"spine{spine}"),
            self._link(f"spine{spine}", f"tor{dst_rack}"),
            self._link(f"tor{dst_rack}", f"h{dst}"),
        ]


class HyperX(Topology):
    """HyperX: switches on a grid, all-to-all connected per dimension.

    §9.6 uses a 3D 4x4x2 arrangement (32 switches), 4 hosts per switch
    and a trunking width of 4 links per switch pair in every dimension;
    we model trunking as a bandwidth multiplier on the cross-switch
    links.  Routing is dimension-ordered (one hop corrects one
    coordinate, since each dimension is fully connected).
    """

    def __init__(
        self,
        shape: Sequence[int] = (4, 4, 2),
        hosts_per_switch: int = 4,
        width: int = 4,
        link_bandwidth: float = LINK_BANDWIDTH_BYTES,
    ):
        self.shape = tuple(shape)
        self.hosts_per_switch = hosts_per_switch
        n_switches = int(np.prod(self.shape))
        super().__init__(n_switches * hosts_per_switch)
        self.n_switches = n_switches
        trunk_bw = link_bandwidth * width

        coords = [
            tuple(idx)
            for idx in np.ndindex(*self.shape)  # lexicographic switch order
        ]
        self._coords = coords
        self._switch_of_coord = {c: i for i, c in enumerate(coords)}

        for node in range(self.n_nodes):
            sw = node // hosts_per_switch
            self._add_bidir(f"h{node}", f"sw{sw}", "host", link_bandwidth)
        for dim in range(len(self.shape)):
            for i, ci in enumerate(coords):
                for j, cj in enumerate(coords):
                    if i < j and self._differ_only_in(ci, cj, dim):
                        self._add_bidir(f"sw{i}", f"sw{j}", "local", trunk_bw)

    @staticmethod
    def _differ_only_in(a: Tuple[int, ...], b: Tuple[int, ...], dim: int) -> bool:
        return a[dim] != b[dim] and all(
            x == y for k, (x, y) in enumerate(zip(a, b)) if k != dim
        )

    def switch_of(self, node: int) -> int:
        return node // self.hosts_per_switch

    def rack_of(self, node: int) -> int:
        return self.switch_of(node)

    def _route_uncached(self, src: int, dst: int) -> List[int]:
        s_sw, d_sw = self.switch_of(src), self.switch_of(dst)
        links = [self._link(f"h{src}", f"sw{s_sw}")]
        cur = list(self._coords[s_sw])
        target = self._coords[d_sw]
        for dim in range(len(self.shape)):
            if cur[dim] != target[dim]:
                nxt = list(cur)
                nxt[dim] = target[dim]
                a = self._switch_of_coord[tuple(cur)]
                b = self._switch_of_coord[tuple(nxt)]
                links.append(self._link(f"sw{a}", f"sw{b}"))
                cur = nxt
        links.append(self._link(f"sw{d_sw}", f"h{dst}"))
        return links


class Dragonfly(Topology):
    """Dragonfly with minimal routing (§9.6).

    Groups of switches are internally all-to-all; each ordered group
    pair is joined by ``global_link_count`` parallel global links,
    spread over distinct switches of the group.  Minimal routing:
    local hop to the gateway switch, one global hop, local hop to the
    destination switch.
    """

    def __init__(
        self,
        n_groups: int = 4,
        switches_per_group: int = 8,
        hosts_per_switch: int = 4,
        global_link_count: int = 4,
        link_bandwidth: float = LINK_BANDWIDTH_BYTES,
    ):
        n_switches = n_groups * switches_per_group
        super().__init__(n_switches * hosts_per_switch)
        self.n_groups = n_groups
        self.switches_per_group = switches_per_group
        self.hosts_per_switch = hosts_per_switch
        self.global_link_count = global_link_count

        for node in range(self.n_nodes):
            sw = node // hosts_per_switch
            self._add_bidir(f"h{node}", f"sw{sw}", "host", link_bandwidth)
        for g in range(n_groups):
            base = g * switches_per_group
            for a in range(switches_per_group):
                for b in range(a + 1, switches_per_group):
                    self._add_bidir(f"sw{base+a}", f"sw{base+b}", "local",
                                    link_bandwidth)
        # Gateways: the k-th global link between groups (g1, g2) lands on
        # switch (g2 + k) % S of g1 and (g1 + k) % S of g2.
        self._gateway: Dict[Tuple[int, int, int], Tuple[int, int]] = {}
        for g1 in range(n_groups):
            for g2 in range(g1 + 1, n_groups):
                for k in range(global_link_count):
                    sw1 = g1 * switches_per_group + (g2 + k) % switches_per_group
                    sw2 = g2 * switches_per_group + (g1 + k) % switches_per_group
                    self._add_bidir(f"sw{sw1}", f"sw{sw2}", "global",
                                    link_bandwidth)
                    self._gateway[(g1, g2, k)] = (sw1, sw2)
                    self._gateway[(g2, g1, k)] = (sw2, sw1)

    def switch_of(self, node: int) -> int:
        return node // self.hosts_per_switch

    def group_of(self, node: int) -> int:
        return self.switch_of(node) // self.switches_per_group

    def rack_of(self, node: int) -> int:
        """The sharing domain of a dragonfly host is its *group*."""
        return self.group_of(node)

    def _route_uncached(self, src: int, dst: int) -> List[int]:
        s_sw, d_sw = self.switch_of(src), self.switch_of(dst)
        links = [self._link(f"h{src}", f"sw{s_sw}")]
        g1, g2 = self.group_of(src), self.group_of(dst)
        if g1 == g2:
            if s_sw != d_sw:
                links.append(self._link(f"sw{s_sw}", f"sw{d_sw}"))
        else:
            k = (src * 131 + dst * 31) % self.global_link_count
            gw1, gw2 = self._gateway[(g1, g2, k)]
            if s_sw != gw1:
                links.append(self._link(f"sw{s_sw}", f"sw{gw1}"))
            links.append(self._link(f"sw{gw1}", f"sw{gw2}"))
            if gw2 != d_sw:
                links.append(self._link(f"sw{gw2}", f"sw{d_sw}"))
        links.append(self._link(f"sw{d_sw}", f"h{dst}"))
        return links
