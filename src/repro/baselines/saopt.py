"""SAOpt: the idealized sparsity-aware software baseline (§8.1).

The paper augments SA with the Conveyors framework and grants it every
software-feasible NetSparse mechanism for free:

- *batching + concatenation* via Conveyors two-sided message
  aggregation (headers shared within a node's messages);
- *perfect offline filtering* — but only per rank: Conveyors binds each
  of the node's 64 cores to its own rank, and cross-rank duplicates
  survive (the paper's "-#PR vs SA" column in Table 7 measures exactly
  this gap against NetSparse's node-level filter).

Time accounts only for the software costs of PR generation,
book-keeping, synchronization and buffering — the calibrated per-PR
cost over 64 cores — plus the line-rate lower bound on moving the
payload.  No network or SNIC latency is charged.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.config import NetSparseConfig
from repro.results import CommResult
from repro.partition import cached_partition

__all__ = ["simulate_saopt", "saopt_pr_counts"]


def saopt_pr_counts(
    matrix,
    config: Optional[NetSparseConfig] = None,
    exclude_cols: Optional[np.ndarray] = None,
):
    """PR counts after perfect *per-rank* offline filtering.

    Each node's nonzero trace is split into ``host_cores`` contiguous
    rank chunks; duplicates are eliminated within a chunk only (the
    Conveyors rank boundary).  Returns per-(node, rank) sent counts and
    per-(node, rank) served counts — the owner's rank that holds an idx
    serves the matching sends, so popular properties concentrate work
    on single ranks (the intra-node imbalance the paper calls out for
    arabic).

    ``exclude_cols`` (boolean mask over columns) removes columns served
    by another mechanism — the hybrid baseline's broadcast set.
    """
    config = config or NetSparseConfig()
    n, cores = config.n_nodes, config.host_cores
    part = cached_partition(matrix, n)
    sent = np.zeros((n, cores), dtype=np.int64)
    served = np.zeros((n, cores), dtype=np.int64)
    own_cols = np.diff(part.col_starts)
    for node, tr in enumerate(part.node_traces()):
        idxs = tr.remote_idxs
        owners = tr.remote_owners
        if exclude_cols is not None and idxs.size:
            keep = ~exclude_cols[idxs]
            idxs, owners = idxs[keep], owners[keep]
        if idxs.size == 0:
            continue
        chunk_edges = np.linspace(0, idxs.size, cores + 1, dtype=np.int64)
        for c in range(cores):
            lo, hi = chunk_edges[c], chunk_edges[c + 1]
            if hi <= lo:
                continue
            # Dedup within the rank: unique idx implies unique owner.
            uniq_idx, first = np.unique(idxs[lo:hi], return_index=True)
            sent[node, c] = uniq_idx.size
            owners_u = owners[lo:hi][first]
            # The serving rank is the one owning the idx's column slice.
            offset = uniq_idx - part.col_starts[owners_u]
            rank_span = np.maximum(own_cols[owners_u] // cores, 1)
            serve_rank = np.minimum(offset // rank_span, cores - 1)
            np.add.at(served, (owners_u, serve_rank), 1)
    return sent, served, part


def simulate_saopt(
    matrix,
    k: int,
    config: Optional[NetSparseConfig] = None,
    scale: float = 1.0,
) -> CommResult:
    """Simulate one iteration's communication under idealized SA software.

    ``scale`` is the matrix's nnz over the paper matrix's nnz (see
    DESIGN.md).  Request-side PR counts shrink with the matrix, but the
    *serve-side* hot-rank counts saturate at the number of requester
    ranks (a popular property is served once per rank that wants it,
    regardless of matrix size), so the serve term — like every other
    scale-invariant time constant — is multiplied by ``scale`` to keep
    ratios faithful to paper scale.
    """
    config = config or NetSparseConfig()
    if scale <= 0:
        raise ValueError("scale must be positive")
    n = config.n_nodes
    payload = config.property_bytes(k)
    sent_ranks, served_ranks, part = saopt_pr_counts(matrix, config)
    sent_prs = sent_ranks.sum(axis=1)
    served_prs = served_ranks.sum(axis=1)

    pr_cost = config.sw_pr_cost(payload)
    # Two-sided Conveyors: a node finishes when its slowest rank has
    # handled its own requests plus the sends it owes other nodes.
    sw_time = (sent_ranks + served_ranks * scale).max(axis=1) * pr_cost

    recv_payload = sent_prs.astype(np.float64) * payload
    sent_payload = served_prs.astype(np.float64) * payload
    wire_floor = np.maximum(recv_payload, sent_payload) / config.link_bandwidth
    per_node_time = np.maximum(sw_time, wire_floor)

    useful = np.zeros(n)
    for node, tr in enumerate(part.node_traces()):
        useful[node] = tr.unique_remote_count() * payload

    return CommResult(
        scheme="saopt",
        matrix_name=matrix.name,
        k=k,
        n_nodes=n,
        total_time=float(per_node_time.max()),
        per_node_time=per_node_time,
        recv_wire_bytes=recv_payload,
        sent_wire_bytes=sent_payload,
        useful_payload_bytes=useful,
        link_bandwidth=config.link_bandwidth,
        n_pr_candidates=int(
            sum(t.remote.sum() for t in part.node_traces())
        ),
        n_prs_issued=int(sent_prs.sum()),
        extras={"sw_time": sw_time},
    )
