"""Vanilla (un-batched) sparsity-aware communication — the Table 2 study.

The motivation experiment runs the SOTA distributed SpMM in SA-only
mode between two nodes and measures transfer rate, line utilization and
goodput for K=32.  Vanilla SA issues one RDMA read per remote nonzero
through per-PR MMIO, so execution time is the serial scan of the
nonzeros plus the per-PR software/MMIO cost; the achieved "transfer
rate" divides the payload moved by that time.  Matrices whose nonzeros
are mostly local (europe) therefore show *lower* transfer rates: the
scan time is paid for every nonzero but few bytes move.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.config import NetSparseConfig
from repro.core.protocol import sa_pair_header_bytes
from repro.partition import cached_partition

__all__ = ["VanillaSaResult", "vanilla_sa_transfer"]

#: Per-nonzero scan cost (read idx, bounds check) on one core.
SCAN_COST_S = 5e-9
#: Vanilla per-PR cost: MMIO doorbell + descriptor + completion poll.
#: Roughly 2x the batched (Conveyors) cost the config carries.
VANILLA_PR_COST_MULT = 2.0


@dataclass
class VanillaSaResult:
    """Table 2 metrics for one matrix."""

    matrix_name: str
    transfer_rate_bytes: float    # payload bytes per second
    line_utilization: float       # wire rate / line rate
    goodput: float                # payload rate / line rate

    @property
    def transfer_rate_gbps(self) -> float:
        return self.transfer_rate_bytes * 8 / 1e9


def vanilla_sa_transfer(
    matrix,
    k: int = 32,
    n_nodes: int = 2,
    cores: int = 1,
    config: Optional[NetSparseConfig] = None,
) -> VanillaSaResult:
    """Model the 2-node vanilla-SA measurement of Table 2."""
    config = config or NetSparseConfig()
    payload = config.property_bytes(k)
    part = cached_partition(matrix, n_nodes)
    traces = part.node_traces()

    total_nnz = sum(t.n_nonzeros for t in traces)
    total_remote = sum(int(t.remote.sum()) for t in traces)
    pr_cost = config.sw_pr_cost(payload) * VANILLA_PR_COST_MULT

    time = (total_nnz * SCAN_COST_S + total_remote * pr_cost) / cores
    payload_bytes = total_remote * payload
    wire_bytes = total_remote * (payload + sa_pair_header_bytes(config))
    if time <= 0:
        raise ValueError("degenerate matrix: no scan work")
    return VanillaSaResult(
        matrix_name=matrix.name,
        transfer_rate_bytes=payload_bytes / time,
        line_utilization=wire_bytes / time / config.link_bandwidth,
        goodput=payload_bytes / time / config.link_bandwidth,
    )
