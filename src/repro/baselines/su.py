"""SUOpt: the idealized sparsity-unaware baseline (§8.1).

"The communication time is assumed to be equal to only the time needed
for a single node to receive all of the data bytes needed from the
network at 100% line bandwidth utilization and without any header
overheads" — i.e. every node receives the entire input property array
except its own shard, at line rate, with perfect overlap.  This is the
*optimal performance limit* of any SU algorithm, not a realistic one.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.config import NetSparseConfig
from repro.results import CommResult
from repro.partition import cached_partition

__all__ = ["simulate_suopt"]


def simulate_suopt(
    matrix,
    k: int,
    config: Optional[NetSparseConfig] = None,
) -> CommResult:
    """Simulate one iteration's communication under ideal SU collectives."""
    config = config or NetSparseConfig()
    n = config.n_nodes
    payload = config.property_bytes(k)
    part = cached_partition(matrix, n)

    own_cols = np.diff(part.col_starts).astype(np.float64)
    recv_bytes = (matrix.n_cols - own_cols) * payload
    # Each node broadcasts its shard to the other N-1 nodes.
    sent_bytes = own_cols * payload * (n - 1)

    useful = np.zeros(n)
    for node, tr in enumerate(part.node_traces()):
        useful[node] = tr.unique_remote_count() * payload

    per_node_time = recv_bytes / config.link_bandwidth
    return CommResult(
        scheme="suopt",
        matrix_name=matrix.name,
        k=k,
        n_nodes=n,
        total_time=float(per_node_time.max()),
        per_node_time=per_node_time,
        recv_wire_bytes=recv_bytes,
        sent_wire_bytes=sent_bytes,
        useful_payload_bytes=useful,
        link_bandwidth=config.link_bandwidth,
    )
