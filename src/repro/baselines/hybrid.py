"""Hybrid SU/SA software baseline (Two-Face style, the paper's ref [11]).

The state-of-the-art distributed SpMM the paper builds its motivation
measurements on (Block et al., ASPLOS'24) is a *hybrid*: columns that
nearly every node needs are broadcast with collectives (the SU path —
bandwidth-efficient, no per-PR software cost), while the sparse
remainder moves through fine-grained sparsity-aware requests (the SA
path).  A per-column popularity threshold splits the two.

The paper evaluates this code "configured to SA-only mode" (Table 2);
this module models the full hybrid, which makes it the strongest purely
software baseline in the repository — useful to show NetSparse's
advantage is not an artifact of weak software.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.config import NetSparseConfig
from repro.partition import OneDPartition, cached_partition
from repro.results import CommResult

__all__ = ["HybridSplit", "choose_threshold", "simulate_hybrid"]


@dataclass
class HybridSplit:
    """How a threshold splits columns between the SU and SA paths."""

    threshold: int                # column needed by > threshold nodes -> SU
    n_su_columns: int
    n_sa_columns: int             # distinct remote columns on the SA path
    su_bytes_per_node: float
    sa_prs_per_node: np.ndarray


def _column_fanout(part: OneDPartition) -> np.ndarray:
    """For each column, how many *other* nodes need it at least once.

    Memoized on the partition: threshold tuning recomputes the same
    fan-out for every candidate, and traces never change once built.
    """
    fanout = getattr(part, "_column_fanout", None)
    if fanout is not None:
        return fanout
    fanout = np.zeros(part.matrix.n_cols, dtype=np.int64)
    for tr in part.node_traces():
        fanout[tr.remote_unique] += 1
    part._column_fanout = fanout
    return fanout


def split_columns(
    matrix,
    n_nodes: int,
    threshold: int,
    k: int,
    config: Optional[NetSparseConfig] = None,
    partition: Optional[OneDPartition] = None,
) -> HybridSplit:
    """Split columns by fan-out: popular ones ride collectives."""
    config = config or NetSparseConfig()
    part = partition or cached_partition(matrix, n_nodes)
    payload = config.property_bytes(k)
    fanout = _column_fanout(part)
    su_cols = fanout > threshold

    sa_prs = np.zeros(n_nodes, dtype=np.int64)
    for node, tr in enumerate(part.node_traces()):
        sa_prs[node] = int((~su_cols[tr.remote_unique]).sum())

    return HybridSplit(
        threshold=threshold,
        n_su_columns=int(su_cols.sum()),
        n_sa_columns=int((fanout > 0).sum() - su_cols.sum()),
        su_bytes_per_node=float(su_cols.sum()) * payload,
        sa_prs_per_node=sa_prs,
    )


def simulate_hybrid(
    matrix,
    k: int,
    config: Optional[NetSparseConfig] = None,
    threshold: Optional[int] = None,
    scale: float = 1.0,
) -> CommResult:
    """Simulate the hybrid baseline's communication.

    The SU path: every node receives the popular columns at line rate
    (the same ideal-collective assumption as SUOpt).  The SA path: the
    calibrated per-PR software cost over all cores, as in SAOpt but
    only for the unpopular remainder.  The two phases are assumed to
    overlap perfectly (optimistic, like the paper's other baselines).
    """
    config = config or NetSparseConfig()
    n = config.n_nodes
    payload = config.property_bytes(k)
    part = cached_partition(matrix, n)
    if threshold is None:
        threshold = choose_threshold(matrix, k, config, part)
    split = split_columns(matrix, n, threshold, k, config, part)

    su_time = split.su_bytes_per_node / config.link_bandwidth
    # The SA tail uses exactly the SAOpt machinery (per-rank dedup and
    # serve imbalance, serve-side scale rule — see DESIGN.md), with the
    # broadcast columns excluded.
    from repro.baselines.saopt import saopt_pr_counts

    fanout = _column_fanout(part)
    su_cols = fanout > threshold
    sent_ranks, served_ranks, _ = saopt_pr_counts(
        matrix, config, exclude_cols=su_cols
    )
    pr_cost = config.sw_pr_cost(payload)
    sa_time = (sent_ranks + served_ranks * scale).max(axis=1) * pr_cost
    per_node_time = np.maximum(su_time, sa_time)

    useful = np.zeros(n)
    recv = np.zeros(n)
    for node, tr in enumerate(part.node_traces()):
        useful[node] = tr.unique_remote_count() * payload
        recv[node] = split.su_bytes_per_node + (
            split.sa_prs_per_node[node] * payload
        )
    return CommResult(
        scheme="hybrid",
        matrix_name=matrix.name,
        k=k,
        n_nodes=n,
        total_time=float(per_node_time.max()),
        per_node_time=per_node_time,
        recv_wire_bytes=recv,
        sent_wire_bytes=recv,   # symmetric under the ideal collective
        useful_payload_bytes=useful,
        link_bandwidth=config.link_bandwidth,
        n_pr_candidates=int(
            sum(t.remote.sum() for t in part.node_traces())
        ),
        n_prs_issued=int(split.sa_prs_per_node.sum()),
        extras={"threshold": threshold,
                "n_su_columns": split.n_su_columns},
    )


def choose_threshold(
    matrix,
    k: int,
    config: Optional[NetSparseConfig] = None,
    partition: Optional[OneDPartition] = None,
    candidates=(1, 2, 4, 8, 16, 32, 64, 127),
) -> int:
    """Pick the fan-out threshold minimizing the hybrid's time.

    Mirrors Two-Face's offline tuning: broadcast a column when sending
    it to everyone is cheaper than serving its SA requests in software.
    """
    config = config or NetSparseConfig()
    n = config.n_nodes
    part = partition or cached_partition(matrix, n)
    payload = config.property_bytes(k)
    pr_cost = config.sw_pr_cost(payload)
    best_threshold, best_time = None, float("inf")
    for threshold in candidates:
        split = split_columns(matrix, n, threshold, k, config, part)
        su_time = split.su_bytes_per_node / config.link_bandwidth
        sa_time = float(
            (2.0 * split.sa_prs_per_node * pr_cost / config.host_cores).max()
        )
        total = max(su_time, sa_time)
        if total < best_time:
            best_time, best_threshold = total, threshold
    return best_threshold
