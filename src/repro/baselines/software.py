"""Per-PR software cost model and its calibration artifacts (§8.1).

The paper measures, on a 64-core Delta node with perfectly balanced
communication and zero network overheads, the rate at which software
can generate/handle fine-grained PRs (Figure 10), then uses the implied
per-PR software overhead to drive SAOpt in simulation.  We do the same:
:attr:`repro.config.NetSparseConfig.sw_pr_cost_fixed` (+ per-byte term)
is chosen so 64 cores reach roughly the goodput the paper reports
(~10% of a 400 Gbps line for K=16, ~40% for K=128, <1% for K=1).
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from repro.config import NetSparseConfig

__all__ = ["saopt_goodput_curve", "per_core_payload_rate"]


def per_core_payload_rate(k: int, config: NetSparseConfig = None) -> float:
    """Payload bytes/s one core can push through the SA software stack."""
    config = config or NetSparseConfig()
    payload = config.property_bytes(k)
    return payload / config.sw_pr_cost(payload)


def saopt_goodput_curve(
    core_counts: Iterable[int],
    k: int,
    config: NetSparseConfig = None,
) -> List[Tuple[int, float]]:
    """Figure 10: ideal SAOpt goodput (fraction of line rate) vs cores.

    Scales linearly in cores (the measured behaviour) and saturates at
    the line rate.
    """
    config = config or NetSparseConfig()
    rate1 = per_core_payload_rate(k, config)
    out = []
    for cores in core_counts:
        if cores < 1:
            raise ValueError("core count must be positive")
        goodput = min(cores * rate1 / config.link_bandwidth, 1.0)
        out.append((cores, goodput))
    return out
