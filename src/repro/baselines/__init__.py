"""Software communication baselines (§8.1).

- :mod:`repro.baselines.su`       — *SUOpt*: sparsity-unaware collectives
  at perfect line rate with zero header/software overhead.
- :mod:`repro.baselines.saopt`    — *SAOpt*: sparsity-aware + Conveyors
  batching, perfect offline per-rank filtering, calibrated per-PR
  software costs; no network or SNIC latency.
- :mod:`repro.baselines.vanilla`  — vanilla (un-batched) SA for the
  motivation measurements (Table 2).
- :mod:`repro.baselines.software` — the per-PR software cost model and
  the Figure 10 goodput-vs-cores curve.
"""

from repro.baselines.su import simulate_suopt
from repro.baselines.saopt import simulate_saopt
from repro.baselines.vanilla import vanilla_sa_transfer
from repro.baselines.software import saopt_goodput_curve

__all__ = [
    "saopt_goodput_curve",
    "simulate_saopt",
    "simulate_suopt",
    "vanilla_sa_transfer",
]
