"""ToR switch extension overheads (§9.5 item 2).

Extensions per Table 5: a 32 MB Property Cache, (de)concatenators with
512 KB SRAM per pipe (8 pipes), and the second crossbar.  The paper
estimates ~21.3 mm² for the caches, ~1.5 mm² for the concatenators,
~10 W combined (≈4% of a 270 W Tofino2), and bounds the extra crossbar
at 1-15% of a ~700 mm² switch ASIC.
"""

from __future__ import annotations

from typing import Dict

from repro.config import NetSparseConfig
from repro.hw.snic import CONCAT_LOGIC_KGATES
from repro.hw.tech import StructureCost, TechModel

__all__ = ["switch_overheads", "switch_totals", "crossbar_area_range_mm2"]

#: Tag + control overhead of the Property Cache relative to data SRAM.
PCACHE_OVERHEAD_FACTOR = 1.9
#: Reference Tofino2 numbers used for the percentage claims.
TOFINO2_POWER_W = 270.0
SWITCH_ASIC_AREA_MM2 = 700.0
N_SWITCH_PIPES = 8


def switch_overheads(
    tech: TechModel = None, cfg: NetSparseConfig = None
) -> Dict[str, StructureCost]:
    tech = tech or TechModel(10)
    cfg = cfg or NetSparseConfig()

    # Max activity: every port's traffic touches the cache (read lookup
    # or response insert); a 32 MB array's access energy is dominated by
    # wires, hence the large energy factor.
    n_ports = 32
    data = tech.sram(
        "Property Cache",
        int(cfg.pcache_bytes * PCACHE_OVERHEAD_FACTOR),
        access_bytes_per_s=cfg.link_bandwidth * n_ports,
        energy_factor=25.0,
    )
    concat_sram = tech.sram(
        "concat SRAM",
        cfg.concat_sram_bytes,
        access_bytes_per_s=cfg.link_bandwidth * 2,
        copies=N_SWITCH_PIPES,
        energy_factor=2.0,
    )
    concat_logic = tech.logic(
        "concat logic", CONCAT_LOGIC_KGATES, cfg.switch_freq,
        copies=2 * N_SWITCH_PIPES,
    )
    concat = TechModel.combine("Concatenators", [concat_sram, concat_logic])
    return {"Property Cache": data, "Concatenators": concat}


def switch_totals(tech: TechModel = None, cfg: NetSparseConfig = None) -> StructureCost:
    parts = switch_overheads(tech, cfg)
    return TechModel.combine("switch extensions", list(parts.values()))


def crossbar_area_range_mm2() -> tuple:
    """The paper can only bound the second crossbar + inter-pipe routing
    at 1-15% of the switch ASIC; we report the same range."""
    return (0.01 * SWITCH_ASIC_AREA_MM2, 0.15 * SWITCH_ASIC_AREA_MM2)
