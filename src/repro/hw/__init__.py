"""Hardware overhead models: area and power of the NetSparse extensions.

Replaces the paper's RTL-synthesis + CACTI flow (§8.3) with analytical
per-structure SRAM/CAM/logic models and Stillmaker-Baas style process
scaling, calibrated to land in the paper's reported ranges (§9.5).
"""

from repro.hw.tech import TechModel
from repro.hw.snic import rig_unit_area_breakdown, snic_overheads
from repro.hw.switch import switch_overheads

__all__ = [
    "TechModel",
    "rig_unit_area_breakdown",
    "snic_overheads",
    "switch_overheads",
]
