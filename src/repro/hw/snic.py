"""SNIC extension overheads (Figure 20, Table 9).

Structures per Table 5: 32 RIG Units (4 KB Idx Buffer, 4 KB Property
Buffer, 256-entry Pending PR Table CAM, 64-entry LSQ, logic engine),
16 shared 32 KB L1s and 16 shared 128 KB L2s, plus the NIC
(de)concatenator SRAM (512 KB) and logic.

The paper's findings we reproduce: the L2s dominate area and static
power, the RIG Units dominate dynamic power, and within a RIG Unit the
Pending PR Table CAM is the largest single structure (~53% of area).
"""

from __future__ import annotations

from typing import Dict, List

from repro.config import NetSparseConfig
from repro.hw.tech import StructureCost, TechModel

__all__ = ["snic_overheads", "rig_unit_area_breakdown", "SNIC_STRUCTURES"]

#: Bytes per Pending-PR-Table entry (idx 8 + host addr 8 + id/dest/state 8).
PENDING_ENTRY_BYTES = 24
#: Bytes per LSQ entry.
LSQ_ENTRY_BYTES = 16
#: Logic complexity of one RIG Unit's engine (kGE): destination solver,
#: PR generator, control.
RIG_LOGIC_KGATES = 20.0
#: Logic of one (de)concatenator block.
CONCAT_LOGIC_KGATES = 60.0

SNIC_STRUCTURES = ("RIG Units", "L1s", "L2s", "Concatenators")


def _rig_unit_parts(tech: TechModel, cfg: NetSparseConfig) -> List[StructureCost]:
    """Costs of one RIG Unit's internal structures (Figure 5)."""
    freq = cfg.snic_freq
    # Max activity: one idx per cycle streaming through each structure.
    idx_buffer = tech.sram("Idx Buffer", 4 * 1024, access_bytes_per_s=8 * freq)
    prop_buffer = tech.sram("Prop. Buffer", 4 * 1024,
                            access_bytes_per_s=64 * freq / 4)
    pending = tech.cam(
        "Pend. PR Table",
        cfg.pending_pr_entries * PENDING_ENTRY_BYTES,
        searches_per_s=freq,
        entry_bytes=PENDING_ENTRY_BYTES,
    )
    lsq = tech.cam(
        "LSQ",
        cfg.lsq_entries * LSQ_ENTRY_BYTES,
        searches_per_s=freq,
        entry_bytes=LSQ_ENTRY_BYTES,
    )
    rest = tech.logic("Rest", RIG_LOGIC_KGATES, freq)
    return [idx_buffer, pending, prop_buffer, lsq, rest]


def rig_unit_area_breakdown(
    tech: TechModel = None, cfg: NetSparseConfig = None
) -> Dict[str, float]:
    """Fractional area contribution of each RIG Unit structure (Table 9)."""
    tech = tech or TechModel(10)
    cfg = cfg or NetSparseConfig()
    parts = _rig_unit_parts(tech, cfg)
    total = sum(p.area_mm2 for p in parts)
    return {p.name: p.area_mm2 / total for p in parts}


def snic_overheads(
    tech: TechModel = None, cfg: NetSparseConfig = None
) -> Dict[str, StructureCost]:
    """Area/power of each SNIC extension group (Figure 20)."""
    tech = tech or TechModel(10)
    cfg = cfg or NetSparseConfig()
    freq = cfg.snic_freq

    rig_unit = TechModel.combine("one RIG Unit", _rig_unit_parts(tech, cfg))
    rig_units = StructureCost(
        "RIG Units",
        rig_unit.area_mm2 * cfg.n_rig_units,
        rig_unit.static_w * cfg.n_rig_units,
        rig_unit.dynamic_w * cfg.n_rig_units,
    )
    # 16 L1s (32 KB) and 16 L2s (128 KB), each shared by a unit pair.
    n_caches = cfg.n_rig_units // 2
    l1s = tech.sram("L1s", 32 * 1024, access_bytes_per_s=8 * freq,
                    copies=n_caches)
    l2s = tech.sram("L2s", 128 * 1024, access_bytes_per_s=2 * freq,
                    copies=n_caches)
    concat_sram = tech.sram("concat SRAM", cfg.concat_sram_bytes,
                            access_bytes_per_s=cfg.link_bandwidth * 2)
    concat_logic = tech.logic("concat logic", CONCAT_LOGIC_KGATES, freq,
                              copies=2)  # concatenator + deconcatenator
    concat = TechModel.combine("Concatenators", [concat_sram, concat_logic])

    return {
        "RIG Units": rig_units,
        "L1s": l1s,
        "L2s": l2s,
        "Concatenators": concat,
    }


def snic_totals(tech: TechModel = None, cfg: NetSparseConfig = None) -> StructureCost:
    """Combined SNIC extension overhead (the paper: ~1.43 mm², ~2.1 W)."""
    parts = snic_overheads(tech, cfg)
    return TechModel.combine("SNIC extensions", list(parts.values()))


def snic_storage_bytes(cfg: NetSparseConfig = None) -> int:
    """Total storage added to the SNIC (the paper quotes ~3.5 MB)."""
    cfg = cfg or NetSparseConfig()
    per_unit = (
        4 * 1024 + 4 * 1024
        + cfg.pending_pr_entries * PENDING_ENTRY_BYTES
        + cfg.lsq_entries * LSQ_ENTRY_BYTES
    )
    n_caches = cfg.n_rig_units // 2
    return (
        cfg.n_rig_units * per_unit
        + n_caches * (32 + 128) * 1024
        + cfg.concat_sram_bytes
    )
