"""Process technology model: SRAM / CAM / logic area and power.

The paper synthesizes the RIG pipelines and concatenators at 45 nm
(FreePDK45 + Design Compiler), uses CACTI for the storage structures,
and scales to 10 nm with the Stillmaker-Baas equations [83].  We model
the same three structure classes with per-byte (storage) and per-unit
(logic) coefficients at 45 nm and apply published scaling factors.

Coefficient calibration: 10 nm SRAM macro density ~0.04 µm²/bit
(≈0.33 mm²/MB), CAM ≈3x SRAM per bit with ~5x dynamic energy, leakage
~15 mW/MB at 10 nm.  These land the totals in the paper's reported
envelope (≈1.4 mm² / ≈2 W for the SNIC extensions).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["StructureCost", "TechModel"]

#: Area scaling factor 45 nm -> target node (Stillmaker-Baas style).
_AREA_SCALE = {45: 1.0, 22: 0.25, 10: 0.062, 7: 0.035}
#: Dynamic energy scaling 45 nm -> target node.
_ENERGY_SCALE = {45: 1.0, 22: 0.40, 10: 0.17, 7: 0.12}
#: Static power scaling.
_LEAKAGE_SCALE = {45: 1.0, 22: 0.45, 10: 0.22, 7: 0.16}


@dataclass
class StructureCost:
    """Area and power of one hardware structure."""

    name: str
    area_mm2: float
    static_w: float
    dynamic_w: float

    @property
    def total_power_w(self) -> float:
        return self.static_w + self.dynamic_w


class TechModel:
    """Per-structure cost models at a given process node."""

    # 45 nm baseline coefficients.
    SRAM_MM2_PER_BYTE = 5.3e-6        # ~5.3 mm^2 / MB at 45 nm
    CAM_MM2_PER_BYTE = 3.0 * SRAM_MM2_PER_BYTE
    SRAM_LEAK_W_PER_BYTE = 68e-9      # ~68 mW / MB at 45 nm
    CAM_LEAK_W_PER_BYTE = 2.0 * SRAM_LEAK_W_PER_BYTE
    SRAM_PJ_PER_BYTE_ACCESS = 1.1     # dynamic energy per byte accessed
    CAM_PJ_PER_BYTE_SEARCH = 0.02  # ~2.5 fJ/bit match-line energy
    LOGIC_MM2_PER_KGATE = 1.0e-3      # NAND2-equivalent gates
    LOGIC_LEAK_W_PER_KGATE = 1.6e-6
    LOGIC_PJ_PER_KGATE_CYCLE = 0.35

    def __init__(self, node_nm: int = 10):
        if node_nm not in _AREA_SCALE:
            raise ValueError(
                f"unsupported node {node_nm} nm; choose from {sorted(_AREA_SCALE)}"
            )
        self.node_nm = node_nm
        self._a = _AREA_SCALE[node_nm]
        self._e = _ENERGY_SCALE[node_nm]
        self._l = _LEAKAGE_SCALE[node_nm]

    # -- storage --------------------------------------------------------

    def sram(self, name: str, capacity_bytes: int, access_bytes_per_s: float,
             copies: int = 1, energy_factor: float = 1.0) -> StructureCost:
        """An SRAM array accessed at ``access_bytes_per_s`` (max activity).

        ``energy_factor`` scales the per-byte access energy for large,
        wire-dominated arrays (tens of MB), whose H-tree and sense
        energy per access is an order of magnitude above a KB-scale
        scratchpad's.
        """
        area = capacity_bytes * self.SRAM_MM2_PER_BYTE * self._a * copies
        static = capacity_bytes * self.SRAM_LEAK_W_PER_BYTE * self._l * copies
        dynamic = (
            access_bytes_per_s * self.SRAM_PJ_PER_BYTE_ACCESS * energy_factor
            * 1e-12 * self._e * copies
        )
        return StructureCost(name, area, static, dynamic)

    def cam(self, name: str, capacity_bytes: int, searches_per_s: float,
            entry_bytes: int, copies: int = 1) -> StructureCost:
        """A content-addressable memory searched ``searches_per_s``."""
        area = capacity_bytes * self.CAM_MM2_PER_BYTE * self._a * copies
        static = capacity_bytes * self.CAM_LEAK_W_PER_BYTE * self._l * copies
        # A search activates every entry's comparand.
        dynamic = (
            searches_per_s * capacity_bytes * self.CAM_PJ_PER_BYTE_SEARCH
            * 1e-12 * self._e * copies
        )
        return StructureCost(name, area, static, dynamic)

    def logic(self, name: str, kgates: float, freq: float, activity: float = 1.0,
              copies: int = 1) -> StructureCost:
        """Random logic of ``kgates`` thousand gate-equivalents."""
        area = kgates * self.LOGIC_MM2_PER_KGATE * self._a * copies
        static = kgates * self.LOGIC_LEAK_W_PER_KGATE * self._l * copies
        dynamic = (
            kgates * freq * activity * self.LOGIC_PJ_PER_KGATE_CYCLE
            * 1e-12 * self._e * copies
        )
        return StructureCost(name, area, static, dynamic)

    @staticmethod
    def combine(name: str, parts) -> StructureCost:
        return StructureCost(
            name,
            sum(p.area_mm2 for p in parts),
            sum(p.static_w for p in parts),
            sum(p.dynamic_w for p in parts),
        )
