"""Communication energy model (extension).

The paper evaluates area and power of the NetSparse additions (§9.5)
but not end-to-end communication *energy*.  Since traffic reductions of
10-300x (Table 7) translate almost directly into network energy, this
model combines standard per-component energy coefficients with the
simulated traffic to compare joules per kernel across schemes:

- serdes + wire: ~4 pJ/bit per link traversal on 400G-class links;
- switch traversal: buffering + crossbar, ~2 pJ/bit;
- NIC/RIG processing: the §9.5 dynamic power at the achieved PR rate;
- host software (SA paths): CPU core energy for the per-PR handling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.config import NetSparseConfig
from repro.results import CommResult

__all__ = ["EnergyCoefficients", "CommEnergy", "communication_energy"]


@dataclass(frozen=True)
class EnergyCoefficients:
    """Per-event energies (joules)."""

    link_j_per_byte: float = 4e-12 * 8        # 4 pJ/bit serdes + wire
    switch_j_per_byte: float = 2e-12 * 8      # buffer + crossbar
    rig_j_per_pr: float = 1.0e-9              # §9.5: ~2 W at ~2G PR/s
    cache_j_per_access: float = 0.5e-9        # 32 MB SRAM access
    cpu_j_per_pr_second: float = 2.5          # watts burned per busy core


@dataclass
class CommEnergy:
    """Energy breakdown of one kernel iteration's communication."""

    scheme: str
    network_j: float
    nic_processing_j: float
    host_software_j: float

    @property
    def total_j(self) -> float:
        return self.network_j + self.nic_processing_j + self.host_software_j


def communication_energy(
    result: CommResult,
    config: Optional[NetSparseConfig] = None,
    coeffs: EnergyCoefficients = EnergyCoefficients(),
    avg_hops: float = 3.0,
) -> CommEnergy:
    """Estimate the energy of a simulated communication phase.

    ``avg_hops`` is the mean link count per byte (intra-rack 2,
    inter-rack 4 on the leaf-spine; 3 is the blended default).
    Scheme-specific terms: NetSparse pays RIG and cache energy per PR;
    the software schemes pay CPU energy for the time their cores spend
    in the communication stack.
    """
    config = config or NetSparseConfig()
    wire_bytes = float(result.recv_wire_bytes.sum())
    network = wire_bytes * (
        avg_hops * coeffs.link_j_per_byte
        + (avg_hops - 1) * coeffs.switch_j_per_byte
    )

    nic = 0.0
    host = 0.0
    if result.scheme == "netsparse":
        nic = result.n_prs_issued * coeffs.rig_j_per_pr
        nic += result.cache_lookups * coeffs.cache_j_per_access
    elif result.scheme in ("saopt", "hybrid", "vanilla"):
        # Core-seconds spent in per-PR software across the cluster.
        payload = config.property_bytes(result.k)
        core_seconds = (
            2.0 * result.n_prs_issued * config.sw_pr_cost(payload)
        )
        host = core_seconds * coeffs.cpu_j_per_pr_second
    # suopt: pure DMA/collective — network term only.
    return CommEnergy(
        scheme=result.scheme,
        network_j=network,
        nic_processing_j=nic,
        host_software_j=host,
    )
