"""The service wire protocol: typed, versioned JSON dataclasses.

Clients of the job server (:mod:`repro.service.server`) speak HTTP and
WebSocket only and never import simulator internals — the contract of
the phiacta extension protocol.  Everything that crosses the wire is
one of the dataclasses below, serialized as JSON with a ``v`` protocol
version field.  Decoding is *tolerant of unknown fields* (a newer
client talking to an older server, or vice versa, degrades instead of
exploding) and rejects only messages from a newer protocol major
version.

The canonical identity of a submission is not the request object but
the :class:`~repro.parallel.jobs.SimJob` digest it canonicalizes to
(:meth:`JobRequest.to_sim_job`): two requests that differ only in
field order, float spelling, or unknown extras coalesce to the same
execution and the same cache entry.

Results travel as JSON too: :func:`encode_result` flattens a
:class:`~repro.results.CommResult` (numpy arrays become typed
``{"__nd__": ...}`` nodes) and :func:`decode_result` rebuilds it
bit-identically — Python floats round-trip exactly through ``repr``,
so a decoded result compares bitwise equal to the direct
``simulate()`` path.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field, fields
from typing import Any, Dict, List, Optional

import numpy as np

from repro.config import FeatureFlags, NetSparseConfig
from repro.results import CommResult

__all__ = [
    "PROTOCOL_VERSION",
    "JOB_STATES",
    "ProtocolError",
    "JobRequest",
    "SweepRequest",
    "JobStatus",
    "JobResult",
    "config_from_overrides",
    "encode_result",
    "decode_result",
    "encode_value",
    "decode_value",
    "dumps",
    "loads",
]

#: Bump on incompatible message-shape changes.  Decoders accept any
#: message at or below their own version (unknown fields are dropped).
PROTOCOL_VERSION = 1

#: Job lifecycle states, in order of progression.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")


class ProtocolError(ValueError):
    """A malformed or unacceptable message (maps to HTTP 400)."""

    def __init__(self, message: str, *, code: str = "bad_request"):
        super().__init__(message)
        self.code = code


def _check_version(data: Dict[str, Any], what: str) -> None:
    v = data.get("v", PROTOCOL_VERSION)
    if not isinstance(v, int) or v < 1:
        raise ProtocolError(f"{what}: bad protocol version {v!r}",
                            code="bad_version")
    if v > PROTOCOL_VERSION:
        raise ProtocolError(
            f"{what}: protocol version {v} is newer than this "
            f"server's {PROTOCOL_VERSION}", code="bad_version")


def _known_fields(cls, data: Dict[str, Any]) -> Dict[str, Any]:
    """The subset of ``data`` naming actual fields — unknown-field
    tolerance in one place."""
    names = {f.name for f in fields(cls)}
    return {k: v for k, v in data.items() if k in names}


def config_from_overrides(overrides: Optional[Dict[str, Any]]) -> NetSparseConfig:
    """Build a :class:`NetSparseConfig` from a sparse override dict.

    ``{"n_nodes": 64, "features": {"property_cache": false}}`` →
    defaults with those fields replaced.  Unknown keys are an error
    (a typo here would silently simulate the wrong system)."""
    overrides = dict(overrides or {})
    feature_over = overrides.pop("features", None)
    cfg_names = {f.name for f in fields(NetSparseConfig)}
    unknown = sorted(set(overrides) - cfg_names)
    if unknown:
        raise ProtocolError(f"unknown config fields: {unknown}",
                            code="bad_config")
    if feature_over is not None:
        flag_names = {f.name for f in fields(FeatureFlags)}
        bad = sorted(set(feature_over) - flag_names)
        if bad:
            raise ProtocolError(f"unknown feature flags: {bad}",
                                code="bad_config")
        overrides["features"] = FeatureFlags(**feature_over)
    try:
        return NetSparseConfig(**overrides)
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"bad config overrides: {exc}",
                            code="bad_config")


@dataclass
class JobRequest:
    """One simulation submission — the JSON body of ``POST /v1/jobs``.

    Mirrors :class:`~repro.parallel.jobs.SimJob` field-for-field, with
    ``config`` as a sparse override dict instead of a full
    :class:`NetSparseConfig` (clients shouldn't need to spell out all
    of Table 5 to change one knob).
    """

    scheme: str
    matrix: str
    k: int
    v: int = PROTOCOL_VERSION
    scale_name: str = "small"
    seed: int = 7
    rig_batch: Optional[int] = None
    scale: Optional[float] = None
    topology: Optional[List] = None
    partition: str = "rows"
    faults: Optional[str] = None
    config: Dict[str, Any] = field(default_factory=dict)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "JobRequest":
        if not isinstance(data, dict):
            raise ProtocolError("job request must be a JSON object")
        _check_version(data, "job request")
        for req in ("scheme", "matrix", "k"):
            if req not in data:
                raise ProtocolError(f"job request missing field {req!r}",
                                    code="missing_field")
        return cls(**_known_fields(cls, data))

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    def to_sim_job(self):
        """Canonicalize to the digestable execution-engine job."""
        from repro.parallel.jobs import SimJob

        try:
            return SimJob(
                scheme=self.scheme,
                matrix=self.matrix,
                k=int(self.k),
                config=config_from_overrides(self.config),
                scale_name=self.scale_name,
                seed=int(self.seed),
                rig_batch=None if self.rig_batch is None else int(self.rig_batch),
                scale=None if self.scale is None else float(self.scale),
                topology=None if self.topology is None else tuple(self.topology),
                partition=self.partition,
                faults=self.faults,
            )
        except ProtocolError:
            raise
        except (TypeError, ValueError) as exc:
            raise ProtocolError(str(exc), code="bad_job")


@dataclass
class SweepRequest:
    """A cross-product of jobs — the JSON body of ``POST /v1/sweeps``.

    Expands ``schemes x matrices x ks`` over the shared knobs into
    individual :class:`JobRequest` records.  Duplicate combinations
    collapse before admission, and duplicates across concurrent sweeps
    coalesce server-side by job digest.
    """

    schemes: List[str]
    matrices: List[str]
    ks: List[int]
    v: int = PROTOCOL_VERSION
    scale_name: str = "small"
    seed: int = 7
    partition: str = "rows"
    faults: Optional[str] = None
    config: Dict[str, Any] = field(default_factory=dict)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SweepRequest":
        if not isinstance(data, dict):
            raise ProtocolError("sweep request must be a JSON object")
        _check_version(data, "sweep request")
        for req in ("schemes", "matrices", "ks"):
            if not data.get(req):
                raise ProtocolError(
                    f"sweep request needs a non-empty {req!r} list",
                    code="missing_field")
        return cls(**_known_fields(cls, data))

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    def expand(self) -> List[JobRequest]:
        out, seen = [], set()
        for scheme in self.schemes:
            for matrix in self.matrices:
                for k in self.ks:
                    key = (scheme, matrix, k)
                    if key in seen:
                        continue
                    seen.add(key)
                    out.append(JobRequest(
                        scheme=scheme, matrix=matrix, k=int(k),
                        scale_name=self.scale_name, seed=self.seed,
                        partition=self.partition, faults=self.faults,
                        config=dict(self.config),
                    ))
        return out


@dataclass
class JobStatus:
    """Lifecycle snapshot of one submitted job (``GET /v1/jobs/<id>``)."""

    job_id: str
    digest: str
    state: str
    v: int = PROTOCOL_VERSION
    source: Optional[str] = None       # executed | cache | memo | coalesced
    coalesced: bool = False            # this submission joined an in-flight job
    error: Optional[str] = None
    created: float = 0.0
    started: Optional[float] = None
    finished: Optional[float] = None
    describe: Dict[str, Any] = field(default_factory=dict)
    sweep_id: Optional[str] = None

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "JobStatus":
        if not isinstance(data, dict):
            raise ProtocolError("job status must be a JSON object")
        _check_version(data, "job status")
        for req in ("job_id", "digest", "state"):
            if req not in data:
                raise ProtocolError(f"job status missing field {req!r}",
                                    code="missing_field")
        return cls(**_known_fields(cls, data))

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @property
    def terminal(self) -> bool:
        return self.state in ("done", "failed", "cancelled")


@dataclass
class JobResult:
    """A finished job's payload (``GET /v1/jobs/<id>/result``)."""

    job_id: str
    digest: str
    elapsed: float
    result: Dict[str, Any]
    v: int = PROTOCOL_VERSION
    source: Optional[str] = None

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "JobResult":
        if not isinstance(data, dict):
            raise ProtocolError("job result must be a JSON object")
        _check_version(data, "job result")
        for req in ("job_id", "digest", "result"):
            if req not in data:
                raise ProtocolError(f"job result missing field {req!r}",
                                    code="missing_field")
        return cls(**_known_fields(cls, data))

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    def comm_result(self) -> CommResult:
        return decode_result(self.result)


# -- result encoding ----------------------------------------------------


def _jsonify(obj: Any) -> Any:
    """JSON-ready deep copy; numpy arrays become typed ``__nd__`` nodes."""
    if isinstance(obj, np.ndarray):
        return {"__nd__": {"dtype": str(obj.dtype),
                           "shape": list(obj.shape),
                           "data": obj.ravel().tolist()}}
    if isinstance(obj, np.generic):
        return obj.item()
    if isinstance(obj, dict):
        return {str(k): _jsonify(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonify(v) for v in obj]
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    # Opaque extras (rare) degrade to their repr rather than failing
    # the whole result; they are display-only anyway.
    return {"__repr__": repr(obj)}


def _unjsonify(obj: Any) -> Any:
    if isinstance(obj, dict):
        if "__nd__" in obj and len(obj) == 1:
            nd = obj["__nd__"]
            arr = np.array(nd["data"], dtype=np.dtype(nd["dtype"]))
            return arr.reshape(nd["shape"])
        if "__repr__" in obj and len(obj) == 1:
            return obj["__repr__"]
        return {k: _unjsonify(v) for k, v in obj.items()}
    if isinstance(obj, list):
        return [_unjsonify(v) for v in obj]
    return obj


def encode_value(obj: Any) -> Any:
    """JSON-ready deep copy of an arbitrary value.

    The public face of the ``__nd__`` codec for payloads that are not
    whole :class:`CommResult` records — numpy arrays become typed
    ``__nd__`` nodes, numpy scalars their Python equivalents, opaque
    extras their ``repr``.  :func:`decode_value` inverts it
    bit-exactly for the array/scalar cases.  The store uses this pair
    for artifact and provenance metadata.
    """
    return _jsonify(obj)


def decode_value(obj: Any) -> Any:
    """Invert :func:`encode_value` (rebuilds ``__nd__`` arrays)."""
    return _unjsonify(obj)


def encode_result(res: CommResult) -> Dict[str, Any]:
    """Flatten a :class:`CommResult` to a JSON-ready dict."""
    return {"__comm_result__": 1,
            **{f.name: _jsonify(getattr(res, f.name))
               for f in fields(CommResult)}}


def decode_result(data: Dict[str, Any]) -> CommResult:
    """Rebuild the :class:`CommResult` encoded by :func:`encode_result`."""
    if not isinstance(data, dict) or not data.get("__comm_result__"):
        raise ProtocolError("not an encoded CommResult", code="bad_result")
    kwargs = {f.name: _unjsonify(data[f.name])
              for f in fields(CommResult) if f.name in data}
    return CommResult(**kwargs)


# -- wire helpers --------------------------------------------------------


def dumps(obj: Any) -> bytes:
    """Canonical wire encoding (compact separators, sorted keys)."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        obj = dataclasses.asdict(obj)
    return json.dumps(obj, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


def loads(raw: bytes) -> Any:
    try:
        return json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"invalid JSON body: {exc}", code="bad_json")
