"""Pure-stdlib client for the job service.

Talks to :mod:`repro.service.server` over HTTP (``http.client``) and
WebSocket (a hand-rolled RFC 6455 client on a plain socket).  Imports
nothing from the simulator beyond the protocol dataclasses — the same
boundary an out-of-process client in another language would have.

Typical use::

    from repro.service.client import ServiceClient

    c = ServiceClient("http://127.0.0.1:8642")
    st = c.submit({"scheme": "netsparse", "matrix": "arabic", "k": 16,
                   "scale_name": "tiny"})
    res = c.wait(st.job_id)            # JobResult
    comm = res.comm_result()           # bit-identical CommResult
    for ev in c.events(st.job_id):     # replayed lifecycle + spans
        print(ev["type"], ev.get("state") or ev.get("name"))
"""

from __future__ import annotations

import base64
import hashlib
import http.client
import os
import socket
import time
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union
from urllib.parse import urlsplit

from repro.service import protocol as proto

__all__ = ["ServiceClient", "ServiceError"]

_WS_GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"


class ServiceError(RuntimeError):
    """A non-2xx service response; carries the status and JSON body."""

    def __init__(self, status: int, payload: Dict[str, Any],
                 retry_after: Optional[float] = None):
        detail = payload.get("error") or payload.get("code") or "?"
        super().__init__(f"HTTP {status}: {detail}")
        self.status = status
        self.payload = payload
        self.retry_after = retry_after

    @property
    def code(self) -> str:
        return str(self.payload.get("code", ""))


class ServiceClient:
    """One service endpoint.  Stateless between calls (a fresh HTTP
    connection per request), so instances are safe to share across
    threads."""

    def __init__(self, url: str = "http://127.0.0.1:8642", *,
                 timeout: float = 120.0):
        parts = urlsplit(url if "//" in url else f"http://{url}")
        if parts.scheme not in ("http", ""):
            raise ValueError(f"unsupported scheme {parts.scheme!r}")
        self.host = parts.hostname or "127.0.0.1"
        self.port = parts.port or 80
        self.timeout = timeout

    # -- plumbing ------------------------------------------------------

    def _request(self, method: str, path: str,
                 body: Optional[dict] = None) -> Tuple[int, dict]:
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            payload = proto.dumps(body) if body is not None else None
            headers = {"Content-Type": "application/json"} if payload else {}
            conn.request(method, path, body=payload, headers=headers)
            resp = conn.getresponse()
            raw = resp.read()
            data = proto.loads(raw) if raw else {}
            if resp.status >= 400:
                ra = resp.getheader("Retry-After")
                raise ServiceError(resp.status, data,
                                   retry_after=float(ra) if ra else None)
            return resp.status, data
        finally:
            conn.close()

    # -- API surface ---------------------------------------------------

    def healthz(self) -> dict:
        return self._request("GET", "/v1/healthz")[1]

    def stats(self) -> dict:
        return self._request("GET", "/v1/stats")[1]

    def submit(self, request: Union[proto.JobRequest, dict]) -> proto.JobStatus:
        """Submit one job; raises :class:`ServiceError` on 429/503."""
        if isinstance(request, proto.JobRequest):
            request = request.to_dict()
        _, data = self._request("POST", "/v1/jobs", body=request)
        return proto.JobStatus.from_dict(data)

    def submit_sweep(self, request: Union[proto.SweepRequest, dict]) -> dict:
        """Submit a sweep; returns ``{"sweep_id", "jobs": [...], ...}``
        with ``jobs`` parsed into :class:`JobStatus` records."""
        if isinstance(request, proto.SweepRequest):
            request = request.to_dict()
        _, data = self._request("POST", "/v1/sweeps", body=request)
        data["jobs"] = [proto.JobStatus.from_dict(j) for j in data["jobs"]]
        return data

    def status(self, job_id: str) -> proto.JobStatus:
        _, data = self._request("GET", f"/v1/jobs/{job_id}")
        return proto.JobStatus.from_dict(data)

    def jobs(self) -> List[proto.JobStatus]:
        _, data = self._request("GET", "/v1/jobs")
        return [proto.JobStatus.from_dict(j) for j in data["jobs"]]

    def result(self, job_id: str) -> proto.JobResult:
        _, data = self._request("GET", f"/v1/jobs/{job_id}/result")
        return proto.JobResult.from_dict(data)

    def cancel(self, job_id: str) -> proto.JobStatus:
        _, data = self._request("DELETE", f"/v1/jobs/{job_id}")
        return proto.JobStatus.from_dict(data)

    def shutdown(self, drain: bool = True) -> dict:
        return self._request("POST", "/v1/shutdown",
                             body={"drain": drain})[1]

    def wait(self, job_id: str, timeout: Optional[float] = None,
             poll: float = 0.05) -> proto.JobResult:
        """Poll until the job is terminal; returns its result.

        Raises :class:`ServiceError` (code ``job_failed`` /
        ``job_cancelled``) if it did not finish successfully, and
        :class:`TimeoutError` on timeout."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            st = self.status(job_id)
            if st.state == "done":
                return self.result(job_id)
            if st.terminal:
                raise ServiceError(409, {"error": st.error or st.state,
                                         "code": f"job_{st.state}"})
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(
                    f"job {job_id} still {st.state} after {timeout}s")
            time.sleep(poll)

    # -- WebSocket -----------------------------------------------------

    def events(self, job_id: Optional[str] = None, *,
               timeout: Optional[float] = None) -> Iterator[dict]:
        """Stream events for one job (or all jobs when ``job_id`` is
        None) until the server closes the stream.

        For a finished job the full history replays, so the iterator
        always yields the complete ordered lifecycle."""
        path = (f"/v1/jobs/{job_id}/events" if job_id is not None
                else "/v1/events")
        sock = socket.create_connection(
            (self.host, self.port), timeout=timeout or self.timeout)
        try:
            buf = self._ws_handshake(sock, path)
            while True:
                opcode, payload = self._ws_read_frame(buf)
                if opcode == 0x8:          # close
                    return
                if opcode == 0x9:          # ping -> pong (masked)
                    sock.sendall(self._ws_frame(payload, opcode=0xA))
                    continue
                if opcode in (0x1, 0x2) and payload:
                    yield proto.loads(payload)
        finally:
            try:
                sock.close()
            except OSError:
                pass

    def _ws_handshake(self, sock: socket.socket,
                      path: str) -> "_SockReader":
        """Upgrade the socket; returns the reader (which may already
        hold buffered frame bytes that arrived with the 101)."""
        key = base64.b64encode(os.urandom(16)).decode()
        req = (f"GET {path} HTTP/1.1\r\n"
               f"Host: {self.host}:{self.port}\r\n"
               "Upgrade: websocket\r\nConnection: Upgrade\r\n"
               f"Sec-WebSocket-Key: {key}\r\n"
               "Sec-WebSocket-Version: 13\r\n\r\n")
        sock.sendall(req.encode("latin-1"))
        reader = _SockReader(sock)
        status_line = reader.readline()
        if b" 101 " not in status_line:
            # Read the error body for a useful message.
            headers = {}
            while True:
                line = reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                k, _, v = line.decode("latin-1").partition(":")
                headers[k.strip().lower()] = v.strip()
            n = int(headers.get("content-length", 0) or 0)
            body = reader.readexactly(n) if n else b"{}"
            try:
                payload = proto.loads(body)
            except proto.ProtocolError:
                payload = {"error": status_line.decode("latin-1").strip()}
            status = int(status_line.split()[1]) if len(
                status_line.split()) > 1 else 500
            raise ServiceError(status, payload)
        accept = None
        while True:
            line = reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            k, _, v = line.decode("latin-1").partition(":")
            if k.strip().lower() == "sec-websocket-accept":
                accept = v.strip()
        expect = base64.b64encode(hashlib.sha1(
            (key + _WS_GUID).encode("latin-1")).digest()).decode()
        if accept != expect:
            raise ServiceError(502, {"error": "bad Sec-WebSocket-Accept",
                                     "code": "bad_handshake"})
        return reader

    @staticmethod
    def _ws_read_frame(reader: "_SockReader") -> Tuple[int, bytes]:
        head = reader.readexactly(2)
        opcode = head[0] & 0x0F
        n = head[1] & 0x7F
        if n == 126:
            n = int.from_bytes(reader.readexactly(2), "big")
        elif n == 127:
            n = int.from_bytes(reader.readexactly(8), "big")
        # Server frames are unmasked per RFC 6455.
        return opcode, reader.readexactly(n) if n else b""

    @staticmethod
    def _ws_frame(payload: bytes, opcode: int = 0x1) -> bytes:
        """A masked client frame."""
        head = bytearray([0x80 | opcode])
        n = len(payload)
        if n < 126:
            head.append(0x80 | n)
        elif n < (1 << 16):
            head.append(0x80 | 126)
            head += n.to_bytes(2, "big")
        else:
            head.append(0x80 | 127)
            head += n.to_bytes(8, "big")
        key = os.urandom(4)
        head += key
        return bytes(head) + bytes(
            b ^ key[i % 4] for i, b in enumerate(payload))


class _SockReader:
    """Minimal buffered reader over a blocking socket."""

    def __init__(self, sock: socket.socket):
        self._sock = sock
        self._buf = b""

    def _fill(self) -> bool:
        chunk = self._sock.recv(65536)
        if not chunk:
            return False
        self._buf += chunk
        return True

    def readline(self) -> bytes:
        while b"\n" not in self._buf:
            if not self._fill():
                line, self._buf = self._buf, b""
                return line
        line, _, self._buf = self._buf.partition(b"\n")
        return line + b"\n"

    def readexactly(self, n: int) -> bytes:
        while len(self._buf) < n:
            if not self._fill():
                raise ConnectionError("socket closed mid-frame")
        out, self._buf = self._buf[:n], self._buf[n:]
        return out
