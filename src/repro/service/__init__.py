"""Sweep-as-a-service: the asyncio job API over the ExecutionEngine.

Three modules, layered strictly:

- :mod:`repro.service.protocol` — the wire contract: typed, versioned
  JSON dataclasses (``JobRequest``/``SweepRequest``/``JobStatus``/
  ``JobResult``), numpy-aware bit-exact result encoding, and the
  canonical-digest mapping onto :class:`~repro.parallel.SimJob`.
- :mod:`repro.service.server` — the stdlib-only asyncio server:
  hand-rolled HTTP/1.1 + RFC 6455 WebSocket, duplicate-submission
  coalescing, cache-served repeats, bounded admission (429 +
  ``Retry-After``), per-job lifecycle/span event streams, graceful
  drain.
- :mod:`repro.service.client` — a pure-stdlib client that speaks only
  the protocol (never imports simulator internals).

Quick start::

    from repro.service import serve_in_background, ServiceClient

    bg = serve_in_background(queue_limit=32)
    c = ServiceClient(bg.url)
    st = c.submit({"scheme": "netsparse", "matrix": "arabic", "k": 16,
                   "scale_name": "tiny"})
    res = c.wait(st.job_id).comm_result()
    bg.stop()          # drains in-flight jobs

Foreground: ``netsparse serve`` / ``netsparse submit`` on the CLI.
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.protocol import (
    JOB_STATES,
    PROTOCOL_VERSION,
    JobRequest,
    JobResult,
    JobStatus,
    ProtocolError,
    SweepRequest,
    decode_result,
    encode_result,
)
from repro.service.server import (
    DEFAULT_PORT,
    BackgroundServer,
    JobServer,
    run_server,
    serve_in_background,
)

__all__ = [
    "DEFAULT_PORT",
    "JOB_STATES",
    "PROTOCOL_VERSION",
    "BackgroundServer",
    "JobRequest",
    "JobResult",
    "JobServer",
    "JobStatus",
    "ProtocolError",
    "ServiceClient",
    "ServiceError",
    "SweepRequest",
    "decode_result",
    "encode_result",
    "run_server",
    "serve_in_background",
]
