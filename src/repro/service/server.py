"""Sweep-as-a-service: an asyncio job server over the ExecutionEngine.

A long-running, stdlib-only front-end that turns
:class:`~repro.parallel.ExecutionEngine` from a CLI fan-out into a
shared service: many concurrent clients submit simulation and sweep
jobs over HTTP, duplicates coalesce onto single executions, repeats
are answered straight from the digest-keyed result cache, and per-job
lifecycle + per-stage telemetry progress streams over WebSocket.

The HTTP/1.1 parser and RFC 6455 WebSocket framing are hand-rolled on
``asyncio`` streams, in the spirit of the byte-exact protocol codecs
in :mod:`repro.core.protocol` — no new runtime dependencies.

Endpoints (all payloads are :mod:`repro.service.protocol` dataclasses):

====================================  ==================================
``GET  /v1/healthz``                  liveness + protocol version
``GET  /v1/stats``                    ``service.*`` telemetry + engine stats
``POST /v1/jobs``                     submit one ``JobRequest``
``POST /v1/sweeps``                   submit a ``SweepRequest`` cross-product
``GET  /v1/jobs``                     list job statuses
``GET  /v1/jobs/<id>``                one ``JobStatus``
``GET  /v1/jobs/<id>/result``         the finished ``JobResult``
``DELETE /v1/jobs/<id>``              cancel a queued job
``GET  /v1/jobs/<id>/events``         WebSocket: that job's event stream
``GET  /v1/events``                   WebSocket: every job's events
``POST /v1/shutdown``                 drain in-flight jobs and stop
====================================  ==================================

Error codes: ``400`` malformed request (body carries ``code`` from
:class:`~repro.service.protocol.ProtocolError`), ``404`` unknown job,
``405`` wrong method, ``409`` result not ready / cannot cancel,
``429`` admission queue full (with ``Retry-After``), ``503`` draining.

Back-pressure is explicit: at most ``queue_limit`` jobs may be
in-flight (queued + running); everything beyond that is rejected with
``429`` so load sheds at admission instead of piling onto the engine.
"""

from __future__ import annotations

import asyncio
import base64
import hashlib
import itertools
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

import repro
from repro import telemetry
from repro.parallel import ExecutionEngine, get_engine
from repro.service import protocol as proto
from repro.telemetry import MetricsRegistry

__all__ = ["JobServer", "BackgroundServer", "serve_in_background",
           "run_server", "DEFAULT_PORT"]

DEFAULT_PORT = 8642

_WS_GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

_REASONS = {
    101: "Switching Protocols", 200: "OK", 202: "Accepted",
    400: "Bad Request", 404: "Not Found", 405: "Method Not Allowed",
    409: "Conflict", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
}

#: Hard ceilings on what one request may carry.
_MAX_BODY = 8 * 1024 * 1024
_MAX_HEADERS = 100


class _Overflow(Exception):
    """Admission queue full — mapped to 429 + Retry-After."""


class _ServiceRegistry(MetricsRegistry):
    """The server's metrics registry.

    Two service-specific behaviors on top of the stock registry: wall
    spans recorded by job worker threads are forwarded to the owning
    job's WebSocket event stream (thread → job binding maintained by
    the server), and the stored span list is bounded so a long-running
    server cannot accumulate span records without limit.
    """

    _MAX_SPANS = 8192

    def __init__(self, server: "JobServer"):
        super().__init__()
        self._server = server

    def add_span(self, name, start, duration, clock="wall", track="",
                 **args):
        rec = super().add_span(name, start, duration, clock, track, **args)
        if len(self.spans) > self._MAX_SPANS:
            del self.spans[: self._MAX_SPANS // 2]
        if clock == "wall":
            self._server._span_recorded(name, duration)
        return rec


class _JobRecord:
    """Server-side state of one admitted job."""

    __slots__ = ("job_id", "request", "job", "digest", "state", "source",
                 "error", "created", "started", "finished", "sweep_id",
                 "handle", "events", "subscribers", "seq",
                 "coalesced_count")

    def __init__(self, job_id: str, request: proto.JobRequest, job,
                 digest: str, sweep_id: Optional[str] = None):
        self.job_id = job_id
        self.request = request
        self.job = job
        self.digest = digest
        self.state = "queued"
        self.source: Optional[str] = None
        self.error: Optional[str] = None
        self.created = time.time()
        self.started: Optional[float] = None
        self.finished: Optional[float] = None
        self.sweep_id = sweep_id
        self.handle = None
        self.events: List[dict] = []
        self.subscribers: List[asyncio.Queue] = []
        self.seq = 0
        self.coalesced_count = 0

    @property
    def terminal(self) -> bool:
        return self.state in ("done", "failed", "cancelled")

    def status(self, *, coalesced: bool = False) -> proto.JobStatus:
        return proto.JobStatus(
            job_id=self.job_id, digest=self.digest, state=self.state,
            source=self.source, coalesced=coalesced, error=self.error,
            created=self.created, started=self.started,
            finished=self.finished, describe=self.job.describe(),
            sweep_id=self.sweep_id,
        )


class JobServer:
    """The asyncio job server.  Create, ``await start()``, then either
    ``await serve_until(event)`` (CLI) or drive it from tests via
    :func:`serve_in_background`."""

    def __init__(self, engine: Optional[ExecutionEngine] = None, *,
                 host: str = "127.0.0.1", port: int = 0,
                 queue_limit: int = 64, retry_after: float = 1.0,
                 close_engine: bool = False):
        self.engine = engine if engine is not None else get_engine()
        self.host = host
        self.port = port
        self.queue_limit = max(int(queue_limit), 1)
        self.retry_after = retry_after
        self.registry: _ServiceRegistry = _ServiceRegistry(self)
        self._close_engine = close_engine
        self._jobs: Dict[str, _JobRecord] = {}
        self._by_digest: Dict[str, _JobRecord] = {}
        self._inflight = 0
        self._draining = False
        self._ids = itertools.count(1)
        self._sweep_ids = itertools.count(1)
        self._thread_jobs: Dict[int, str] = {}
        self._global_subs: List[asyncio.Queue] = []
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._idle: Optional[asyncio.Event] = None
        self._prev_registry = None

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> "JobServer":
        self._loop = asyncio.get_running_loop()
        self._idle = asyncio.Event()
        self._idle.set()
        # The service owns process telemetry while it runs: span
        # forwarding and the service.* counters need an active
        # registry.  The previous one is restored on shutdown.
        self._prev_registry = telemetry.active()
        telemetry.enable(self.registry)
        self._server = await asyncio.start_server(
            self._handle_conn, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        # Replica identity for the shared run ledger: two `netsparse
        # serve` replicas pointed at one store are distinguishable by
        # their bind address even when they share a host.
        import os as _os

        self.engine.context.setdefault(
            "worker", f"service:{self.host}:{self.port}:{_os.getpid()}")
        return self

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    async def serve_until(self, stop: asyncio.Event, *,
                          drain: bool = True) -> None:
        await stop.wait()
        await self.shutdown(drain=drain)

    async def shutdown(self, drain: bool = True,
                       timeout: Optional[float] = None) -> None:
        """Stop accepting work; drain (or cancel) in-flight jobs.

        With ``drain=True`` every admitted job runs to completion and
        its terminal event is published before the call returns — the
        Ctrl-C path.  With ``drain=False`` queued jobs are cancelled
        first; jobs already running still finish (a simulation cannot
        be preempted mid-kernel)."""
        if self._server is None:
            return
        self._draining = True
        self._server.close()
        await self._server.wait_closed()
        self._server = None
        if not drain:
            for rec in list(self._by_digest.values()):
                if rec.handle is not None:
                    rec.handle.cancel()
        await asyncio.wait_for(self._idle.wait(), timeout)
        self._publish_global({"type": "server", "state": "stopped"})
        # Give WebSocket streamers one tick to flush terminal events.
        await asyncio.sleep(0)
        if self._close_engine:
            self.engine.close()
        if telemetry.active() is self.registry:
            if self._prev_registry is not None:
                telemetry.enable(self._prev_registry)
            else:
                telemetry.disable()

    # -- submission ----------------------------------------------------

    def _admit(self, jr: proto.JobRequest,
               sweep_id: Optional[str] = None) -> Tuple[_JobRecord, bool]:
        """Admit one request; returns ``(record, coalesced)``.

        Runs on the event loop thread only, so admission — the digest
        lookup, the capacity check, and the in-flight registration —
        is atomic without locks."""
        job = jr.to_sim_job()          # ProtocolError -> 400 upstream
        digest = job.digest()
        if self._draining:
            raise proto.ProtocolError("server is draining", code="draining")
        live = self._by_digest.get(digest)
        if live is not None:
            live.coalesced_count += 1
            self.registry.count("service.coalesced")
            # Server-level coalescing never reaches the engine, so the
            # run ledger would miss these submissions entirely; record
            # them here with their own source attribution.
            store = self.engine._store()
            if store is not None:
                try:
                    store.record_run(
                        digest, source="coalesced",
                        worker=self.engine.context.get("worker"),
                        meta=job.describe())
                except Exception:
                    self.registry.count("store.errors", op="ledger")
            return live, True
        if self._inflight >= self.queue_limit:
            self.registry.count("service.rejected")
            raise _Overflow()
        job_id = f"j{next(self._ids):05d}-{digest[:8]}"
        rec = _JobRecord(job_id, jr, job, digest, sweep_id=sweep_id)
        self._jobs[job_id] = rec
        self.registry.count("service.submitted")
        self._publish(rec, {"type": "status", "state": "queued"})

        def _on_start(rec=rec):
            # Worker thread: bind for span attribution, then flip state.
            self._thread_jobs[threading.get_ident()] = rec.job_id
            self._call_soon(self._mark_running, rec)

        handle = self.engine.submit(job, on_start=_on_start)
        rec.handle = handle
        if handle.source in ("memo", "cache"):
            # Answered without execution: terminal immediately.
            rec.source = "cache"
            rec.state = "done"
            rec.finished = time.time()
            self.registry.count("service.cache_hits")
            self._publish(rec, {"type": "status", "state": "done",
                                "source": rec.source})
            return rec, False
        rec.source = "executed"
        self._by_digest[digest] = rec
        self._inflight += 1
        self._idle.clear()
        self.registry.set_gauge("service.queue.depth", self._inflight)

        def _fut_done(f, rec=rec):
            # Runs in the worker thread (or loop thread for instant
            # futures): unbind the span attribution, then finish on
            # the loop.
            self._thread_jobs.pop(threading.get_ident(), None)
            self._call_soon(self._job_finished, rec)

        handle.future.add_done_callback(_fut_done)
        return rec, False

    def _mark_running(self, rec: _JobRecord) -> None:
        if rec.state != "queued":
            return
        rec.state = "running"
        rec.started = time.time()
        self._publish(rec, {"type": "status", "state": "running"})

    def _job_finished(self, rec: _JobRecord) -> None:
        if rec.terminal:
            return
        fut = rec.handle.future
        if fut.cancelled():
            rec.state = "cancelled"
            self.registry.count("service.cancelled")
        elif fut.exception() is not None:
            rec.state = "failed"
            rec.error = repr(fut.exception())
            self.registry.count("service.failed")
        else:
            rec.state = "done"
            self.registry.count("service.completed")
        rec.finished = time.time()
        if self._by_digest.get(rec.digest) is rec:
            del self._by_digest[rec.digest]
        self._inflight -= 1
        self.registry.set_gauge("service.queue.depth", self._inflight)
        if self._inflight == 0:
            self._idle.set()
        self.registry.observe("service.job.seconds",
                              rec.finished - rec.created,
                              scheme=rec.job.scheme)
        self._publish(rec, {"type": "status", "state": rec.state,
                            "source": rec.source, "error": rec.error})

    # -- events --------------------------------------------------------

    def _call_soon(self, fn, *args) -> None:
        try:
            self._loop.call_soon_threadsafe(fn, *args)
        except RuntimeError:
            pass  # loop already closed (late callback during teardown)

    def _span_recorded(self, name: str, duration: float) -> None:
        """Called by the registry from whatever thread recorded a wall
        span; forwards it to the owning job's stream, if any."""
        job_id = self._thread_jobs.get(threading.get_ident())
        if job_id is None or self._loop is None:
            return
        self._call_soon(self._publish_span, job_id, name, duration)

    def _publish_span(self, job_id: str, name: str,
                      duration: float) -> None:
        rec = self._jobs.get(job_id)
        if rec is None or rec.terminal:
            return
        self._publish(rec, {"type": "span", "name": name,
                            "duration_s": round(duration, 6)})

    def _publish(self, rec: _JobRecord, event: dict) -> None:
        event = dict(event)
        event.setdefault("job_id", rec.job_id)
        event["ts"] = time.time()
        event["seq"] = rec.seq
        rec.seq += 1
        rec.events.append(event)
        for q in rec.subscribers:
            q.put_nowait(event)
        for q in self._global_subs:
            q.put_nowait(event)

    def _publish_global(self, event: dict) -> None:
        event = dict(event)
        event["ts"] = time.time()
        for q in self._global_subs:
            q.put_nowait(event)

    # -- HTTP ----------------------------------------------------------

    async def _handle_conn(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        try:
            parsed = await self._read_request(reader)
            if parsed is None:
                return
            method, path, query, headers, body = parsed
            if headers.get("upgrade", "").lower() == "websocket":
                await self._handle_ws(reader, writer, method, path, headers)
                return
            t0 = time.perf_counter()
            status, payload, extra = self._route(method, path, query, body)
            label = f"{method} {self._route_label(path)}"
            self.registry.count("service.requests", route=label)
            self.registry.observe("service.request.seconds",
                                  time.perf_counter() - t0, route=label)
            await self._write_response(writer, status, payload, extra)
        except (asyncio.IncompleteReadError, ConnectionError):
            pass
        except Exception as exc:  # never let one request kill the server
            try:
                await self._write_response(
                    writer, 500, {"error": repr(exc), "code": "internal"})
            except Exception:
                pass
        finally:
            try:
                writer.close()
            except Exception:
                pass

    @staticmethod
    async def _read_request(reader):
        line = await reader.readline()
        if not line:
            return None
        parts = line.decode("latin-1").split()
        if len(parts) != 3:
            raise proto.ProtocolError("malformed request line")
        method, target, _version = parts
        headers: Dict[str, str] = {}
        for _ in range(_MAX_HEADERS):
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            key, _, value = raw.decode("latin-1").partition(":")
            headers[key.strip().lower()] = value.strip()
        else:
            raise proto.ProtocolError("too many headers")
        length = int(headers.get("content-length", 0) or 0)
        if length > _MAX_BODY:
            raise proto.ProtocolError("request body too large")
        body = await reader.readexactly(length) if length else b""
        path, _, query = target.partition("?")
        return method.upper(), path, query, headers, body

    async def _write_response(self, writer, status: int,
                              payload: Optional[dict],
                              extra: Optional[Dict[str, str]] = None):
        body = proto.dumps(payload if payload is not None else {})
        headers = {
            "Content-Type": "application/json",
            "Content-Length": str(len(body)),
            "Connection": "close",
        }
        if extra:
            headers.update(extra)
        head = f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
        head += "".join(f"{k}: {v}\r\n" for k, v in headers.items())
        writer.write(head.encode("latin-1") + b"\r\n" + body)
        await writer.drain()

    @staticmethod
    def _route_label(path: str) -> str:
        parts = path.strip("/").split("/")
        if len(parts) >= 2 and parts[1] == "jobs" and len(parts) > 2:
            parts[2] = "{id}"
        return "/" + "/".join(parts)

    def _route(self, method: str, path: str, query: str,
               body: bytes) -> Tuple[int, Optional[dict],
                                     Optional[Dict[str, str]]]:
        try:
            return self._dispatch(method, path, body)
        except _Overflow:
            return 429, {"error": "admission queue full",
                         "code": "queue_full",
                         "queue_limit": self.queue_limit}, \
                {"Retry-After": str(max(int(self.retry_after), 1))}
        except proto.ProtocolError as exc:
            status = 503 if exc.code == "draining" else 400
            return status, {"error": str(exc), "code": exc.code}, None

    def _dispatch(self, method, path, body):
        parts = [p for p in path.strip("/").split("/") if p]
        if not parts or parts[0] != "v1":
            return 404, {"error": f"no such path {path!r}",
                         "code": "not_found"}, None
        rest = parts[1:]

        if rest == ["healthz"]:
            return 200, {"ok": True, "version": repro.__version__,
                         "protocol": proto.PROTOCOL_VERSION,
                         "draining": self._draining}, None

        if rest == ["stats"]:
            return 200, self._stats_payload(), None

        if rest == ["shutdown"]:
            if method != "POST":
                return 405, {"error": "POST only", "code": "method"}, None
            opts = proto.loads(body) if body else {}
            drain = bool(opts.get("drain", True))
            asyncio.get_running_loop().create_task(
                self.shutdown(drain=drain))
            return 202, {"ok": True, "draining": True}, None

        if rest == ["jobs"] and method == "POST":
            jr = proto.JobRequest.from_dict(proto.loads(body))
            rec, coalesced = self._admit(jr)
            status = 200 if (coalesced or rec.terminal) else 202
            return status, rec.status(coalesced=coalesced).to_dict(), None

        if rest == ["sweeps"] and method == "POST":
            sweep = proto.SweepRequest.from_dict(proto.loads(body))
            return self._admit_sweep(sweep)

        if rest == ["jobs"] and method == "GET":
            jobs = sorted(self._jobs.values(), key=lambda r: r.created)
            return 200, {"jobs": [r.status().to_dict() for r in jobs],
                         "inflight": self._inflight,
                         "queue_limit": self.queue_limit}, None

        if len(rest) >= 2 and rest[0] == "jobs":
            rec = self._jobs.get(rest[1])
            if rec is None:
                return 404, {"error": f"unknown job {rest[1]!r}",
                             "code": "unknown_job"}, None
            if len(rest) == 2 and method == "GET":
                return 200, rec.status().to_dict(), None
            if len(rest) == 2 and method == "DELETE":
                return self._cancel(rec)
            if rest[2:] == ["result"] and method == "GET":
                return self._result(rec)

        return 404, {"error": f"no route for {method} {path}",
                     "code": "not_found"}, None

    def _admit_sweep(self, sweep: proto.SweepRequest):
        sweep_id = f"s{next(self._sweep_ids):04d}"
        statuses, n_coalesced = [], 0
        for jr in sweep.expand():
            try:
                rec, coalesced = self._admit(jr, sweep_id=sweep_id)
            except _Overflow:
                # Jobs admitted so far stay admitted; the client sees
                # exactly which, and a retried sweep coalesces onto
                # them instead of re-queueing.
                return 429, {"error": "admission queue full mid-sweep",
                             "code": "queue_full",
                             "sweep_id": sweep_id,
                             "admitted": statuses}, \
                    {"Retry-After": str(max(int(self.retry_after), 1))}
            n_coalesced += bool(coalesced)
            statuses.append(rec.status(coalesced=coalesced).to_dict())
        return 202, {"sweep_id": sweep_id, "jobs": statuses,
                     "n_jobs": len(statuses),
                     "n_coalesced": n_coalesced}, None

    def _cancel(self, rec: _JobRecord):
        if rec.terminal:
            return 409, {"error": f"job already {rec.state}",
                         "code": "terminal"}, None
        if rec.handle is not None and rec.handle.cancel():
            return 200, rec.status().to_dict(), None
        return 409, {"error": "job already running (or shared); "
                              "cannot cancel", "code": "running"}, None

    def _result(self, rec: _JobRecord):
        if rec.state != "done":
            return 409, {"error": f"job is {rec.state}, not done",
                         "code": "not_done",
                         "state": rec.state}, None
        res = rec.handle.future.result()
        payload = proto.JobResult(
            job_id=rec.job_id, digest=rec.digest,
            elapsed=round((rec.finished or 0) - rec.created, 6),
            result=proto.encode_result(res), source=rec.source,
        )
        return 200, payload.to_dict(), None

    def _stats_payload(self) -> dict:
        snap = self.registry.snapshot()

        def _section(d, prefix):
            return {k: v for k, v in d.items() if k.startswith(prefix)}

        store = self.engine._store()
        try:
            store_info = store.describe() if store is not None else None
        except Exception:
            store_info = None
        return {
            "service": {
                "counters": _section(snap["counters"], "service."),
                "gauges": _section(snap["gauges"], "service."),
                "histograms": _section(snap["histograms"], "service."),
            },
            "store": {
                "info": store_info,
                "counters": _section(snap["counters"], "store."),
            } if store is not None else None,
            "engine": self.engine.describe(),
            "jobs": {"total": len(self._jobs),
                     "inflight": self._inflight,
                     "queue_limit": self.queue_limit,
                     "draining": self._draining},
        }

    # -- WebSocket -----------------------------------------------------

    async def _handle_ws(self, reader, writer, method, path, headers):
        key = headers.get("sec-websocket-key")
        parts = [p for p in path.strip("/").split("/") if p]
        rec = None
        if parts[:1] == ["v1"] and parts[1:] == ["events"]:
            target = "all"
        elif (len(parts) == 4 and parts[0] == "v1" and parts[1] == "jobs"
                and parts[3] == "events"):
            target = "job"
            rec = self._jobs.get(parts[2])
            if rec is None:
                await self._write_response(
                    writer, 404, {"error": f"unknown job {parts[2]!r}",
                                  "code": "unknown_job"})
                return
        else:
            await self._write_response(
                writer, 404, {"error": f"no websocket at {path!r}",
                              "code": "not_found"})
            return
        if method != "GET" or not key:
            await self._write_response(
                writer, 400, {"error": "bad websocket handshake",
                              "code": "bad_handshake"})
            return
        accept = base64.b64encode(hashlib.sha1(
            (key + _WS_GUID).encode("latin-1")).digest()).decode()
        writer.write(
            b"HTTP/1.1 101 Switching Protocols\r\n"
            b"Upgrade: websocket\r\nConnection: Upgrade\r\n"
            b"Sec-WebSocket-Accept: " + accept.encode() + b"\r\n\r\n")
        await writer.drain()
        self.registry.count("service.ws.connections")
        if target == "job":
            await self._ws_stream_job(reader, writer, rec)
        else:
            await self._ws_stream_all(reader, writer)

    async def _ws_stream_job(self, reader, writer, rec: _JobRecord):
        queue: asyncio.Queue = asyncio.Queue()
        rec.subscribers.append(queue)
        history = list(rec.events)   # no await between subscribe+snapshot
        try:
            closing = asyncio.ensure_future(self._ws_drain_client(
                reader, writer))
            ended = False
            for ev in history:
                await self._ws_send_json(writer, ev)
                ended = ended or self._ws_is_terminal(ev)
            while not ended and not closing.done():
                getter = asyncio.ensure_future(queue.get())
                done, _ = await asyncio.wait(
                    {getter, closing},
                    return_when=asyncio.FIRST_COMPLETED)
                if getter not in done:
                    getter.cancel()
                    break
                ev = getter.result()
                await self._ws_send_json(writer, ev)
                ended = self._ws_is_terminal(ev)
            await self._ws_close(writer)
            closing.cancel()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            if queue in rec.subscribers:
                rec.subscribers.remove(queue)

    async def _ws_stream_all(self, reader, writer):
        queue: asyncio.Queue = asyncio.Queue()
        self._global_subs.append(queue)
        try:
            closing = asyncio.ensure_future(self._ws_drain_client(
                reader, writer))
            while not closing.done():
                getter = asyncio.ensure_future(queue.get())
                done, _ = await asyncio.wait(
                    {getter, closing},
                    return_when=asyncio.FIRST_COMPLETED)
                if getter not in done:
                    getter.cancel()
                    break
                ev = getter.result()
                await self._ws_send_json(writer, ev)
                if ev.get("type") == "server":
                    break
            await self._ws_close(writer)
            closing.cancel()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            if queue in self._global_subs:
                self._global_subs.remove(queue)

    @staticmethod
    def _ws_is_terminal(ev: dict) -> bool:
        return (ev.get("type") == "status"
                and ev.get("state") in ("done", "failed", "cancelled"))

    async def _ws_drain_client(self, reader, writer) -> None:
        """Consume client frames: answer pings, return on close/EOF."""
        try:
            while True:
                opcode, payload = await _ws_read_frame(reader)
                if opcode == 0x8:      # close
                    return
                if opcode == 0x9:      # ping -> pong
                    writer.write(_ws_encode_frame(payload, opcode=0xA))
                    await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            return

    async def _ws_send_json(self, writer, obj: dict) -> None:
        writer.write(_ws_encode_frame(proto.dumps(obj), opcode=0x1))
        await writer.drain()
        self.registry.count("service.ws.events")

    @staticmethod
    async def _ws_close(writer) -> None:
        try:
            writer.write(_ws_encode_frame(b"", opcode=0x8))
            await writer.drain()
        except (ConnectionError, RuntimeError):
            pass


# -- RFC 6455 framing ---------------------------------------------------


def _ws_encode_frame(payload: bytes, opcode: int = 0x1,
                     mask: bool = False) -> bytes:
    """One FIN frame.  Servers send unmasked; clients must mask."""
    head = bytearray([0x80 | opcode])
    n = len(payload)
    mask_bit = 0x80 if mask else 0
    if n < 126:
        head.append(mask_bit | n)
    elif n < (1 << 16):
        head.append(mask_bit | 126)
        head += n.to_bytes(2, "big")
    else:
        head.append(mask_bit | 127)
        head += n.to_bytes(8, "big")
    if mask:
        import os as _os

        key = _os.urandom(4)
        head += key
        payload = bytes(b ^ key[i % 4] for i, b in enumerate(payload))
    return bytes(head) + payload


async def _ws_read_frame(reader) -> Tuple[int, bytes]:
    """``(opcode, payload)`` of the next frame, unmasking if needed."""
    head = await reader.readexactly(2)
    opcode = head[0] & 0x0F
    masked = bool(head[1] & 0x80)
    n = head[1] & 0x7F
    if n == 126:
        n = int.from_bytes(await reader.readexactly(2), "big")
    elif n == 127:
        n = int.from_bytes(await reader.readexactly(8), "big")
    key = await reader.readexactly(4) if masked else None
    payload = await reader.readexactly(n) if n else b""
    if key:
        payload = bytes(b ^ key[i % 4] for i, b in enumerate(payload))
    return opcode, payload


# -- embedding helpers ---------------------------------------------------


class BackgroundServer:
    """A :class:`JobServer` running on its own event loop thread —
    what tests, benchmarks, and the smoke script embed."""

    def __init__(self, server: JobServer, loop: asyncio.AbstractEventLoop,
                 thread: threading.Thread):
        self.server = server
        self._loop = loop
        self._thread = thread

    @property
    def url(self) -> str:
        return self.server.url

    @property
    def port(self) -> int:
        return self.server.port

    def stop(self, drain: bool = True, timeout: float = 120.0) -> None:
        if not self._thread.is_alive():
            return
        fut = asyncio.run_coroutine_threadsafe(
            self.server.shutdown(drain=drain), self._loop)
        fut.result(timeout)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout)

    def __enter__(self) -> "BackgroundServer":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


def serve_in_background(engine: Optional[ExecutionEngine] = None,
                        **kwargs: Any) -> BackgroundServer:
    """Start a :class:`JobServer` on a daemon thread; returns once it
    is accepting connections (``.url`` is live)."""
    started = threading.Event()
    holder: Dict[str, Any] = {}

    def _run():
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        server = JobServer(engine, **kwargs)
        try:
            loop.run_until_complete(server.start())
            holder["server"], holder["loop"] = server, loop
        except BaseException as exc:   # surface bind errors to caller
            holder["error"] = exc
            started.set()
            loop.close()
            return
        started.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

    thread = threading.Thread(target=_run, name="netsparse-service",
                              daemon=True)
    thread.start()
    if not started.wait(30):
        raise RuntimeError("service failed to start within 30s")
    if "error" in holder:
        raise holder["error"]
    return BackgroundServer(holder["server"], holder["loop"], thread)


def run_server(engine: Optional[ExecutionEngine] = None, *,
               host: str = "127.0.0.1", port: int = DEFAULT_PORT,
               queue_limit: int = 64, close_engine: bool = False,
               announce=print) -> int:
    """Blocking foreground server — the ``netsparse serve`` entry.

    Installs SIGINT/SIGTERM handlers: the first signal stops accepting
    submissions and *drains* in-flight jobs before exiting."""
    import signal

    async def _main() -> int:
        server = JobServer(engine, host=host, port=port,
                           queue_limit=queue_limit,
                           close_engine=close_engine)
        await server.start()
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, stop.set)
            except (NotImplementedError, RuntimeError):
                pass  # non-unix / nested loop
        announce(f"[serve] listening on {server.url} "
                 f"(workers={server.engine.jobs}, "
                 f"queue-limit={server.queue_limit})")
        await stop.wait()
        announce("[serve] signal received: draining in-flight jobs ...")
        await server.shutdown(drain=True)
        announce("[serve] drained; bye")
        return 0

    return asyncio.run(_main())
