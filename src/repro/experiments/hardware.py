"""Hardware overheads: Figure 20 and Table 9 (§9.5)."""

from __future__ import annotations

from repro.experiments.runner import ExpTable, experiment
from repro.hw import rig_unit_area_breakdown, snic_overheads
from repro.hw.snic import snic_storage_bytes, snic_totals
from repro.hw.switch import crossbar_area_range_mm2, switch_overheads, switch_totals

PAPER_TABLE9 = {"Idx Buffer": 12, "Pend. PR Table": 53, "Prop. Buffer": 12,
                "LSQ": 10, "Rest": 13}


@experiment("fig20")
def run_fig20() -> ExpTable:
    """Figure 20: per-structure power and area of the SNIC extensions."""
    parts = snic_overheads()
    rows = []
    for name, cost in parts.items():
        rows.append([
            name,
            round(cost.area_mm2, 3),
            round(cost.static_w * 1000, 1),
            round(cost.dynamic_w * 1000, 1),
        ])
    total = snic_totals()
    rows.append(["TOTAL", round(total.area_mm2, 2),
                 round(total.static_w * 1000, 1),
                 round(total.dynamic_w * 1000, 1)])
    return ExpTable(
        exp_id="fig20",
        title="SNIC extension overheads at 10 nm",
        columns=["structure", "area mm^2", "static mW", "dynamic mW"],
        rows=rows,
        paper_note="Paper: combined 1.43 mm^2 / 2.1 W max; L2s dominate "
                   "area and static power, RIG Units dominate dynamic "
                   f"power; total storage ~3.5 MB (ours: "
                   f"{snic_storage_bytes() / 1e6:.2f} MB).",
    )


@experiment("table9")
def run_table9() -> ExpTable:
    """Table 9: contribution of each structure to RIG Unit area."""
    shares = rig_unit_area_breakdown()
    rows = [
        [name, round(share * 100), PAPER_TABLE9[name]]
        for name, share in shares.items()
    ]
    return ExpTable(
        exp_id="table9",
        title="RIG Unit area breakdown",
        columns=["structure", "area %", "paper %"],
        rows=rows,
        paper_note="The Pending PR Table CAM dominates.",
    )


@experiment("switch_overheads")
def run_switch_overheads() -> ExpTable:
    """§9.5 item 2: ToR switch extension overheads (text, not a figure)."""
    parts = switch_overheads()
    rows = [
        [name, round(c.area_mm2, 1), round(c.total_power_w, 2)]
        for name, c in parts.items()
    ]
    total = switch_totals()
    rows.append(["TOTAL", round(total.area_mm2, 1),
                 round(total.total_power_w, 2)])
    lo, hi = crossbar_area_range_mm2()
    return ExpTable(
        exp_id="switch_overheads",
        title="ToR switch extension overheads at 10 nm",
        columns=["structure", "area mm^2", "power W"],
        rows=rows,
        paper_note=f"Paper: caches 21.3 mm^2 + concatenators 1.5 mm^2, "
                   f"~10 W (4% of a Tofino2); second crossbar bounded at "
                   f"{lo:.0f}-{hi:.0f} mm^2 (1-15%).",
    )
