"""Resilience under injected faults (extension of §7's loss handling).

The paper handles packet loss with a per-operation watchdog (§7) but
never quantifies how NetSparse's *advantage* behaves when the cluster
degrades.  This experiment sweeps a canonical fault scenario
(:meth:`repro.faults.FaultPlan.scaled` — link loss + degradation, a
ToR failure window, dead RIG units, a property-cache flush and
stragglers, all scaled by one intensity knob) across the schemes and
reports NetSparse's speedup as a function of fault intensity.

Faults that hit the shared fabric (lossy links, failed switches,
stragglers) slow every scheme alike and cancel out of the speedup
ratio; faults that hit NetSparse-only hardware (RIG units, the
property cache) erode only its advantage — so the speedup column
decreases monotonically with intensity, and the gap between the
fault-free and full-intensity rows is exactly the price of depending
on in-network hardware.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.config import NetSparseConfig
from repro.experiments.runner import ExpTable, experiment
from repro.faults import FaultPlan
from repro.parallel import SimJob, simulate_many
from repro.sparse.suite import BENCHMARKS

__all__ = ["run_resilience", "degradation_report", "INTENSITIES"]

#: The canonical intensity sweep (0 = fault-free baseline).
INTENSITIES = (0.0, 0.25, 0.5, 0.75, 1.0)

_MATRICES = ("arabic", "queen")
_SCHEMES = ("netsparse", "saopt", "suopt")


def _gmean(values) -> float:
    arr = np.asarray(list(values), dtype=float)
    return float(np.exp(np.log(np.maximum(arr, 1e-30)).mean()))


@experiment("resilience")
def run_resilience(scale: str = "small", k: int = 16,
                   intensities: Sequence[float] = INTENSITIES,
                   matrices: Sequence[str] = _MATRICES,
                   seed: int = 7) -> ExpTable:
    """Speedup degradation under the scaled fault scenario.

    One :class:`~repro.parallel.SimJob` per (intensity, matrix,
    scheme); the fault plan rides in the job (and its cache digest) as
    canonical JSON, so faulty and fault-free results can never collide
    in the result cache.
    """
    cfg = NetSparseConfig()
    jobs, keys = [], []
    for i in intensities:
        plan = FaultPlan.scaled(float(i), seed=seed)
        fjson = None if plan.is_empty() else plan.canonical_json()
        for name in matrices:
            batch = BENCHMARKS[name].default_rig_batch
            for s in _SCHEMES:
                jobs.append(SimJob(
                    scheme=s, matrix=name, k=k, config=cfg,
                    scale_name=scale, seed=seed,
                    rig_batch=batch if s == "netsparse" else None,
                    faults=fjson,
                ))
                keys.append((float(i), name, s))
    results = dict(zip(keys, simulate_many(jobs)))

    rows = []
    for i in intensities:
        i = float(i)
        vs_su, vs_sa, ns_times, penalties = [], [], [], []
        for name in matrices:
            ns = results[(i, name, "netsparse")]
            sa = results[(i, name, "saopt")]
            su = results[(i, name, "suopt")]
            vs_su.append(su.total_time / ns.total_time)
            vs_sa.append(sa.total_time / ns.total_time)
            ns_times.append(ns.total_time)
            finfo = ns.extras.get("faults")
            penalties.append(finfo["max_factor"] if finfo else 1.0)
        rows.append([
            round(i, 2),
            round(_gmean(vs_su), 2),
            round(_gmean(vs_sa), 2),
            round(_gmean(ns_times) * 1e6, 2),
            round(_gmean(penalties), 3),
        ])
    return ExpTable(
        exp_id="resilience",
        title=f"Speedup vs fault intensity (K={k}, "
              f"gmean over {', '.join(matrices)})",
        columns=["intensity", "NS/SUOpt x", "NS/SAOpt x",
                 "NS time us", "NS penalty x"],
        rows=rows,
        paper_note="Extension: §7 only specifies loss *detection* "
                   "(watchdog + discard + reissue).  Shared-fabric "
                   "faults cancel out of the speedup ratio; only the "
                   "NetSparse-specific hardware faults (RIG units, "
                   "property cache) erode the advantage.",
        notes=["Fault scenario: FaultPlan.scaled(intensity) — lossy/"
               "degraded links, a ToR failure window, dead RIG units, "
               "a mid-run cache flush, and stragglers."],
    )


def degradation_report(table: ExpTable) -> str:
    """Render the resilience table as a markdown degradation report."""
    lines = [
        "# NetSparse degradation report",
        "",
        table.title + ".",
        "",
        "| " + " | ".join(table.columns) + " |",
        "|" + "|".join(["---:"] * len(table.columns)) + "|",
    ]
    for row in table.rows:
        lines.append("| " + " | ".join(str(v) for v in row) + " |")
    first, last = table.rows[0], table.rows[-1]
    if first[1]:
        retained = 100.0 * last[1] / first[1]
        lines += [
            "",
            f"At intensity {last[0]} NetSparse retains "
            f"{retained:.0f}% of its fault-free speedup over SUOpt "
            f"({last[1]}x of {first[1]}x).",
        ]
    if table.paper_note:
        lines += ["", f"*{table.paper_note}*"]
    lines.append("")
    return "\n".join(lines)
