"""Motivation-section experiments: Tables 1-4 and Figure 10 (§3, §8.1)."""

from __future__ import annotations

import numpy as np

from repro.baselines.software import saopt_goodput_curve
from repro.baselines.vanilla import vanilla_sa_transfer
from repro.config import NetSparseConfig
from repro.core.protocol import header_traffic_fraction
from repro.experiments.runner import ExpTable, experiment
from repro.partition import cached_partition
from repro.sparse.suite import MATRIX_NAMES, load_benchmark

PAPER_TABLE1_SU = {"arabic": 1947, "europe": 582, "queen": 74,
                   "stokes": 32, "uk": 966}
PAPER_TABLE1_SA = {"arabic": 27, "europe": 0.02, "queen": 25,
                   "stokes": 3.6, "uk": 4.5}
PAPER_TABLE4 = {"arabic": 2.51, "europe": 7.43, "queen": 1.00,
                "stokes": 1.85, "uk": 5.61}


@experiment("table1")
def run_table1(scale: str = "small", n_nodes: int = 128) -> ExpTable:
    """Table 1: useful-to-redundant property-transfer ratio, SU and SA."""
    rows = []
    for name in MATRIX_NAMES:
        mat = load_benchmark(name, scale)
        part = cached_partition(mat, n_nodes)
        traces = part.node_traces()
        remote = sum(int(t.remote.sum()) for t in traces)
        useful = sum(t.unique_remote_count() for t in traces)
        su_recv = sum(
            int(mat.n_cols - (part.col_starts[p + 1] - part.col_starts[p]))
            for p in range(n_nodes)
        )
        su_red = (su_recv - useful) / max(useful, 1)
        sa_red = (remote - useful) / max(useful, 1)
        rows.append([name, round(su_red, 2), round(sa_red, 2),
                     PAPER_TABLE1_SU[name], PAPER_TABLE1_SA[name]])
    return ExpTable(
        exp_id="table1",
        title="Redundant transfers per useful one (1:X), 128 nodes",
        columns=["matrix", "SU 1:X", "SA 1:X", "paper SU", "paper SA"],
        rows=rows,
        paper_note="SU averages ~720 redundant transfers per useful one.",
        notes=[
            "Absolute SU ratios shrink with the matrix downscaling "
            "(they scale with total columns / unique-needed); the "
            "cross-matrix ordering is the reproduced claim."
        ],
    )


@experiment("table2")
def run_table2(scale: str = "small") -> ExpTable:
    """Table 2: vanilla-SA transfer rate / line util / goodput, 2 nodes.

    The paper measured K=32 on Delta (Slingshot, 200 Gbps); the model
    uses the calibrated per-PR software cost on our 400 Gbps config, so
    utilization percentages are what carry over.
    """
    paper = {"arabic": (0.5, 0.26, 0.11), "europe": (0.2, 0.09, 0.04),
             "queen": (0.7, 0.36, 0.16), "uk": (0.5, 0.25, 0.11)}
    rows = []
    for name in ("arabic", "europe", "queen", "uk"):
        mat = load_benchmark(name, scale)
        res = vanilla_sa_transfer(mat, k=32, n_nodes=2)
        p = paper[name]
        rows.append([
            name,
            round(res.transfer_rate_gbps, 2),
            round(res.line_utilization * 100, 2),
            round(res.goodput * 100, 2),
            p[0], p[1], p[2],
        ])
    return ExpTable(
        exp_id="table2",
        title="Vanilla SA transfer metrics, 2 nodes, K=32",
        columns=["matrix", "rate Gbps", "line util %", "goodput %",
                 "paper Gbps", "paper util %", "paper gput %"],
        rows=rows,
        paper_note="Average measured line utilization was 0.24%.",
    )


@experiment("table3")
def run_table3() -> ExpTable:
    """Table 3: packet-header share of SA traffic vs property size K."""
    paper = {1: 97.6, 2: 95.2, 4: 90.9, 8: 83.3, 16: 71.4,
             32: 55.6, 64: 38.5, 128: 23.8, 256: 13.5}
    rows = [
        [k, round(header_traffic_fraction(k) * 100, 1), paper[k]]
        for k in sorted(paper)
    ]
    return ExpTable(
        exp_id="table3",
        title="Header contribution to total SA traffic (%)",
        columns=["K", "header %", "paper %"],
        rows=rows,
        paper_note="78 B of header per direction per PR pair.",
    )


@experiment("table4")
def run_table4(scale: str = "small", n_nodes: int = 128) -> ExpTable:
    """Table 4: unique destination nodes in 64 consecutive PRs."""
    rows = []
    for name in MATRIX_NAMES:
        mat = load_benchmark(name, scale)
        part = cached_partition(mat, n_nodes)
        uniq = []
        for tr in part.node_traces():
            d = tr.remote_owners
            for s in range(0, d.size - 64, 64):
                uniq.append(np.unique(d[s:s + 64]).size)
        avg = float(np.mean(uniq)) if uniq else 0.0
        rows.append([name, round(avg, 2), PAPER_TABLE4[name]])
    return ExpTable(
        exp_id="table4",
        title="Unique remote destinations per 64 consecutive PRs",
        columns=["matrix", "unique dests", "paper"],
        rows=rows,
        paper_note="queen is perfectly local (1.00); europe spreads most.",
    )


@experiment("fig10")
def run_fig10() -> ExpTable:
    """Figure 10: ideal SAOpt goodput (% of line rate) vs core count."""
    config = NetSparseConfig()
    cores = [1, 2, 4, 8, 16, 32, 64]
    rows = []
    for k in (16, 128):
        for n_cores, goodput in saopt_goodput_curve(cores, k, config):
            rows.append([k, n_cores, round(goodput * 100, 2)])
    return ExpTable(
        exp_id="fig10",
        title="Ideal SAOpt goodput vs cores in a node",
        columns=["K", "cores", "goodput %"],
        rows=rows,
        paper_note="Scales ~linearly with cores; far below 100% even at "
                   "64 high-performance cores (~10% at K=16).",
    )
