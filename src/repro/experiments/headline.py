"""Headline results: Figures 12-14, Table 7, Figure 19 (§9.1, §9.4)."""

from __future__ import annotations

import numpy as np

from repro.cluster.endtoend import end_to_end_time
from repro.experiments.runner import ExpTable, experiment, run_schemes
from repro.sparse.suite import MATRIX_NAMES


def _schemes(name: str, k: int, scale_name: str):
    # No lru_cache here any more: the execution engine's memo layer
    # dedupes repeats across *all* experiments, not just this module.
    return run_schemes(name, k, scale_name=scale_name)


PAPER_FIG12_GMEAN = {"netsparse": 33.0, "saopt": 33.0 / 15.0}
PAPER_TABLE7 = {
    # F+C %, PR/pkt, cache %, goodput %, util %, -traffic, SA gput %, -#PR
    "arabic": (97, 5.7, 26, 35, 65, 283, 1, 3.8),
    "europe": (8, 4.5, 5, 37, 70, 188, 10, 1.3),
    "queen": (95, 19.6, 50, 40, 66, 42, 11, 1.1),
    "stokes": (90, 12.1, 6, 38, 64, 17, 8, 4.4),
    "uk": (61, 17.0, 30, 30, 50, 271, 9, 2.6),
}
PAPER_FIG13 = {"suopt": 0.7, "saopt": 3.0, "netsparse": 38.0, "ideal": 72.0}


def _gmean(values) -> float:
    values = np.asarray(list(values), dtype=np.float64)
    return float(np.exp(np.log(values).mean()))


@experiment("fig12")
def run_fig12(scale: str = "small", ks=(1, 16, 128)) -> ExpTable:
    """Figure 12: communication speedup of NetSparse and SAOpt over SUOpt."""
    rows = []
    ns_speedups, sa_speedups = [], []
    for name in MATRIX_NAMES:
        for k in ks:
            r = _schemes(name, k, scale)
            ns = r["suopt"].total_time / r["netsparse"].total_time
            sa = r["suopt"].total_time / r["saopt"].total_time
            ns_speedups.append(ns)
            sa_speedups.append(sa)
            rows.append([name, k, round(ns, 1), round(sa, 2)])
    rows.append(["gmean", "-", round(_gmean(ns_speedups), 1),
                 round(_gmean(sa_speedups), 2)])
    return ExpTable(
        exp_id="fig12",
        title="Communication speedup over SUOpt (128 nodes)",
        columns=["matrix", "K", "NetSparse/SUOpt", "SAOpt/SUOpt"],
        rows=rows,
        paper_note="Paper gmean: NetSparse 33x over SUOpt, 15x over SAOpt; "
                   "speedups grow with K; SAOpt < SUOpt for stokes.",
    )


@experiment("table7")
def run_table7(scale: str = "small", k: int = 16) -> ExpTable:
    """Table 7: tail-node statistics for NetSparse (K=16)."""
    rows = []
    for name in MATRIX_NAMES:
        r = _schemes(name, k, scale)
        ns, sa, su = r["netsparse"], r["saopt"], r["suopt"]
        tail = ns.tail_node
        trfc = su.recv_wire_bytes[tail] / max(ns.tail_traffic_bytes(), 1)
        npr = sa.n_prs_issued / max(ns.n_prs_issued, 1)
        p = PAPER_TABLE7[name]
        rows.append([
            name,
            round(ns.fc_rate * 100),
            round(ns.avg_prs_per_packet, 1),
            round(ns.cache_hit_rate * 100),
            round(ns.goodput() * 100),
            round(ns.line_utilization() * 100),
            round(trfc),
            round(sa.goodput() * 100, 1),
            round(npr, 1),
            f"{p[0]}/{p[1]}/{p[2]}/{p[3]}/{p[4]}/{p[5]}/{p[6]}/{p[7]}",
        ])
    return ExpTable(
        exp_id="table7",
        title="Tail-node statistics, NetSparse, K=16",
        columns=["matrix", "F+C %", "PR/pkt", "$hit %", "gput %", "util %",
                 "-trfc vs SU", "SA gput %", "-#PR vs SA", "paper"],
        rows=rows,
        paper_note="paper column order matches ours: F+C/PRpkt/$/gput/util/"
                   "-trfc/SAgput/-#PR",
    )


@experiment("fig13")
def run_fig13(scale: str = "small", ks=(16, 128), overlap: float = 0.0) -> ExpTable:
    """Figure 13: end-to-end SpMM speedup of 128 nodes over one node."""
    rows = []
    agg = {"suopt": [], "saopt": [], "netsparse": [], "ideal": []}
    for name in MATRIX_NAMES:
        for k in ks:
            r = _schemes(name, k, scale)
            mat = r["matrix"]
            row = [name, k]
            for scheme in ("suopt", "saopt", "netsparse"):
                e2e = end_to_end_time(mat, k, r[scheme], overlap=overlap)
                row.append(round(e2e.speedup_over_single_node, 2))
                agg[scheme].append(e2e.speedup_over_single_node)
            ideal = end_to_end_time(mat, k, r["netsparse"],
                                    overlap=overlap).ideal_speedup
            agg["ideal"].append(ideal)
            row.append(round(ideal, 1))
            rows.append(row)
    rows.append([
        "gmean", "-",
        round(_gmean(agg["suopt"]), 2),
        round(_gmean(agg["saopt"]), 2),
        round(_gmean(agg["netsparse"]), 1),
        round(_gmean(agg["ideal"]), 1),
    ])
    return ExpTable(
        exp_id="fig13",
        title="End-to-end SpMM speedup over a single node (SPADE compute)",
        columns=["matrix", "K", "SUOpt", "SAOpt", "NetSparse", "ideal"],
        rows=rows,
        paper_note="Paper averages: SUOpt 0.7x, SAOpt 3x, NetSparse 38x, "
                   "ideal (no communication) 72x.",
    )


@experiment("fig14")
def run_fig14(scale: str = "small", k: int = 16) -> ExpTable:
    """Figure 14: communication-to-computation time ratio per matrix."""
    rows = []
    for name in MATRIX_NAMES:
        r = _schemes(name, k, scale)
        mat = r["matrix"]
        sa = end_to_end_time(mat, k, r["saopt"])
        ns = end_to_end_time(mat, k, r["netsparse"])
        rows.append([
            name,
            round(sa.comm_to_comp_ratio, 2),
            round(ns.comm_to_comp_ratio, 2),
        ])
    return ExpTable(
        exp_id="fig14",
        title="Communication / computation ratio (K=16)",
        columns=["matrix", "SAOpt comm/comp", "NetSparse comm/comp"],
        rows=rows,
        paper_note="SAOpt is dominated by communication; with NetSparse "
                   "communication becomes comparable to accelerated compute "
                   "for arabic/queen/uk, with remaining headroom for "
                   "europe and stokes.",
    )


@experiment("fig19")
def run_fig19(scale: str = "small", k: int = 16, n_points: int = 11) -> ExpTable:
    """Figure 19: active (still-communicating) nodes vs normalized time."""
    rows = []
    for name in MATRIX_NAMES:
        r = _schemes(name, k, scale)
        ns = r["netsparse"]
        t, active = ns.active_nodes_over_time(n_points)
        t_norm = t / t[-1] if t[-1] else t
        for frac, n_active in zip(t_norm, active):
            rows.append([name, round(float(frac), 2), int(n_active)])
    return ExpTable(
        exp_id="fig19",
        title="Inter-node communication imbalance (active nodes vs time)",
        columns=["matrix", "t / t_max", "active nodes"],
        rows=rows,
        paper_note="All matrices except queen show significant imbalance: "
                   "a long tail of few active nodes.",
    )
