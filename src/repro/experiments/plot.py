"""Dependency-free ASCII rendering of experiment figures.

The paper's figures are bar/line charts; for terminal-first workflows
(and CI logs) this module renders an :class:`ExpTable`'s series as
horizontal ASCII bars.  Matplotlib is deliberately not required.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from repro.experiments.runner import ExpTable

__all__ = ["ascii_bars", "render_figure"]


def ascii_bars(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 50,
    log_scale: bool = False,
    unit: str = "",
) -> str:
    """Render one bar per (label, value), scaled to ``width`` chars."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    if not labels:
        return "(empty)"
    if any(v < 0 for v in values):
        raise ValueError("bar values must be nonnegative")
    if log_scale:
        scaled = [math.log10(v + 1.0) for v in values]
    else:
        scaled = list(values)
    top = max(scaled) or 1.0
    label_w = max(len(str(lb)) for lb in labels)
    lines = []
    for label, value, s in zip(labels, values, scaled):
        bar = "#" * max(int(round(s / top * width)), 1 if value > 0 else 0)
        lines.append(
            f"{str(label).rjust(label_w)} | {bar.ljust(width)} "
            f"{value:g}{unit}"
        )
    return "\n".join(lines)


def render_figure(
    table: ExpTable,
    label_col: str,
    value_col: str,
    group_col: Optional[str] = None,
    width: int = 40,
    log_scale: bool = False,
) -> str:
    """Render an experiment table as one ASCII chart (or one per group).

    ``group_col`` splits the rows into sub-charts (e.g. one per K).
    """
    out: List[str] = [f"== {table.exp_id}: {table.title} =="]
    if group_col is None:
        out.append(
            ascii_bars(table.column(label_col), table.column(value_col),
                       width=width, log_scale=log_scale)
        )
    else:
        groups = []
        for g in table.column(group_col):
            if g not in groups:
                groups.append(g)
        li = table.columns.index(label_col)
        vi = table.columns.index(value_col)
        gi = table.columns.index(group_col)
        for g in groups:
            rows = [r for r in table.rows if r[gi] == g]
            out.append(f"-- {group_col} = {g} --")
            out.append(
                ascii_bars([r[li] for r in rows], [r[vi] for r in rows],
                           width=width, log_scale=log_scale)
            )
    if table.paper_note:
        out.append(f"[paper] {table.paper_note}")
    return "\n".join(out)
