"""Experiment harness: one runnable per table/figure of the paper.

Every experiment returns an :class:`~repro.experiments.runner.ExpTable`
(rows + columns + the paper's reference values) and is registered under
its paper id, so::

    from repro.experiments import run_experiment
    print(run_experiment("table1").format())

regenerates Table 1.  The CLI (``python -m repro.cli``) and the
benchmark suite both drive this registry.
"""

from repro.experiments.runner import (
    EXPERIMENTS,
    ExpTable,
    list_experiments,
    run_experiment,
)

# Importing the modules populates the registry.
from repro.experiments import (  # noqa: F401  (registration side effects)
    ablation,
    collectives,
    extensions,
    hardware,
    headline,
    motivation,
    other,
    resilience,
    sensitivity,
)

__all__ = ["EXPERIMENTS", "ExpTable", "list_experiments", "run_experiment"]
