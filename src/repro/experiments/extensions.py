"""Extension experiments beyond the paper's numbered artifacts.

- ``sharing``                — the §3 intra-rack sharing claim ("85% of
  PRs are for properties useful to more than one node in the group").
- ``des_validation``         — packet-level DES vs the trace model.
- ``concat_virtualization``  — §7.2's virtualized CQs: SRAM vs packing.
- ``autotune``               — §9.4 future work: dynamic RIG batch
  sizing vs the paper's static choices.
- ``spgemm_preview``         — §11 future work: SpGeMM communication.
- ``iterative``              — multi-iteration kernels with GNN-style
  edge sampling (§2.1).
"""

from __future__ import annotations

import numpy as np

from repro.analysis import rack_sharing_fraction, working_set_sizes
from repro.cluster import build_cluster_topology
from repro.cluster.iterative import run_iterations
from repro.config import NetSparseConfig
from repro.core.autotune import tune_rig_batch
from repro.core.concat_virtual import VirtualConcatenator
from repro.core.concat import DelayQueueConcatenator
from repro.dessim import run_des_gather
from repro.experiments.runner import ExpTable, experiment
from repro.parallel import SimJob, simulate, simulate_many
from repro.partition import cached_partition, col_owner_array
from repro.sim import Simulator
from repro.sparse.spgemm import spgemm_comm_analysis
from repro.sparse.suite import (
    BENCHMARKS,
    MATRIX_NAMES,
    load_benchmark,
    scale_factor,
)


@experiment("sharing")
def run_sharing(scale: str = "small", n_nodes: int = 128,
                nodes_per_rack: int = 16) -> ExpTable:
    """§3's sharing claim: fraction of useful PRs wanted by >1 node of
    the same rack, plus the rack working set that sizes the cache."""
    rows = []
    for name in MATRIX_NAMES:
        mat = load_benchmark(name, scale)
        part = cached_partition(mat, n_nodes)
        frac = rack_sharing_fraction(mat, n_nodes, nodes_per_rack,
                                     partition=part)
        ws = working_set_sizes(mat, n_nodes, nodes_per_rack,
                               property_bytes=64, partition=part)
        rows.append([name, round(frac * 100, 1),
                     round(float(ws.mean()) / 1024, 1)])
    avg = float(np.mean([r[1] for r in rows]))
    rows.append(["mean", round(avg, 1), "-"])
    return ExpTable(
        exp_id="sharing",
        title="Intra-rack property sharing potential (K=16)",
        columns=["matrix", "shared PRs %", "rack working set KB"],
        rows=rows,
        paper_note="Paper: on average 85% of PRs are for properties "
                   "useful to more than one node in the same group of 16.",
    )


@experiment("des_validation")
def run_des_validation(scale: str = "tiny", k: int = 16) -> ExpTable:
    """Cross-validate the vectorized trace model against the
    packet-level DES on small clusters (2 racks x 4 nodes)."""
    rows = []
    cfg = NetSparseConfig(n_nodes=8, n_racks=2, nodes_per_rack=4)
    for name in ("arabic", "queen", "europe"):
        mat = load_benchmark(name, "tiny")
        des = run_des_gather(mat, k, n_racks=2, nodes_per_rack=4)
        trace = simulate(
            "netsparse", name, k, config=cfg, scale_name="tiny", scale=0.01,
            topology=("leafspine", 2, 4, 1),
        )
        des_bytes = des.host_down_bytes.sum()
        trace_bytes = trace.recv_wire_bytes.sum()
        rows.append([
            name,
            des.issued_prs,
            trace.n_prs_issued,
            round(des_bytes / 1024, 1),
            round(trace_bytes / 1024, 1),
            round(des_bytes / max(trace_bytes, 1), 2),
        ])
    return ExpTable(
        exp_id="des_validation",
        title="Packet-level DES vs trace model (8 nodes)",
        columns=["matrix", "DES PRs", "trace PRs", "DES KB", "trace KB",
                 "byte ratio"],
        rows=rows,
        paper_note="The two independent implementations must agree on "
                   "delivered sets exactly (asserted in tests) and on "
                   "traffic within a small factor (different in-flight "
                   "timing).",
    )


@experiment("concat_virtualization")
def run_concat_virtualization() -> ExpTable:
    """§7.2: fixed-pool virtualized CQs vs per-destination CQs.

    Streams a destination-local PR trace through both designs at
    several pool sizes and reports packets emitted (packing quality)
    and peak physical-queue usage (SRAM).
    """
    rng = np.random.default_rng(0)
    # 128 possible destinations with temporal locality (runs of the
    # same destination), as Table 4 measures.
    runs = rng.integers(0, 128, size=4000)
    dests = np.repeat(runs, rng.integers(1, 6, size=runs.size))[:12000]

    def drive(cq):
        sim = cq.sim
        packets = []
        cq.on_emit = lambda prs, d, t: packets.append(len(prs))

        def feeder():
            for d in dests:
                cq.push("pr", dest=int(d), pr_type="read")
                yield sim.timeout(1e-9)

        sim.process(feeder())
        sim.run()
        cq.flush()
        return packets

    rows = []
    sim = Simulator()
    dedicated = DelayQueueConcatenator(sim, max_prs_per_packet=17,
                                       delay=2e-7, on_emit=lambda *a: None)
    pkts = drive(dedicated)
    rows.append(["dedicated (2*127 CQs)", len(pkts),
                 round(len(dests) / len(pkts), 2), 127 * 17, "-"])
    for n_phys in (256, 64, 16):
        sim = Simulator()
        vc = VirtualConcatenator(sim, max_prs_per_packet=17, delay=2e-7,
                                 on_emit=lambda *a: None,
                                 n_physical=n_phys,
                                 physical_capacity_prs=4)
        pkts = drive(vc)
        rows.append([
            f"virtual pool={n_phys}", len(pkts),
            round(len(dests) / len(pkts), 2),
            n_phys * 4,
            vc.stats_early_flushes,
        ])
    return ExpTable(
        exp_id="concat_virtualization",
        title="Virtualized CQs: packing vs SRAM (12k-PR trace)",
        columns=["design", "packets", "PRs/packet", "SRAM (PR slots)",
                 "early flushes"],
        rows=rows,
        paper_note="The paper sketches virtualization to decouple "
                   "concatenation SRAM from cluster size; packing "
                   "degrades gracefully as the pool shrinks.",
    )


@experiment("autotune")
def run_autotune(scale: str = "small", k: int = 16) -> ExpTable:
    """§9.4 future work: dynamic RIG batch sizing.

    The controller probes the cluster model (a stand-in for a warm-up
    iteration) and is compared against the paper's static per-matrix
    defaults.
    """
    cfg = NetSparseConfig()
    rows = []
    for name in MATRIX_NAMES:
        static_batch = BENCHMARKS[name].default_rig_batch

        def evaluate(batch):
            # Adaptive probing is inherently sequential, but routing
            # each probe through the engine memoizes it on disk.
            return simulate("netsparse", name, k, config=cfg,
                            scale_name=scale, rig_batch=batch).total_time

        def evaluate_many(batches):
            # Whole probe rounds go through the engine as one batch, so
            # the planner fuses them into a single-pass group (and a
            # parallel engine fans independent probes out).
            jobs = [
                SimJob(scheme="netsparse", matrix=name, k=k, config=cfg,
                       scale_name=scale, rig_batch=batch)
                for batch in batches
            ]
            return [r.total_time for r in simulate_many(jobs)]

        static_time = evaluate(static_batch)
        tuned = tune_rig_batch(evaluate, evaluate_many=evaluate_many)
        rows.append([
            name, static_batch, tuned.best_batch,
            round(static_time / tuned.best_time, 3),
            tuned.n_evaluations,
        ])
    return ExpTable(
        exp_id="autotune",
        title="Dynamic vs static RIG batch size (K=16)",
        columns=["matrix", "static batch", "tuned batch",
                 "speedup vs static", "probes"],
        rows=rows,
        paper_note="The paper notes its static choices are often "
                   "non-optimal and proposes dynamic adjustment; the "
                   "probe-based controller recovers that headroom.",
    )


@experiment("spgemm_preview")
def run_spgemm_preview(scale: str = "tiny") -> ExpTable:
    """§11 future work: SpGeMM (two sparse operands) communication."""
    rows = []
    for name in ("arabic", "uk", "queen"):
        a = load_benchmark(name, scale)
        b = load_benchmark(name, scale, seed=13)
        stats = spgemm_comm_analysis(a, b, n_nodes=32)
        rows.append([
            name,
            stats.row_requests,
            stats.unique_row_requests,
            round(stats.fc_rate * 100, 1),
            round(stats.su_overfetch, 1),
            stats.max_row_bytes,
        ])
    return ExpTable(
        exp_id="spgemm_preview",
        title="SpGeMM row-request communication (A@B, both sparse)",
        columns=["matrix", "row requests", "unique", "F+C %",
                 "SU overfetch x", "max row B"],
        rows=rows,
        paper_note="The same idx reuse NetSparse filters in SpMM exists "
                   "in SpGeMM row requests; variable row sizes motivate "
                   "the segmented cache's tiling mode.",
    )


@experiment("iterative")
def run_iterative(scale: str = "small", k: int = 16,
                  n_iterations: int = 4) -> ExpTable:
    """Multi-iteration kernels with per-iteration edge sampling (§2.1:
    'the structure of the sparse matrix may change')."""
    cfg = NetSparseConfig()
    topo = build_cluster_topology(cfg)
    rows = []
    for name in ("arabic", "queen"):
        mat = load_benchmark(name, scale)
        sc = scale_factor(name, mat)
        batch = BENCHMARKS[name].default_rig_batch
        for frac in (1.0, 0.5, 0.25):
            res = run_iterations(mat, k, n_iterations, cfg, topo,
                                 sample_fraction=frac, scale=sc,
                                 rig_batch=batch)
            rows.append([
                name, frac,
                round(res.mean_time * 1e6, 2),
                round(res.time_cv * 100, 1),
                round(res.total_wire_bytes / 1e6, 2),
            ])
    return ExpTable(
        exp_id="iterative",
        title=f"{n_iterations}-iteration kernels with edge sampling",
        columns=["matrix", "keep frac", "mean iter us", "time CV %",
                 "total wire MB"],
        rows=rows,
        paper_note="Sampling shrinks per-iteration traffic and adds "
                   "iteration-to-iteration jitter; filter/cache state "
                   "resets each iteration (control-plane reconfigure).",
    )


@experiment("cache_policy")
def run_cache_policy(scale: str = "small", k: int = 16) -> ExpTable:
    """Replacement-policy ablation for the Property Cache.

    The paper fixes LRU (Table 5); this quantifies what that choice is
    worth against FIFO and random replacement on each rack's real
    merged PR stream.
    """
    from repro.core.pcache import PropertyCache

    rows = []
    cfg = NetSparseConfig()
    for name in ("arabic", "uk", "queen"):
        mat = load_benchmark(name, scale)
        sc = scale_factor(name, mat)
        part = cached_partition(mat, cfg.n_nodes)
        traces = part.node_traces()
        # Rack 0's merged stream (the trace model's cache input).
        members = range(cfg.nodes_per_rack)
        streams = [
            (np.nonzero(traces[m].remote)[0], traces[m].remote_idxs)
            for m in members
        ]
        pos = np.concatenate([s[0] for s in streams])
        idx = np.concatenate([s[1] for s in streams])
        order = np.argsort(pos, kind="stable")
        stream = idx[order]
        hit_rates = []
        for policy in PropertyCache.POLICIES:
            cache = PropertyCache(
                capacity_bytes=max(int(cfg.pcache_bytes * sc), 1024),
                ways=cfg.pcache_ways, policy=policy,
            )
            cache.configure(cfg.property_bytes(k))
            for i in stream.tolist():
                if not cache.lookup(i):
                    cache.insert(i)
            hit_rates.append(cache.stats.hit_rate)
        rows.append([name] + [round(h * 100, 1) for h in hit_rates])
    return ExpTable(
        exp_id="cache_policy",
        title="Property Cache replacement policy (rack-0 stream, K=16)",
        columns=["matrix", "LRU hit %", "FIFO hit %", "random hit %"],
        rows=rows,
        paper_note="The paper's design uses LRU; this ablation measures "
                   "the margin over simpler policies on real PR streams.",
    )


@experiment("scaling")
def run_scaling(scale: str = "small", k: int = 16,
                node_counts=(16, 32, 64, 128)) -> ExpTable:
    """Communication speedup of NetSparse over SUOpt as the cluster
    grows (the strong-scaling view behind Figure 13's endpoints)."""
    jobs, keys = [], []
    for name in ("arabic", "europe", "queen"):
        batch = BENCHMARKS[name].default_rig_batch
        for n in node_counts:
            racks = max(n // 16, 1)
            per_rack = n // racks
            cfg = NetSparseConfig(n_nodes=n, n_racks=racks,
                                  nodes_per_rack=per_rack)
            topo_spec = ("leafspine", racks, per_rack, min(8, racks * 2))
            jobs.append(SimJob(scheme="netsparse", matrix=name, k=k,
                               config=cfg, scale_name=scale,
                               rig_batch=batch, topology=topo_spec))
            keys.append((name, n, "netsparse"))
            jobs.append(SimJob(scheme="suopt", matrix=name, k=k,
                               config=cfg, scale_name=scale))
            keys.append((name, n, "suopt"))
    results = dict(zip(keys, simulate_many(jobs)))
    rows = []
    for name in ("arabic", "europe", "queen"):
        for n in node_counts:
            ns = results[(name, n, "netsparse")]
            su = results[(name, n, "suopt")]
            rows.append([name, n,
                         round(su.total_time / ns.total_time, 1),
                         round(ns.total_time * 1e6, 2)])
    return ExpTable(
        exp_id="scaling",
        title="NetSparse vs SUOpt across cluster sizes (K=16)",
        columns=["matrix", "nodes", "NS/SU speedup", "NS time us"],
        rows=rows,
        paper_note="SU broadcasts the whole array regardless of N, so "
                   "its gap to sparsity-aware hardware widens with "
                   "cluster size.",
    )


@experiment("hybrid_baseline")
def run_hybrid_baseline(scale: str = "small", k: int = 16) -> ExpTable:
    """The Two-Face-style hybrid SU/SA software baseline (paper ref
    [11]) against SUOpt, SAOpt and NetSparse."""
    cfg = NetSparseConfig()
    schemes = ("suopt", "saopt", "hybrid", "netsparse")
    jobs = [
        SimJob(scheme=s, matrix=name, k=k, config=cfg, scale_name=scale,
               rig_batch=(BENCHMARKS[name].default_rig_batch
                          if s == "netsparse" else None))
        for name in MATRIX_NAMES for s in schemes
    ]
    results = dict(zip(
        ((j.matrix, j.scheme) for j in jobs), simulate_many(jobs)
    ))
    rows = []
    for name in MATRIX_NAMES:
        su = results[(name, "suopt")]
        sa = results[(name, "saopt")]
        hy = results[(name, "hybrid")]
        ns = results[(name, "netsparse")]
        rows.append([
            name,
            round(su.total_time / hy.total_time, 2),
            round(sa.total_time / hy.total_time, 2),
            round(hy.total_time / ns.total_time, 1),
            hy.extras["threshold"],
            hy.extras["n_su_columns"],
        ])
    return ExpTable(
        exp_id="hybrid_baseline",
        title="Hybrid SU/SA software baseline (Two-Face style, K=16)",
        columns=["matrix", "hybrid/SUOpt x", "hybrid/SAOpt x",
                 "NS over hybrid x", "threshold", "SU columns"],
        rows=rows,
        paper_note="The strongest software baseline: popular columns "
                   "ride collectives, the sparse tail rides SA.  "
                   "NetSparse still wins by removing the per-PR "
                   "software costs entirely.",
    )


@experiment("comm_energy")
def run_comm_energy(scale: str = "small", k: int = 16) -> ExpTable:
    """Communication energy per kernel across schemes (extension).

    Traffic reductions translate into network energy; per-PR software
    costs translate into CPU energy.
    """
    from repro.hw.energy import communication_energy

    cfg = NetSparseConfig()
    rows = []
    for name in MATRIX_NAMES:
        batch = BENCHMARKS[name].default_rig_batch
        schemes = ("suopt", "saopt", "netsparse")
        jobs = [
            SimJob(scheme=s, matrix=name, k=k, config=cfg,
                   scale_name=scale,
                   rig_batch=batch if s == "netsparse" else None)
            for s in schemes
        ]
        results = dict(zip(schemes, simulate_many(jobs)))
        energies = {
            s: communication_energy(r, cfg) for s, r in results.items()
        }
        ns = energies["netsparse"].total_j
        rows.append([
            name,
            round(energies["suopt"].total_j * 1e3, 3),
            round(energies["saopt"].total_j * 1e3, 3),
            round(ns * 1e3, 4),
            round(energies["suopt"].total_j / max(ns, 1e-18)),
            round(energies["saopt"].total_j / max(ns, 1e-18), 1),
        ])
    return ExpTable(
        exp_id="comm_energy",
        title="Communication energy per iteration (mJ, K=16)",
        columns=["matrix", "SUOpt mJ", "SAOpt mJ", "NetSparse mJ",
                 "vs SU x", "vs SA x"],
        rows=rows,
        paper_note="Extension: Table 7's traffic reductions compound "
                   "with the removal of per-PR CPU work into large "
                   "energy savings.",
    )


@experiment("latency_profile")
def run_latency_profile() -> ExpTable:
    """Per-PR round-trip latency percentiles from the packet-level DES
    (extension: the trace model is throughput-only)."""
    from repro.dessim import DesCluster

    rows = []
    for name in ("arabic", "queen"):
        mat = load_benchmark(name, "tiny")
        part = cached_partition(mat, 8)
        cluster = DesCluster(n_racks=2, nodes_per_rack=4, k=16,
                             n_cols=mat.n_cols,
                             col_owner=col_owner_array(part),
                             probe_latency=True)
        idxs = {
            node: tr.remote_idxs.tolist()
            for node, tr in enumerate(part.node_traces())
            if tr.remote.any()
        }
        res = cluster.run_gather(idxs)
        lat = res.extras["latency"]
        rows.append([
            name,
            lat.count,
            round(lat.p50 * 1e6, 2),
            round(lat.p90 * 1e6, 2),
            round(lat.p99 * 1e6, 2),
            round(lat.max * 1e6, 2),
        ])
    return ExpTable(
        exp_id="latency_profile",
        title="PR round-trip latency (packet-level DES, 8 nodes)",
        columns=["matrix", "PRs", "p50 us", "p90 us", "p99 us", "max us"],
        rows=rows,
        paper_note="Concatenation delay-queues and fabric queueing set "
                   "the tail; zero-load RTT on this fabric is ~2.4-5.4 us.",
    )


@experiment("partitioning")
def run_partitioning(scale: str = "small", k: int = 16) -> ExpTable:
    """§9.4 future work: nnz-balanced vs equal-rows 1D partitioning.

    The paper attributes the residual gap to ideal scaling to
    inter-node imbalance "not a consequence of the NetSparse hardware,
    but of the way the sparse matrix is partitioned".  This experiment
    swaps in a nonzero-balanced contiguous partition and measures what
    it recovers.
    """
    cfg = NetSparseConfig()
    rows = []
    for name in MATRIX_NAMES:
        mat = load_benchmark(name, scale)
        batch = BENCHMARKS[name].default_rig_batch
        results = {}
        imbalance = {}
        e2e = {}
        for label, part in (
            ("rows", cached_partition(mat, cfg.n_nodes)),
            ("nnz", cached_partition(mat, cfg.n_nodes, kind="nnz")),
        ):
            nnz = part.node_nnz()
            imbalance[label] = float(nnz.max() / max(nnz.mean(), 1))
            comm = simulate(
                "netsparse", name, k, config=cfg, scale_name=scale,
                rig_batch=batch, partition=label,
            )
            results[label] = comm
            # End to end: per-node compute on this partition + comm.
            from repro.accel.spade import spmm_compute_time

            compute = max(
                spmm_compute_time(
                    tr.n_nonzeros,
                    len(part.rows_of(node)),
                    int(np.unique(tr.idxs).size) if tr.idxs.size else 0,
                    k,
                )
                for node, tr in enumerate(part.node_traces())
            )
            e2e[label] = compute + comm.total_time
        rows.append([
            name,
            round(imbalance["rows"], 2),
            round(imbalance["nnz"], 2),
            round(results["rows"].total_time
                  / results["nnz"].total_time, 2),
            round(e2e["rows"] / e2e["nnz"], 2),
        ])
    return ExpTable(
        exp_id="partitioning",
        title="Equal-rows vs nnz-balanced 1D partitioning (K=16)",
        columns=["matrix", "rows imbalance", "nnz imbalance",
                 "comm speedup", "end-to-end speedup"],
        rows=rows,
        paper_note="The paper's Fig. 19 imbalance stems from "
                   "partitioning.  Balancing nonzeros fixes compute "
                   "imbalance (large end-to-end wins on skewed crawls) "
                   "but can worsen *traffic* balance — the tension the "
                   "future-work pointer has to resolve.",
    )
