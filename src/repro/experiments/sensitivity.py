"""Sensitivity studies: Figures 15-18 (§9.3).

Each figure's sweep is embarrassingly parallel, so it is expressed as
one batch of :class:`~repro.parallel.SimJob` records and handed to the
execution engine in a single call — duplicate design points (the
reference configuration is usually also a sweep point) are computed
once, and every point is memoized in the result cache.
"""

from __future__ import annotations

from dataclasses import replace

from repro.config import NetSparseConfig
from repro.experiments.runner import ExpTable, experiment
from repro.parallel import SimJob, simulate_many
from repro.sparse.suite import BENCHMARKS, MATRIX_NAMES


def _sweep(specs, k, scale):
    """Run ``[(name, config, rig_batch), ...]`` as one engine batch and
    return ``{spec: total_time}``."""
    jobs = [
        SimJob(scheme="netsparse", matrix=name, k=k, config=cfg,
               scale_name=scale, rig_batch=batch)
        for name, cfg, batch in specs
    ]
    results = simulate_many(jobs)
    return {spec: res.total_time for spec, res in zip(specs, results)}


@experiment("fig15")
def run_fig15(scale: str = "small", k: int = 16,
              batches=(1024, 4 * 1024, 16 * 1024, 64 * 1024, 256 * 1024,
                       1024 * 1024)) -> ExpTable:
    """Figure 15: sensitivity to RIG batch size (paper-scale nonzeros).

    Speedups are relative to a 16k batch, as in the paper.
    """
    cfg = NetSparseConfig()
    ref_batch = 16 * 1024
    specs = [
        (name, cfg, batch)
        for name in MATRIX_NAMES
        for batch in (ref_batch,) + tuple(batches)
    ]
    times = _sweep(specs, k, scale)
    rows = []
    for name in MATRIX_NAMES:
        ref = times[(name, cfg, ref_batch)]
        for batch in batches:
            rows.append([name, batch, round(ref / times[(name, cfg, batch)], 3)])
    return ExpTable(
        exp_id="fig15",
        title="Speedup vs RIG batch size (relative to 16k batch)",
        columns=["matrix", "batch nnz", "speedup vs 16k"],
        rows=rows,
        paper_note="Small batches pay host command overhead; huge batches "
                   "lose unit parallelism: the best size is interior and "
                   "input-dependent.",
    )


@experiment("fig16")
def run_fig16(scale: str = "small", k: int = 16,
              unit_counts=(2, 4, 8, 16, 32, 64)) -> ExpTable:
    """Figure 16: sensitivity to the number of RIG Units.

    Speedup is over the 2-unit (1 client + 1 server) configuration.
    """
    cfgs = {units: NetSparseConfig(n_rig_units=units)
            for units in set(unit_counts) | {2}}
    specs = [
        (name, cfgs[units], BENCHMARKS[name].default_rig_batch)
        for name in MATRIX_NAMES
        for units in (2,) + tuple(unit_counts)
    ]
    times = _sweep(specs, k, scale)
    rows = []
    for name in MATRIX_NAMES:
        batch = BENCHMARKS[name].default_rig_batch
        base = times[(name, cfgs[2], batch)]
        for units in unit_counts:
            rows.append([name, units,
                         round(base / times[(name, cfgs[units], batch)], 2)])
    return ExpTable(
        exp_id="fig16",
        title="Speedup vs number of RIG Units (relative to 2 units)",
        columns=["matrix", "RIG units", "speedup vs 2"],
        rows=rows,
        paper_note="Speedups grow until 32 units (the default), then "
                   "plateau.",
    )


@experiment("fig17")
def run_fig17(scale: str = "small", k: int = 16,
              delays=(0, 100, 500, 2000, 10_000, 50_000)) -> ExpTable:
    """Figure 17: sensitivity to concatenation delay cycles.

    Speedups are over no concatenation (delay 0 == concat disabled).
    """
    no_concat = NetSparseConfig().with_features(
        concat_nic=False, concat_switch=False
    )
    cfgs = {
        delay: replace(
            NetSparseConfig(),
            concat_delay_cycles_nic=delay,
            concat_delay_cycles_switch=max(delay // 4, 1),
        )
        for delay in delays if delay != 0
    }
    cfgs[0] = no_concat
    specs = [
        (name, cfgs[delay], BENCHMARKS[name].default_rig_batch)
        for name in MATRIX_NAMES
        for delay in (0,) + tuple(d for d in delays if d != 0)
    ]
    times = _sweep(specs, k, scale)
    rows = []
    for name in MATRIX_NAMES:
        batch = BENCHMARKS[name].default_rig_batch
        base = times[(name, no_concat, batch)]
        for delay in delays:
            if delay == 0:
                rows.append([name, 0, 1.0])
                continue
            rows.append([name, delay,
                         round(base / times[(name, cfgs[delay], batch)], 3)])
    return ExpTable(
        exp_id="fig17",
        title="Speedup vs concatenation delay cycles (over no concat)",
        columns=["matrix", "delay cycles", "speedup vs none"],
        rows=rows,
        paper_note="More delay concatenates more PRs until the delay-queue "
                   "SRAM backpressure makes huge delays worse than no "
                   "concatenation; queen (best destination locality) "
                   "benefits most.",
    )


@experiment("fig18")
def run_fig18(scale: str = "small", k: int = 16,
              sizes_mb=(0, 2, 8, 32, 128, -1)) -> ExpTable:
    """Figure 18: speedup vs Property Cache size (-1 = infinite).

    Sizes are paper-scale MB per switch (scaled like the matrices).
    """
    def cfg_for(mb):
        if mb == 0:
            return NetSparseConfig().with_features(property_cache=False)
        if mb < 0:
            return replace(NetSparseConfig(),
                           pcache_bytes=1 << 40)  # effectively infinite
        return replace(NetSparseConfig(), pcache_bytes=mb * 1024 * 1024)

    cfgs = {mb: cfg_for(mb) for mb in sizes_mb}
    base_cfg = cfg_for(0)
    specs = [
        (name, cfg, BENCHMARKS[name].default_rig_batch)
        for name in MATRIX_NAMES
        for cfg in (base_cfg,) + tuple(cfgs[mb] for mb in sizes_mb)
    ]
    times = _sweep(specs, k, scale)
    rows = []
    for name in MATRIX_NAMES:
        batch = BENCHMARKS[name].default_rig_batch
        base = times[(name, base_cfg, batch)]
        for mb in sizes_mb:
            label = "inf" if mb < 0 else mb
            rows.append([name, label,
                         round(base / times[(name, cfgs[mb], batch)], 3)])
    return ExpTable(
        exp_id="fig18",
        title="Speedup vs Property Cache size (over no cache)",
        columns=["matrix", "size MB (paper scale)", "speedup vs none"],
        rows=rows,
        paper_note="Caching helps arabic most (paper: up to 40%) and "
                   "stokes not at all, at any size; 32 MB is near the "
                   "saturation point for most matrices.",
    )
