"""Sensitivity studies: Figures 15-18 (§9.3)."""

from __future__ import annotations

from dataclasses import replace

from repro.config import NetSparseConfig
from repro.cluster import build_cluster_topology, simulate_netsparse
from repro.experiments.runner import ExpTable, experiment
from repro.sparse.suite import BENCHMARKS, MATRIX_NAMES, load_benchmark, scale_factor


def _run(name, k, cfg, batch, topo=None, **kw):
    mat = load_benchmark(name, kw.pop("scale_name", "small"))
    sc = scale_factor(name, mat)
    topo = topo or build_cluster_topology(cfg)
    return simulate_netsparse(mat, k, cfg, topo, rig_batch=batch, scale=sc,
                              **kw)


@experiment("fig15")
def run_fig15(scale: str = "small", k: int = 16,
              batches=(1024, 4 * 1024, 16 * 1024, 64 * 1024, 256 * 1024,
                       1024 * 1024)) -> ExpTable:
    """Figure 15: sensitivity to RIG batch size (paper-scale nonzeros).

    Speedups are relative to a 16k batch, as in the paper.
    """
    cfg = NetSparseConfig()
    topo = build_cluster_topology(cfg)
    rows = []
    for name in MATRIX_NAMES:
        ref = _run(name, k, cfg, 16 * 1024, topo).total_time
        for batch in batches:
            t = _run(name, k, cfg, batch, topo).total_time
            rows.append([name, batch, round(ref / t, 3)])
    return ExpTable(
        exp_id="fig15",
        title="Speedup vs RIG batch size (relative to 16k batch)",
        columns=["matrix", "batch nnz", "speedup vs 16k"],
        rows=rows,
        paper_note="Small batches pay host command overhead; huge batches "
                   "lose unit parallelism: the best size is interior and "
                   "input-dependent.",
    )


@experiment("fig16")
def run_fig16(scale: str = "small", k: int = 16,
              unit_counts=(2, 4, 8, 16, 32, 64)) -> ExpTable:
    """Figure 16: sensitivity to the number of RIG Units.

    Speedup is over the 2-unit (1 client + 1 server) configuration.
    """
    rows = []
    for name in MATRIX_NAMES:
        batch = BENCHMARKS[name].default_rig_batch
        base_cfg = NetSparseConfig(n_rig_units=2)
        base = _run(name, k, base_cfg, batch).total_time
        for units in unit_counts:
            cfg = NetSparseConfig(n_rig_units=units)
            t = _run(name, k, cfg, batch).total_time
            rows.append([name, units, round(base / t, 2)])
    return ExpTable(
        exp_id="fig16",
        title="Speedup vs number of RIG Units (relative to 2 units)",
        columns=["matrix", "RIG units", "speedup vs 2"],
        rows=rows,
        paper_note="Speedups grow until 32 units (the default), then "
                   "plateau.",
    )


@experiment("fig17")
def run_fig17(scale: str = "small", k: int = 16,
              delays=(0, 100, 500, 2000, 10_000, 50_000)) -> ExpTable:
    """Figure 17: sensitivity to concatenation delay cycles.

    Speedups are over no concatenation (delay 0 == concat disabled).
    """
    rows = []
    for name in MATRIX_NAMES:
        batch = BENCHMARKS[name].default_rig_batch
        no_concat = NetSparseConfig().with_features(
            concat_nic=False, concat_switch=False
        )
        base = _run(name, k, no_concat, batch).total_time
        for delay in delays:
            if delay == 0:
                rows.append([name, 0, 1.0])
                continue
            cfg = replace(
                NetSparseConfig(),
                concat_delay_cycles_nic=delay,
                concat_delay_cycles_switch=max(delay // 4, 1),
            )
            t = _run(name, k, cfg, batch).total_time
            rows.append([name, delay, round(base / t, 3)])
    return ExpTable(
        exp_id="fig17",
        title="Speedup vs concatenation delay cycles (over no concat)",
        columns=["matrix", "delay cycles", "speedup vs none"],
        rows=rows,
        paper_note="More delay concatenates more PRs until the delay-queue "
                   "SRAM backpressure makes huge delays worse than no "
                   "concatenation; queen (best destination locality) "
                   "benefits most.",
    )


@experiment("fig18")
def run_fig18(scale: str = "small", k: int = 16,
              sizes_mb=(0, 2, 8, 32, 128, -1)) -> ExpTable:
    """Figure 18: speedup vs Property Cache size (-1 = infinite).

    Sizes are paper-scale MB per switch (scaled like the matrices).
    """
    rows = []
    for name in MATRIX_NAMES:
        batch = BENCHMARKS[name].default_rig_batch
        base_cfg = NetSparseConfig().with_features(property_cache=False)
        base = _run(name, k, base_cfg, batch).total_time
        for mb in sizes_mb:
            if mb == 0:
                cfg = NetSparseConfig().with_features(property_cache=False)
            elif mb < 0:
                cfg = replace(NetSparseConfig(),
                              pcache_bytes=1 << 40)  # effectively infinite
            else:
                cfg = replace(NetSparseConfig(),
                              pcache_bytes=mb * 1024 * 1024)
            t = _run(name, k, cfg, batch).total_time
            label = "inf" if mb < 0 else mb
            rows.append([name, label, round(base / t, 3)])
    return ExpTable(
        exp_id="fig18",
        title="Speedup vs Property Cache size (over no cache)",
        columns=["matrix", "size MB (paper scale)", "speedup vs none"],
        rows=rows,
        paper_note="Caching helps arabic most (paper: up to 40%) and "
                   "stokes not at all, at any size; 32 MB is near the "
                   "saturation point for most matrices.",
    )
