"""Other-settings studies: Figures 21 and 22 (§9.6)."""

from __future__ import annotations

import numpy as np

from repro.accel import SPR_DDR, SPR_HBM
from repro.cluster.endtoend import end_to_end_time
from repro.config import NetSparseConfig
from repro.experiments.runner import ExpTable, experiment
from repro.parallel import SimJob, simulate_many
from repro.sparse.suite import BENCHMARKS, MATRIX_NAMES, load_benchmark


def _gmean(values) -> float:
    values = np.asarray(list(values), dtype=np.float64)
    return float(np.exp(np.log(values).mean()))


@experiment("fig21")
def run_fig21(scale: str = "small", k: int = 128) -> ExpTable:
    """Figure 21: end-to-end speedup with CPU compute (DDR and HBM).

    The communication results are CPU-independent, so the engine batch
    covers them once; only the end-to-end composition differs per CPU.
    """
    cfg = NetSparseConfig()
    jobs, keys = [], []
    for name in MATRIX_NAMES:
        batch = BENCHMARKS[name].default_rig_batch
        for scheme in ("suopt", "saopt", "netsparse"):
            jobs.append(SimJob(
                scheme=scheme, matrix=name, k=k, config=cfg,
                scale_name=scale,
                rig_batch=batch if scheme == "netsparse" else None,
            ))
            keys.append((name, scheme))
    results = dict(zip(keys, simulate_many(jobs)))
    rows = []
    agg = {}
    for cpu in (SPR_DDR, SPR_HBM):
        accel = cpu.as_roofline()
        for name in MATRIX_NAMES:
            mat = load_benchmark(name, scale)
            comm = {
                scheme: results[(name, scheme)]
                for scheme in ("suopt", "saopt", "netsparse")
            }
            row = [cpu.name, name]
            for scheme in ("suopt", "saopt", "netsparse"):
                e2e = end_to_end_time(mat, k, comm[scheme], accel=accel)
                row.append(round(e2e.speedup_over_single_node, 2))
                agg.setdefault((cpu.name, scheme), []).append(
                    e2e.speedup_over_single_node
                )
            ideal = end_to_end_time(mat, k, comm["netsparse"],
                                    accel=accel).ideal_speedup
            row.append(round(ideal, 1))
            rows.append(row)
    for cpu_name in (SPR_DDR.name, SPR_HBM.name):
        rows.append([
            cpu_name, "gmean",
            round(_gmean(agg[(cpu_name, "suopt")]), 2),
            round(_gmean(agg[(cpu_name, "saopt")]), 2),
            round(_gmean(agg[(cpu_name, "netsparse")]), 1),
            "-",
        ])
    return ExpTable(
        exp_id="fig21",
        title="End-to-end speedup over one node, CPU compute, K=128",
        columns=["cpu", "matrix", "SUOpt", "SAOpt", "NetSparse", "ideal"],
        rows=rows,
        paper_note="Paper averages (K=128 and K=16): DDR 2.6/13/53x and "
                   "HBM 1.4/7/42x for SUOpt/SAOpt/NetSparse — faster local "
                   "compute (HBM) exposes communication more.",
    )


@experiment("fig22")
def run_fig22(scale: str = "small", k: int = 16) -> ExpTable:
    """Figure 22: NetSparse speedup over SUOpt across fabric topologies."""
    topo_names = ("leafspine", "hyperx", "dragonfly")
    jobs, keys = [], []
    for topo_name in topo_names:
        cfg = NetSparseConfig(topology=topo_name)
        for name in MATRIX_NAMES:
            batch = BENCHMARKS[name].default_rig_batch
            jobs.append(SimJob(scheme="netsparse", matrix=name, k=k,
                               config=cfg, scale_name=scale,
                               rig_batch=batch))
            keys.append((topo_name, name, "netsparse"))
            jobs.append(SimJob(scheme="suopt", matrix=name, k=k,
                               config=cfg, scale_name=scale))
            keys.append((topo_name, name, "suopt"))
    results = dict(zip(keys, simulate_many(jobs)))
    rows = []
    for topo_name in topo_names:
        for name in MATRIX_NAMES:
            ns = results[(topo_name, name, "netsparse")]
            su = results[(topo_name, name, "suopt")]
            rows.append([topo_name, name,
                         round(su.total_time / ns.total_time, 1)])
    return ExpTable(
        exp_id="fig22",
        title="NetSparse speedup over SUOpt per topology (K=16)",
        columns=["topology", "matrix", "NetSparse/SUOpt"],
        rows=rows,
        paper_note="Performance stays high on all three fabrics; the "
                   "higher-diameter HyperX hurts stokes most.",
    )
