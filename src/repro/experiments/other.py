"""Other-settings studies: Figures 21 and 22 (§9.6)."""

from __future__ import annotations

import numpy as np

from repro.accel import SPR_DDR, SPR_HBM
from repro.cluster.endtoend import end_to_end_time
from repro.config import NetSparseConfig
from repro.cluster import build_cluster_topology, simulate_netsparse
from repro.baselines.saopt import simulate_saopt
from repro.baselines.su import simulate_suopt
from repro.experiments.runner import ExpTable, experiment
from repro.sparse.suite import BENCHMARKS, MATRIX_NAMES, load_benchmark, scale_factor


def _gmean(values) -> float:
    values = np.asarray(list(values), dtype=np.float64)
    return float(np.exp(np.log(values).mean()))


@experiment("fig21")
def run_fig21(scale: str = "small", k: int = 128) -> ExpTable:
    """Figure 21: end-to-end speedup with CPU compute (DDR and HBM)."""
    cfg = NetSparseConfig()
    topo = build_cluster_topology(cfg)
    rows = []
    agg = {}
    for cpu in (SPR_DDR, SPR_HBM):
        accel = cpu.as_roofline()
        for name in MATRIX_NAMES:
            mat = load_benchmark(name, scale)
            sc = scale_factor(name, mat)
            batch = BENCHMARKS[name].default_rig_batch
            comm = {
                "suopt": simulate_suopt(mat, k, cfg),
                "saopt": simulate_saopt(mat, k, cfg, scale=sc),
                "netsparse": simulate_netsparse(mat, k, cfg, topo,
                                                rig_batch=batch, scale=sc),
            }
            row = [cpu.name, name]
            for scheme in ("suopt", "saopt", "netsparse"):
                e2e = end_to_end_time(mat, k, comm[scheme], accel=accel)
                row.append(round(e2e.speedup_over_single_node, 2))
                agg.setdefault((cpu.name, scheme), []).append(
                    e2e.speedup_over_single_node
                )
            ideal = end_to_end_time(mat, k, comm["netsparse"],
                                    accel=accel).ideal_speedup
            row.append(round(ideal, 1))
            rows.append(row)
    for cpu_name in (SPR_DDR.name, SPR_HBM.name):
        rows.append([
            cpu_name, "gmean",
            round(_gmean(agg[(cpu_name, "suopt")]), 2),
            round(_gmean(agg[(cpu_name, "saopt")]), 2),
            round(_gmean(agg[(cpu_name, "netsparse")]), 1),
            "-",
        ])
    return ExpTable(
        exp_id="fig21",
        title="End-to-end speedup over one node, CPU compute, K=128",
        columns=["cpu", "matrix", "SUOpt", "SAOpt", "NetSparse", "ideal"],
        rows=rows,
        paper_note="Paper averages (K=128 and K=16): DDR 2.6/13/53x and "
                   "HBM 1.4/7/42x for SUOpt/SAOpt/NetSparse — faster local "
                   "compute (HBM) exposes communication more.",
    )


@experiment("fig22")
def run_fig22(scale: str = "small", k: int = 16) -> ExpTable:
    """Figure 22: NetSparse speedup over SUOpt across fabric topologies."""
    rows = []
    for topo_name in ("leafspine", "hyperx", "dragonfly"):
        cfg = NetSparseConfig(topology=topo_name)
        topo = build_cluster_topology(cfg)
        for name in MATRIX_NAMES:
            mat = load_benchmark(name, scale)
            sc = scale_factor(name, mat)
            batch = BENCHMARKS[name].default_rig_batch
            ns = simulate_netsparse(mat, k, cfg, topo, rig_batch=batch,
                                    scale=sc)
            su = simulate_suopt(mat, k, cfg)
            rows.append([topo_name, name,
                         round(su.total_time / ns.total_time, 1)])
    return ExpTable(
        exp_id="fig22",
        title="NetSparse speedup over SUOpt per topology (K=16)",
        columns=["topology", "matrix", "NetSparse/SUOpt"],
        rows=rows,
        paper_note="Performance stays high on all three fabrics; the "
                   "higher-diameter HyperX hurts stokes most.",
    )
