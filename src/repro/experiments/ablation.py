"""Table 8: cumulative-mechanism ablation on arabic and europe (§9.2)."""

from __future__ import annotations

from repro.config import FeatureFlags, NetSparseConfig
from repro.experiments.runner import ExpTable, experiment
from repro.parallel import SimJob, simulate_many
from repro.sparse.suite import BENCHMARKS

LEVELS = ["rig", "filter", "coalesce", "conc_nic", "switch"]
LEVEL_LABELS = {
    "rig": "RIG",
    "filter": "Filter",
    "coalesce": "Coalesce",
    "conc_nic": "ConcNIC",
    "switch": "Switch",
}

#: Paper Table 8 (Spd over SUOpt), for reference in the output.
PAPER_SPD = {
    ("arabic", 1): [0.2, 3.4, 8.4, 12.6, 13.7],
    ("arabic", 16): [1.8, 34.2, 88.0, 129.1, 184.1],
    ("arabic", 128): [3.6, 78.7, 184.8, 184.2, 250.4],
    ("europe", 1): [7.4, 7.5, 8.1, 14.1, 15.1],
    ("europe", 16): [82.8, 84.8, 91.3, 122.1, 132.1],
    ("europe", 128): [176.0, 175.5, 190.3, 197.8, 202.8],
}


@experiment("table8")
def run_table8(scale: str = "small", matrices=("arabic", "europe"),
               ks=(1, 16, 128)) -> ExpTable:
    """Progressively enable each NetSparse mechanism; report speedup
    over SUOpt, tail-node traffic reduction, and tail goodput.

    All ``matrices x ks x (1 SUOpt + len(LEVELS) NetSparse)`` cells are
    independent, so the whole table is one engine batch."""
    level_cfgs = {
        level: NetSparseConfig(features=FeatureFlags.ablation_level(level))
        for level in LEVELS
    }
    jobs, keys = [], []
    for name in matrices:
        batch = BENCHMARKS[name].default_rig_batch
        for k in ks:
            jobs.append(SimJob(scheme="suopt", matrix=name, k=k,
                               config=NetSparseConfig(), scale_name=scale))
            keys.append((name, k, "suopt"))
            for level in LEVELS:
                jobs.append(SimJob(scheme="netsparse", matrix=name, k=k,
                                   config=level_cfgs[level],
                                   scale_name=scale, rig_batch=batch))
                keys.append((name, k, level))
    results = dict(zip(keys, simulate_many(jobs)))
    rows = []
    for name in matrices:
        for k in ks:
            su = results[(name, k, "suopt")]
            for i, level in enumerate(LEVELS):
                ns = results[(name, k, level)]
                tail = ns.tail_node
                spd = su.total_time / ns.total_time
                trfc = su.recv_wire_bytes[tail] / max(
                    ns.tail_traffic_bytes(), 1
                )
                paper = PAPER_SPD.get((name, k))
                rows.append([
                    name, k, LEVEL_LABELS[level],
                    round(spd, 1),
                    round(trfc, 1),
                    round(ns.goodput() * 100, 1),
                    paper[i] if paper else "-",
                ])
    return ExpTable(
        exp_id="table8",
        title="Ablation vs SUOpt (cumulative mechanisms)",
        columns=["matrix", "K", "optim.", "speedup", "-traffic x",
                 "goodput %", "paper spd"],
        rows=rows,
        paper_note="Filtering/coalescing matter most for the denser arabic; "
                   "RIG alone captures most of sparse europe's gain; "
                   "concatenation helps small K; the switch adds "
                   "cross-node concat + caching.",
    )
