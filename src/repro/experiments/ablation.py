"""Table 8: cumulative-mechanism ablation on arabic and europe (§9.2)."""

from __future__ import annotations

from repro.config import FeatureFlags, NetSparseConfig
from repro.cluster import build_cluster_topology, simulate_netsparse
from repro.baselines.su import simulate_suopt
from repro.experiments.runner import ExpTable, experiment
from repro.sparse.suite import BENCHMARKS, load_benchmark, scale_factor

LEVELS = ["rig", "filter", "coalesce", "conc_nic", "switch"]
LEVEL_LABELS = {
    "rig": "RIG",
    "filter": "Filter",
    "coalesce": "Coalesce",
    "conc_nic": "ConcNIC",
    "switch": "Switch",
}

#: Paper Table 8 (Spd over SUOpt), for reference in the output.
PAPER_SPD = {
    ("arabic", 1): [0.2, 3.4, 8.4, 12.6, 13.7],
    ("arabic", 16): [1.8, 34.2, 88.0, 129.1, 184.1],
    ("arabic", 128): [3.6, 78.7, 184.8, 184.2, 250.4],
    ("europe", 1): [7.4, 7.5, 8.1, 14.1, 15.1],
    ("europe", 16): [82.8, 84.8, 91.3, 122.1, 132.1],
    ("europe", 128): [176.0, 175.5, 190.3, 197.8, 202.8],
}


@experiment("table8")
def run_table8(scale: str = "small", matrices=("arabic", "europe"),
               ks=(1, 16, 128)) -> ExpTable:
    """Progressively enable each NetSparse mechanism; report speedup
    over SUOpt, tail-node traffic reduction, and tail goodput."""
    rows = []
    for name in matrices:
        mat = load_benchmark(name, scale)
        sc = scale_factor(name, mat)
        batch = BENCHMARKS[name].default_rig_batch
        for k in ks:
            su = simulate_suopt(mat, k)
            for i, level in enumerate(LEVELS):
                cfg = NetSparseConfig(
                    features=FeatureFlags.ablation_level(level)
                )
                topo = build_cluster_topology(cfg)
                ns = simulate_netsparse(mat, k, cfg, topo,
                                        rig_batch=batch, scale=sc)
                tail = ns.tail_node
                spd = su.total_time / ns.total_time
                trfc = su.recv_wire_bytes[tail] / max(
                    ns.tail_traffic_bytes(), 1
                )
                paper = PAPER_SPD.get((name, k))
                rows.append([
                    name, k, LEVEL_LABELS[level],
                    round(spd, 1),
                    round(trfc, 1),
                    round(ns.goodput() * 100, 1),
                    paper[i] if paper else "-",
                ])
    return ExpTable(
        exp_id="table8",
        title="Ablation vs SUOpt (cumulative mechanisms)",
        columns=["matrix", "K", "optim.", "speedup", "-traffic x",
                 "goodput %", "paper spd"],
        rows=rows,
        paper_note="Filtering/coalescing matter most for the denser arabic; "
                   "RIG alone captures most of sparse europe's gain; "
                   "concatenation helps small K; the switch adds "
                   "cross-node concat + caching.",
    )
