"""Full-report generation: run every experiment, emit one markdown file.

``netsparse report --scale small -o report.md`` regenerates the entire
evaluation in one command — the reproduction-package equivalent of the
paper's results section.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence

from repro.experiments.runner import EXPERIMENTS, ExpTable, list_experiments
from repro.cli import _run_with_scale
from repro.parallel import get_engine

__all__ = ["generate_report"]

#: Presentation order: motivation, headline, ablation, sensitivity,
#: hardware, other settings, extensions.
_ORDER = [
    "table1", "table2", "table3", "table4", "fig10",
    "fig12", "table7", "fig13", "fig14", "fig19",
    "table8",
    "fig15", "fig16", "fig17", "fig18",
    "fig20", "table9", "switch_overheads",
    "fig21", "fig22",
    "sharing", "des_validation", "concat_virtualization", "autotune",
    "spgemm_preview", "iterative", "resilience",
    "collectives", "collectives_des",
]


def _ordered_ids(subset: Optional[Sequence[str]]) -> List[str]:
    known = [e for e in _ORDER if e in EXPERIMENTS]
    known += [e for e in list_experiments() if e not in known]
    if subset is None:
        return known
    bad = set(subset) - set(EXPERIMENTS)
    if bad:
        raise KeyError(f"unknown experiments: {sorted(bad)}")
    return [e for e in known if e in set(subset)]


def _markdown_table(table: ExpTable) -> str:
    def cell(v):
        return f"{v:.3g}" if isinstance(v, float) else str(v)

    lines = [
        "| " + " | ".join(table.columns) + " |",
        "|" + "|".join("---" for _ in table.columns) + "|",
    ]
    for row in table.rows:
        lines.append("| " + " | ".join(cell(v) for v in row) + " |")
    return "\n".join(lines)


def generate_report(
    scale: str = "small",
    experiments: Optional[Sequence[str]] = None,
    progress=None,
) -> str:
    """Run the experiment suite and return a markdown report."""
    sections = [
        "# NetSparse reproduction report",
        "",
        f"Matrix scale: `{scale}`.  Regenerate any section with "
        f"`python -m repro.cli run <exp-id> --scale {scale}`.",
        "",
    ]
    for exp_id in _ordered_ids(experiments):
        t0 = time.time()
        table = _run_with_scale(exp_id, scale)
        elapsed = time.time() - t0
        if progress is not None:
            progress(exp_id, elapsed)
        sections.append(f"## {exp_id}: {table.title}")
        sections.append("")
        sections.append(_markdown_table(table))
        sections.append("")
        if table.paper_note:
            sections.append(f"*Paper:* {table.paper_note}")
        for note in table.notes:
            sections.append(f"*Note:* {note}")
        sections.append(f"*({elapsed:.1f}s)*")
        sections.append("")
    stats = get_engine().stats
    sections += [
        "## Execution stats",
        "",
        "| jobs | memo hits | cache hits | executed | hit rate | "
        "sim time | saved |",
        "|---|---|---|---|---|---|---|",
        f"| {stats.jobs} | {stats.memo_hits} | {stats.cache_hits} "
        f"| {stats.executed} | {stats.hit_rate * 100:.1f}% "
        f"| {stats.sim_seconds:.1f}s | {stats.saved_seconds:.1f}s |",
        "",
        "Jobs are independent simulations routed through the execution "
        "engine (`--jobs N` to parallelize); hits replay memoized "
        "results from the content-addressed cache (`netsparse cache "
        "info`).",
        "",
    ]
    sections += _telemetry_sections()
    return "\n".join(sections)


def _telemetry_sections() -> List[str]:
    """Per-stage breakdown when a telemetry registry is active.

    The default report runs untelemetered and this contributes nothing
    (keeping its output byte-identical); under
    ``telemetry.telemetry_scope()`` — or inside ``netsparse profile`` —
    the report grows a pipeline-stage accounting section.
    """
    from repro import telemetry
    from repro.telemetry.profile import KEY_COUNTERS

    reg = telemetry.active()
    if reg is None:
        return []
    lines = [
        "## Per-stage telemetry breakdown",
        "",
        "| span | clock | count | total (s) | share |",
        "|---|---|---|---|---|",
    ]
    for name, clock, count, total, share in telemetry.breakdown_rows(reg):
        pct = f"{share:.1f}%" if share != "-" else "-"
        lines.append(f"| `{name}` | {clock} | {count} | {total:.4f} | {pct} |")
    counters = {k: c.value for k, c in reg.counters.items()}
    shown = [k for k in KEY_COUNTERS if k in counters]
    if shown:
        lines += ["", "| counter | value |", "|---|---|"]
        lines += [f"| `{k}` | {counters[k]} |" for k in shown]
    lines.append("")
    return lines
