"""Sparse ML collective workloads (ROADMAP item 4).

The paper evaluates NetSparse on one-shot SpMM/SpMV/SDDMM gathers over
static matrices.  These experiments drive the same substrates with
training-stack-shaped traffic from :mod:`repro.workloads`:

- ``collectives`` — the analytic cluster model swept over every round
  of every registered family (SparCML-style sparse allreduce, iterative
  PageRank SpMV), one :class:`~repro.parallel.SimJob` per (round,
  scheme) fanned through the execution engine exactly like the
  benchmark matrices.  Reports per-family speedups, middle-pipe cache
  hit rates and the cross-round support churn that distinguishes the
  families.
- ``collectives_des`` — the packet-level DES substrate run for several
  consecutive rounds with the ToR Property Cache either flushed between
  collectives or kept resident (:func:`repro.dessim.run_des_rounds`).
  The hit-rate gap between the two sweeps is the reuse a persistent
  switch cache recovers — the Flare-style in-network reduction effect
  for overlapping gradient supports, and the nested-frontier effect for
  iterative SpMV.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.config import NetSparseConfig
from repro.experiments.runner import ExpTable, experiment
from repro.parallel import SimJob, simulate_many
from repro.workloads import (
    WORKLOADS,
    load_workload_trace,
    workload_trace_name,
)

__all__ = [
    "run_collectives",
    "run_collectives_des",
    "collectives_report",
    "FAMILIES",
    "DES_FAMILIES",
]

#: Analytic sweep covers every registered family, in registry order.
FAMILIES = ("allreduce_topk", "allreduce_randk", "pagerank",
            "pagerank_dynamic")

#: DES sweep: one family per kind (packet-level rounds are expensive).
DES_FAMILIES = ("allreduce_topk", "pagerank")

_SCHEMES = ("netsparse", "saopt", "suopt")


def _gmean(values) -> float:
    arr = np.asarray(list(values), dtype=float)
    return float(np.exp(np.log(np.maximum(arr, 1e-30)).mean()))


def _support_churn(traces) -> float:
    """Mean fraction of each round's column support absent from the
    previous round — 0 for nested frontiers, ~1 for resampled ones."""
    churn = []
    prev = None
    for mat in traces:
        cur = np.unique(mat.cols)
        if prev is not None and cur.size:
            new = np.setdiff1d(cur, prev, assume_unique=True).size
            churn.append(new / cur.size)
        prev = cur
    return float(np.mean(churn)) if churn else 0.0


@experiment("collectives")
def run_collectives(scale: str = "small", k: int = 1,
                    families: Sequence[str] = FAMILIES,
                    n_rounds: int = 0, seed: int = 7) -> ExpTable:
    """Per-family speedup over a multi-round collective sweep.

    One job per (family, round, scheme), fanned through the execution
    engine; ``k=1`` models scalar payloads (a gradient value, a rank).
    Rows aggregate rounds by geometric mean.  ``n_rounds=0`` uses each
    family's own round count.
    """
    cfg = NetSparseConfig()
    jobs, keys = [], []
    rounds_of = {}
    for fam in families:
        family = WORKLOADS[fam]
        rounds_of[fam] = n_rounds or family.n_rounds
        for r in range(rounds_of[fam]):
            name = workload_trace_name(fam, r)
            for s in _SCHEMES:
                jobs.append(SimJob(
                    scheme=s, matrix=name, k=k, config=cfg,
                    scale_name=scale, seed=seed,
                    rig_batch=(family.default_rig_batch
                               if s == "netsparse" else None),
                ))
                keys.append((fam, r, s))
    results = dict(zip(keys, simulate_many(jobs)))

    rows = []
    for fam in families:
        family = WORKLOADS[fam]
        n = rounds_of[fam]
        traces = [load_workload_trace(workload_trace_name(fam, r),
                                      scale, seed) for r in range(n)]
        vs_su, vs_sa, hits, fc, ns_times = [], [], [], [], []
        for r in range(n):
            ns = results[(fam, r, "netsparse")]
            sa = results[(fam, r, "saopt")]
            su = results[(fam, r, "suopt")]
            vs_su.append(su.total_time / ns.total_time)
            vs_sa.append(sa.total_time / ns.total_time)
            hits.append(ns.cache_hit_rate)
            fc.append(ns.fc_rate)
            ns_times.append(ns.total_time)
        rows.append([
            fam,
            family.kind,
            n,
            int(np.mean([t.nnz for t in traces])),
            round(_gmean(vs_su), 2),
            round(_gmean(vs_sa), 2),
            round(100.0 * float(np.mean(hits)), 1),
            round(100.0 * float(np.mean(fc)), 1),
            round(100.0 * _support_churn(traces), 1),
            round(_gmean(ns_times) * 1e6, 2),
        ])
    return ExpTable(
        exp_id="collectives",
        title=f"Sparse ML collectives on the cluster model "
              f"(K={k}, per-round gmean)",
        columns=["workload", "kind", "rounds", "nnz/round",
                 "NS/SUOpt x", "NS/SAOpt x", "cache hit %",
                 "filter+coal %", "churn %", "NS time us"],
        rows=rows,
        paper_note="Extension: the paper's workloads are one-shot "
                   "gathers over static matrices.  Here the same "
                   "mechanisms serve SparCML-style sparse allreduce "
                   "(the ToR cache as a Flare-style in-network "
                   "reduction point) and iterative SpMV with an "
                   "evolving frontier.",
        notes=["churn % — mean fraction of a round's column support "
               "absent from the previous round (0 = nested frontiers, "
               "100 = fully resampled)."],
    )


@experiment("collectives_des")
def run_collectives_des(families: Sequence[str] = DES_FAMILIES,
                        n_rounds: int = 3, k: int = 1,
                        seed: int = 7) -> ExpTable:
    """Keep-vs-flush ToR cache across DES rounds (tiny scale only —
    the DES substrate is packet-level and larger scales take hours)."""
    from repro.dessim import run_des_rounds

    rows = []
    for fam in families:
        traces = [
            load_workload_trace(name, "tiny", seed)
            for name in WORKLOADS[fam].round_names(n_rounds)
        ]
        flush = run_des_rounds(traces, k=k, keep_cache=False)
        keep = run_des_rounds(traces, k=k, keep_cache=True)

        def hit_pct(results):
            lk = sum(r.extras["round_cache"]["lookups"] for r in results)
            ht = sum(r.extras["round_cache"]["hits"] for r in results)
            return 100.0 * ht / lk if lk else 0.0

        f_pct, k_pct = hit_pct(flush), hit_pct(keep)
        rows.append([
            fam,
            n_rounds,
            round(f_pct, 1),
            round(k_pct, 1),
            round(k_pct - f_pct, 1),
            round(sum(r.finish_time for r in flush) * 1e6, 2),
            round(sum(r.finish_time for r in keep) * 1e6, 2),
        ])
    return ExpTable(
        exp_id="collectives_des",
        title=f"DES rounds: persistent vs flushed ToR cache "
              f"(K={k}, tiny)",
        columns=["workload", "rounds", "flush hit %", "keep hit %",
                 "gain pp", "flush t us", "keep t us"],
        rows=rows,
        paper_note="Extension of §6: the segment cache persists across "
                   "collective operations instead of being flushed "
                   "between gathers; the hit-rate gain is the "
                   "cross-round reuse (persistent top-k hot sets, "
                   "nested PageRank frontiers) recovered at the "
                   "middle pipe.",
        notes=["Delivered property sets are identical in both modes — "
               "the cache changes where a request is answered, never "
               "what is delivered."],
    )


def collectives_report(analytic: ExpTable, des: ExpTable) -> str:
    """Render the two collectives tables as one markdown report."""

    def md(table: ExpTable):
        lines = [
            "| " + " | ".join(table.columns) + " |",
            "|" + "|".join(["---:"] * len(table.columns)) + "|",
        ]
        for row in table.rows:
            lines.append("| " + " | ".join(str(v) for v in row) + " |")
        return lines

    lines = ["# Sparse ML collective workloads", "",
             analytic.title + ".", ""]
    lines += md(analytic)
    best = max(analytic.rows, key=lambda r: r[4])
    lines += [
        "",
        f"Best analytic speedup: {best[4]}x over SUOpt on `{best[0]}`.",
        "",
        des.title + ".",
        "",
    ]
    lines += md(des)
    gains = {row[0]: row[4] for row in des.rows}
    lines += [
        "",
        "Keep-vs-flush hit-rate gain (percentage points): "
        + ", ".join(f"`{fam}` +{g}" for fam, g in gains.items()) + ".",
    ]
    for t in (analytic, des):
        if t.paper_note:
            lines += ["", f"*{t.paper_note}*"]
    lines.append("")
    return "\n".join(lines)
