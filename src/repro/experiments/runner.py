"""Experiment registry, result tables, and shared scheme runners."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.config import NetSparseConfig
from repro.cluster import simulate_netsparse
from repro.baselines.saopt import simulate_saopt
from repro.baselines.su import simulate_suopt
from repro.parallel import SimJob, get_engine
from repro.sparse.suite import BENCHMARKS, load_benchmark, scale_factor

__all__ = [
    "EXPERIMENTS",
    "ExpTable",
    "experiment",
    "list_experiments",
    "run_experiment",
    "run_schemes",
]

EXPERIMENTS: Dict[str, Callable[..., "ExpTable"]] = {}


@dataclass
class ExpTable:
    """One regenerated table or figure as tabular data."""

    exp_id: str
    title: str
    columns: List[str]
    rows: List[List]
    paper_note: str = ""
    notes: List[str] = field(default_factory=list)

    def format(self, float_fmt: str = "{:.3g}") -> str:
        def cell(v) -> str:
            if isinstance(v, float):
                return float_fmt.format(v)
            return str(v)

        table = [self.columns] + [[cell(v) for v in row] for row in self.rows]
        widths = [
            max(len(r[c]) for r in table) for c in range(len(self.columns))
        ]
        lines = [f"== {self.exp_id}: {self.title} =="]
        for i, row in enumerate(table):
            lines.append(
                "  ".join(v.rjust(w) for v, w in zip(row, widths))
            )
            if i == 0:
                lines.append("-" * (sum(widths) + 2 * (len(widths) - 1)))
        if self.paper_note:
            lines.append(f"[paper] {self.paper_note}")
        for note in self.notes:
            lines.append(f"[note]  {note}")
        return "\n".join(lines)

    def column(self, name: str) -> List:
        idx = self.columns.index(name)
        return [row[idx] for row in self.rows]

    def row_by(self, key_col: str, key) -> List:
        idx = self.columns.index(key_col)
        for row in self.rows:
            if row[idx] == key:
                return row
        raise KeyError(f"no row with {key_col}={key!r}")


def experiment(exp_id: str):
    """Register an experiment runner under its paper id."""

    def deco(fn):
        if exp_id in EXPERIMENTS:
            raise ValueError(f"duplicate experiment id {exp_id!r}")
        EXPERIMENTS[exp_id] = fn
        fn.exp_id = exp_id
        return fn

    return deco


def list_experiments() -> List[str]:
    return sorted(EXPERIMENTS)


def run_experiment(exp_id: str, **kwargs) -> ExpTable:
    try:
        fn = EXPERIMENTS[exp_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {exp_id!r}; available: {list_experiments()}"
        ) from None
    return fn(**kwargs)


# -- shared runners ------------------------------------------------------


def run_schemes(
    name: str,
    k: int,
    config: Optional[NetSparseConfig] = None,
    scale_name: str = "small",
    schemes: Sequence[str] = ("netsparse", "saopt", "suopt"),
    topology=None,
    rig_batch: Optional[int] = None,
    seed: int = 7,
):
    """Run the requested communication schemes for one (matrix, K).

    The work decomposes into one independent job per scheme and runs
    through the process-global execution engine (parallel fan-out and
    result memoization, see :mod:`repro.parallel`).  Passing an
    explicit ``topology`` object bypasses the engine: arbitrary
    fabrics are not content-addressable.
    """
    config = config or NetSparseConfig()
    mat = load_benchmark(name, scale_name, seed=seed)
    sc = scale_factor(name, mat)
    if rig_batch is None:
        if name.startswith("wl:"):
            from repro.workloads import WORKLOADS, parse_trace_name

            rig_batch = WORKLOADS[parse_trace_name(name)[0]].default_rig_batch
        else:
            rig_batch = BENCHMARKS[name].default_rig_batch
    out = {}
    if topology is not None:
        if "netsparse" in schemes:
            out["netsparse"] = simulate_netsparse(
                mat, k, config, topology, rig_batch=rig_batch, scale=sc
            )
        if "saopt" in schemes:
            out["saopt"] = simulate_saopt(mat, k, config, scale=sc)
        if "suopt" in schemes:
            out["suopt"] = simulate_suopt(mat, k, config)
    else:
        jobs = [
            SimJob(scheme=s, matrix=name, k=k, config=config,
                   scale_name=scale_name, seed=seed,
                   rig_batch=rig_batch if s == "netsparse" else None)
            for s in schemes
        ]
        out.update(zip(schemes, get_engine().run_jobs(jobs)))
    out["matrix"] = mat
    out["scale"] = sc
    return out
