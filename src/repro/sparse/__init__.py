"""Sparse-matrix substrate.

Provides the matrix containers (:class:`~repro.sparse.matrix.COOMatrix`,
:class:`~repro.sparse.matrix.CSRMatrix`), structure-matched synthetic
generators for the paper's five SuiteSparse benchmarks
(:mod:`repro.sparse.synthetic`), the benchmark registry
(:mod:`repro.sparse.suite`), and numerically validated reference kernels
(:mod:`repro.sparse.kernels`).
"""

from repro.sparse.kernels import sddmm, spmm, spmv
from repro.sparse.matrix import COOMatrix, CSRMatrix
from repro.sparse.suite import BENCHMARKS, BenchmarkSpec, load_benchmark

__all__ = [
    "BENCHMARKS",
    "BenchmarkSpec",
    "COOMatrix",
    "CSRMatrix",
    "load_benchmark",
    "sddmm",
    "spmm",
    "spmv",
]
