"""Matrix I/O: Matrix Market files and compact binary snapshots.

So the reproduction can consume the *real* SuiteSparse matrices when
they are available (``.mtx`` from https://sparse.tamu.edu) and so the
synthetic benchmarks can be frozen to disk for exact cross-machine
reproducibility (``.npz``).
"""

from __future__ import annotations

import os
from typing import Union

import numpy as np

from repro.sparse.matrix import COOMatrix

__all__ = ["read_matrix_market", "write_matrix_market", "save_npz",
           "load_npz"]


def read_matrix_market(path: Union[str, os.PathLike]) -> COOMatrix:
    """Read a Matrix Market coordinate file (general or symmetric).

    Pattern files get no values; symmetric files are expanded to full
    storage (both triangles), matching how the kernels consume them.
    """
    with open(path) as fh:
        header = fh.readline()
        if not header.startswith("%%MatrixMarket"):
            raise ValueError(f"{path}: not a Matrix Market file")
        tokens = header.lower().split()
        if "coordinate" not in tokens:
            raise ValueError(f"{path}: only coordinate format is supported")
        pattern = "pattern" in tokens
        symmetric = "symmetric" in tokens
        line = fh.readline()
        while line.startswith("%"):
            line = fh.readline()
        n_rows, n_cols, nnz = (int(x) for x in line.split())
        rows = np.empty(nnz, dtype=np.int64)
        cols = np.empty(nnz, dtype=np.int64)
        vals = None if pattern else np.empty(nnz, dtype=np.float64)
        for i in range(nnz):
            parts = fh.readline().split()
            rows[i] = int(parts[0]) - 1       # 1-based on disk
            cols[i] = int(parts[1]) - 1
            if vals is not None:
                vals[i] = float(parts[2])
    if symmetric:
        off_diag = rows != cols
        mirrored_rows = cols[off_diag]
        mirrored_cols = rows[off_diag]
        rows = np.concatenate([rows, mirrored_rows])
        cols = np.concatenate([cols, mirrored_cols])
        if vals is not None:
            vals = np.concatenate([vals, vals[off_diag]])
    mat = COOMatrix(n_rows, n_cols, rows, cols, vals,
                    name=os.path.splitext(os.path.basename(path))[0])
    return mat.canonicalize()


def write_matrix_market(matrix: COOMatrix, path: Union[str, os.PathLike]):
    """Write a COO matrix as a general coordinate Matrix Market file."""
    from repro.sparse.shards import as_coo

    matrix = as_coo(matrix)
    pattern = matrix.vals is None
    field = "pattern" if pattern else "real"
    with open(path, "w") as fh:
        fh.write(f"%%MatrixMarket matrix coordinate {field} general\n")
        fh.write(f"%{matrix.name}\n")
        fh.write(f"{matrix.n_rows} {matrix.n_cols} {matrix.nnz}\n")
        if pattern:
            for r, c in zip(matrix.rows, matrix.cols):
                fh.write(f"{r + 1} {c + 1}\n")
        else:
            for r, c, v in zip(matrix.rows, matrix.cols, matrix.vals):
                fh.write(f"{r + 1} {c + 1} {float(v)!r}\n")


def save_npz(matrix: COOMatrix, path: Union[str, os.PathLike]) -> None:
    """Freeze a matrix to a compressed binary snapshot."""
    from repro.sparse.shards import as_coo

    matrix = as_coo(matrix)
    payload = dict(
        n_rows=matrix.n_rows,
        n_cols=matrix.n_cols,
        rows=matrix.rows,
        cols=matrix.cols,
        name=np.array(matrix.name),
    )
    if matrix.vals is not None:
        payload["vals"] = matrix.vals
    np.savez_compressed(path, **payload)


def load_npz(path: Union[str, os.PathLike]) -> COOMatrix:
    with np.load(path, allow_pickle=False) as data:
        return COOMatrix(
            int(data["n_rows"]),
            int(data["n_cols"]),
            data["rows"],
            data["cols"],
            data["vals"] if "vals" in data.files else None,
            str(data["name"]),
        )
