"""Benchmark registry: the paper's five matrices at configurable scale.

Table 6 of the paper lists arabic-2005 (23M rows / 640M nnz),
europe_osm (51M / 108M), queen_4147 (4M / 317M), stokes (11M / 350M)
and uk-2002 (19M / 298M).  We generate structure-matched synthetics
(see :mod:`repro.sparse.synthetic`) scaled down so the 128-node cluster
model runs in seconds; the relative row counts and nonzeros-per-row of
the originals are preserved.

Scales
------
``tiny``    ~100k nnz total per matrix — unit tests.
``small``   ~1–2M nnz — default for the experiment harness.
``medium``  ~4–8M nnz — closer structural statistics, minutes per run.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Dict

from repro.sparse.matrix import COOMatrix
from repro.sparse import synthetic

__all__ = ["BenchmarkSpec", "BENCHMARKS", "MATRIX_NAMES", "load_benchmark"]

#: Canonical matrix order used in every paper table.
MATRIX_NAMES = ("arabic", "europe", "queen", "stokes", "uk")

#: Row counts per scale, chosen to preserve the paper's relative sizes
#: (europe has the most rows, queen the fewest).
_SCALE_ROWS: Dict[str, Dict[str, int]] = {
    "tiny": {
        "arabic": 1 << 13,
        "europe": 1 << 14,
        "queen": 1 << 12,
        "stokes": 1 << 13,
        "uk": 1 << 13,
    },
    "small": {
        "arabic": 1 << 17,
        "europe": 1 << 18,
        "queen": 1 << 15,
        "stokes": 1 << 16,
        "uk": 1 << 17,
    },
    "medium": {
        "arabic": 1 << 19,
        "europe": 1 << 20,
        "queen": 1 << 17,
        "stokes": 1 << 18,
        "uk": 1 << 19,
    },
}


@dataclass(frozen=True)
class BenchmarkSpec:
    """A named benchmark matrix family.

    ``paper_rows_m`` / ``paper_nnz_m`` record the original SuiteSparse
    sizes (in millions) from Table 6; ``default_rig_batch`` is the RIG
    batch size the paper uses for this matrix (§8.2), scaled in the
    cluster model by the matrix scale factor.
    """

    name: str
    generator: Callable[..., COOMatrix]
    gen_kwargs: Dict
    paper_rows_m: float
    paper_nnz_m: float
    default_rig_batch: int
    domain: str

    def rows_for_scale(self, scale: str) -> int:
        try:
            return _SCALE_ROWS[scale][self.name]
        except KeyError:
            raise ValueError(
                f"unknown scale {scale!r}; expected one of {sorted(_SCALE_ROWS)}"
            ) from None

    def generate(self, scale: str = "small", seed: int = 7) -> COOMatrix:
        n = self.rows_for_scale(scale)
        mat = self.generator(n=n, seed=seed, name=self.name, **self.gen_kwargs)
        return mat


BENCHMARKS: Dict[str, BenchmarkSpec] = {
    "arabic": BenchmarkSpec(
        name="arabic",
        generator=synthetic.web_crawl,
        gen_kwargs=dict(mean_degree=26.0, locality=0.72, hub_alpha=1.2,
                        page_alpha=1.3, block_size=512, escape_frac=0.03),
        paper_rows_m=23.0,
        paper_nnz_m=640.0,
        default_rig_batch=32 * 1024,
        domain="web crawl",
    ),
    "europe": BenchmarkSpec(
        name="europe",
        generator=synthetic.road_network,
        gen_kwargs=dict(mean_degree=2.2, long_range_frac=0.25),
        paper_rows_m=51.0,
        paper_nnz_m=108.0,
        default_rig_batch=8 * 1024,
        domain="road network",
    ),
    "queen": BenchmarkSpec(
        name="queen",
        generator=synthetic.banded_fem,
        gen_kwargs=dict(mean_degree=56.0, band=160),
        paper_rows_m=4.0,
        paper_nnz_m=317.0,
        default_rig_batch=32 * 1024,
        domain="3D structural FEM",
    ),
    "stokes": BenchmarkSpec(
        name="stokes",
        generator=synthetic.coupled_flow,
        gen_kwargs=dict(mean_degree=26.0, band=48, coupling_frac=0.3),
        paper_rows_m=11.0,
        paper_nnz_m=350.0,
        default_rig_batch=32 * 1024,
        domain="coupled flow",
    ),
    "uk": BenchmarkSpec(
        name="uk",
        generator=synthetic.web_crawl,
        gen_kwargs=dict(mean_degree=16.0, locality=0.55, hub_alpha=1.15,
                        page_alpha=1.1, block_size=256, escape_frac=0.10),
        paper_rows_m=19.0,
        paper_nnz_m=298.0,
        default_rig_batch=8 * 1024,
        domain="web crawl",
    ),
}


@lru_cache(maxsize=32)
def _load_cached(name: str, scale: str, seed: int) -> COOMatrix:
    return BENCHMARKS[name].generate(scale=scale, seed=seed)


def load_benchmark(name: str, scale: str = "small", seed: int = 7) -> COOMatrix:
    """Generate (and memoize) a benchmark matrix or workload trace.

    Names beginning with ``wl:`` are workload round traces
    (``wl:<family>:r<round>``) and dispatch to
    :func:`repro.workloads.load_workload_trace`, so jobs referencing
    either kind of matrix resolve through this one front door — the
    execution engine's worker processes rely on that.

    Raises ``KeyError`` with the available names for typos.
    """
    if name.startswith("wl:"):
        from repro.workloads import load_workload_trace

        return load_workload_trace(name, scale=scale, seed=seed)
    if name not in BENCHMARKS:
        raise KeyError(f"unknown benchmark {name!r}; available: {MATRIX_NAMES}")
    return _load_cached(name, scale, seed)


def scale_factor(name: str, matrix: COOMatrix) -> float:
    """This matrix's nnz over the original SuiteSparse matrix's nnz.

    The cluster model uses this to scale size-coupled quantities (RIG
    batch, per-command overhead, Property Cache capacity) so ratios
    survive the downscaling (DESIGN.md §5).  Workload traces
    (``wl:`` names) scale against their family's virtual paper-scale
    nnz instead (:func:`repro.workloads.workload_scale_factor`).
    """
    if name.startswith("wl:"):
        from repro.workloads import workload_scale_factor

        return workload_scale_factor(name, matrix)
    return matrix.nnz / (BENCHMARKS[name].paper_nnz_m * 1e6)
