"""Benchmark registry: the paper's five matrices at configurable scale.

Table 6 of the paper lists arabic-2005 (23M rows / 640M nnz),
europe_osm (51M / 108M), queen_4147 (4M / 317M), stokes (11M / 350M)
and uk-2002 (19M / 298M).  We generate structure-matched synthetics
(see :mod:`repro.sparse.synthetic`) scaled down so the 128-node cluster
model runs in seconds; the relative row counts and nonzeros-per-row of
the originals are preserved.

Scales
------
``tiny``    ~100k nnz total per matrix — unit tests.
``small``   ~1–2M nnz — default for the experiment harness.
``medium``  ~4–8M nnz — closer structural statistics, minutes per run.
``large``   ~10–20M nnz per matrix — sharded by default; the CI-budget
            paper-shaped sweep (Table 7 / Fig. 11 scale behavior).
``paper``   the original Table-6 row counts — sharded by default; only
            generation and trace extraction are expected to fit, and
            only out-of-core.

Matrices at sharded scales are generated chunk-by-chunk
(:func:`repro.sparse.synthetic.stream_chunks`) straight into an on-disk
shard store (:mod:`repro.sparse.shards`) and come back as
:class:`~repro.sparse.shards.ShardedCOOMatrix` — same
``structural_digest`` as the in-memory twin, bounded resident set.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, Optional, Set, Tuple

import numpy as np

from repro import telemetry
from repro.sparse.matrix import COOMatrix
from repro.sparse import synthetic

__all__ = [
    "BenchmarkSpec",
    "BENCHMARKS",
    "MATRIX_NAMES",
    "MatrixMemo",
    "load_benchmark",
    "sharded_scales",
    "suite_cache_stats",
]

#: Canonical matrix order used in every paper table.
MATRIX_NAMES = ("arabic", "europe", "queen", "stokes", "uk")

#: Row counts per scale, chosen to preserve the paper's relative sizes
#: (europe has the most rows, queen the fewest).
_SCALE_ROWS: Dict[str, Dict[str, int]] = {
    "tiny": {
        "arabic": 1 << 13,
        "europe": 1 << 14,
        "queen": 1 << 12,
        "stokes": 1 << 13,
        "uk": 1 << 13,
    },
    "small": {
        "arabic": 1 << 17,
        "europe": 1 << 18,
        "queen": 1 << 15,
        "stokes": 1 << 16,
        "uk": 1 << 17,
    },
    "medium": {
        "arabic": 1 << 19,
        "europe": 1 << 20,
        "queen": 1 << 17,
        "stokes": 1 << 18,
        "uk": 1 << 19,
    },
    "large": {
        "arabic": 1 << 20,
        "europe": 1 << 23,
        "queen": 1 << 18,
        "stokes": 1 << 19,
        "uk": 1 << 20,
    },
    "paper": {
        "arabic": 23_000_000,
        "europe": 51_000_000,
        "queen": 4_000_000,
        "stokes": 11_000_000,
        "uk": 19_000_000,
    },
}

#: Scales whose matrices load sharded (out-of-core) by default.
_SHARDED_SCALES = ("large", "paper")


def sharded_scales() -> Set[str]:
    """Scales that default to sharded loading.

    ``REPRO_SHARDED_SCALES`` (comma-separated) adds scales — e.g.
    ``REPRO_SHARDED_SCALES=tiny`` forces the out-of-core path in unit
    tests without paying large-scale generation time.
    """
    extra = os.environ.get("REPRO_SHARDED_SCALES", "")
    out = set(_SHARDED_SCALES)
    out.update(s.strip() for s in extra.split(",") if s.strip())
    return out


@dataclass(frozen=True)
class BenchmarkSpec:
    """A named benchmark matrix family.

    ``paper_rows_m`` / ``paper_nnz_m`` record the original SuiteSparse
    sizes (in millions) from Table 6; ``default_rig_batch`` is the RIG
    batch size the paper uses for this matrix (§8.2), scaled in the
    cluster model by the matrix scale factor.
    """

    name: str
    generator: Callable[..., COOMatrix]
    gen_kwargs: Dict
    paper_rows_m: float
    paper_nnz_m: float
    default_rig_batch: int
    domain: str

    def rows_for_scale(self, scale: str) -> int:
        try:
            return _SCALE_ROWS[scale][self.name]
        except KeyError:
            raise ValueError(
                f"unknown scale {scale!r}; expected one of {sorted(_SCALE_ROWS)}"
            ) from None

    def generate(self, scale: str = "small", seed: int = 7) -> COOMatrix:
        n = self.rows_for_scale(scale)
        mat = self.generator(n=n, seed=seed, name=self.name, **self.gen_kwargs)
        return mat

    def stream(
        self, scale: str = "small", seed: int = 7,
        chunk_nnz: Optional[int] = None,
    ) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Canonical chunk stream, bit-identical to :meth:`generate`."""
        n = self.rows_for_scale(scale)
        return synthetic.stream_chunks(
            self.generator, n=n, seed=seed, chunk_nnz=chunk_nnz,
            name=self.name, **self.gen_kwargs,
        )


BENCHMARKS: Dict[str, BenchmarkSpec] = {
    "arabic": BenchmarkSpec(
        name="arabic",
        generator=synthetic.web_crawl,
        gen_kwargs=dict(mean_degree=26.0, locality=0.72, hub_alpha=1.2,
                        page_alpha=1.3, block_size=512, escape_frac=0.03),
        paper_rows_m=23.0,
        paper_nnz_m=640.0,
        default_rig_batch=32 * 1024,
        domain="web crawl",
    ),
    "europe": BenchmarkSpec(
        name="europe",
        generator=synthetic.road_network,
        gen_kwargs=dict(mean_degree=2.2, long_range_frac=0.25),
        paper_rows_m=51.0,
        paper_nnz_m=108.0,
        default_rig_batch=8 * 1024,
        domain="road network",
    ),
    "queen": BenchmarkSpec(
        name="queen",
        generator=synthetic.banded_fem,
        gen_kwargs=dict(mean_degree=56.0, band=160),
        paper_rows_m=4.0,
        paper_nnz_m=317.0,
        default_rig_batch=32 * 1024,
        domain="3D structural FEM",
    ),
    "stokes": BenchmarkSpec(
        name="stokes",
        generator=synthetic.coupled_flow,
        gen_kwargs=dict(mean_degree=26.0, band=48, coupling_frac=0.3),
        paper_rows_m=11.0,
        paper_nnz_m=350.0,
        default_rig_batch=32 * 1024,
        domain="coupled flow",
    ),
    "uk": BenchmarkSpec(
        name="uk",
        generator=synthetic.web_crawl,
        gen_kwargs=dict(mean_degree=16.0, locality=0.55, hub_alpha=1.15,
                        page_alpha=1.1, block_size=256, escape_frac=0.10),
        paper_rows_m=19.0,
        paper_nnz_m=298.0,
        default_rig_batch=8 * 1024,
        domain="web crawl",
    ),
}


#: Resident-nnz budget for the suite memo.  In-memory matrices weigh
#: their full nnz; sharded matrices weigh only their resident windows
#: (~0), so out-of-core loads never evict anything.
DEFAULT_MEMO_NNZ = int(os.environ.get("REPRO_SUITE_CACHE_NNZ",
                                      str(64 * 1024 * 1024)))


class MatrixMemo:
    """Weight-aware LRU memo for loaded benchmark matrices.

    ``lru_cache(maxsize=32)`` counted *entries*; 32 ``large`` matrices
    would pin gigabytes.  This memo counts *resident nonzeros* and
    evicts least-recently-used entries once the budget is exceeded.
    The most recent entry always stays, even oversized — callers hold a
    reference to it anyway, so evicting it would save nothing.
    """

    def __init__(self, max_resident_nnz: Optional[int] = None):
        self.max_resident_nnz = (
            DEFAULT_MEMO_NNZ if max_resident_nnz is None else int(max_resident_nnz)
        )
        self._entries: "OrderedDict[tuple, object]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @staticmethod
    def _weight(matrix) -> int:
        resident = getattr(matrix, "resident_nnz", None)
        return int(matrix.nnz if resident is None else resident)

    def resident_nnz(self) -> int:
        return sum(self._weight(m) for m in self._entries.values())

    def get_or_load(self, key: tuple, loader: Callable[[], object]):
        mat = self._entries.get(key)
        if mat is not None:
            self._entries.move_to_end(key)
            self.hits += 1
            telemetry.count("sparse.suite.cache.hits")
            return mat
        self.misses += 1
        telemetry.count("sparse.suite.cache.misses")
        mat = loader()
        self._entries[key] = mat
        self._enforce_budget()
        telemetry.set_gauge("sparse.suite.cache.resident_nnz",
                            self.resident_nnz())
        return mat

    def _enforce_budget(self) -> None:
        while (len(self._entries) > 1
               and self.resident_nnz() > self.max_resident_nnz):
            self._entries.popitem(last=False)
            self.evictions += 1
            telemetry.count("sparse.suite.cache.evictions")

    def stats(self) -> Dict[str, int]:
        return {
            "entries": len(self._entries),
            "resident_nnz": self.resident_nnz(),
            "max_resident_nnz": self.max_resident_nnz,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }

    def clear(self) -> None:
        self._entries.clear()


_memo = MatrixMemo()


def suite_cache_stats() -> Dict[str, int]:
    """Snapshot of the process-wide benchmark memo."""
    return _memo.stats()


def _load_sharded(name: str, scale: str, seed: int):
    """Load (or stream-generate) the on-disk sharded twin of a matrix.

    Shard directories are content-addressed by (name, scale, seed)
    under :func:`repro.sparse.shards.shard_root`, so repeated loads —
    including from engine worker processes — reuse one generation pass.
    """
    from repro.sparse import shards

    spec = BENCHMARKS[name]
    n = spec.rows_for_scale(scale)
    path = os.path.join(shards.shard_root(), f"{name}-{scale}-s{seed}")
    if os.path.exists(os.path.join(path, "manifest.json")):
        return shards.ShardedCOOMatrix(path)
    return shards.write_sharded(
        path, n, n, spec.stream(scale=scale, seed=seed), name=name
    )


def load_benchmark(name: str, scale: str = "small", seed: int = 7,
                   sharded: Optional[bool] = None):
    """Generate (and memoize) a benchmark matrix or workload trace.

    Names beginning with ``wl:`` are workload round traces
    (``wl:<family>:r<round>``) and dispatch to
    :func:`repro.workloads.load_workload_trace`, so jobs referencing
    either kind of matrix resolve through this one front door — the
    execution engine's worker processes rely on that.

    ``sharded`` picks the storage tier: ``True`` returns an on-disk
    :class:`~repro.sparse.shards.ShardedCOOMatrix`, ``False`` the
    in-memory :class:`COOMatrix`, and ``None`` (default) shards exactly
    the scales in :func:`sharded_scales`.  Both tiers share one
    ``structural_digest``, so partition-trace cache keys are identical.

    Raises ``KeyError`` with the available names for typos.
    """
    if name.startswith("wl:"):
        from repro.workloads import load_workload_trace

        return load_workload_trace(name, scale=scale, seed=seed)
    if name not in BENCHMARKS:
        raise KeyError(f"unknown benchmark {name!r}; available: {MATRIX_NAMES}")
    if sharded is None:
        sharded = scale in sharded_scales()
    if sharded:
        return _memo.get_or_load(
            (name, scale, seed, "sharded"),
            lambda: _load_sharded(name, scale, seed),
        )
    return _memo.get_or_load(
        (name, scale, seed, "dense"),
        lambda: BENCHMARKS[name].generate(scale=scale, seed=seed),
    )


def scale_factor(name: str, matrix: COOMatrix) -> float:
    """This matrix's nnz over the original SuiteSparse matrix's nnz.

    The cluster model uses this to scale size-coupled quantities (RIG
    batch, per-command overhead, Property Cache capacity) so ratios
    survive the downscaling (DESIGN.md §5).  Workload traces
    (``wl:`` names) scale against their family's virtual paper-scale
    nnz instead (:func:`repro.workloads.workload_scale_factor`).
    """
    if name.startswith("wl:"):
        from repro.workloads import workload_scale_factor

        return workload_scale_factor(name, matrix)
    return matrix.nnz / (BENCHMARKS[name].paper_nnz_m * 1e6)
