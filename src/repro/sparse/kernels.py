"""Reference sparse kernels: SpMV, SpMM, SDDMM.

These are the numerically exact kernels the distributed execution model
must match (the correctness invariant tested throughout: no matter what
the communication layer filters, coalesces, concatenates or caches, the
computed output equals these references).

The input *property array* terminology follows the paper (§2.1): for a
sparse matrix A (m×n), the input properties B are an n×K dense array
indexed by nonzero column ids, the output properties are m×K.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.sparse.matrix import COOMatrix, CSRMatrix

__all__ = ["spmv", "spmm", "sddmm"]

Matrix = Union[COOMatrix, CSRMatrix]


def _as_coo(a: Matrix) -> COOMatrix:
    if isinstance(a, CSRMatrix):
        return a.to_coo()
    return a


def _values(coo: COOMatrix) -> np.ndarray:
    if coo.vals is not None:
        return coo.vals
    return np.ones(coo.nnz, dtype=np.float64)


def spmv(a: Matrix, x: np.ndarray) -> np.ndarray:
    """Sparse matrix × dense vector: ``y = A @ x``."""
    coo = _as_coo(a)
    x = np.asarray(x, dtype=np.float64)
    if x.shape != (coo.n_cols,):
        raise ValueError(f"x must have shape ({coo.n_cols},), got {x.shape}")
    y = np.zeros(coo.n_rows, dtype=np.float64)
    np.add.at(y, coo.rows, _values(coo) * x[coo.cols])
    return y


def spmm(a: Matrix, b: np.ndarray) -> np.ndarray:
    """Sparse matrix × tall-skinny dense matrix: ``C = A @ B``.

    ``b`` has shape (n_cols, K); K is the property size in elements.
    """
    coo = _as_coo(a)
    b = np.asarray(b, dtype=np.float64)
    if b.ndim != 2 or b.shape[0] != coo.n_cols:
        raise ValueError(f"b must have shape ({coo.n_cols}, K), got {b.shape}")
    c = np.zeros((coo.n_rows, b.shape[1]), dtype=np.float64)
    np.add.at(c, coo.rows, _values(coo)[:, None] * b[coo.cols])
    return c


def sddmm(a: Matrix, u: np.ndarray, v: np.ndarray) -> COOMatrix:
    """Sampled dense-dense matrix multiplication.

    For each nonzero (i, j) of the sampling matrix A, computes
    ``out[i, j] = A[i, j] * (u[i] · v[j])`` where u is (n_rows, K) and
    v is (n_cols, K).  Returns a COO matrix with A's pattern.
    """
    coo = _as_coo(a)
    u = np.asarray(u, dtype=np.float64)
    v = np.asarray(v, dtype=np.float64)
    if u.ndim != 2 or u.shape[0] != coo.n_rows:
        raise ValueError(f"u must have shape ({coo.n_rows}, K), got {u.shape}")
    if v.shape != (coo.n_cols, u.shape[1]):
        raise ValueError(
            f"v must have shape ({coo.n_cols}, {u.shape[1]}), got {v.shape}"
        )
    dots = np.einsum("ij,ij->i", u[coo.rows], v[coo.cols])
    vals = _values(coo) * dots
    return COOMatrix(coo.n_rows, coo.n_cols, coo.rows, coo.cols, vals, coo.name)
