"""Structure-matched synthetic generators for the benchmark matrices.

The paper evaluates five SuiteSparse matrices (Table 6).  Those exact
matrices are hundreds of millions of nonzeros and are not available
offline, so this module generates scaled-down matrices that preserve the
*structural properties the paper's analyses depend on*:

====================  =========================================================
Matrix                Structure reproduced
====================  =========================================================
``arabic-2005``       Web crawl: strong host-block locality plus global links
                      concentrated on few hub hosts per page.  Highest column
                      reuse (paper SA redundancy ~1:27), highest SU redundancy
                      (1:1947), low destination spread (2.5 dests / 64 PRs).
``uk-2002``           Web crawl with weaker locality and per-link (rather than
                      per-page) hub-host choice: more destination spread
                      (5.6 / 64), less reuse (SA ~1:4.5).
``europe_osm``        Road network: constant degree ~2, short spatial offsets
                      plus multi-scale offsets from the 2D→1D embedding.
                      Almost no column reuse (SA ~1:0.02).
``queen_4147``        3D structural FEM: narrow banded; remote requests only
                      target adjacent partitions (destination locality 1.00),
                      high within-node reuse.
``stokes``            Coupled flow: per-field band plus a single inter-field
                      coupling stripe — two destinations per window (~1.85)
                      and moderate reuse (~1:3.6).
====================  =========================================================

All generators are deterministic given a seed and fully vectorized.

Chunk-streamed twins
--------------------
Every generator also has a ``*_chunks`` twin
(:func:`web_crawl_chunks` …) that yields canonical ``(rows, cols)``
chunks whose concatenation is **bit-identical** to
``generator(...).canonicalize()`` — same seed, same draws, same digest
— while never holding an O(nnz) array in RAM.  The trick: numpy
``Generator`` draws consume the bit stream sequentially per value, so
a full-array draw equals the concatenation of chunked draws.  The
one-shot implementations draw several full nnz-length arrays in a
fixed order before combining them, so the streamed twins replay each
draw chunk-by-chunk into a disk-backed scratch memmap (preserving the
exact consumption order) and then combine aligned windows.  Chunk
boundaries always fall on row boundaries, which makes per-chunk
canonicalization equal to global canonicalization (duplicates of a
``(row, col)`` key can only live inside one row).
"""

from __future__ import annotations

import os
import tempfile
from typing import Iterator, Optional, Tuple

import numpy as np

from repro.sparse.matrix import COOMatrix

__all__ = [
    "web_crawl",
    "road_network",
    "banded_fem",
    "coupled_flow",
    "web_crawl_chunks",
    "road_network_chunks",
    "banded_fem_chunks",
    "coupled_flow_chunks",
    "stream_chunks",
    "power_law_degrees",
    "zipf_sample",
]

#: Default nonzeros per streamed chunk (~32 MB of rows+cols at int64).
DEFAULT_CHUNK_NNZ = int(os.environ.get("REPRO_CHUNK_NNZ", str(1 << 21)))


def power_law_degrees(
    rng: np.random.Generator, n: int, mean_degree: float, alpha: float = 2.1,
    max_degree: int = 0,
) -> np.ndarray:
    """Sample ``n`` integer degrees with a Pareto-like tail.

    The tail exponent ``alpha`` controls skew (smaller = heavier tail);
    the result is rescaled so the mean lands close to ``mean_degree``.
    """
    if max_degree <= 0:
        max_degree = max(int(mean_degree * 64), 64)
    raw = rng.pareto(alpha - 1.0, size=n) + 1.0
    # Rescale twice: clipping the tail after the first rescale shifts
    # the mean down, so rescale again against the clipped values.
    for _ in range(2):
        raw *= mean_degree / raw.mean()
        np.minimum(raw, max_degree, out=raw)
    deg = np.round(raw).astype(np.int64)
    deg[deg < 1] = 1
    return deg


def zipf_sample(
    rng: np.random.Generator, n_values: int, size: int, alpha: float
) -> np.ndarray:
    """Draw ``size`` Zipf(alpha)-distributed ranks in ``[0, n_values)``.

    Implemented by inverse-CDF over the exact finite Zipf distribution,
    which avoids the unbounded-support rejection loop of
    ``Generator.zipf`` and is reproducible across numpy versions.
    """
    cdf = _zipf_cdf(n_values, alpha)
    u = rng.random(size)
    return np.searchsorted(cdf, u, side="left").astype(np.int64)


def _zipf_cdf(n_values: int, alpha: float) -> np.ndarray:
    """Exact finite-Zipf CDF shared by one-shot and streamed samplers."""
    if n_values <= 0:
        raise ValueError("n_values must be positive")
    ranks = np.arange(1, n_values + 1, dtype=np.float64)
    weights = ranks ** (-alpha)
    cdf = np.cumsum(weights)
    cdf /= cdf[-1]
    return cdf


def _signs(rng: np.random.Generator, size: int) -> np.ndarray:
    return rng.integers(0, 2, size=size, dtype=np.int64) * 2 - 1


def web_crawl(
    n: int,
    mean_degree: float = 24.0,
    locality: float = 0.75,
    block_size: int = 512,
    hub_alpha: float = 1.5,
    page_alpha: float = 1.3,
    hub_block_size: int = 32,
    escape_frac: float = 0.05,
    seed: int = 0,
    name: str = "web",
) -> COOMatrix:
    """Synthetic web-crawl adjacency matrix (arabic-2005 / uk-2002 style).

    Each page links mostly within its own host block (``locality``
    fraction, near-diagonal).  The remaining links target *hub hosts*:
    small blocks of popular pages scattered over the id space.  All
    pages of one source host share a primary hub host (pages of a site
    link into the same community), and individual links escape to an
    independently Zipf-drawn host with probability ``escape_frac``.

    Small ``escape_frac`` + steep ``hub_alpha`` (arabic) gives tight
    temporal destination locality and heavy idx reuse; larger escape
    and flatter Zipf (uk) spreads destinations and dilutes reuse.
    """
    rng = np.random.default_rng(seed)
    n_hub_blocks = max(n // (hub_block_size * 8), 8)
    degrees = power_law_degrees(rng, n, mean_degree)
    # Degree is host-correlated in real crawls (dense hub sites versus
    # leaf sites), which is what creates per-partition nonzero imbalance
    # under contiguous 1D partitioning (Figure 19 / the sub-linear
    # no-communication 'ideal' scaling of Figure 13).
    n_blocks = (n + block_size - 1) // block_size
    block_boost = rng.lognormal(mean=0.0, sigma=0.8, size=n_blocks)
    degrees = np.maximum(
        (degrees * block_boost[np.arange(n) // block_size]).astype(np.int64), 1
    )
    rows = np.repeat(np.arange(n, dtype=np.int64), degrees)
    nnz = rows.size
    local_mask = rng.random(nnz) < locality

    # Local links: uniform within the row's host block.
    block_starts = (rows // block_size) * block_size
    block_lens = np.minimum(block_size, n - block_starts)
    cols_local = block_starts + (rng.random(nnz) * block_lens).astype(np.int64)

    # Hub links: pick a hub host (block), then a Zipf-popular page in it.
    hub_block_base = rng.permutation(n - hub_block_size)[:n_hub_blocks]
    n_src_blocks = (n + block_size - 1) // block_size
    primary_of_block = zipf_sample(rng, n_hub_blocks, n_src_blocks, hub_alpha)
    per_link = zipf_sample(rng, n_hub_blocks, nnz, hub_alpha)
    use_per_link = rng.random(nnz) < escape_frac
    chosen = np.where(use_per_link, per_link, primary_of_block[rows // block_size])
    page_in_block = zipf_sample(rng, hub_block_size, nnz, page_alpha)
    cols_hub = hub_block_base[chosen] + page_in_block

    cols = np.where(local_mask, cols_local, cols_hub)
    return COOMatrix(n, n, rows, cols, None, name).canonicalize()


def road_network(
    n: int,
    mean_degree: float = 2.2,
    long_range_frac: float = 0.12,
    min_long: int = 64,
    max_long_frac: float = 1 / 32,
    seed: int = 0,
    name: str = "road",
) -> COOMatrix:
    """Synthetic road network (europe_osm style).

    Nearly constant degree ~2; neighbors are tiny diagonal offsets
    (road segments under a spatial vertex ordering) plus a fraction of
    log-uniform multi-scale offsets standing in for the 2D adjacency a
    1D ordering cannot keep local.  Column reuse is negligible by
    design: every column is referenced by ~2 rows, usually in the same
    partition.
    """
    rng = np.random.default_rng(seed)
    degrees = rng.poisson(mean_degree, size=n).astype(np.int64)
    degrees[degrees < 1] = 1
    rows = np.repeat(np.arange(n, dtype=np.int64), degrees)
    nnz = rows.size

    short = rng.integers(1, 4, size=nnz) * _signs(rng, nnz)
    max_long = max(int(n * max_long_frac), min_long * 2)
    log_mag = rng.uniform(np.log(min_long), np.log(max_long), size=nnz)
    long = np.exp(log_mag).astype(np.int64) * _signs(rng, nnz)
    use_long = rng.random(nnz) < long_range_frac
    offsets = np.where(use_long, long, short)
    cols = np.clip(rows + offsets, 0, n - 1)
    return COOMatrix(n, n, rows, cols, None, name).canonicalize()


def banded_fem(
    n: int,
    mean_degree: float = 48.0,
    band: int = 160,
    seed: int = 0,
    name: str = "fem",
) -> COOMatrix:
    """Banded 3D-FEM matrix (queen_4147 style).

    Nonzeros concentrate in a narrow band around the diagonal, so a
    node's remote requests all target immediately adjacent partitions:
    temporal destination locality is essentially perfect (Table 4 gives
    1.00 for queen) and boundary columns are re-requested by every row
    within band reach, giving heavy filter/coalesce gains.
    """
    rng = np.random.default_rng(seed)
    degrees = np.maximum(
        rng.normal(mean_degree, mean_degree / 8, size=n).astype(np.int64), 4
    )
    rows = np.repeat(np.arange(n, dtype=np.int64), degrees)
    nnz = rows.size
    offsets = rng.integers(-band, band + 1, size=nnz)
    cols = np.clip(rows + offsets, 0, n - 1)
    return COOMatrix(n, n, rows, cols, None, name).canonicalize()


def coupled_flow(
    n: int,
    mean_degree: float = 26.0,
    band: int = 48,
    n_fields: int = 3,
    coupling_frac: float = 0.3,
    seed: int = 0,
    name: str = "flow",
) -> COOMatrix:
    """Coupled flow matrix (stokes style).

    A Stokes discretization orders the velocity/pressure fields as
    consecutive segments; each row couples within its own segment band
    and to the matching location in the *next* field segment (the
    B / Bᵀ off-diagonal blocks).  That yields a band plus one coupling
    stripe per row: about two remote destinations per request window
    and moderate reuse.
    """
    rng = np.random.default_rng(seed)
    if n_fields < 2:
        raise ValueError("need at least two fields for coupling")
    degrees = np.maximum(
        rng.normal(mean_degree, mean_degree / 6, size=n).astype(np.int64), 3
    )
    rows = np.repeat(np.arange(n, dtype=np.int64), degrees)
    nnz = rows.size
    seg = n // n_fields

    in_band = rng.integers(-band, band + 1, size=nnz)
    # Field f couples to field f+1; the last field wraps to field 0.
    field_of_row = np.minimum(rows // seg, n_fields - 1)
    shift = np.where(field_of_row < n_fields - 1, seg, -(n_fields - 1) * seg)
    jitter = rng.integers(-band, band + 1, size=nnz)
    coupled = shift + jitter
    use_coupling = rng.random(nnz) < coupling_frac
    offsets = np.where(use_coupling, coupled, in_band)
    cols = np.clip(rows + offsets, 0, n - 1)
    return COOMatrix(n, n, rows, cols, None, name).canonicalize()


# ---------------------------------------------------------------------
# chunk-streamed generation
# ---------------------------------------------------------------------


class _Scratch:
    """Disk-backed replay buffer for full-length rng draws.

    ``draw(fn)`` fills an nnz-length memmap chunk-by-chunk — consuming
    the generator's bit stream exactly as one ``fn(nnz)`` call would —
    and returns it reopened read-only, so the combining pass below can
    window into it without an O(nnz) resident array.
    """

    def __init__(self, directory: str, total: int, chunk: int):
        self.dir = directory
        self.total = int(total)
        self.chunk = max(int(chunk), 1)
        self._n = 0

    def draw(self, fn, dtype=np.float64) -> np.ndarray:
        from repro.sparse.shards import drop_pages

        path = os.path.join(self.dir, f"scratch-{self._n}.npy")
        self._n += 1
        out = np.lib.format.open_memmap(
            path, mode="w+", dtype=dtype, shape=(self.total,)
        )
        off = 0
        while off < self.total:
            m = min(self.chunk, self.total - off)
            out[off:off + m] = fn(m)
            off += m
        drop_pages(out)
        del out
        return np.load(path, mmap_mode="r")


def _row_chunk_plan(degrees: np.ndarray, chunk_nnz: int):
    """Row-aligned chunk windows ``(r0, r1, k0, k1)`` of ~chunk_nnz
    nonzeros (a single row larger than the budget gets its own chunk)."""
    n = degrees.size
    prefix = np.concatenate([[0], np.cumsum(degrees, dtype=np.int64)])
    r0 = 0
    while r0 < n:
        target = prefix[r0] + max(int(chunk_nnz), 1)
        r1 = int(np.searchsorted(prefix, target, side="right")) - 1
        r1 = min(max(r1, r0 + 1), n)
        yield r0, r1, int(prefix[r0]), int(prefix[r1])
        r0 = r1


def _canonical_chunk(
    n_cols: int, rows: np.ndarray, cols: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-chunk mirror of :meth:`COOMatrix.canonicalize` (same sort
    key, same stable order, same first-occurrence dedup)."""
    keys = rows * n_cols + cols
    order = np.argsort(keys, kind="stable")
    keys = keys[order]
    keep = np.ones(keys.size, dtype=bool)
    keep[1:] = keys[1:] != keys[:-1]
    sel = order[keep]
    return rows[sel], cols[sel]


def _rows_of_window(r0: int, r1: int, degrees: np.ndarray) -> np.ndarray:
    return np.repeat(np.arange(r0, r1, dtype=np.int64), degrees[r0:r1])


def web_crawl_chunks(
    n: int,
    mean_degree: float = 24.0,
    locality: float = 0.75,
    block_size: int = 512,
    hub_alpha: float = 1.5,
    page_alpha: float = 1.3,
    hub_block_size: int = 32,
    escape_frac: float = 0.05,
    seed: int = 0,
    name: str = "web",
    chunk_nnz: Optional[int] = None,
    scratch_dir: Optional[str] = None,
) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Streamed twin of :func:`web_crawl` (bit-identical chunks)."""
    chunk_nnz = chunk_nnz or DEFAULT_CHUNK_NNZ
    rng = np.random.default_rng(seed)
    n_hub_blocks = max(n // (hub_block_size * 8), 8)
    degrees = power_law_degrees(rng, n, mean_degree)
    n_blocks = (n + block_size - 1) // block_size
    block_boost = rng.lognormal(mean=0.0, sigma=0.8, size=n_blocks)
    degrees = np.maximum(
        (degrees * block_boost[np.arange(n) // block_size]).astype(np.int64), 1
    )
    nnz = int(degrees.sum())
    with tempfile.TemporaryDirectory(
        prefix="repro-gen-", dir=scratch_dir
    ) as tmp:
        scratch = _Scratch(tmp, nnz, chunk_nnz)
        u_local = scratch.draw(rng.random)
        u_cols_local = scratch.draw(rng.random)
        hub_block_base = rng.permutation(n - hub_block_size)[:n_hub_blocks]
        n_src_blocks = (n + block_size - 1) // block_size
        primary_of_block = zipf_sample(rng, n_hub_blocks, n_src_blocks,
                                       hub_alpha)
        u_per_link = scratch.draw(rng.random)
        u_escape = scratch.draw(rng.random)
        u_page = scratch.draw(rng.random)
        cdf_hub = _zipf_cdf(n_hub_blocks, hub_alpha)
        cdf_page = _zipf_cdf(hub_block_size, page_alpha)

        for r0, r1, k0, k1 in _row_chunk_plan(degrees, chunk_nnz):
            rows = _rows_of_window(r0, r1, degrees)
            local_mask = u_local[k0:k1] < locality
            block_starts = (rows // block_size) * block_size
            block_lens = np.minimum(block_size, n - block_starts)
            cols_local = block_starts + (
                u_cols_local[k0:k1] * block_lens
            ).astype(np.int64)
            per_link = np.searchsorted(
                cdf_hub, u_per_link[k0:k1], side="left"
            ).astype(np.int64)
            use_per_link = u_escape[k0:k1] < escape_frac
            chosen = np.where(
                use_per_link, per_link, primary_of_block[rows // block_size]
            )
            page_in_block = np.searchsorted(
                cdf_page, u_page[k0:k1], side="left"
            ).astype(np.int64)
            cols_hub = hub_block_base[chosen] + page_in_block
            cols = np.where(local_mask, cols_local, cols_hub)
            yield _canonical_chunk(n, rows, cols)


def road_network_chunks(
    n: int,
    mean_degree: float = 2.2,
    long_range_frac: float = 0.12,
    min_long: int = 64,
    max_long_frac: float = 1 / 32,
    seed: int = 0,
    name: str = "road",
    chunk_nnz: Optional[int] = None,
    scratch_dir: Optional[str] = None,
) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Streamed twin of :func:`road_network` (bit-identical chunks)."""
    chunk_nnz = chunk_nnz or DEFAULT_CHUNK_NNZ
    rng = np.random.default_rng(seed)
    degrees = rng.poisson(mean_degree, size=n).astype(np.int64)
    degrees[degrees < 1] = 1
    nnz = int(degrees.sum())
    with tempfile.TemporaryDirectory(
        prefix="repro-gen-", dir=scratch_dir
    ) as tmp:
        scratch = _Scratch(tmp, nnz, chunk_nnz)
        short_mag = scratch.draw(
            lambda m: rng.integers(1, 4, size=m), dtype=np.int64
        )
        short_sign = scratch.draw(lambda m: _signs(rng, m), dtype=np.int64)
        max_long = max(int(n * max_long_frac), min_long * 2)
        log_mag = scratch.draw(
            lambda m: rng.uniform(np.log(min_long), np.log(max_long), size=m)
        )
        long_sign = scratch.draw(lambda m: _signs(rng, m), dtype=np.int64)
        u_long = scratch.draw(rng.random)

        for r0, r1, k0, k1 in _row_chunk_plan(degrees, chunk_nnz):
            rows = _rows_of_window(r0, r1, degrees)
            short = short_mag[k0:k1] * short_sign[k0:k1]
            long = np.exp(log_mag[k0:k1]).astype(np.int64) * long_sign[k0:k1]
            use_long = u_long[k0:k1] < long_range_frac
            offsets = np.where(use_long, long, short)
            cols = np.clip(rows + offsets, 0, n - 1)
            yield _canonical_chunk(n, rows, cols)


def banded_fem_chunks(
    n: int,
    mean_degree: float = 48.0,
    band: int = 160,
    seed: int = 0,
    name: str = "fem",
    chunk_nnz: Optional[int] = None,
    scratch_dir: Optional[str] = None,
) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Streamed twin of :func:`banded_fem` (bit-identical chunks).

    The one-shot generator makes a single nnz-length draw, so this
    twin streams it directly — no scratch files at all.
    """
    chunk_nnz = chunk_nnz or DEFAULT_CHUNK_NNZ
    rng = np.random.default_rng(seed)
    degrees = np.maximum(
        rng.normal(mean_degree, mean_degree / 8, size=n).astype(np.int64), 4
    )
    for r0, r1, k0, k1 in _row_chunk_plan(degrees, chunk_nnz):
        rows = _rows_of_window(r0, r1, degrees)
        offsets = rng.integers(-band, band + 1, size=k1 - k0)
        cols = np.clip(rows + offsets, 0, n - 1)
        yield _canonical_chunk(n, rows, cols)


def coupled_flow_chunks(
    n: int,
    mean_degree: float = 26.0,
    band: int = 48,
    n_fields: int = 3,
    coupling_frac: float = 0.3,
    seed: int = 0,
    name: str = "flow",
    chunk_nnz: Optional[int] = None,
    scratch_dir: Optional[str] = None,
) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Streamed twin of :func:`coupled_flow` (bit-identical chunks)."""
    chunk_nnz = chunk_nnz or DEFAULT_CHUNK_NNZ
    rng = np.random.default_rng(seed)
    if n_fields < 2:
        raise ValueError("need at least two fields for coupling")
    degrees = np.maximum(
        rng.normal(mean_degree, mean_degree / 6, size=n).astype(np.int64), 3
    )
    nnz = int(degrees.sum())
    seg = n // n_fields
    with tempfile.TemporaryDirectory(
        prefix="repro-gen-", dir=scratch_dir
    ) as tmp:
        scratch = _Scratch(tmp, nnz, chunk_nnz)
        in_band = scratch.draw(
            lambda m: rng.integers(-band, band + 1, size=m), dtype=np.int64
        )
        jitter = scratch.draw(
            lambda m: rng.integers(-band, band + 1, size=m), dtype=np.int64
        )
        # use_coupling is the last draw: stream it inline per chunk.
        for r0, r1, k0, k1 in _row_chunk_plan(degrees, chunk_nnz):
            rows = _rows_of_window(r0, r1, degrees)
            field_of_row = np.minimum(rows // seg, n_fields - 1)
            shift = np.where(
                field_of_row < n_fields - 1, seg, -(n_fields - 1) * seg
            )
            coupled = shift + jitter[k0:k1]
            use_coupling = rng.random(k1 - k0) < coupling_frac
            offsets = np.where(use_coupling, coupled, in_band[k0:k1])
            cols = np.clip(rows + offsets, 0, n - 1)
            yield _canonical_chunk(n, rows, cols)


#: One-shot generator -> streamed twin.
CHUNK_GENERATORS = {
    web_crawl: web_crawl_chunks,
    road_network: road_network_chunks,
    banded_fem: banded_fem_chunks,
    coupled_flow: coupled_flow_chunks,
}


def stream_chunks(generator, n: int, seed: int = 0,
                  chunk_nnz: Optional[int] = None,
                  **gen_kwargs) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Canonical chunk stream for any registered one-shot generator."""
    try:
        streamer = CHUNK_GENERATORS[generator]
    except KeyError:
        raise ValueError(
            f"no streamed twin registered for {generator!r}"
        ) from None
    return streamer(n=n, seed=seed, chunk_nnz=chunk_nnz, **gen_kwargs)
