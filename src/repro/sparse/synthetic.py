"""Structure-matched synthetic generators for the benchmark matrices.

The paper evaluates five SuiteSparse matrices (Table 6).  Those exact
matrices are hundreds of millions of nonzeros and are not available
offline, so this module generates scaled-down matrices that preserve the
*structural properties the paper's analyses depend on*:

====================  =========================================================
Matrix                Structure reproduced
====================  =========================================================
``arabic-2005``       Web crawl: strong host-block locality plus global links
                      concentrated on few hub hosts per page.  Highest column
                      reuse (paper SA redundancy ~1:27), highest SU redundancy
                      (1:1947), low destination spread (2.5 dests / 64 PRs).
``uk-2002``           Web crawl with weaker locality and per-link (rather than
                      per-page) hub-host choice: more destination spread
                      (5.6 / 64), less reuse (SA ~1:4.5).
``europe_osm``        Road network: constant degree ~2, short spatial offsets
                      plus multi-scale offsets from the 2D→1D embedding.
                      Almost no column reuse (SA ~1:0.02).
``queen_4147``        3D structural FEM: narrow banded; remote requests only
                      target adjacent partitions (destination locality 1.00),
                      high within-node reuse.
``stokes``            Coupled flow: per-field band plus a single inter-field
                      coupling stripe — two destinations per window (~1.85)
                      and moderate reuse (~1:3.6).
====================  =========================================================

All generators are deterministic given a seed and fully vectorized.
"""

from __future__ import annotations

import numpy as np

from repro.sparse.matrix import COOMatrix

__all__ = [
    "web_crawl",
    "road_network",
    "banded_fem",
    "coupled_flow",
    "power_law_degrees",
    "zipf_sample",
]


def power_law_degrees(
    rng: np.random.Generator, n: int, mean_degree: float, alpha: float = 2.1,
    max_degree: int = 0,
) -> np.ndarray:
    """Sample ``n`` integer degrees with a Pareto-like tail.

    The tail exponent ``alpha`` controls skew (smaller = heavier tail);
    the result is rescaled so the mean lands close to ``mean_degree``.
    """
    if max_degree <= 0:
        max_degree = max(int(mean_degree * 64), 64)
    raw = rng.pareto(alpha - 1.0, size=n) + 1.0
    # Rescale twice: clipping the tail after the first rescale shifts
    # the mean down, so rescale again against the clipped values.
    for _ in range(2):
        raw *= mean_degree / raw.mean()
        np.minimum(raw, max_degree, out=raw)
    deg = np.round(raw).astype(np.int64)
    deg[deg < 1] = 1
    return deg


def zipf_sample(
    rng: np.random.Generator, n_values: int, size: int, alpha: float
) -> np.ndarray:
    """Draw ``size`` Zipf(alpha)-distributed ranks in ``[0, n_values)``.

    Implemented by inverse-CDF over the exact finite Zipf distribution,
    which avoids the unbounded-support rejection loop of
    ``Generator.zipf`` and is reproducible across numpy versions.
    """
    if n_values <= 0:
        raise ValueError("n_values must be positive")
    ranks = np.arange(1, n_values + 1, dtype=np.float64)
    weights = ranks ** (-alpha)
    cdf = np.cumsum(weights)
    cdf /= cdf[-1]
    u = rng.random(size)
    return np.searchsorted(cdf, u, side="left").astype(np.int64)


def _signs(rng: np.random.Generator, size: int) -> np.ndarray:
    return rng.integers(0, 2, size=size, dtype=np.int64) * 2 - 1


def web_crawl(
    n: int,
    mean_degree: float = 24.0,
    locality: float = 0.75,
    block_size: int = 512,
    hub_alpha: float = 1.5,
    page_alpha: float = 1.3,
    hub_block_size: int = 32,
    escape_frac: float = 0.05,
    seed: int = 0,
    name: str = "web",
) -> COOMatrix:
    """Synthetic web-crawl adjacency matrix (arabic-2005 / uk-2002 style).

    Each page links mostly within its own host block (``locality``
    fraction, near-diagonal).  The remaining links target *hub hosts*:
    small blocks of popular pages scattered over the id space.  All
    pages of one source host share a primary hub host (pages of a site
    link into the same community), and individual links escape to an
    independently Zipf-drawn host with probability ``escape_frac``.

    Small ``escape_frac`` + steep ``hub_alpha`` (arabic) gives tight
    temporal destination locality and heavy idx reuse; larger escape
    and flatter Zipf (uk) spreads destinations and dilutes reuse.
    """
    rng = np.random.default_rng(seed)
    n_hub_blocks = max(n // (hub_block_size * 8), 8)
    degrees = power_law_degrees(rng, n, mean_degree)
    # Degree is host-correlated in real crawls (dense hub sites versus
    # leaf sites), which is what creates per-partition nonzero imbalance
    # under contiguous 1D partitioning (Figure 19 / the sub-linear
    # no-communication 'ideal' scaling of Figure 13).
    n_blocks = (n + block_size - 1) // block_size
    block_boost = rng.lognormal(mean=0.0, sigma=0.8, size=n_blocks)
    degrees = np.maximum(
        (degrees * block_boost[np.arange(n) // block_size]).astype(np.int64), 1
    )
    rows = np.repeat(np.arange(n, dtype=np.int64), degrees)
    nnz = rows.size
    local_mask = rng.random(nnz) < locality

    # Local links: uniform within the row's host block.
    block_starts = (rows // block_size) * block_size
    block_lens = np.minimum(block_size, n - block_starts)
    cols_local = block_starts + (rng.random(nnz) * block_lens).astype(np.int64)

    # Hub links: pick a hub host (block), then a Zipf-popular page in it.
    hub_block_base = rng.permutation(n - hub_block_size)[:n_hub_blocks]
    n_src_blocks = (n + block_size - 1) // block_size
    primary_of_block = zipf_sample(rng, n_hub_blocks, n_src_blocks, hub_alpha)
    per_link = zipf_sample(rng, n_hub_blocks, nnz, hub_alpha)
    use_per_link = rng.random(nnz) < escape_frac
    chosen = np.where(use_per_link, per_link, primary_of_block[rows // block_size])
    page_in_block = zipf_sample(rng, hub_block_size, nnz, page_alpha)
    cols_hub = hub_block_base[chosen] + page_in_block

    cols = np.where(local_mask, cols_local, cols_hub)
    return COOMatrix(n, n, rows, cols, None, name).canonicalize()


def road_network(
    n: int,
    mean_degree: float = 2.2,
    long_range_frac: float = 0.12,
    min_long: int = 64,
    max_long_frac: float = 1 / 32,
    seed: int = 0,
    name: str = "road",
) -> COOMatrix:
    """Synthetic road network (europe_osm style).

    Nearly constant degree ~2; neighbors are tiny diagonal offsets
    (road segments under a spatial vertex ordering) plus a fraction of
    log-uniform multi-scale offsets standing in for the 2D adjacency a
    1D ordering cannot keep local.  Column reuse is negligible by
    design: every column is referenced by ~2 rows, usually in the same
    partition.
    """
    rng = np.random.default_rng(seed)
    degrees = rng.poisson(mean_degree, size=n).astype(np.int64)
    degrees[degrees < 1] = 1
    rows = np.repeat(np.arange(n, dtype=np.int64), degrees)
    nnz = rows.size

    short = rng.integers(1, 4, size=nnz) * _signs(rng, nnz)
    max_long = max(int(n * max_long_frac), min_long * 2)
    log_mag = rng.uniform(np.log(min_long), np.log(max_long), size=nnz)
    long = np.exp(log_mag).astype(np.int64) * _signs(rng, nnz)
    use_long = rng.random(nnz) < long_range_frac
    offsets = np.where(use_long, long, short)
    cols = np.clip(rows + offsets, 0, n - 1)
    return COOMatrix(n, n, rows, cols, None, name).canonicalize()


def banded_fem(
    n: int,
    mean_degree: float = 48.0,
    band: int = 160,
    seed: int = 0,
    name: str = "fem",
) -> COOMatrix:
    """Banded 3D-FEM matrix (queen_4147 style).

    Nonzeros concentrate in a narrow band around the diagonal, so a
    node's remote requests all target immediately adjacent partitions:
    temporal destination locality is essentially perfect (Table 4 gives
    1.00 for queen) and boundary columns are re-requested by every row
    within band reach, giving heavy filter/coalesce gains.
    """
    rng = np.random.default_rng(seed)
    degrees = np.maximum(
        rng.normal(mean_degree, mean_degree / 8, size=n).astype(np.int64), 4
    )
    rows = np.repeat(np.arange(n, dtype=np.int64), degrees)
    nnz = rows.size
    offsets = rng.integers(-band, band + 1, size=nnz)
    cols = np.clip(rows + offsets, 0, n - 1)
    return COOMatrix(n, n, rows, cols, None, name).canonicalize()


def coupled_flow(
    n: int,
    mean_degree: float = 26.0,
    band: int = 48,
    n_fields: int = 3,
    coupling_frac: float = 0.3,
    seed: int = 0,
    name: str = "flow",
) -> COOMatrix:
    """Coupled flow matrix (stokes style).

    A Stokes discretization orders the velocity/pressure fields as
    consecutive segments; each row couples within its own segment band
    and to the matching location in the *next* field segment (the
    B / Bᵀ off-diagonal blocks).  That yields a band plus one coupling
    stripe per row: about two remote destinations per request window
    and moderate reuse.
    """
    rng = np.random.default_rng(seed)
    if n_fields < 2:
        raise ValueError("need at least two fields for coupling")
    degrees = np.maximum(
        rng.normal(mean_degree, mean_degree / 6, size=n).astype(np.int64), 3
    )
    rows = np.repeat(np.arange(n, dtype=np.int64), degrees)
    nnz = rows.size
    seg = n // n_fields

    in_band = rng.integers(-band, band + 1, size=nnz)
    # Field f couples to field f+1; the last field wraps to field 0.
    field_of_row = np.minimum(rows // seg, n_fields - 1)
    shift = np.where(field_of_row < n_fields - 1, seg, -(n_fields - 1) * seg)
    jitter = rng.integers(-band, band + 1, size=nnz)
    coupled = shift + jitter
    use_coupling = rng.random(nnz) < coupling_frac
    offsets = np.where(use_coupling, coupled, in_band)
    cols = np.clip(rows + offsets, 0, n - 1)
    return COOMatrix(n, n, rows, cols, None, name).canonicalize()
