"""Sparse matrix containers.

Two formats are used throughout the reproduction:

- :class:`COOMatrix` — coordinate triplets, the output format of the
  synthetic generators and the format the communication analyses
  consume (a nonzero's column id *is* the property index it reads).
- :class:`CSRMatrix` — compressed sparse rows, used by the compute
  models and reference kernels.

Values are optional: the communication study only needs structure, and
keeping structure-only matrices halves memory for the large traces.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

__all__ = ["COOMatrix", "CSRMatrix"]


@dataclass
class COOMatrix:
    """Coordinate-format sparse matrix.

    ``rows[k], cols[k]`` give the coordinates of nonzero ``k``; nonzeros
    are kept sorted by (row, col) and deduplicated by
    :meth:`canonicalize`, which generators call before returning.
    """

    n_rows: int
    n_cols: int
    rows: np.ndarray
    cols: np.ndarray
    vals: Optional[np.ndarray] = None
    name: str = ""
    #: Lazily computed by :meth:`structural_digest`; excluded from
    #: comparisons so digested and fresh instances still compare equal.
    _structural_digest: Optional[str] = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self):
        self.rows = np.asarray(self.rows, dtype=np.int64)
        self.cols = np.asarray(self.cols, dtype=np.int64)
        if self.rows.shape != self.cols.shape:
            raise ValueError("rows and cols must have equal length")
        if self.vals is not None:
            self.vals = np.asarray(self.vals, dtype=np.float64)
            if self.vals.shape != self.rows.shape:
                raise ValueError("vals length must match rows/cols")
        if self.nnz and (self.rows.min() < 0 or self.rows.max() >= self.n_rows):
            raise ValueError("row index out of range")
        if self.nnz and (self.cols.min() < 0 or self.cols.max() >= self.n_cols):
            raise ValueError("col index out of range")

    @property
    def nnz(self) -> int:
        return int(self.rows.size)

    @property
    def shape(self) -> tuple:
        return (self.n_rows, self.n_cols)

    def structural_digest(self) -> str:
        """Hex digest of the matrix *structure* (shape + coordinates).

        Values and name are deliberately excluded: every communication
        analysis depends only on which coordinates are nonzero.  The
        digest is computed once and cached on the instance — it keys
        the :class:`repro.partition.tracecache.TraceCache`.
        """
        if self._structural_digest is None:
            h = hashlib.blake2b(digest_size=16)
            h.update(np.array([self.n_rows, self.n_cols], dtype=np.int64).tobytes())
            h.update(np.ascontiguousarray(self.rows).tobytes())
            h.update(np.ascontiguousarray(self.cols).tobytes())
            self._structural_digest = h.hexdigest()
        return self._structural_digest

    def canonicalize(self) -> "COOMatrix":
        """Return a copy sorted by (row, col) with duplicates removed."""
        keys = self.rows * self.n_cols + self.cols
        order = np.argsort(keys, kind="stable")
        keys = keys[order]
        keep = np.ones(keys.size, dtype=bool)
        keep[1:] = keys[1:] != keys[:-1]
        sel = order[keep]
        vals = self.vals[sel] if self.vals is not None else None
        return COOMatrix(
            self.n_rows, self.n_cols, self.rows[sel], self.cols[sel], vals, self.name
        )

    def with_random_values(self, seed: int = 0) -> "COOMatrix":
        """Attach uniform(0.1, 1.0) values (for numeric kernel tests)."""
        rng = np.random.default_rng(seed)
        vals = rng.uniform(0.1, 1.0, size=self.nnz)
        return COOMatrix(self.n_rows, self.n_cols, self.rows, self.cols, vals, self.name)

    def to_csr(self) -> "CSRMatrix":
        order = np.argsort(self.rows * self.n_cols + self.cols, kind="stable")
        rows, cols = self.rows[order], self.cols[order]
        vals = self.vals[order] if self.vals is not None else None
        indptr = np.zeros(self.n_rows + 1, dtype=np.int64)
        np.add.at(indptr, rows + 1, 1)
        np.cumsum(indptr, out=indptr)
        return CSRMatrix(self.n_rows, self.n_cols, indptr, cols, vals, self.name)

    def to_scipy(self):
        import scipy.sparse as sp

        vals = self.vals if self.vals is not None else np.ones(self.nnz)
        return sp.coo_matrix(
            (vals, (self.rows, self.cols)), shape=(self.n_rows, self.n_cols)
        )

    # -- structure statistics used by the motivation analyses ---------

    def row_degrees(self) -> np.ndarray:
        return np.bincount(self.rows, minlength=self.n_rows)

    def col_degrees(self) -> np.ndarray:
        return np.bincount(self.cols, minlength=self.n_cols)

    def bandwidth(self) -> int:
        """Maximum |col - row| over nonzeros (diagonal concentration)."""
        if not self.nnz:
            return 0
        return int(np.abs(self.cols - self.rows).max())

    def mean_abs_offset(self) -> float:
        """Mean |col - row|, a robust diagonal-concentration measure."""
        if not self.nnz:
            return 0.0
        return float(np.abs(self.cols - self.rows).mean())


@dataclass
class CSRMatrix:
    """Compressed-sparse-row matrix (structure plus optional values)."""

    n_rows: int
    n_cols: int
    indptr: np.ndarray
    indices: np.ndarray
    data: Optional[np.ndarray] = None
    name: str = ""

    def __post_init__(self):
        self.indptr = np.asarray(self.indptr, dtype=np.int64)
        self.indices = np.asarray(self.indices, dtype=np.int64)
        if self.indptr.size != self.n_rows + 1:
            raise ValueError("indptr must have n_rows + 1 entries")
        if self.indptr[0] != 0 or self.indptr[-1] != self.indices.size:
            raise ValueError("indptr endpoints inconsistent with indices")
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be nondecreasing")
        if self.data is not None:
            self.data = np.asarray(self.data, dtype=np.float64)
            if self.data.shape != self.indices.shape:
                raise ValueError("data length must match indices")

    @property
    def nnz(self) -> int:
        return int(self.indices.size)

    @property
    def shape(self) -> tuple:
        return (self.n_rows, self.n_cols)

    def row_slice(self, r: int) -> np.ndarray:
        return self.indices[self.indptr[r] : self.indptr[r + 1]]

    def to_coo(self) -> COOMatrix:
        rows = np.repeat(np.arange(self.n_rows, dtype=np.int64), np.diff(self.indptr))
        return COOMatrix(self.n_rows, self.n_cols, rows, self.indices, self.data, self.name)

    def to_scipy(self):
        import scipy.sparse as sp

        data = self.data if self.data is not None else np.ones(self.nnz)
        return sp.csr_matrix(
            (data, self.indices, self.indptr), shape=(self.n_rows, self.n_cols)
        )

    @staticmethod
    def from_scipy(mat, name: str = "") -> "CSRMatrix":
        csr = mat.tocsr()
        return CSRMatrix(
            csr.shape[0],
            csr.shape[1],
            csr.indptr.astype(np.int64),
            csr.indices.astype(np.int64),
            csr.data.astype(np.float64),
            name,
        )
