"""Memory-mapped COO shard storage for out-of-core traces.

The paper evaluates arabic-2005 at ~640M nonzeros; holding such a
matrix (plus its partition traces and per-scheme selections) in one
process's RAM is what kept the reproduction at toy scale (ROADMAP
item 3).  This module stores a canonical COO matrix as a directory of
bounded-size shards, each a pair of plain ``.npy`` files opened with
``mmap_mode="r"`` — the OS pages nonzeros in and out on demand, so the
*resident* cost of a matrix is a window, not the matrix.

Layout of a shard directory::

    manifest.json            # shape, nnz, digest, per-shard ranges
    shard-00000.rows.npy     # int64, canonical (row, col) order
    shard-00000.cols.npy
    shard-00001.rows.npy
    ...

Invariants (enforced by :class:`ShardWriter`):

- shards are *canonical*: globally sorted by ``(row, col)`` with
  duplicates removed, exactly like
  :meth:`repro.sparse.matrix.COOMatrix.canonicalize`;
- shard boundaries fall on row boundaries, so any contiguous row range
  (a 1D partition block) maps to one contiguous global nnz range;
- :meth:`ShardedCOOMatrix.structural_digest` is byte-identical to the
  digest of the materialized :class:`~repro.sparse.matrix.COOMatrix`,
  so every digest-keyed cache (``TraceCache``, ``SimJob`` results)
  treats sharded and in-memory copies of one structure as the same
  entry — no cache-key or ``CODE_SALT`` change.
"""

from __future__ import annotations

import hashlib
import json
import mmap
import os
import shutil
from typing import Iterable, Iterator, List, Optional, Tuple

import numpy as np

from repro import telemetry
from repro.sparse.matrix import COOMatrix

__all__ = [
    "DEFAULT_SHARD_NNZ",
    "ShardWriter",
    "ShardedCOOMatrix",
    "as_coo",
    "drop_pages",
    "is_sharded",
    "shard_root",
    "write_sharded",
]

#: Target nonzeros per shard (~32 MB of int64 rows+cols at the default).
DEFAULT_SHARD_NNZ = int(os.environ.get("REPRO_SHARD_NNZ", str(1 << 21)))

_MANIFEST = "manifest.json"
_SCHEMA = "repro.shards/v1"

#: Digest header layout shared with COOMatrix.structural_digest.
_DIGEST_SIZE = 16


def drop_pages(arr: np.ndarray) -> None:
    """Advise the kernel that a memmapped array's pages can be freed.

    Keeps the *peak* resident set of streaming passes bounded even when
    there is no memory pressure.  Best-effort: silently a no-op for
    non-memmap arrays or platforms without ``madvise``.
    """
    base = arr
    while isinstance(base, np.ndarray) and not isinstance(base, np.memmap):
        base = base.base
    mm = getattr(base, "_mmap", None)
    if mm is None:
        return
    try:
        if getattr(base, "mode", "r") != "r":
            base.flush()
        mm.madvise(mmap.MADV_DONTNEED)
    except (AttributeError, OSError, ValueError):
        pass


def shard_root() -> str:
    """Directory benchmark shard stores are generated under.

    ``$REPRO_SHARD_DIR`` wins; the default lives next to the result
    cache in the user's home so repeat runs (and forked engine workers)
    reuse generated shards instead of regenerating them.
    """
    env = os.environ.get("REPRO_SHARD_DIR")
    if env:
        return env
    return os.path.join(os.path.expanduser("~"), ".cache", "repro", "shards")


class ShardWriter:
    """Stream canonical COO chunks into a shard directory.

    ``append`` takes chunks that are already canonical (sorted,
    deduplicated) and row-aligned — the contract
    :func:`repro.sparse.synthetic.stream_chunks` provides.  Rows are
    hashed incrementally as chunks arrive; columns are hashed from disk
    at :meth:`finalize` (the digest byte order is all rows then all
    cols, matching ``COOMatrix.structural_digest``), so no O(nnz)
    buffer ever exists in memory.
    """

    def __init__(self, path: str, n_rows: int, n_cols: int, name: str = ""):
        self.path = path
        self.n_rows = int(n_rows)
        self.n_cols = int(n_cols)
        self.name = name
        self.nnz = 0
        self._shards: List[dict] = []
        self._rows_hash = hashlib.blake2b(digest_size=_DIGEST_SIZE)
        self._rows_hash.update(
            np.array([self.n_rows, self.n_cols], dtype=np.int64).tobytes()
        )
        self._last_row = -1
        self._finalized = False
        os.makedirs(path, exist_ok=True)

    def append(self, rows: np.ndarray, cols: np.ndarray) -> None:
        """Write one canonical chunk as the next shard."""
        if self._finalized:
            raise RuntimeError("writer already finalized")
        rows = np.ascontiguousarray(rows, dtype=np.int64)
        cols = np.ascontiguousarray(cols, dtype=np.int64)
        if rows.shape != cols.shape:
            raise ValueError("rows and cols must have equal length")
        if rows.size == 0:
            return
        if rows[0] < self._last_row:
            raise ValueError(
                "chunks must arrive in global row order "
                f"(got row {int(rows[0])} after {self._last_row})"
            )
        i = len(self._shards)
        row_path = os.path.join(self.path, f"shard-{i:05d}.rows.npy")
        col_path = os.path.join(self.path, f"shard-{i:05d}.cols.npy")
        np.save(row_path, rows)
        np.save(col_path, cols)
        self._rows_hash.update(rows.tobytes())
        self._shards.append({
            "nnz": int(rows.size),
            "row_min": int(rows[0]),
            "row_max": int(rows[-1]),
        })
        self.nnz += int(rows.size)
        self._last_row = int(rows[-1])

    def finalize(self) -> "ShardedCOOMatrix":
        """Hash columns from disk, write the manifest, open the store."""
        if self._finalized:
            raise RuntimeError("writer already finalized")
        h = self._rows_hash
        for i in range(len(self._shards)):
            cols = np.load(
                os.path.join(self.path, f"shard-{i:05d}.cols.npy"),
                mmap_mode="r",
            )
            h.update(np.ascontiguousarray(cols).tobytes())
            drop_pages(cols)
        manifest = {
            "schema": _SCHEMA,
            "name": self.name,
            "n_rows": self.n_rows,
            "n_cols": self.n_cols,
            "nnz": self.nnz,
            "digest": h.hexdigest(),
            "shards": self._shards,
        }
        tmp = os.path.join(self.path, _MANIFEST + ".tmp")
        with open(tmp, "w") as fh:
            json.dump(manifest, fh, indent=1)
            fh.write("\n")
        os.replace(tmp, os.path.join(self.path, _MANIFEST))
        self._finalized = True
        return ShardedCOOMatrix(self.path)


def write_sharded(
    path: str,
    n_rows: int,
    n_cols: int,
    chunks: Iterable[Tuple[np.ndarray, np.ndarray]],
    name: str = "",
) -> "ShardedCOOMatrix":
    """Drain a canonical chunk iterator into a new shard store.

    Written to a sibling temp directory and atomically renamed into
    place, so concurrent writers (forked engine workers racing to
    generate the same benchmark) cannot observe a half-written store.
    """
    if os.path.exists(os.path.join(path, _MANIFEST)):
        return ShardedCOOMatrix(path)
    tmp = path + f".tmp-{os.getpid()}"
    if os.path.exists(tmp):
        shutil.rmtree(tmp)
    writer = ShardWriter(tmp, n_rows, n_cols, name=name)
    try:
        for rows, cols in chunks:
            writer.append(rows, cols)
        writer.finalize()
        try:
            os.replace(tmp, path)
        except OSError:
            # Lost the race: another process renamed its copy first.
            shutil.rmtree(tmp, ignore_errors=True)
    except BaseException:
        shutil.rmtree(tmp, ignore_errors=True)
        raise
    return ShardedCOOMatrix(path)


class ShardedCOOMatrix:
    """Read side of a shard directory — a bounded-memory COOMatrix stand-in.

    Exposes the subset of :class:`~repro.sparse.matrix.COOMatrix` the
    trace pipeline needs (``n_rows``/``n_cols``/``nnz``/``name``/
    ``structural_digest``) plus windowed accessors.  Deliberately does
    *not* expose ``.rows``/``.cols`` arrays: anything that would
    materialize the whole matrix must go through :meth:`to_coo` and say
    so.
    """

    def __init__(self, path: str):
        self.path = path
        with open(os.path.join(path, _MANIFEST)) as fh:
            manifest = json.load(fh)
        if manifest.get("schema") != _SCHEMA:
            raise ValueError(
                f"{path}: unsupported shard schema {manifest.get('schema')!r}"
            )
        self.name: str = manifest["name"]
        self.n_rows: int = int(manifest["n_rows"])
        self.n_cols: int = int(manifest["n_cols"])
        self._nnz: int = int(manifest["nnz"])
        self._digest: str = manifest["digest"]
        self._shard_meta: List[dict] = manifest["shards"]
        #: Global nnz offset of each shard boundary (len n_shards + 1).
        self.shard_offsets = np.concatenate([
            [0], np.cumsum([s["nnz"] for s in self._shard_meta]),
        ]).astype(np.int64)

    # -- COOMatrix-compatible surface ---------------------------------

    @property
    def nnz(self) -> int:
        return self._nnz

    @property
    def shape(self) -> tuple:
        return (self.n_rows, self.n_cols)

    @property
    def n_shards(self) -> int:
        return len(self._shard_meta)

    @property
    def resident_nnz(self) -> int:
        """Weight for RAM-budgeted memos: metadata only, ~zero."""
        return 0

    def structural_digest(self) -> str:
        """Identical to the materialized COOMatrix's digest (manifest-
        cached, computed incrementally at write time)."""
        return self._digest

    # -- windowed access ----------------------------------------------

    def shard_rows(self, i: int) -> np.ndarray:
        return np.load(
            os.path.join(self.path, f"shard-{i:05d}.rows.npy"), mmap_mode="r"
        )

    def shard_cols(self, i: int) -> np.ndarray:
        return np.load(
            os.path.join(self.path, f"shard-{i:05d}.cols.npy"), mmap_mode="r"
        )

    def iter_chunks(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Yield each shard's ``(rows, cols)`` memmaps in global order."""
        for i in range(self.n_shards):
            yield self.shard_rows(i), self.shard_cols(i)

    def nnz_before_row(self, row: int) -> int:
        """Global nnz offset of the first nonzero with ``rows >= row``.

        Row-major canonical order makes this a shard bisection plus one
        in-shard ``searchsorted`` — O(log) pages touched.
        """
        if row <= 0:
            return 0
        if row > self.n_rows:
            raise ValueError(f"row {row} out of range")
        lo = 0
        for i, meta in enumerate(self._shard_meta):
            if meta["row_min"] >= row:
                return int(self.shard_offsets[i])
            if meta["row_max"] >= row:
                rows = self.shard_rows(i)
                off = int(np.searchsorted(rows, row, side="left"))
                drop_pages(rows)
                return int(self.shard_offsets[i]) + off
            lo = int(self.shard_offsets[i + 1])
        return lo

    def cols_slice(self, start: int, stop: int) -> np.ndarray:
        """Materialize ``cols[start:stop]`` of the canonical stream.

        The caller bounds the window (a 1D partition block, a kernel
        batch); only the shards overlapping it are touched.
        """
        if not 0 <= start <= stop <= self._nnz:
            raise ValueError(f"bad nnz window [{start}, {stop})")
        if start == stop:
            return np.zeros(0, dtype=np.int64)
        first = int(np.searchsorted(self.shard_offsets, start, "right")) - 1
        out = np.empty(stop - start, dtype=np.int64)
        filled = 0
        for i in range(first, self.n_shards):
            s0 = int(self.shard_offsets[i])
            if s0 >= stop:
                break
            cols = self.shard_cols(i)
            a = max(start - s0, 0)
            b = min(stop - s0, cols.shape[0])
            out[filled:filled + (b - a)] = cols[a:b]
            filled += b - a
            drop_pages(cols)
        telemetry.count("sparse.shards.window_nnz", int(out.size))
        return out

    def row_nnz(self) -> np.ndarray:
        """Per-row nonzero counts, accumulated one shard at a time
        (for nnz-balanced partitioning)."""
        counts = np.zeros(self.n_rows, dtype=np.int64)
        for rows, _ in self.iter_chunks():
            counts += np.bincount(rows, minlength=self.n_rows)
            drop_pages(rows)
        return counts

    def unique_col_count(self) -> int:
        """Number of distinct columns, one shard resident at a time.

        A presence bitmap over ``n_cols`` costs one byte per column —
        cheap even at paper scale — versus concatenating every shard.
        """
        seen = np.zeros(self.n_cols, dtype=bool)
        for _, cols in self.iter_chunks():
            seen[cols] = True
            drop_pages(cols)
        return int(np.count_nonzero(seen))

    def to_coo(self) -> COOMatrix:
        """Materialize the whole matrix in RAM (tests, small stores)."""
        rows = np.concatenate(
            [np.asarray(r) for r, _ in self.iter_chunks()]
        ) if self.n_shards else np.zeros(0, dtype=np.int64)
        cols = np.concatenate(
            [np.asarray(c) for _, c in self.iter_chunks()]
        ) if self.n_shards else np.zeros(0, dtype=np.int64)
        mat = COOMatrix(self.n_rows, self.n_cols, rows, cols, None, self.name)
        mat._structural_digest = self._digest
        return mat

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ShardedCOOMatrix({self.name!r}, {self.n_rows}x"
                f"{self.n_cols}, nnz={self._nnz}, shards={self.n_shards})")


def is_sharded(matrix) -> bool:
    """Duck-typed check used by the partition/cache layers."""
    return isinstance(matrix, ShardedCOOMatrix)


def as_coo(matrix) -> COOMatrix:
    """Densifying escape hatch for paths that need full ``rows``/``cols``
    arrays (packet-level DES construction, edge sampling).

    Dense matrices pass through untouched.  For sharded ones this
    trades the bounded resident set for whole-array access — callers
    on the model's hot path should use the windowed APIs instead.
    """
    return matrix.to_coo() if is_sharded(matrix) else matrix


def from_coo(
    matrix: COOMatrix, path: str, shard_nnz: Optional[int] = None
) -> ShardedCOOMatrix:
    """Shard an in-memory canonical matrix (tests, imported matrices).

    Chunk boundaries are pushed to the next row boundary so the
    row-alignment invariant holds.
    """
    shard_nnz = shard_nnz or DEFAULT_SHARD_NNZ

    def chunks():
        rows, cols = matrix.rows, matrix.cols
        start = 0
        while start < matrix.nnz:
            stop = min(start + shard_nnz, matrix.nnz)
            if stop < matrix.nnz:
                # extend to include all of the row straddling the cut
                stop = int(np.searchsorted(rows, rows[stop - 1], "right"))
            yield rows[start:stop], cols[start:stop]
            start = stop

    return write_sharded(path, matrix.n_rows, matrix.n_cols, chunks(),
                         name=matrix.name)
