"""SpGeMM: the paper's stated future-work kernel (§11).

``C = A @ B`` with *both* matrices sparse.  Under 1D row partitioning,
computing node p's rows of C requires, for every nonzero (i, j) of its
A rows, the entire row j of B — a *variable-size* property.  This
module provides the numerically validated reference kernel and the
communication analysis NetSparse would need: row-request traces (the
idx stream, exactly as for SpMM, but with per-idx payload weights),
which the existing filter/coalesce machinery consumes unchanged, plus
the byte accounting that a segmented Property Cache would have to tile
(§6.2.2).
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from repro.core.filtering import filter_and_coalesce
from repro.partition import OneDPartition
from repro.sparse.matrix import COOMatrix, CSRMatrix
from repro.sparse.shards import as_coo

__all__ = ["spgemm", "SpGemmCommStats", "spgemm_comm_analysis"]


def spgemm(a: COOMatrix, b: COOMatrix) -> CSRMatrix:
    """Reference sparse x sparse multiplication (via scipy)."""
    a, b = as_coo(a), as_coo(b)
    if a.n_cols != b.n_rows:
        raise ValueError(
            f"inner dimensions differ: {a.n_cols} vs {b.n_rows}"
        )
    product = (a.to_scipy().tocsr() @ b.to_scipy().tocsr()).tocsr()
    return CSRMatrix.from_scipy(product, name=f"{a.name}@{b.name}")


@dataclass
class SpGemmCommStats:
    """Communication accounting for distributed SpGeMM on N nodes."""

    n_nodes: int
    row_requests: int             # remote B-row requests before dedup
    unique_row_requests: int      # after per-node dedup (useful)
    issued_after_fc: int          # after NetSparse filter/coalesce
    useful_bytes: float           # unique remote B-row payload bytes
    sa_bytes: float               # bytes if every request is served
    su_bytes: float               # bytes if B is replicated everywhere
    max_row_bytes: int            # largest single property (cache tiling)

    @property
    def fc_rate(self) -> float:
        if self.row_requests == 0:
            return 0.0
        return 1.0 - self.issued_after_fc / self.row_requests

    @property
    def su_overfetch(self) -> float:
        return self.su_bytes / max(self.useful_bytes, 1.0)


def spgemm_comm_analysis(
    a: COOMatrix,
    b: COOMatrix,
    n_nodes: int,
    bytes_per_nonzero: int = 8,
    n_units: int = 16,
    inflight_frac: float = 0.03,
) -> SpGemmCommStats:
    """Analyze the remote B-row traffic of a 1D-partitioned SpGeMM.

    The request stream per node is A's remote column ids in scan order
    — identical in shape to the SpMM PR stream, so the Idx Filter and
    Pending PR Table apply verbatim.  Payloads differ: row j of B costs
    ``nnz(B[j]) * bytes_per_nonzero`` wire bytes.
    """
    a, b = as_coo(a), as_coo(b)
    if a.n_cols != b.n_rows:
        raise ValueError("inner dimensions differ")
    part = OneDPartition(a, n_nodes)
    b_row_nnz = np.bincount(b.rows, minlength=b.n_rows)
    row_bytes = b_row_nnz * bytes_per_nonzero

    requests = 0
    unique_requests = 0
    issued = 0
    useful_bytes = 0.0
    sa_bytes = 0.0
    for tr in part.node_traces():
        remote = tr.remote_idxs
        requests += remote.size
        if remote.size == 0:
            continue
        uniq = np.unique(remote)
        unique_requests += uniq.size
        useful_bytes += float(row_bytes[uniq].sum())
        sa_bytes += float(row_bytes[remote].sum())
        fr = filter_and_coalesce(
            remote,
            n_units=n_units,
            batch_size=max(remote.size // (n_units * 4), 1),
            inflight_window=max(int(inflight_frac * remote.size), 1),
        )
        issued += fr.n_issued

    total_b_bytes = float(row_bytes.sum())
    su_bytes = 0.0
    for p in range(n_nodes):
        own = row_bytes[part.col_starts[p]:part.col_starts[p + 1]].sum()
        su_bytes += total_b_bytes - float(own)

    return SpGemmCommStats(
        n_nodes=n_nodes,
        row_requests=requests,
        unique_row_requests=unique_requests,
        issued_after_fc=issued,
        useful_bytes=useful_bytes,
        sa_bytes=sa_bytes,
        su_bytes=su_bytes,
        max_row_bytes=int(row_bytes.max()) if row_bytes.size else 0,
    )
