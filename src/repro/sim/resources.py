"""Blocking stores and counted resources for the DES engine.

:class:`Store` is the workhorse: a bounded FIFO whose ``put`` blocks
when full.  Chained stores therefore propagate backpressure upstream,
which is exactly how the paper's lossless InfiniBand-like fabric and the
NIC Tx/Rx hardware queues behave ("applies backpressure when network
queues get full", §7.1).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from repro.sim.engine import Event, Simulator

__all__ = ["Store", "Resource"]


class Store:
    """Bounded FIFO channel between processes.

    ``put(item)`` and ``get()`` return events to ``yield`` on.  Puts
    complete in request order once space is available; gets complete in
    request order once an item is available.
    """

    def __init__(self, sim: Simulator, capacity: float = float("inf"), name: str = ""):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.items: Deque[Any] = deque()
        self._put_waiters: Deque[tuple] = deque()  # (event, item)
        self._get_waiters: Deque[Event] = deque()
        # Peak-occupancy statistic, useful for sizing hardware buffers.
        self.max_occupancy = 0

    def __len__(self) -> int:
        return len(self.items)

    @property
    def is_full(self) -> bool:
        return len(self.items) >= self.capacity

    def put(self, item: Any) -> Event:
        ev = Event(self.sim)
        self._put_waiters.append((ev, item))
        self._drain()
        return ev

    def get(self) -> Event:
        ev = Event(self.sim)
        self._get_waiters.append(ev)
        self._drain()
        return ev

    def try_put(self, item: Any) -> bool:
        """Non-blocking put; False when the store is full."""
        if self.is_full:
            return False
        self.items.append(item)
        self.max_occupancy = max(self.max_occupancy, len(self.items))
        self._drain()
        return True

    def try_get(self) -> Optional[Any]:
        """Non-blocking get; None when empty (items may not be None)."""
        if not self.items:
            return None
        item = self.items.popleft()
        self._drain()
        return item

    def _drain(self) -> None:
        progress = True
        while progress:
            progress = False
            while self._put_waiters and len(self.items) < self.capacity:
                ev, item = self._put_waiters.popleft()
                self.items.append(item)
                self.max_occupancy = max(self.max_occupancy, len(self.items))
                ev.succeed(item)
                progress = True
            while self._get_waiters and self.items:
                ev = self._get_waiters.popleft()
                ev.succeed(self.items.popleft())
                progress = True


class Resource:
    """A counted resource with FIFO acquisition.

    Models structural hazards such as a shared DMA engine or a cache
    port: at most ``capacity`` holders at a time, queued otherwise.
    """

    def __init__(self, sim: Simulator, capacity: int = 1):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.in_use = 0
        self._waiters: Deque[Event] = deque()

    def acquire(self) -> Event:
        ev = Event(self.sim)
        if self.in_use < self.capacity:
            self.in_use += 1
            ev.succeed(self)
        else:
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        if self.in_use <= 0:
            raise RuntimeError("release without matching acquire")
        if self._waiters:
            ev = self._waiters.popleft()
            ev.succeed(self)
        else:
            self.in_use -= 1

    def request(self):
        """Context-manager style usage inside a process::

            with (yield res.acquire()) if False else ...  # not supported

        Provided for API symmetry; acquire/release is the primary API.
        """
        return _ResourceContext(self)


class _ResourceContext:
    def __init__(self, resource: Resource):
        self.resource = resource

    def __enter__(self):
        return self.resource

    def __exit__(self, *exc):
        self.resource.release()
        return False
