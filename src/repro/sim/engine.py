"""Event loop, clock, and generator-coroutine processes.

The design follows the classic event-wheel structure of SimPy and SST:
a priority queue of ``(time, priority, sequence)``-ordered events, and
processes expressed as Python generators that ``yield`` the events they
wait on.  Determinism matters more than raw flexibility here, so ties in
time are broken first by an explicit integer priority and then by
schedule order (a monotonically increasing sequence number).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional

__all__ = ["Event", "Timeout", "Process", "Interrupt", "AllOf", "AnyOf", "Simulator"]

#: Default event priority.  Lower fires first among equal-time events.
NORMAL = 0
#: Priority used by :class:`Timeout` created through ``Simulator.timeout``.
URGENT = -1


class Interrupt(Exception):
    """Thrown into a process that another process interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence in simulated time.

    Events move through three states: *pending* (created, not yet
    triggered), *triggered* (given a value, scheduled to fire), and
    *processed* (callbacks ran).  Processes wait on events by yielding
    them; the simulator resumes the process with the event's value when
    the event fires.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "triggered", "processed")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: List[Callable[["Event"], None]] = []
        self._value: Any = None
        self._ok = True
        self.triggered = False
        self.processed = False

    @property
    def value(self) -> Any:
        return self._value

    @property
    def ok(self) -> bool:
        return self._ok

    def succeed(self, value: Any = None, priority: int = NORMAL) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise RuntimeError("event already triggered")
        self.triggered = True
        self._value = value
        self._ok = True
        self.sim._schedule_event(self, 0.0, priority)
        return self

    def fail(self, exc: BaseException, priority: int = NORMAL) -> "Event":
        """Trigger the event as failed; waiting processes see ``exc``."""
        if self.triggered:
            raise RuntimeError("event already triggered")
        self.triggered = True
        self._value = exc
        self._ok = False
        self.sim._schedule_event(self, 0.0, priority)
        return self


class Timeout(Event):
    """An event that fires after a fixed delay."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self.delay = delay
        self.triggered = True
        self._value = value
        sim._schedule_event(self, delay, URGENT)


class _Condition(Event):
    """Base for AllOf/AnyOf composite wait conditions."""

    __slots__ = ("events", "_n_fired")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = list(events)
        self._n_fired = 0
        if not self.events:
            self.succeed({})
            return
        for ev in self.events:
            if ev.processed:
                self._on_fire(ev)
            else:
                ev.callbacks.append(self._on_fire)

    def _on_fire(self, ev: Event) -> None:
        raise NotImplementedError

    def _collect(self) -> dict:
        return {
            i: ev.value for i, ev in enumerate(self.events) if ev.triggered
        }


class AllOf(_Condition):
    """Fires once every constituent event has fired."""

    __slots__ = ()

    def _on_fire(self, ev: Event) -> None:
        if not ev.ok and not self.triggered:
            self.fail(ev.value)
            return
        self._n_fired += 1
        if self._n_fired == len(self.events) and not self.triggered:
            self.succeed(self._collect())


class AnyOf(_Condition):
    """Fires as soon as any constituent event fires."""

    __slots__ = ()

    def _on_fire(self, ev: Event) -> None:
        if self.triggered:
            return
        if not ev.ok:
            self.fail(ev.value)
        else:
            self.succeed(self._collect())


class Process(Event):
    """A generator coroutine driven by the simulator.

    The generator yields :class:`Event` objects (or plain numbers, which
    are sugar for :class:`Timeout`).  A process is itself an event that
    fires with the generator's return value, so processes can wait on
    each other.
    """

    __slots__ = ("generator", "_waiting_on", "name")

    def __init__(
        self,
        sim: "Simulator",
        generator: Generator[Any, Any, Any],
        name: str = "",
    ):
        super().__init__(sim)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on: Optional[Event] = None
        # Kick-start on the next event-loop iteration at the current time.
        init = Event(sim)
        init.callbacks.append(self._resume)
        init.succeed(None, priority=URGENT)

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self.triggered:
            raise RuntimeError(f"cannot interrupt finished process {self.name}")
        waited = self._waiting_on
        if waited is not None and self._resume in waited.callbacks:
            waited.callbacks.remove(self._resume)
        self._waiting_on = None
        wake = Event(self.sim)
        wake.callbacks.append(lambda ev: self._step(Interrupt(cause), throw=True))
        wake.succeed(None, priority=URGENT)

    def _resume(self, ev: Event) -> None:
        self._waiting_on = None
        if ev.ok:
            self._step(ev.value, throw=False)
        else:
            self._step(ev.value, throw=True)

    def _step(self, value: Any, throw: bool) -> None:
        try:
            if throw:
                exc = value if isinstance(value, BaseException) else RuntimeError(value)
                target = self.generator.throw(exc)
            else:
                target = self.generator.send(value)
        except StopIteration as stop:
            if not self.triggered:
                self.succeed(stop.value)
            return
        except Interrupt:
            if not self.triggered:
                self.succeed(None)
            return
        except Exception as exc:
            # The process died: fail its event so waiters see the
            # exception (unobserved failures are silent by design).
            if not self.triggered:
                self.fail(exc)
            return
        if isinstance(target, (int, float)):
            target = Timeout(self.sim, float(target))
        if not isinstance(target, Event):
            raise TypeError(
                f"process {self.name!r} yielded {target!r}; expected Event or delay"
            )
        self._waiting_on = target
        if target.processed:
            # Already fired: resume on the next loop iteration.
            wake = Event(self.sim)
            wake.callbacks.append(self._resume)
            wake._value = target.value
            wake._ok = target.ok
            wake.triggered = True
            self.sim._schedule_event(wake, 0.0, URGENT)
        else:
            target.callbacks.append(self._resume)


class Simulator:
    """The event loop.

    >>> sim = Simulator()
    >>> def hello():
    ...     yield sim.timeout(5.0)
    ...     return sim.now
    >>> p = sim.process(hello())
    >>> sim.run()
    >>> p.value
    5.0
    """

    def __init__(self):
        self._queue: List = []
        self._seq = 0
        self.now: float = 0.0
        self._n_dispatched = 0
        self._next_request_id = 0

    def next_request_id(self) -> int:
        """Monotone id counter scoped to this simulator.

        Components that tag wire messages (e.g. the RIG units'
        :class:`~repro.core.rig.ReadPR`) draw ids here so a run's ids
        start at 0 and depend only on that run's event order — never on
        other simulations the process ran earlier.
        """
        rid = self._next_request_id
        self._next_request_id += 1
        return rid

    # -- scheduling ---------------------------------------------------

    def _schedule_event(self, event: Event, delay: float, priority: int) -> None:
        self._seq += 1
        heapq.heappush(self._queue, (self.now + delay, priority, self._seq, event))

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        return Process(self, generator, name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def call_at(self, time: float, fn: Callable[[], None]) -> Event:
        """Run ``fn`` at absolute simulated ``time``."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past: {time} < {self.now}")
        ev = Event(self)
        ev.callbacks.append(lambda _ev: fn())
        ev.triggered = True
        self._schedule_event(ev, time - self.now, NORMAL)
        return ev

    # -- execution ----------------------------------------------------

    def peek(self) -> float:
        """Time of the next event, or ``inf`` if none are queued."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Dispatch the single next event."""
        time, _prio, _seq, event = heapq.heappop(self._queue)
        if time < self.now:
            raise AssertionError("event queue went backwards in time")
        self.now = time
        event.processed = True
        callbacks, event.callbacks = event.callbacks, []
        self._n_dispatched += 1
        for cb in callbacks:
            cb(event)

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run until the queue drains, ``until`` time passes, or
        ``max_events`` have been dispatched (a runaway guard)."""
        dispatched = 0
        while self._queue:
            if until is not None and self.peek() > until:
                self.now = until
                return
            self.step()
            dispatched += 1
            if max_events is not None and dispatched >= max_events:
                raise RuntimeError(f"exceeded max_events={max_events}")

    @property
    def events_dispatched(self) -> int:
        return self._n_dispatched
