"""Discrete-event simulation core.

This subpackage is the simulation substrate for the packet-level
(cycle-approximate) models in :mod:`repro.network.packetsim` and the DES
variants of the NetSparse hardware components.  It provides:

- :class:`~repro.sim.engine.Simulator` — the event loop and clock.
- :class:`~repro.sim.engine.Process` — generator-coroutine processes.
- :class:`~repro.sim.resources.Store` — a bounded FIFO channel with
  blocking puts/gets (the backpressure primitive used to model lossless,
  credit-flow-controlled RDMA fabrics).
- :class:`~repro.sim.resources.Resource` — counted resource with queued
  acquisition.

The engine is deliberately small and deterministic: events at equal
timestamps fire in schedule order, which makes simulations reproducible
and testable.
"""

from repro.sim.engine import Event, Interrupt, Process, Simulator, Timeout
from repro.sim.resources import Resource, Store

__all__ = [
    "Event",
    "Interrupt",
    "Process",
    "Resource",
    "Simulator",
    "Store",
    "Timeout",
]
