"""Event-time fault injection for the DES substrates.

:class:`FaultInjector` compiles a :class:`~repro.faults.plan.FaultPlan`
into concrete injections:

- :meth:`install` wires a :class:`repro.dessim.cluster.DesCluster`:
  per-link drop functions (seeded, order-independent decisions),
  bandwidth-degradation windows, scheduled property-cache flushes,
  permanently failed client RIG units and straggler slowdowns.
- :meth:`install_packetsim` arms the generic packet-level network's
  per-link drop hook (:class:`repro.network.packetsim.PacketNetwork`).

The plan's fractional windows scale by ``horizon`` (seconds of
simulated time representing "the whole run").  Every drop decision is
drawn with :func:`~repro.faults.plan.hash_uniform` keyed by the link
name and that link's local packet ordinal — independent of global
event interleaving — so the same plan + seed always produces the same
fault event log.  An empty plan installs nothing: the simulation is
bit-identical to an uninstrumented run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro import telemetry
from repro.faults.plan import FaultPlan, hash_uniform, select_nodes

__all__ = ["FaultEvent", "FaultInjector"]


@dataclass(frozen=True)
class FaultEvent:
    """One realized injection, on the simulated clock."""

    t: float
    kind: str
    target: str
    detail: Dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {"t": self.t, "kind": self.kind, "target": self.target,
                **self.detail}


class FaultInjector:
    """Realizes one plan inside a DES simulation."""

    def __init__(self, plan: FaultPlan, horizon: float = 1.0):
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        self.plan = plan
        self.horizon = horizon
        self.events: List[FaultEvent] = []
        self.stats_dropped = 0
        self.stats_flushes = 0
        self.stats_dead_units = 0

    # -- shared helpers ------------------------------------------------

    def _log(self, t: float, kind: str, target: str, **detail) -> None:
        self.events.append(FaultEvent(float(t), kind, target, detail))

    def summary(self) -> dict:
        """Event log + counters for result ``extras``."""
        return {
            "plan": self.plan.canonical_dict(),
            "events": [e.as_dict() for e in
                       sorted(self.events,
                              key=lambda e: (e.t, e.kind, e.target))],
            "dropped": self.stats_dropped,
            "flushes": self.stats_flushes,
            "dead_units": self.stats_dead_units,
        }

    def _window(self, start_frac: float, end_frac: float):
        return start_frac * self.horizon, end_frac * self.horizon

    def _make_drop(self, sim, name: str, fault, prev=None):
        """A ``drop_fn(packet) -> bool`` for one SerialLink."""
        t0, t1 = self._window(fault.start, fault.end)
        rate = fault.loss_rate
        seed = self.plan.seed
        state = {"n": 0}

        def drop(packet) -> bool:
            if prev is not None and prev(packet):
                return True
            ordinal = state["n"]
            state["n"] += 1
            if rate <= 0.0 or not t0 <= sim.now < t1:
                return False
            if hash_uniform(seed, f"drop.{name}", ordinal) < rate:
                self.stats_dropped += 1
                telemetry.count("faults.des.drops")
                self._log(sim.now, "link.drop", name, ordinal=ordinal)
                return True
            return False

        return drop

    def _degrade_proc(self, sim, link, start: float, end: float,
                      factor: float):
        yield sim.timeout(start)
        healthy = link.bandwidth
        link.bandwidth = healthy * factor
        telemetry.count("faults.des.degrades")
        self._log(sim.now, "link.degrade", link.name, factor=factor)
        yield sim.timeout(max(end - start, 0.0))
        link.bandwidth = healthy
        self._log(sim.now, "link.restore", link.name)

    # -- DES NetSparse cluster -----------------------------------------

    def _cluster_links(self, cluster, scope: str):
        if scope == "host":
            return cluster.up_links + cluster.down_links
        if scope == "fabric":
            return list(cluster.fabric_links)
        if scope == "all":
            return cluster.up_links + cluster.down_links + list(
                cluster.fabric_links
            )
        nodes = select_nodes(scope, cluster.n_nodes, cluster.nodes_per_rack)
        return [cluster.up_links[node] for node in nodes] + [
            cluster.down_links[node] for node in nodes
        ]

    def install(self, cluster) -> "FaultInjector":
        """Arm every fault of the plan inside a ``DesCluster``.

        Must run before :meth:`~repro.dessim.cluster.DesCluster.run_gather`
        (RIG-unit failures and straggler slowdowns take effect at
        command launch).
        """
        sim = cluster.sim
        for lf in self.plan.links:
            for link in self._cluster_links(cluster, lf.scope):
                if lf.loss_rate > 0.0:
                    link.drop_fn = self._make_drop(sim, link.name, lf,
                                                   prev=link.drop_fn)
                if lf.degrade < 1.0:
                    t0, t1 = self._window(lf.start, lf.end)
                    sim.process(
                        self._degrade_proc(sim, link, t0, t1, lf.degrade),
                        name=f"fault-degrade-{link.name}",
                    )

        for cf in self.plan.caches:
            tors = (cluster.tors if cf.rack < 0
                    else [t for t in cluster.tors if t.rack == cf.rack])
            for tor in tors:
                sim.process(self._flush_proc(sim, tor, cf),
                            name=f"fault-flush-tor{tor.rack}")

        for sf in self.plan.switches:
            # A down ToR in the DES is modelled as its rack's links
            # losing every packet for the window (the analytic model
            # adds the reroute detour the DES fabric cannot take).
            for tor in cluster.tors:
                if tor.rack != sf.rack:
                    continue
                self._log(self._window(sf.start, sf.end)[0], "switch.fail",
                          f"tor{tor.rack}", until=self._window(sf.start,
                                                               sf.end)[1])
                telemetry.count("faults.des.switch_failures")

        for nf in self.plan.nics:
            scope = "all" if nf.node < 0 else f"node:{nf.node}"
            for node in select_nodes(scope, cluster.n_nodes,
                                     cluster.nodes_per_rack):
                nic = cluster.nics[node]
                want = int(round(nf.dead_frac * len(nic.clients)))
                dead = nic.fail_units(want)
                if dead:
                    self.stats_dead_units += dead
                    telemetry.count("faults.des.dead_units", dead)
                    self._log(0.0, "nic.rig_units_fail", f"node{node}",
                              dead=dead)

        for st in self.plan.stragglers:
            scope = "all" if st.node < 0 else f"node:{st.node}"
            for node in select_nodes(scope, cluster.n_nodes,
                                     cluster.nodes_per_rack):
                nic = cluster.nics[node]
                for unit in nic.clients:
                    unit.cycle *= st.slowdown
                nic.server.cycle *= st.slowdown
                telemetry.count("faults.des.stragglers")
                self._log(0.0, "node.straggle", f"node{node}",
                          slowdown=st.slowdown)
        return self

    def _flush_proc(self, sim, tor, cf):
        yield sim.timeout(cf.at * self.horizon)
        flushed = tor.flush_cache()
        self.stats_flushes += 1
        telemetry.count("faults.cache.flushes")
        kind = "cache.corrupt" if cf.corrupt else "cache.flush"
        self._log(sim.now, kind, f"tor{tor.rack}", entries=flushed)

    # -- generic packet network ----------------------------------------

    def install_packetsim(self, net) -> "FaultInjector":
        """Arm the plan's link faults on a ``PacketNetwork`` via its
        per-link ``drop_hook`` (drop/corrupt only; the generic network
        has no NetSparse components to fail)."""
        if not self.plan.links:
            return self
        sim = net.sim
        seed = self.plan.seed
        faults = [lf for lf in self.plan.links if lf.loss_rate > 0.0]
        if not faults:
            return self
        counters: Dict[int, int] = {}
        windows = [self._window(lf.start, lf.end) for lf in faults]

        def drop_hook(packet, link_id: int) -> bool:
            ordinal = counters.get(link_id, 0)
            counters[link_id] = ordinal + 1
            for lf, (t0, t1) in zip(faults, windows):
                if not t0 <= sim.now < t1:
                    continue
                draw = hash_uniform(seed, f"psim.{link_id}", ordinal)
                if draw < lf.loss_rate:
                    self.stats_dropped += 1
                    telemetry.count("faults.des.drops")
                    self._log(sim.now, "link.drop", f"link{link_id}",
                              ordinal=ordinal)
                    return True
            return False

        net.drop_hook = drop_hook
        return self
