"""Deterministic fault injection and resilience (`repro.faults`).

The paper's §7 handles hardware failures with a RIG watchdog; this
subsystem generalizes that into a first-class fault model:

- :mod:`repro.faults.plan` — declarative, seeded
  :class:`~repro.faults.plan.FaultPlan` scenarios (link loss and
  degradation windows, ToR failures, dead RIG units, property-cache
  flushes, stragglers) with stable content digests.
- :mod:`repro.faults.policies` — retry backoff (fixed / exponential
  with seeded jitter) and graceful-degradation modes.
- :mod:`repro.faults.analytic` — compiles a plan into per-node
  penalties over trace-model results
  (:func:`~repro.faults.analytic.apply_faults`).
- :mod:`repro.faults.injector` — compiles the same plan into DES
  event-time injections
  (:class:`~repro.faults.injector.FaultInjector`).

The ``resilience`` experiment (``netsparse resilience``) sweeps
:meth:`FaultPlan.scaled` intensities and reports how each scheme's
speedup degrades.
"""

from repro.faults.analytic import apply_faults, fault_events
from repro.faults.injector import FaultEvent, FaultInjector
from repro.faults.plan import (
    CacheFault,
    FaultPlan,
    LinkFault,
    NicFault,
    StragglerFault,
    SwitchFault,
    hash_uniform,
    select_nodes,
)
from repro.faults.policies import (
    BackoffPolicy,
    DegradePolicy,
    ExponentialBackoff,
    FixedBackoff,
    backoff_from_spec,
)

__all__ = [
    "BackoffPolicy",
    "CacheFault",
    "DegradePolicy",
    "ExponentialBackoff",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FixedBackoff",
    "LinkFault",
    "NicFault",
    "StragglerFault",
    "SwitchFault",
    "apply_faults",
    "backoff_from_spec",
    "fault_events",
    "hash_uniform",
    "select_nodes",
]
