"""Resilience policies: retry backoff and graceful degradation.

Backoff policies answer "how long does the host wait before re-issuing
a failed RIG operation" — :class:`repro.core.reliability.RigWatchdog`
takes one (a policy object or a spec string like ``"exponential"``).
Exponential backoff jitters deterministically via
:func:`repro.faults.plan.hash_uniform`, keyed by ``(seed, attempt)``,
so retry schedules are identical across runs.

:class:`DegradePolicy` selects the graceful-degradation modes the
analytic fault model honours: bypass a dead property cache (misses keep
flowing to owners instead of stalling), re-route around a failed ToR
(detour through a healthy path instead of waiting out the outage), and
re-issue operations lost to failed RIG units through the watchdog.
Disabling a mode makes the corresponding fault *more* expensive — the
cost of not having the mechanism.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.faults.plan import hash_uniform

__all__ = [
    "BackoffPolicy",
    "DegradePolicy",
    "ExponentialBackoff",
    "FixedBackoff",
    "backoff_from_spec",
]


class BackoffPolicy:
    """Delay (seconds) before re-issuing after a failed attempt."""

    def delay(self, attempt: int) -> float:
        raise NotImplementedError


@dataclass(frozen=True)
class FixedBackoff(BackoffPolicy):
    """Re-issue after a constant delay (0 = immediately, the historical
    watchdog behaviour)."""

    delay_s: float = 0.0

    def __post_init__(self):
        if self.delay_s < 0:
            raise ValueError("delay_s must be nonnegative")

    def delay(self, attempt: int) -> float:
        return self.delay_s


@dataclass(frozen=True)
class ExponentialBackoff(BackoffPolicy):
    """Exponential backoff with deterministic (seeded) jitter.

    Attempt ``a`` waits ``base * factor**a`` capped at ``max_delay``,
    then jittered into ``[(1-jitter)*d, d]`` by a hash draw keyed on
    ``(seed, attempt)`` — the same seed always yields the same retry
    schedule.
    """

    base: float = 1e-4
    factor: float = 2.0
    max_delay: float = 1.0
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self):
        if self.base < 0 or self.max_delay < 0:
            raise ValueError("base and max_delay must be nonnegative")
        if self.factor < 1.0:
            raise ValueError("factor must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def delay(self, attempt: int) -> float:
        if attempt < 0:
            raise ValueError("attempt must be nonnegative")
        d = min(self.base * self.factor ** attempt, self.max_delay)
        if self.jitter == 0.0:
            return d
        u = hash_uniform(self.seed, "backoff", attempt)
        return d * (1.0 - self.jitter * u)


def backoff_from_spec(spec, seed: int = 0) -> BackoffPolicy:
    """Coerce a policy spec to a :class:`BackoffPolicy`.

    Accepts a policy instance (returned as-is), ``None`` / ``"fixed"``
    (immediate re-issue), or ``"exponential"`` (seeded default curve).
    """
    if spec is None:
        return FixedBackoff(0.0)
    if isinstance(spec, BackoffPolicy):
        return spec
    if spec == "fixed":
        return FixedBackoff(0.0)
    if spec == "exponential":
        return ExponentialBackoff(seed=seed)
    raise ValueError(
        f"unknown backoff spec {spec!r}; expected a BackoffPolicy, "
        "'fixed' or 'exponential'"
    )


@dataclass(frozen=True)
class DegradePolicy:
    """Which graceful-degradation mechanisms are active."""

    bypass_dead_cache: bool = True
    reroute_failed_tor: bool = True
    reissue_rig: bool = True

    @classmethod
    def none(cls) -> "DegradePolicy":
        """Every mechanism off — the worst-case comparison point."""
        return cls(bypass_dead_cache=False, reroute_failed_tor=False,
                   reissue_rig=False)
