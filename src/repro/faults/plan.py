"""Declarative fault scenarios: the :class:`FaultPlan` schema.

A plan describes *what goes wrong* in a run — link drop/corruption/
degradation windows, ToR switch failures, dead RIG units in NICs,
property-cache flushes, straggler nodes — without saying anything about
*how* a substrate realizes it.  The same plan compiles into

- event-time injections for the DES layer
  (:class:`repro.faults.injector.FaultInjector`), and
- analytic penalties for the trace-level cluster model
  (:func:`repro.faults.analytic.apply_faults`),

so both substrates degrade the same scenario qualitatively alike.

Plans are frozen, picklable, hashable into a stable content digest
(they ride inside :class:`repro.parallel.jobs.SimJob` cache keys), and
fully deterministic: every random decision a plan induces is drawn via
:func:`hash_uniform`, a counter-keyed hash RNG whose output depends
only on ``(seed, stream, n)`` — never on call order, process, or
platform.

Windows (``start``/``end``) are *fractions of the run* in ``[0, 1]`` so
one plan applies unchanged to a microsecond DES gather and a
millisecond trace-model iteration; the DES injector scales them by an
explicit time horizon.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from typing import Tuple

__all__ = [
    "CacheFault",
    "FaultPlan",
    "LinkFault",
    "NicFault",
    "StragglerFault",
    "SwitchFault",
    "hash_uniform",
    "select_nodes",
]


def hash_uniform(seed: int, stream: str, n: int) -> float:
    """Deterministic uniform draw in ``[0, 1)`` keyed by content.

    The value depends only on ``(seed, stream, n)`` — not on how many
    draws happened before — so fault decisions are reproducible across
    runs, processes, and simulation event orderings.
    """
    payload = f"{seed}:{stream}:{n}".encode("utf-8")
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


def _check_frac(value: float, name: str) -> float:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return float(value)


def _check_window(start: float, end: float) -> None:
    _check_frac(start, "start")
    _check_frac(end, "end")
    if end < start:
        raise ValueError(f"window end {end!r} precedes start {start!r}")


#: Link-fault scopes: which links of the fabric a fault touches.
LINK_SCOPES = ("all", "host", "fabric")


def _check_scope(scope: str) -> str:
    if scope in LINK_SCOPES or scope.startswith(("rack:", "node:")):
        return scope
    raise ValueError(
        f"unknown scope {scope!r}; expected one of {LINK_SCOPES}, "
        "'rack:<r>' or 'node:<n>'"
    )


def select_nodes(scope: str, n_nodes: int, nodes_per_rack: int):
    """Node ids a scope touches (``range`` or list, always sorted).

    ``all``/``host``/``fabric`` scopes touch every node — what differs
    between them is *which links* of those nodes are affected, which
    only the DES injector distinguishes; the analytic model charges the
    whole node either way.
    """
    _check_scope(scope)
    if scope in LINK_SCOPES:
        return range(n_nodes)
    kind, _, arg = scope.partition(":")
    which = int(arg)
    if kind == "node":
        return [which] if 0 <= which < n_nodes else []
    lo = which * nodes_per_rack
    return [node for node in range(lo, lo + nodes_per_rack)
            if node < n_nodes]


@dataclass(frozen=True)
class LinkFault:
    """Links misbehave inside a window: drops, corruption, degradation.

    ``drop_rate``/``corrupt_rate`` are per-packet probabilities (a
    corrupted packet is discarded on arrival, so both cost one
    retransmission); ``degrade`` multiplies link bandwidth in ``(0, 1]``
    (1.0 = healthy, 0.5 = half rate — a flapping or retraining link).
    """

    scope: str = "all"
    start: float = 0.0
    end: float = 1.0
    drop_rate: float = 0.0
    corrupt_rate: float = 0.0
    degrade: float = 1.0

    def __post_init__(self):
        _check_scope(self.scope)
        _check_window(self.start, self.end)
        _check_frac(self.drop_rate, "drop_rate")
        _check_frac(self.corrupt_rate, "corrupt_rate")
        if not 0.0 < self.degrade <= 1.0:
            raise ValueError(f"degrade must be in (0, 1], got {self.degrade!r}")

    @property
    def loss_rate(self) -> float:
        """Combined per-packet loss probability (drop + corrupt)."""
        return min(self.drop_rate + self.corrupt_rate, 0.95)

    @property
    def window(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class SwitchFault:
    """A ToR switch is down for a window; its rack loses connectivity
    (rerouted or stalled, per the degradation policy) and its property
    cache with it."""

    rack: int = 0
    start: float = 0.0
    end: float = 1.0

    def __post_init__(self):
        if self.rack < 0:
            raise ValueError("rack must be nonnegative")
        _check_window(self.start, self.end)

    @property
    def window(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class NicFault:
    """A fraction of a node's client RIG units fail permanently.

    ``node`` of ``-1`` means every node (a bad SNIC firmware rollout);
    PR generation slows by ``1 / (1 - dead_frac)`` and failed in-flight
    operations are re-issued through the watchdog when the degradation
    policy allows it.
    """

    node: int = -1
    dead_frac: float = 0.5

    def __post_init__(self):
        if self.node < -1:
            raise ValueError("node must be >= -1")
        if not 0.0 <= self.dead_frac < 1.0:
            raise ValueError(
                f"dead_frac must be in [0, 1), got {self.dead_frac!r}"
            )


@dataclass(frozen=True)
class CacheFault:
    """A property cache loses (a fraction of) its contents at ``at``.

    ``rack`` of ``-1`` flushes every ToR's cache.  ``corrupt`` marks
    the flush as silent corruption: the analytic model charges the same
    hit loss, the DES injector still flushes (a corrupted line must be
    treated as absent once detected).
    """

    rack: int = -1
    at: float = 0.0
    flush_frac: float = 1.0
    corrupt: bool = False

    def __post_init__(self):
        if self.rack < -1:
            raise ValueError("rack must be >= -1")
        _check_frac(self.at, "at")
        _check_frac(self.flush_frac, "flush_frac")


@dataclass(frozen=True)
class StragglerFault:
    """A node (or with ``node=-1`` the whole cluster, a brownout) runs
    its compute and SNIC processing ``slowdown`` times slower."""

    node: int = -1
    slowdown: float = 2.0

    def __post_init__(self):
        if self.node < -1:
            raise ValueError("node must be >= -1")
        if self.slowdown < 1.0:
            raise ValueError(
                f"slowdown must be >= 1, got {self.slowdown!r}"
            )


_FAULT_TYPES = {
    "links": LinkFault,
    "switches": SwitchFault,
    "nics": NicFault,
    "caches": CacheFault,
    "stragglers": StragglerFault,
}


@dataclass(frozen=True)
class FaultPlan:
    """One declarative fault scenario plus the seed that realizes it."""

    name: str = "empty"
    seed: int = 0
    links: Tuple[LinkFault, ...] = ()
    switches: Tuple[SwitchFault, ...] = ()
    nics: Tuple[NicFault, ...] = ()
    caches: Tuple[CacheFault, ...] = ()
    stragglers: Tuple[StragglerFault, ...] = ()
    #: Scenario intensity in [0, 1] when built via :meth:`scaled`;
    #: informational (the individual fault fields are authoritative).
    intensity: float = field(default=0.0)

    def __post_init__(self):
        for fname, ftype in _FAULT_TYPES.items():
            entries = getattr(self, fname)
            object.__setattr__(self, fname, tuple(entries))
            for entry in getattr(self, fname):
                if not isinstance(entry, ftype):
                    raise TypeError(
                        f"{fname} entries must be {ftype.__name__}, "
                        f"got {type(entry).__name__}"
                    )
        _check_frac(self.intensity, "intensity")

    # -- identity ------------------------------------------------------

    def is_empty(self) -> bool:
        """True when the plan injects nothing (the fault-free plan)."""
        return not any(getattr(self, f) for f in _FAULT_TYPES)

    def canonical_dict(self) -> dict:
        return {
            "name": self.name,
            "seed": self.seed,
            "intensity": repr(float(self.intensity)),
            **{
                fname: [asdict(e) for e in getattr(self, fname)]
                for fname in sorted(_FAULT_TYPES)
            },
        }

    def canonical_json(self) -> str:
        """Key-sorted, whitespace-free JSON — the plan's stable wire
        form (rides in :class:`~repro.parallel.jobs.SimJob.faults`)."""
        return json.dumps(self.canonical_dict(), sort_keys=True,
                          separators=(",", ":"))

    def digest(self) -> str:
        return hashlib.sha256(self.canonical_json().encode()).hexdigest()

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        kw = {
            fname: tuple(ftype(**entry) for entry in data.get(fname, []))
            for fname, ftype in _FAULT_TYPES.items()
        }
        intensity = data.get("intensity", 0.0)
        if isinstance(intensity, str):
            intensity = float(intensity)
        return cls(name=data.get("name", "unnamed"),
                   seed=int(data.get("seed", 0)),
                   intensity=intensity, **kw)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    # -- canonical scenarios -------------------------------------------

    @classmethod
    def empty(cls, seed: int = 0) -> "FaultPlan":
        return cls(name="empty", seed=seed)

    @classmethod
    def scaled(cls, intensity: float, seed: int = 0) -> "FaultPlan":
        """The canonical degradation scenario at a given intensity.

        Intensity 0 is the empty plan; intensity 1 is the full storm:
        cluster-wide lossy, degraded links, one failed ToR, a SNIC
        rollout that kills ~half the client RIG units everywhere, full
        property-cache flushes and a cluster-wide compute brownout.
        Every knob grows monotonically with intensity, so degradation
        reports over an intensity sweep are monotone by construction.
        """
        i = _check_frac(intensity, "intensity")
        if i == 0.0:
            return cls(name="scaled-0.00", seed=seed)
        return cls(
            name=f"scaled-{i:.2f}",
            seed=seed,
            intensity=i,
            links=(
                LinkFault(scope="all", start=0.1, end=0.9,
                          drop_rate=0.04 * i, corrupt_rate=0.01 * i,
                          degrade=1.0 - 0.35 * i),
            ),
            switches=(
                SwitchFault(rack=0, start=0.45, end=0.45 + 0.35 * i),
            ),
            nics=(NicFault(node=-1, dead_frac=0.45 * i),),
            caches=(CacheFault(rack=-1, at=0.5, flush_frac=i),),
            stragglers=(StragglerFault(node=-1, slowdown=1.0 + 1.5 * i),),
        )
