"""Analytic fault penalties for the trace-level cluster model.

The vectorized cluster model (:mod:`repro.cluster.model`) and the
baselines are throughput idealizations — they have no event timeline to
inject into.  This module compiles a :class:`~repro.faults.plan.FaultPlan`
into per-node *time multipliers* over a finished
:class:`~repro.results.CommResult` instead, mirroring what the DES
injector does at event granularity:

- **Link faults** — a window losing fraction ``p`` of packets costs
  ``1/(1-p)`` transmissions (retry until delivered), a window at
  bandwidth fraction ``d`` costs ``1/d``; outside the window the link
  is healthy, so the factor is the window-weighted mix.
- **ToR failure** — with re-routing enabled the rack's traffic detours
  (a fixed detour factor during the window); without it the rack
  simply waits the outage out.  Either way the rack loses its property
  cache for the window (NetSparse-only penalty).
- **NIC RIG-unit failure** — PR generation slows by ``1/(1-dead)``;
  re-issuing the lost in-flight work through the watchdog adds a small
  surcharge (a large one when re-issue is disabled).
- **Cache flush/corruption** — the flushed fraction of hits turns into
  owner round-trips (cheap with bypass, expensive without).
- **Stragglers** — the node (or the whole cluster) runs ``slowdown``
  times slower.

Scheme-agnostic penalties (links, routing, stragglers) hit every
scheme; RIG/property-cache penalties only exist for schemes that *use*
those mechanisms (``netsparse``, ``hybrid``) — which is exactly why
NetSparse's speedup over the software baselines degrades as fault
intensity rises.

The makespan scales by the **worst combined per-node factor** (the
most-affected component bounds a bulk-synchronous iteration), which
also makes intensity sweeps monotone by construction.  The empty plan
returns the input result object unchanged — bit-identical to a
fault-free run.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional

import numpy as np

from repro import telemetry
from repro.config import NetSparseConfig
from repro.faults.plan import FaultPlan, select_nodes
from repro.faults.policies import DegradePolicy

__all__ = ["apply_faults", "fault_events", "DETOUR_FACTOR"]

#: Extra path cost of re-routing a rack's traffic around its dead ToR.
DETOUR_FACTOR = 2.0

#: Schemes that use RIG units and the in-switch property cache.
_NETSPARSE_SCHEMES = ("netsparse", "hybrid")


def fault_events(plan: FaultPlan) -> List[dict]:
    """The plan's deterministic fault event log (sorted by time).

    Every entry is a plain dict ``{"t", "kind", "target", ...}`` with
    ``t`` in run fractions — the analytic counterpart of the DES
    injector's event log.
    """
    events: List[dict] = []
    for lf in plan.links:
        events.append({
            "t": round(lf.start, 9), "kind": "link.fault", "target": lf.scope,
            "until": round(lf.end, 9), "drop_rate": lf.drop_rate,
            "corrupt_rate": lf.corrupt_rate, "degrade": lf.degrade,
        })
    for sf in plan.switches:
        events.append({
            "t": round(sf.start, 9), "kind": "switch.fail",
            "target": f"rack:{sf.rack}", "until": round(sf.end, 9),
        })
    for nf in plan.nics:
        target = "all" if nf.node < 0 else f"node:{nf.node}"
        events.append({
            "t": 0.0, "kind": "nic.rig_units_fail", "target": target,
            "dead_frac": nf.dead_frac,
        })
    for cf in plan.caches:
        target = "all" if cf.rack < 0 else f"rack:{cf.rack}"
        kind = "cache.corrupt" if cf.corrupt else "cache.flush"
        events.append({
            "t": round(cf.at, 9), "kind": kind, "target": target,
            "flush_frac": cf.flush_frac,
        })
    for st in plan.stragglers:
        target = "all" if st.node < 0 else f"node:{st.node}"
        events.append({
            "t": 0.0, "kind": "node.straggle", "target": target,
            "slowdown": st.slowdown,
        })
    events.sort(key=lambda e: (e["t"], e["kind"], e["target"]))
    return events


def _nodes(scope_nodes, n: int) -> np.ndarray:
    mask = np.zeros(n, dtype=bool)
    for node in scope_nodes:
        mask[node] = True
    return mask


def apply_faults(
    result,
    plan: FaultPlan,
    config: Optional[NetSparseConfig] = None,
    policy: DegradePolicy = DegradePolicy(),
):
    """Degrade ``result`` (a :class:`~repro.results.CommResult`) per
    ``plan``; returns a new result, or ``result`` itself when the plan
    is empty."""
    if plan.is_empty():
        return result
    config = config or NetSparseConfig()
    n = int(result.n_nodes)
    nodes_per_rack = min(config.nodes_per_rack, n)
    uses_netsparse = result.scheme in _NETSPARSE_SCHEMES
    hit_rate = result.cache_hit_rate if uses_netsparse else 0.0

    shared = np.ones(n)      # scheme-agnostic per-node factor
    extra = np.ones(n)       # NetSparse-mechanism per-node factor
    stall = np.zeros(n)      # additive outage fractions (no reroute)

    # -- link faults ----------------------------------------------------
    for lf in plan.links:
        mask = _nodes(select_nodes(lf.scope, n, nodes_per_rack), n)
        wf = lf.window
        in_window = (1.0 / (1.0 - lf.loss_rate)) / max(lf.degrade, 0.05)
        shared[mask] *= (1.0 - wf) + wf * in_window
        telemetry.count("faults.link.faults")

    # -- ToR failures ---------------------------------------------------
    for sf in plan.switches:
        mask = _nodes(select_nodes(f"rack:{sf.rack}", n, nodes_per_rack), n)
        if not mask.any():
            continue
        wf = sf.window
        if policy.reroute_failed_tor:
            shared[mask] *= (1.0 - wf) + wf * DETOUR_FACTOR
        else:
            stall[mask] += wf
        if uses_netsparse:
            # The rack's property cache is gone for the window.
            extra[mask] *= 1.0 + wf * hit_rate
        telemetry.count("faults.switch.failures")

    # -- stragglers -----------------------------------------------------
    for st in plan.stragglers:
        scope = "all" if st.node < 0 else f"node:{st.node}"
        mask = _nodes(select_nodes(scope, n, nodes_per_rack), n)
        shared[mask] *= st.slowdown
        telemetry.count("faults.straggler.nodes", int(mask.sum()))

    # -- RIG-unit failures ----------------------------------------------
    if uses_netsparse:
        for nf in plan.nics:
            scope = "all" if nf.node < 0 else f"node:{nf.node}"
            mask = _nodes(select_nodes(scope, n, nodes_per_rack), n)
            f = min(nf.dead_frac, 0.9)
            factor = 1.0 / (1.0 - f)
            # Re-issuing the dead units' in-flight ops: cheap through
            # the watchdog, expensive (full redo) without it.
            factor *= (1.0 + 0.1 * f) if policy.reissue_rig else (1.0 + f)
            extra[mask] *= factor
            telemetry.count(
                "faults.rig.dead_units",
                int(round(f * config.n_client_units)) * int(mask.sum()),
            )

        # -- property-cache flushes -------------------------------------
        for cf in plan.caches:
            scope = "all" if cf.rack < 0 else f"rack:{cf.rack}"
            mask = _nodes(select_nodes(scope, n, nodes_per_rack), n)
            lost = cf.flush_frac * hit_rate
            surcharge = 1.0 if policy.bypass_dead_cache else 3.0
            extra[mask] *= 1.0 + lost * surcharge
            telemetry.count("faults.cache.flushes", int(mask.any()))

    combined = shared * extra * (1.0 + stall)
    max_factor = float(combined.max()) if n else 1.0
    events = fault_events(plan)
    telemetry.count("faults.injected")
    telemetry.count("faults.events", len(events))
    telemetry.observe("faults.penalty.max_factor", max_factor,
                      scheme=result.scheme)

    degraded = replace(
        result,
        total_time=result.total_time * max_factor,
        per_node_time=result.per_node_time * combined,
        extras={
            **result.extras,
            "faults": {
                "plan": plan.canonical_dict(),
                "events": events,
                "max_factor": max_factor,
                "shared_factor_max": float(shared.max()) if n else 1.0,
                "extra_factor_max": float(extra.max()) if n else 1.0,
            },
        },
    )
    return degraded
