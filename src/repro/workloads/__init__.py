"""Sparse ML collective workloads: trace generators for the second
scenario axis (ROADMAP item 4).

Two built-in families feed the existing cluster model and DES
substrates with training-stack-shaped traffic:

- **sparse allreduce** (:mod:`repro.workloads.allreduce`) —
  SparCML-style top-k / random-k gradient exchange, with the ToR
  middle-pipe Property Cache playing the Flare-style in-network
  reduction point;
- **iterative SpMV** (:mod:`repro.workloads.spmv`) — PageRank-style
  frontier contraction across rounds, plus a dynamic-sparsity mode
  whose nonzero set changes every iteration.

Every family is a seeded, digest-keyed generator registered in
:data:`~repro.workloads.base.WORKLOADS`; its rounds are addressable by
``wl:<family>:r<round>`` trace names anywhere a benchmark-matrix name
is accepted (``SimJob``, ``load_benchmark``, the CLI), so the
execution engine, result cache, trace cache, fault plans and telemetry
all work on workload traffic unchanged.  See ``docs/api.md`` for the
generator protocol and registration contract.
"""

from repro.workloads.base import (
    SCALE_DIMS,
    TRACE_PREFIX,
    WORKLOADS,
    WorkloadFamily,
    is_workload_trace,
    list_workloads,
    load_workload_trace,
    parse_trace_name,
    register_workload,
    trace_digest,
    workload_rng,
    workload_scale_factor,
    workload_trace_name,
)

# Importing the family modules populates the registry.
from repro.workloads import allreduce, spmv  # noqa: F401  (side effects)

__all__ = [
    "SCALE_DIMS",
    "TRACE_PREFIX",
    "WORKLOADS",
    "WorkloadFamily",
    "is_workload_trace",
    "list_workloads",
    "load_workload_trace",
    "parse_trace_name",
    "register_workload",
    "trace_digest",
    "workload_rng",
    "workload_scale_factor",
    "workload_trace_name",
]
