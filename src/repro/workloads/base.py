"""Workload-family registry and the ``wl:`` trace-name protocol.

NetSparse's mechanisms are evaluated in the paper on one-shot
SpMM/SpMV/SDDMM gathers.  This package opens a second scenario axis —
training-stack-shaped traffic — by expressing each new workload as a
*trace generator*: a seeded, deterministic function that produces one
:class:`~repro.sparse.matrix.COOMatrix` per communication **round**,
shaped so that the existing 1D partition turns it into exactly the
per-node idx streams the cluster model, the baselines and the DES
substrate already consume.

Generator protocol
------------------
A generator is a callable::

    generator(scale, seed, round_idx, family, name, **gen_kwargs) -> COOMatrix

- ``scale``     — ``tiny`` / ``small`` / ``medium``, same vocabulary as
  the benchmark suite;
- ``seed``      — the sweep seed; identical ``(family, scale, seed,
  round_idx)`` must reproduce the matrix bit-for-bit (the structural
  digest keys the :class:`~repro.partition.tracecache.TraceCache` and,
  through the trace name, every :class:`~repro.parallel.jobs.SimJob`
  result-cache digest);
- ``round_idx`` — the communication round (training step / SpMV
  iteration).  Static families ignore it; dynamic families must derive
  all per-round randomness from ``(family, seed, round_idx)`` via
  :func:`workload_rng` so rounds are independently reproducible;
- ``family``    — the registered family name (seed-space separation);
- ``name``      — the display name to stamp on the returned matrix.

Registration makes a family addressable by **trace name** —
``wl:<family>:r<round>`` — everywhere a benchmark-matrix name is
accepted: :func:`repro.sparse.suite.load_benchmark` dispatches the
``wl:`` prefix here, so workload rounds flow through ``SimJob`` digests,
the on-disk :class:`~repro.parallel.cache.ResultCache`, ``--jobs``
process fan-out, fault plans and telemetry with no special cases.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Callable, Dict, List, Tuple

import numpy as np

from repro.sparse.matrix import COOMatrix

__all__ = [
    "TRACE_PREFIX",
    "WORKLOADS",
    "WorkloadFamily",
    "is_workload_trace",
    "list_workloads",
    "load_workload_trace",
    "parse_trace_name",
    "register_workload",
    "trace_digest",
    "workload_rng",
    "workload_scale_factor",
    "workload_trace_name",
]

#: Trace names ``wl:<family>:r<round>`` route to this registry.
TRACE_PREFIX = "wl:"

#: Generation-time model dimension per scale (rows == cols == D), kept
#: in the same band as the benchmark matrices so walls are comparable.
SCALE_DIMS: Dict[str, int] = {
    "tiny": 1 << 13,
    "small": 1 << 17,
    "medium": 1 << 19,
}


def workload_rng(family: str, seed: int, round_idx: int,
                 stream: int = 0) -> np.random.Generator:
    """A deterministic RNG for one (family, seed, round, stream) cell.

    The family name is folded through blake2 so two families with the
    same seed never share a random stream; ``stream`` separates
    independent draws inside one generator (e.g. the persistent hot-set
    permutation vs the per-round noise).  Pass ``round_idx=0`` for
    state that must persist across rounds.
    """
    entropy = int.from_bytes(
        hashlib.blake2b(family.encode("utf-8"), digest_size=8).digest(),
        "big",
    )
    return np.random.default_rng(
        np.random.SeedSequence([entropy, int(seed) & 0xFFFFFFFF,
                                int(round_idx), int(stream)])
    )


@dataclass(frozen=True)
class WorkloadFamily:
    """One registered workload family (a named trace generator).

    ``paper_nnz_m`` plays the role of
    :attr:`repro.sparse.suite.BenchmarkSpec.paper_nnz_m`: the virtual
    full-scale nonzero count (in millions) this family downsizes from,
    so :func:`workload_scale_factor` keeps the size-coupled model
    quantities (RIG batch, Property Cache capacity, per-command
    overheads) on the same footing as the benchmark matrices.
    ``dynamic`` records whether the nonzero set changes across rounds
    (the UMD adaptive-collectives setting) — static families share
    TraceCache entries across their whole round sweep by construction.
    """

    name: str
    kind: str                           # "allreduce" | "spmv"
    description: str
    generator: Callable[..., COOMatrix]
    gen_kwargs: Dict = field(default_factory=dict)
    n_rounds: int = 4
    default_rig_batch: int = 8 * 1024
    paper_nnz_m: float = 100.0
    dynamic: bool = True

    def generate(self, scale: str, seed: int, round_idx: int) -> COOMatrix:
        """Build this family's round trace (uncached; see
        :func:`load_workload_trace` for the memoized front door)."""
        if scale not in SCALE_DIMS:
            raise ValueError(
                f"unknown scale {scale!r}; expected one of {sorted(SCALE_DIMS)}"
            )
        if round_idx < 0:
            raise ValueError("round_idx must be nonnegative")
        mat = self.generator(
            scale=scale,
            seed=seed,
            round_idx=round_idx,
            family=self.name,
            name=workload_trace_name(self.name, round_idx),
            **self.gen_kwargs,
        )
        return mat

    def round_names(self, n_rounds: int = 0) -> List[str]:
        """Trace names for rounds ``0..n-1`` (default: the family's own
        round count)."""
        n = n_rounds or self.n_rounds
        return [workload_trace_name(self.name, r) for r in range(n)]


#: The process-wide registry, populated at import by the built-in
#: families (:mod:`repro.workloads.allreduce`, :mod:`repro.workloads.spmv`).
WORKLOADS: Dict[str, WorkloadFamily] = {}


def register_workload(family: WorkloadFamily) -> WorkloadFamily:
    """Add a family to the registry (duplicate names are an error)."""
    if family.name in WORKLOADS:
        raise ValueError(f"duplicate workload family {family.name!r}")
    if ":" in family.name or "/" in family.name:
        raise ValueError("workload names must not contain ':' or '/'")
    WORKLOADS[family.name] = family
    return family


def list_workloads() -> List[str]:
    return sorted(WORKLOADS)


# -- the wl: trace-name protocol ---------------------------------------


def workload_trace_name(family: str, round_idx: int) -> str:
    """The canonical trace name of one family round:
    ``wl:<family>:r<round>``."""
    return f"{TRACE_PREFIX}{family}:r{int(round_idx)}"


def is_workload_trace(name: str) -> bool:
    return isinstance(name, str) and name.startswith(TRACE_PREFIX)


def parse_trace_name(name: str) -> Tuple[str, int]:
    """``(family, round_idx)`` of a ``wl:`` trace name.

    Raises ``KeyError`` for unknown families (mirroring
    ``load_benchmark``'s typo behaviour) and ``ValueError`` for
    malformed names.
    """
    if not is_workload_trace(name):
        raise ValueError(f"not a workload trace name: {name!r}")
    body = name[len(TRACE_PREFIX):]
    family, sep, round_part = body.partition(":r")
    if not sep or not round_part.isdigit():
        raise ValueError(
            f"malformed workload trace name {name!r}; "
            "expected wl:<family>:r<round>"
        )
    if family not in WORKLOADS:
        raise KeyError(
            f"unknown workload family {family!r}; available: {list_workloads()}"
        )
    return family, int(round_part)


@lru_cache(maxsize=64)
def _load_cached(family: str, round_idx: int, scale: str,
                 seed: int) -> COOMatrix:
    return WORKLOADS[family].generate(scale, seed, round_idx)


def load_workload_trace(name: str, scale: str = "small",
                        seed: int = 7) -> COOMatrix:
    """Generate (and memoize) the round trace named by a ``wl:`` name.

    This is the workload arm of
    :func:`repro.sparse.suite.load_benchmark`; worker processes of the
    execution engine resolve trace names through the same path, so
    ``--jobs`` fan-out regenerates identical matrices from the registry
    alone.
    """
    family, round_idx = parse_trace_name(name)
    return _load_cached(family, round_idx, scale, seed)


def workload_scale_factor(name: str, matrix: COOMatrix) -> float:
    """This round trace's nnz over the family's virtual paper-scale nnz
    (the workload arm of :func:`repro.sparse.suite.scale_factor`)."""
    family, _ = parse_trace_name(name)
    return matrix.nnz / (WORKLOADS[family].paper_nnz_m * 1e6)


def trace_digest(family: str, scale: str = "small", seed: int = 7,
                 round_idx: int = 0, fresh: bool = False) -> str:
    """Structural digest of one round trace — the determinism anchor.

    With ``fresh=True`` the matrix is regenerated outside the memo so
    the digest proves generator determinism rather than cache identity
    (the ``collectives --smoke`` self-check and the determinism tests
    rely on this distinction).
    """
    if family not in WORKLOADS:
        raise KeyError(
            f"unknown workload family {family!r}; available: {list_workloads()}"
        )
    if fresh:
        mat = WORKLOADS[family].generate(scale, seed, round_idx)
    else:
        mat = _load_cached(family, round_idx, scale, seed)
    return mat.structural_digest()
