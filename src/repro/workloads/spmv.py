"""Iterative SpMV (PageRank-style) round traces.

PageRank-class kernels run the *same* graph through tens of SpMV
iterations, but push-style implementations only scan the rows whose
rank is still changing — the active frontier.  The frontier starts as
the whole vertex set and contracts as ranks converge, with high-degree
hubs staying active longest.  Two consequences the one-shot model never
shows, both exercised here:

- the remote working set *shrinks and drifts* across rounds, so the
  Idx Filter and the ToR Property Cache see evolving reuse (consecutive
  rounds overlap heavily — the keep-cache DES sweep quantifies what a
  persistent switch cache recovers);
- in the dynamic-sparsity mode the active set is *resampled* every
  iteration (the UMD adaptive-collectives setting: the nonzero set
  changes every round), so no round's trace equals any other's.

The underlying graph is a seed-stable synthetic web crawl (the same
generator family as the ``uk`` benchmark); a round's trace keeps the
nonzeros of active rows only.  Round 0 is always the full graph.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.sparse.matrix import COOMatrix
from repro.sparse.synthetic import web_crawl
from repro.workloads.base import (
    SCALE_DIMS,
    WorkloadFamily,
    register_workload,
    workload_rng,
)

__all__ = ["pagerank_frontier"]

_STREAM_GRAPH = 1        # the base graph (persists across rounds)
_STREAM_SCORES = 2       # stable per-row convergence scores
_STREAM_RESAMPLE = 3     # per-round frontier draws (dynamic mode)


@lru_cache(maxsize=8)
def _base_graph(family: str, scale: str, seed: int) -> COOMatrix:
    """The seed-stable graph every round of one family sweep shares."""
    dim = SCALE_DIMS[scale]
    graph_seed = int(
        workload_rng(family, seed, 0, _STREAM_GRAPH).integers(0, 2**31)
    )
    return web_crawl(
        n=dim,
        mean_degree=12.0,
        locality=0.6,
        hub_alpha=1.15,
        page_alpha=1.15,
        block_size=256,
        escape_frac=0.08,
        seed=graph_seed,
        name=f"{family}-graph",
    )


def _frontier_fraction(round_idx: int, decay: float, floor: float) -> float:
    """Active-row fraction at a round (geometric convergence)."""
    return max(decay ** round_idx, floor)


def pagerank_frontier(
    scale: str,
    seed: int,
    round_idx: int,
    family: str,
    name: str,
    mode: str = "decay",
    decay: float = 0.55,
    floor: float = 0.05,
) -> COOMatrix:
    """One SpMV iteration's trace: the base graph restricted to active
    rows.

    ``mode`` — ``"decay"``: a stable per-row score (discounted for
    high-degree hubs, which converge last) is thresholded at the
    round's frontier fraction, so active sets are *nested* across
    rounds; ``"resample"``: the frontier is drawn fresh every round
    from the same marginal fraction, so the nonzero set changes every
    iteration.
    """
    if mode not in ("decay", "resample"):
        raise ValueError(f"unknown mode {mode!r}; use 'decay' or 'resample'")
    graph = _base_graph(family, scale, seed)
    frac = _frontier_fraction(round_idx, decay, floor)
    if frac >= 1.0:
        return COOMatrix(graph.n_rows, graph.n_cols, graph.rows,
                         graph.cols, None, name)

    if mode == "decay":
        scores = workload_rng(family, seed, 0, _STREAM_SCORES).random(
            graph.n_rows
        )
        # Hubs stay in the frontier longest: discount scores by degree.
        degrees = graph.row_degrees().astype(np.float64)
        scores = scores / (1.0 + np.log1p(degrees))
        cutoff = np.quantile(scores, frac)
        active = scores <= cutoff
    else:
        draws = workload_rng(family, seed, round_idx, _STREAM_RESAMPLE).random(
            graph.n_rows
        )
        active = draws < frac
    if not active.any():
        active[0] = True

    keep = active[graph.rows]
    return COOMatrix(
        graph.n_rows,
        graph.n_cols,
        graph.rows[keep],
        graph.cols[keep],
        None,
        name,
    )


register_workload(WorkloadFamily(
    name="pagerank",
    kind="spmv",
    description="Iterative push-style SpMV over a fixed web graph: the "
                "active frontier contracts geometrically across rounds "
                "(nested active sets; hubs persist), so filter/cache "
                "reuse evolves between iterations.",
    generator=pagerank_frontier,
    gen_kwargs={"mode": "decay"},
    n_rounds=4,
    default_rig_batch=8 * 1024,
    # Virtual full scale: uk-2002-class graph (~298M nnz).
    paper_nnz_m=298.0,
    dynamic=True,
))

register_workload(WorkloadFamily(
    name="pagerank_dynamic",
    kind="spmv",
    description="Iterative SpMV with dynamic sparsity: the frontier is "
                "resampled every iteration (UMD adaptive-collectives "
                "setting), so the nonzero set changes every round.",
    generator=pagerank_frontier,
    gen_kwargs={"mode": "resample"},
    n_rounds=4,
    default_rig_batch=8 * 1024,
    paper_nnz_m=298.0,
    dynamic=True,
))
