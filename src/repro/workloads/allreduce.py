"""SparCML-style sparse-allreduce round traces.

Distributed data-parallel training communicates one sparse allreduce of
gradient contributions per step: each of ``n_workers`` workers holds a
sparse gradient over a model of dimension ``D`` — its top-k (largest
magnitudes, heavily overlapping across workers because hot parameters
are hot everywhere) or random-k (private, near-disjoint) entries — and
every worker must end the round holding the reduced value of every
index it contributes (SparCML's reduce-scatter + allgather formulation;
see PAPERS.md).

Mapping onto the NetSparse substrates: the model dimension is the
column space, partitioned 1D across nodes exactly like an input
property array — the *owner* of index ``j`` is the reduction root of
gradient coordinate ``j``.  Worker ``w``'s support becomes nonzeros in
its row block, so its per-node scan trace is precisely its gradient
support and the resulting remote reads are the allgather phase:
fetching reduced coordinates from their roots.  The ToR middle-pipe
Property Cache then acts as the Flare-style in-network reduction point
— the first fetch of a hot coordinate fills the rack's cache and every
other worker in the rack is served at the switch, which is what an
in-network-reduction ASIC does for overlapping sparse gradients.

Both selections redraw the noise portion of every worker's support each
round (gradients change every step — the traces are *dynamic* in the
UMD adaptive-collectives sense); ``topk`` additionally keeps a
seed-stable Zipf-hot parameter set that persists across rounds
(momentum keeps the heavy coordinates heavy), which is exactly the
cross-round reuse the DES keep-cache sweep measures.
"""

from __future__ import annotations

import numpy as np

from repro.sparse.matrix import COOMatrix
from repro.sparse.synthetic import zipf_sample
from repro.workloads.base import (
    SCALE_DIMS,
    WorkloadFamily,
    register_workload,
    workload_rng,
)

__all__ = ["gradient_exchange"]

#: Stream ids inside :func:`repro.workloads.base.workload_rng`.
_STREAM_HOT = 1          # persistent hot-parameter permutation (round 0)
_STREAM_SUPPORT = 2      # per-round support noise


def gradient_exchange(
    scale: str,
    seed: int,
    round_idx: int,
    family: str,
    name: str,
    selection: str = "topk",
    n_workers: int = 128,
    density: float = 0.04,
    shared_frac: float = 0.7,
    hot_pool_frac: float = 0.25,
    hot_alpha: float = 1.1,
) -> COOMatrix:
    """One allreduce round as a ``D x D`` trace matrix.

    ``selection`` — ``"topk"`` (shared Zipf-hot coordinates plus private
    noise) or ``"randk"`` (uniform private supports).  ``density`` is
    each worker's support size as a fraction of ``D``; ``shared_frac``
    is the top-k portion drawn from the persistent hot pool
    (``hot_pool_frac * D`` coordinates, Zipf(``hot_alpha``)-weighted).
    """
    if selection not in ("topk", "randk"):
        raise ValueError(
            f"unknown selection {selection!r}; use 'topk' or 'randk'"
        )
    dim = SCALE_DIMS[scale]
    n_workers = min(int(n_workers), dim)
    k_grad = max(int(dim * density), 1)
    rows_per_worker = dim // n_workers

    if selection == "topk":
        # The hot-parameter ranking persists across rounds: same seed,
        # round stream 0 — momentum keeps heavy coordinates heavy.
        hot_pool = max(int(dim * hot_pool_frac), 1)
        hot_ids = workload_rng(family, seed, 0, _STREAM_HOT).permutation(
            dim
        )[:hot_pool]
        n_shared = int(k_grad * shared_frac)
    else:
        hot_ids = None
        n_shared = 0

    rng = workload_rng(family, seed, round_idx, _STREAM_SUPPORT)
    rows_chunks, cols_chunks = [], []
    for w in range(n_workers):
        if n_shared:
            ranks = zipf_sample(rng, hot_ids.size, n_shared, hot_alpha)
            shared = hot_ids[ranks]
        else:
            shared = np.zeros(0, dtype=np.int64)
        n_noise = k_grad - shared.size
        noise = rng.integers(0, dim, size=n_noise, dtype=np.int64)
        support = np.unique(np.concatenate([shared, noise]))
        base = w * rows_per_worker
        rows = base + np.arange(support.size, dtype=np.int64) % rows_per_worker
        rows_chunks.append(rows)
        cols_chunks.append(support)

    mat = COOMatrix(
        dim,
        dim,
        np.concatenate(rows_chunks),
        np.concatenate(cols_chunks),
        None,
        name,
    )
    return mat.canonicalize()


register_workload(WorkloadFamily(
    name="allreduce_topk",
    kind="allreduce",
    description="SparCML top-k sparse allreduce: persistent Zipf-hot "
                "gradient coordinates shared across workers plus "
                "per-round private noise; the ToR Property Cache is the "
                "Flare-style in-network reduction point.",
    generator=gradient_exchange,
    gen_kwargs={"selection": "topk"},
    n_rounds=4,
    default_rig_batch=8 * 1024,
    # Virtual full scale: ~60M-parameter model, 1% density, 128 workers.
    paper_nnz_m=77.0,
    dynamic=True,
))

register_workload(WorkloadFamily(
    name="allreduce_randk",
    kind="allreduce",
    description="SparCML random-k sparse allreduce: uniform private "
                "supports redrawn every round — near-zero cross-worker "
                "overlap, the adversarial case for in-network caching.",
    generator=gradient_exchange,
    gen_kwargs={"selection": "randk"},
    n_rounds=4,
    default_rig_batch=8 * 1024,
    paper_nnz_m=77.0,
    dynamic=True,
))
