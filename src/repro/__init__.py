"""NetSparse reproduction package."""


def _detect_version() -> str:
    """Installed-package version, so bug reports and cached-result
    provenance can name a build (``netsparse --version``)."""
    try:
        from importlib.metadata import PackageNotFoundError, version
    except ImportError:                       # pragma: no cover - py<3.8
        return "unknown"
    try:
        return version("repro")
    except PackageNotFoundError:              # running from a source tree
        return "1.0.0+source"


__version__ = _detect_version()
