"""Process-level memoization of partitions and their scan traces.

Every scheme in a sweep — NetSparse, the software baselines, the
traffic analyses — starts from the same object: a 1D partition of a
matrix and its per-node idx scan traces.  Building one costs an
``argsort`` over the nonzeros plus per-node selections, and a knob grid
rebuilds it hundreds of times for identical inputs.  The
:class:`TraceCache` shares one build per (matrix structure, node count,
partition rule) across the whole process.

Keying and invalidation rules (also documented in ``docs/api.md``):

- The matrix key is :meth:`repro.sparse.matrix.COOMatrix.structural_digest`
  — shape plus nonzero coordinates.  Values and the display name are
  excluded because traces depend only on structure, so two matrices
  with the same sparsity pattern share an entry by design.
- ``kind`` names the partition rule: ``"rows"`` (equal row blocks,
  the :class:`~repro.partition.oned.OneDPartition` default) or
  ``"nnz"`` (:func:`~repro.partition.oned.balanced_by_nnz`).  Explicit
  ``row_starts`` are keyed by their own byte digest.
- Entries are never stale: a partition is a pure function of its key,
  and :class:`~repro.partition.oned.NodeTrace` objects are immutable.
  Fault-injected runs (``faults=``) perturb *simulation* behaviour, not
  the partition, so they share cache entries safely — the seeded fault
  processes draw from the result, never mutate the traces.
- The cache is bounded (LRU on entry count) because medium-scale trace
  sets run to hundreds of MB; evictions only cost a rebuild.

Workers forked by :class:`repro.parallel.engine.ExecutionEngine`
inherit whatever the parent already cached (fork start method shares
pages copy-on-write); each worker then fills its own copy for the
matrices it draws.

Counters are exported as ``perf.trace_cache.hits`` / ``.misses`` /
``.evictions`` through :mod:`repro.telemetry`.

When a resident-trace budget is set (``max_resident_nnz`` or the
``REPRO_TRACE_SPILL_NNZ`` env var), least-recently-used entries spill
their idx streams to disk instead of pinning RAM and reload lazily as
windowed traces; the spill tier reports
``perf.trace_cache.spill.{spills,reloads,resident_nnz}``.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
import threading
from collections import OrderedDict
from typing import Optional, Tuple

import numpy as np

from repro import telemetry
from repro.partition.oned import OneDPartition
from repro.sparse.matrix import COOMatrix

__all__ = [
    "TraceCache",
    "cached_partition",
    "get_trace_cache",
    "set_trace_cache",
]

#: Default number of (matrix, n_nodes, rule) entries kept alive.
DEFAULT_MAX_ENTRIES = 8


def _default_spill_nnz() -> Optional[int]:
    """Resident-trace budget from ``REPRO_TRACE_SPILL_NNZ`` (elements);
    unset or empty means unlimited (no spilling)."""
    raw = os.environ.get("REPRO_TRACE_SPILL_NNZ", "").strip()
    return int(raw) if raw else None


class TraceCache:
    """Bounded LRU of built :class:`OneDPartition` objects.

    ``get_partition`` returns a partition whose ``node_traces()`` are
    memoized on the instance, so a hit also reuses the trace arrays and
    every :class:`~repro.partition.oned.NodeTrace` cached property.
    """

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES,
                 max_resident_nnz: Optional[int] = None,
                 spill_dir: Optional[str] = None):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        #: Resident trace budget (idx elements) across all entries;
        #: ``None`` disables the spill tier entirely.
        self.max_resident_nnz = (
            _default_spill_nnz() if max_resident_nnz is None
            else int(max_resident_nnz)
        )
        self._spill_dir = spill_dir
        self._entries: "OrderedDict[Tuple, OneDPartition]" = OrderedDict()
        self._lock = threading.Lock()
        #: Keys currently being built (misses whose construction is in
        #: flight); a second miss on one of these is a *contended*
        #: build — wasted duplicate work the engine's trace-ordered
        #: dispatch exists to avoid.
        self._building: set = set()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.contended_builds = 0
        self.spills = 0
        self.reloads = 0

    @staticmethod
    def _rule_key(kind: str, row_starts: Optional[np.ndarray]) -> str:
        if row_starts is not None:
            digest = hashlib.blake2b(
                np.ascontiguousarray(row_starts, dtype=np.int64).tobytes(),
                digest_size=8,
            ).hexdigest()
            return f"explicit:{digest}"
        if kind not in ("rows", "nnz"):
            raise ValueError(
                f"unknown partition kind {kind!r}; use 'rows' or 'nnz'"
            )
        return kind

    def get_partition(
        self,
        matrix: COOMatrix,
        n_nodes: int,
        kind: str = "rows",
        row_starts: Optional[np.ndarray] = None,
    ) -> OneDPartition:
        """The cached partition for ``matrix`` under the given rule,
        building (and tracing) it on first use."""
        key = (matrix.structural_digest(), int(n_nodes),
               self._rule_key(kind, row_starts))
        with self._lock:
            part = self._entries.get(key)
            if part is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                telemetry.count("perf.trace_cache.hits", kind=key[2])
                return part
            self.misses += 1
            if key in self._building:
                self.contended_builds += 1
                telemetry.count("perf.trace_cache.contended_builds",
                                kind=key[2])
            self._building.add(key)
        telemetry.count("perf.trace_cache.misses", kind=key[2])
        # Build outside the lock: trace construction is the expensive
        # part, and a duplicate build on a race is merely wasted work —
        # counted above so dispatch-ordering regressions show up in
        # telemetry instead of only in wall time.
        # build_partition dispatches on the matrix storage tier, so
        # sharded matrices come back with windowed (bounded) traces.
        from repro.partition.windowed import build_partition

        try:
            part = build_partition(matrix, n_nodes, kind=kind,
                                   row_starts=row_starts)
            part.node_traces()
            with self._lock:
                self._entries[key] = part
                self._entries.move_to_end(key)
                while len(self._entries) > self.max_entries:
                    self._entries.popitem(last=False)
                    self.evictions += 1
                    telemetry.count("perf.trace_cache.evictions")
                self._enforce_spill_budget(key)
        finally:
            with self._lock:
                self._building.discard(key)
        return part

    # -- spill tier ----------------------------------------------------

    def resident_nnz(self) -> int:
        """Idx elements currently held in RAM across all entries."""
        return sum(p.resident_trace_nnz() for p in self._entries.values())

    def _note_reload(self, part) -> None:
        self.reloads += 1
        telemetry.count("perf.trace_cache.spill.reloads")

    def _spill_path(self, key: Tuple) -> str:
        if self._spill_dir is None:
            self._spill_dir = tempfile.mkdtemp(prefix="repro-trace-spill-")
        os.makedirs(self._spill_dir, exist_ok=True)
        digest, n_nodes, rule = key
        fname = f"trace-{digest}-{n_nodes}-{rule}.npy".replace(":", "-")
        return os.path.join(self._spill_dir, fname)

    def _enforce_spill_budget(self, newest_key: Tuple) -> None:
        """Spill LRU entries' traces until the resident set fits.

        Dense partitions write their idx streams to the spill dir and
        reload them as disk-backed windows; sharded partitions just
        release their windows (the data is already on disk).  The most
        recently requested entry is never spilled — the caller holds it.
        Caller must hold the lock.
        """
        if self.max_resident_nnz is None:
            return
        for key in list(self._entries):
            if self.resident_nnz() <= self.max_resident_nnz:
                break
            if key == newest_key:
                continue
            part = self._entries[key]
            if part.resident_trace_nnz() == 0:
                continue
            if hasattr(part, "release_traces"):
                part.release_traces()
            else:
                part.spill(self._spill_path(key), on_reload=self._note_reload)
            self.spills += 1
            telemetry.count("perf.trace_cache.spill.spills")
        telemetry.set_gauge("perf.trace_cache.spill.resident_nnz",
                            self.resident_nnz())

    def clear(self) -> int:
        """Drop every entry; returns how many were held."""
        with self._lock:
            n = len(self._entries)
            self._entries.clear()
        return n

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> dict:
        """Counter snapshot for CLI / engine reporting."""
        return {
            "entries": len(self._entries),
            "max_entries": self.max_entries,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "contended_builds": self.contended_builds,
            "spills": self.spills,
            "reloads": self.reloads,
            "resident_nnz": self.resident_nnz(),
        }


_global_cache = TraceCache()


def get_trace_cache() -> TraceCache:
    """The process-wide cache used by the model, baselines and engine."""
    return _global_cache


def set_trace_cache(cache: TraceCache) -> TraceCache:
    """Swap the process-wide cache (tests, memory-constrained runs);
    returns the previous one."""
    global _global_cache
    previous, _global_cache = _global_cache, cache
    return previous


def cached_partition(
    matrix: COOMatrix,
    n_nodes: int,
    kind: str = "rows",
    row_starts: Optional[np.ndarray] = None,
) -> OneDPartition:
    """Convenience front door onto :func:`get_trace_cache`."""
    return _global_cache.get_partition(
        matrix, n_nodes, kind=kind, row_starts=row_starts
    )
