"""Windowed node traces over out-of-core (sharded) matrices.

A :class:`~repro.partition.oned.NodeTrace` pins the node's full idx
scan in RAM.  At sharded scales the scan lives on disk already — the
shard store keeps nonzeros in canonical (row-major) order, which is
exactly trace order — so a node's trace is just a *window*
``[k0, k1)`` of the global nonzero stream.  :class:`WindowedNodeTrace`
materializes that window (and its derived selections) lazily and can
``release()`` it afterwards, keeping the resident set bounded by the
largest single node window instead of the whole matrix.

The same window mechanism backs the trace cache's spill tier: a dense
:class:`~repro.partition.oned.OneDPartition` whose traces were spilled
to disk (:meth:`~repro.partition.oned.OneDPartition.spill`) reloads
them as windows over the spill file rather than re-sorting the matrix.

Owners are recomputed per window as
``searchsorted(col_starts, idxs, side="right") - 1`` — identical to the
dense path's ``col_owner[idxs]`` lookup (both map ``c`` to the unique
``p`` with ``col_starts[p] <= c < col_starts[p+1]``) without the
O(n_cols) owner array.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.partition.oned import (
    OneDPartition,
    _balanced_row_starts,
    _block_starts,
)
from repro.sparse.shards import ShardedCOOMatrix, is_sharded

__all__ = [
    "ShardedOneDPartition",
    "WindowedNodeTrace",
    "sharded_balanced_by_nnz",
]


class _SpillSource:
    """Window reads over one spilled idx stream (``.npy`` memmap)."""

    def __init__(self, path: str):
        self.path = path
        self._mm: Optional[np.ndarray] = None

    def cols_slice(self, start: int, stop: int) -> np.ndarray:
        if self._mm is None:
            self._mm = np.load(self.path, mmap_mode="r")
        return np.array(self._mm[start:stop])


class WindowedNodeTrace:
    """Drop-in :class:`NodeTrace` twin backed by an on-disk window.

    Exposes the same attributes (``idxs`` / ``owner`` / ``remote`` and
    the ``remote_*`` selections), each materialized on first touch and
    dropped by :meth:`release`.  ``source`` is anything with a
    ``cols_slice(start, stop)`` method — a
    :class:`~repro.sparse.shards.ShardedCOOMatrix` or a spill file.
    """

    __slots__ = ("node", "_source", "_k0", "_k1", "_col_starts", "_cache")

    def __init__(self, node: int, source, k0: int, k1: int,
                 col_starts: np.ndarray):
        self.node = node
        self._source = source
        self._k0 = int(k0)
        self._k1 = int(k1)
        self._col_starts = col_starts
        self._cache: dict = {}

    @property
    def n_nonzeros(self) -> int:
        return self._k1 - self._k0

    @property
    def idxs(self) -> np.ndarray:
        out = self._cache.get("idxs")
        if out is None:
            out = self._source.cols_slice(self._k0, self._k1)
            self._cache["idxs"] = out
        return out

    @property
    def owner(self) -> np.ndarray:
        out = self._cache.get("owner")
        if out is None:
            out = (
                np.searchsorted(self._col_starts, self.idxs, side="right") - 1
            ).astype(np.int32)
            self._cache["owner"] = out
        return out

    @property
    def remote(self) -> np.ndarray:
        out = self._cache.get("remote")
        if out is None:
            out = self.owner != self.node
            self._cache["remote"] = out
        return out

    @property
    def remote_idxs(self) -> np.ndarray:
        out = self._cache.get("remote_idxs")
        if out is None:
            out = self.idxs[self.remote]
            self._cache["remote_idxs"] = out
        return out

    @property
    def remote_owners(self) -> np.ndarray:
        out = self._cache.get("remote_owners")
        if out is None:
            out = self.owner[self.remote]
            self._cache["remote_owners"] = out
        return out

    @property
    def remote_pos(self) -> np.ndarray:
        out = self._cache.get("remote_pos")
        if out is None:
            out = np.nonzero(self.remote)[0]
            self._cache["remote_pos"] = out
        return out

    @property
    def remote_unique(self) -> np.ndarray:
        out = self._cache.get("remote_unique")
        if out is None:
            out = np.unique(self.remote_idxs)
            self._cache["remote_unique"] = out
        return out

    def unique_remote_count(self) -> int:
        if not self.remote.any():
            return 0
        return int(self.remote_unique.size)

    def resident_nnz(self) -> int:
        """Total elements currently materialized for this trace."""
        return sum(int(a.size) for a in self._cache.values())

    def release(self) -> None:
        """Drop every materialized window (reloadable on next touch)."""
        self._cache.clear()


class ShardedOneDPartition:
    """Contiguous 1D row-block partition of a sharded matrix.

    Mirrors the :class:`~repro.partition.oned.OneDPartition` API the
    cluster model and baselines consume (``row_starts`` /
    ``col_starts`` / ``node_traces()`` / ``node_nnz()`` / property
    scatter-gather), but never materializes the matrix: traces are
    :class:`WindowedNodeTrace` windows and there is no O(n_cols)
    ``col_owner`` array (the DES front-end, which needs one, stays
    in-memory only).
    """

    def __init__(self, matrix: ShardedCOOMatrix, n_nodes: int,
                 row_starts: Optional[np.ndarray] = None):
        if n_nodes < 1:
            raise ValueError("need at least one node")
        if n_nodes > matrix.n_rows:
            raise ValueError(
                f"more nodes ({n_nodes}) than matrix rows ({matrix.n_rows})"
            )
        self.matrix = matrix
        self.n_nodes = n_nodes
        if row_starts is not None:
            row_starts = np.asarray(row_starts, dtype=np.int64)
            if (row_starts.size != n_nodes + 1
                    or row_starts[0] != 0
                    or row_starts[-1] != matrix.n_rows
                    or (np.diff(row_starts) < 1).any()):
                raise ValueError("row_starts must be strictly increasing "
                                 "from 0 to n_rows with one block per node")
            self.row_starts = row_starts
        else:
            self.row_starts = _block_starts(matrix.n_rows, n_nodes)
        self.col_starts = (
            self.row_starts
            if matrix.n_cols == matrix.n_rows
            else _block_starts(matrix.n_cols, n_nodes)
        )
        self._trace_offsets: Optional[np.ndarray] = None
        self._traces: Optional[List[WindowedNodeTrace]] = None

    def rows_of(self, node: int) -> range:
        return range(int(self.row_starts[node]),
                     int(self.row_starts[node + 1]))

    def owner_of_col(self, col: int) -> int:
        return int(
            np.searchsorted(self.col_starts, col, side="right") - 1
        )

    def trace_offsets(self) -> np.ndarray:
        """Node boundaries in the global canonical nonzero stream."""
        if self._trace_offsets is None:
            offsets = np.empty(self.n_nodes + 1, dtype=np.int64)
            offsets[0] = 0
            offsets[-1] = self.matrix.nnz
            for p in range(1, self.n_nodes):
                offsets[p] = self.matrix.nnz_before_row(
                    int(self.row_starts[p])
                )
            self._trace_offsets = offsets
        return self._trace_offsets

    def node_nnz(self) -> np.ndarray:
        return np.diff(self.trace_offsets())

    def node_traces(self) -> List[WindowedNodeTrace]:
        """Windowed per-node scan traces (lazy, bounded-resident).

        Shards hold nonzeros in canonical row-major order — the same
        ``(row, col)`` sort :meth:`OneDPartition.node_traces` applies —
        so node ``p``'s idx stream is exactly the column window between
        its row-boundary offsets.
        """
        if self._traces is None:
            offsets = self.trace_offsets()
            self._traces = [
                WindowedNodeTrace(p, self.matrix, offsets[p], offsets[p + 1],
                                  self.col_starts)
                for p in range(self.n_nodes)
            ]
        return self._traces

    def resident_trace_nnz(self) -> int:
        if self._traces is None:
            return 0
        return sum(tr.resident_nnz() for tr in self._traces)

    def release_traces(self) -> int:
        """Drop every materialized window; returns elements released."""
        released = self.resident_trace_nnz()
        if self._traces is not None:
            for tr in self._traces:
                tr.release()
        return released

    # -- distributed property array helpers ---------------------------

    def scatter_properties(self, b: np.ndarray) -> List[np.ndarray]:
        return [
            b[self.col_starts[p] : self.col_starts[p + 1]]
            for p in range(self.n_nodes)
        ]

    def gather_outputs(self, shards: List[np.ndarray]) -> np.ndarray:
        if len(shards) != self.n_nodes:
            raise ValueError("one shard per node required")
        return np.concatenate(shards, axis=0)


def sharded_balanced_by_nnz(matrix: ShardedCOOMatrix,
                            n_nodes: int) -> ShardedOneDPartition:
    """Nonzero-balanced partition of a sharded matrix.

    Same quantile rule as :func:`repro.partition.oned.balanced_by_nnz`,
    with the row-nnz histogram computed by streaming the shards.
    """
    if n_nodes < 1:
        raise ValueError("need at least one node")
    if n_nodes > matrix.n_rows:
        raise ValueError("more nodes than matrix rows")
    row_starts = _balanced_row_starts(matrix.row_nnz(), matrix.n_rows,
                                      n_nodes)
    return ShardedOneDPartition(matrix, n_nodes, row_starts=row_starts)


def build_partition(matrix, n_nodes: int, kind: str = "rows",
                    row_starts: Optional[np.ndarray] = None):
    """Storage-tier-dispatching partition factory.

    Dense matrices get :class:`OneDPartition` /
    :func:`~repro.partition.oned.balanced_by_nnz`; sharded ones the
    windowed twins.  ``row_starts`` overrides ``kind``.
    """
    from repro.partition.oned import balanced_by_nnz

    if is_sharded(matrix):
        if row_starts is not None:
            return ShardedOneDPartition(matrix, n_nodes,
                                        row_starts=row_starts)
        if kind == "nnz":
            return sharded_balanced_by_nnz(matrix, n_nodes)
        return ShardedOneDPartition(matrix, n_nodes)
    if row_starts is not None:
        return OneDPartition(matrix, n_nodes, row_starts=row_starts)
    if kind == "nnz":
        return balanced_by_nnz(matrix, n_nodes)
    return OneDPartition(matrix, n_nodes)


def col_owner_array(part) -> np.ndarray:
    """Full column→owner array for consumers that index it densely
    (the packet-level DES Destination Solver).

    Dense partitions already hold one; windowed partitions answer
    ownership by searchsorted and don't pin the O(n_cols) array, so it
    is rebuilt here from ``col_starts``.
    """
    owner = getattr(part, "col_owner", None)
    if owner is None:
        owner = np.repeat(np.arange(part.n_nodes),
                          np.diff(part.col_starts))
    return owner.astype(np.int64)
