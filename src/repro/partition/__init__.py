"""1D partitioning of matrices and property arrays across cluster nodes."""

from repro.partition.oned import OneDPartition, balanced_by_nnz

__all__ = ["OneDPartition", "balanced_by_nnz"]
