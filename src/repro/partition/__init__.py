"""1D partitioning of matrices and property arrays across cluster nodes."""

from repro.partition.oned import NodeTrace, OneDPartition, balanced_by_nnz
from repro.partition.tracecache import (
    TraceCache,
    cached_partition,
    get_trace_cache,
    set_trace_cache,
)

__all__ = [
    "NodeTrace",
    "OneDPartition",
    "TraceCache",
    "balanced_by_nnz",
    "cached_partition",
    "get_trace_cache",
    "set_trace_cache",
]
