"""1D partitioning of matrices and property arrays across cluster nodes."""

from repro.partition.oned import NodeTrace, OneDPartition, balanced_by_nnz
from repro.partition.tracecache import (
    TraceCache,
    cached_partition,
    get_trace_cache,
    set_trace_cache,
)
from repro.partition.windowed import (
    ShardedOneDPartition,
    WindowedNodeTrace,
    build_partition,
    col_owner_array,
    sharded_balanced_by_nnz,
)

__all__ = [
    "NodeTrace",
    "OneDPartition",
    "ShardedOneDPartition",
    "TraceCache",
    "WindowedNodeTrace",
    "balanced_by_nnz",
    "build_partition",
    "cached_partition",
    "col_owner_array",
    "get_trace_cache",
    "set_trace_cache",
    "sharded_balanced_by_nnz",
]
