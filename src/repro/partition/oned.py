"""1D block partitioning (§2.1 of the paper).

The sparse matrix, the input property array and the output property
array are all split into contiguous row blocks, one per node.  Node
``p`` owns matrix rows (and therefore output rows) in
``[row_starts[p], row_starts[p+1])`` and input properties for the same
index range.  With this scheme output writes are always local and only
*input property reads* (the nonzeros' column ids) may be remote — these
are the Property Requests the entire paper is about.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import List, Optional

import numpy as np

from repro.sparse.matrix import COOMatrix

__all__ = ["OneDPartition", "NodeTrace"]


def _block_starts(n: int, parts: int) -> np.ndarray:
    """Equal-row block boundaries (first ``n % parts`` blocks +1)."""
    base, extra = divmod(n, parts)
    sizes = np.full(parts, base, dtype=np.int64)
    sizes[:extra] += 1
    starts = np.zeros(parts + 1, dtype=np.int64)
    np.cumsum(sizes, out=starts[1:])
    return starts


def _balanced_row_starts(row_nnz: np.ndarray, n_rows: int,
                         n_nodes: int) -> np.ndarray:
    """Block boundaries at equal quantiles of the row-nnz prefix sum."""
    prefix = np.concatenate([[0], np.cumsum(row_nnz)])
    targets = np.linspace(0, prefix[-1], n_nodes + 1)
    starts = np.searchsorted(prefix, targets[1:-1], side="left")
    row_starts = np.concatenate([[0], starts, [n_rows]])
    # Boundaries must be strictly increasing even for empty stretches.
    for i in range(1, n_nodes + 1):
        if row_starts[i] <= row_starts[i - 1]:
            row_starts[i] = row_starts[i - 1] + 1
    overflow = row_starts[-1] - n_rows
    if overflow > 0:
        # Push the excess back from the tail.
        for i in range(n_nodes - 1, 0, -1):
            if row_starts[i] > row_starts[i - 1] + 1:
                shift = min(overflow, row_starts[i] - row_starts[i - 1] - 1)
                row_starts[i:] = row_starts[i:] - shift  # noqa: B909
                overflow -= shift
            if overflow == 0:
                break
    row_starts[-1] = n_rows
    return row_starts


@dataclass
class NodeTrace:
    """The per-node nonzero scan, in processing (row-major) order.

    ``idxs``   — column index (= property index) of each local nonzero.
    ``owner``  — owning node of each idx.
    ``remote`` — boolean mask: the idx is owned by another node.

    The derived views (``remote_idxs`` etc.) are cached: a trace is
    immutable once built, and every scheme walking a shared
    :class:`~repro.partition.tracecache.TraceCache` entry re-reads the
    same selections.
    """

    node: int
    idxs: np.ndarray
    owner: np.ndarray
    remote: np.ndarray

    @property
    def n_nonzeros(self) -> int:
        return int(self.idxs.size)

    @cached_property
    def remote_idxs(self) -> np.ndarray:
        return self.idxs[self.remote]

    @cached_property
    def remote_owners(self) -> np.ndarray:
        return self.owner[self.remote]

    @cached_property
    def remote_pos(self) -> np.ndarray:
        """Scan positions (within ``idxs``) of the remote nonzeros."""
        return np.nonzero(self.remote)[0]

    @cached_property
    def remote_unique(self) -> np.ndarray:
        """Sorted distinct remote idxs (the node's true working set)."""
        return np.unique(self.remote_idxs)

    def unique_remote_count(self) -> int:
        if not self.remote.any():
            return 0
        return int(self.remote_unique.size)


class OneDPartition:
    """Contiguous 1D row-block partition of a square-ish sparse matrix.

    Rows are distributed as evenly as possible (the first
    ``n_rows % n_nodes`` nodes get one extra row).  Input properties are
    partitioned by the same boundaries over the *column* space, which
    requires n_cols == n_rows (true for all benchmark matrices); a
    rectangular matrix partitions columns independently.
    """

    def __init__(self, matrix: COOMatrix, n_nodes: int,
                 row_starts: Optional[np.ndarray] = None):
        if n_nodes < 1:
            raise ValueError("need at least one node")
        if n_nodes > matrix.n_rows:
            raise ValueError(
                f"more nodes ({n_nodes}) than matrix rows ({matrix.n_rows})"
            )
        self.matrix = matrix
        self.n_nodes = n_nodes
        if row_starts is not None:
            row_starts = np.asarray(row_starts, dtype=np.int64)
            if (row_starts.size != n_nodes + 1
                    or row_starts[0] != 0
                    or row_starts[-1] != matrix.n_rows
                    or (np.diff(row_starts) < 1).any()):
                raise ValueError("row_starts must be strictly increasing "
                                 "from 0 to n_rows with one block per node")
            self.row_starts = row_starts
        else:
            self.row_starts = self._block_starts(matrix.n_rows, n_nodes)
        self.col_starts = (
            self.row_starts
            if matrix.n_cols == matrix.n_rows
            else self._block_starts(matrix.n_cols, n_nodes)
        )
        # Owner lookup for every column id (int16 is plenty for <=32k nodes).
        self.col_owner = np.empty(matrix.n_cols, dtype=np.int32)
        for p in range(n_nodes):
            self.col_owner[self.col_starts[p] : self.col_starts[p + 1]] = p
        self.row_owner_of = np.searchsorted(
            self.row_starts, np.arange(matrix.n_rows), side="right"
        ) - 1
        self._traces: Optional[List] = None
        self._spill: Optional[tuple] = None
        self._on_reload = None

    _block_starts = staticmethod(_block_starts)

    def rows_of(self, node: int) -> range:
        return range(int(self.row_starts[node]), int(self.row_starts[node + 1]))

    def owner_of_col(self, col: int) -> int:
        return int(self.col_owner[col])

    def node_nnz(self) -> np.ndarray:
        """Number of nonzeros assigned to each node."""
        row_owner = self.row_owner_of[self.matrix.rows]
        return np.bincount(row_owner, minlength=self.n_nodes)

    def node_traces(self) -> List[NodeTrace]:
        """Every node's nonzero scan trace in row-major order.

        This is the idx stream a node's cores (software SA) or RIG Units
        (NetSparse) walk through; all communication analyses start here.
        Built once per partition instance and memoized — traces are
        immutable, and sweeps revisit them for every scheme/knob point.
        """
        if self._traces is not None:
            return self._traces
        if self._spill is not None:
            return self._reload_spilled()
        mat = self.matrix
        order = np.argsort(mat.rows * mat.n_cols + mat.cols, kind="stable")
        rows_sorted = mat.rows[order]
        cols_sorted = mat.cols[order]
        # Split points between nodes in the sorted nonzero stream.
        split = np.searchsorted(rows_sorted, self.row_starts[1:-1], side="left")
        idx_chunks = np.split(cols_sorted, split)
        traces = []
        for node, idxs in enumerate(idx_chunks):
            owner = self.col_owner[idxs]
            remote = owner != node
            traces.append(NodeTrace(node, idxs, owner, remote))
        self._traces = traces
        return traces

    # -- spill tier ----------------------------------------------------

    @property
    def is_spilled(self) -> bool:
        return self._spill is not None

    def spill(self, path: str, on_reload=None) -> int:
        """Write the built traces' idx streams to ``path`` and drop
        them from RAM.

        The spill file is the concatenated per-node idx stream (one
        ``.npy``); owners and remote masks are recomputed per window on
        reload, so nothing else needs persisting.  Returns the number
        of idx elements spilled (0 when traces were never built —
        they'd be rebuilt from the matrix anyway).
        """
        if self._traces is None:
            return 0
        if self._spill is None:
            traces = self._traces
            offsets = np.zeros(self.n_nodes + 1, dtype=np.int64)
            np.cumsum([tr.idxs.size for tr in traces], out=offsets[1:])
            out = np.lib.format.open_memmap(
                path, mode="w+", dtype=np.int64, shape=(int(offsets[-1]),)
            )
            for tr, k0 in zip(traces, offsets[:-1]):
                out[k0:k0 + tr.idxs.size] = tr.idxs
            out.flush()
            del out
            self._spill = (path, offsets)
        spilled = int(self._spill[1][-1])
        self._traces = None
        self._on_reload = on_reload if on_reload is not None else self._on_reload
        return spilled

    def _reload_spilled(self) -> List:
        from repro.partition.windowed import WindowedNodeTrace, _SpillSource

        path, offsets = self._spill
        source = _SpillSource(path)
        self._traces = [
            WindowedNodeTrace(p, source, offsets[p], offsets[p + 1],
                              self.col_starts)
            for p in range(self.n_nodes)
        ]
        if self._on_reload is not None:
            self._on_reload(self)
        return self._traces

    def resident_trace_nnz(self) -> int:
        """Idx elements currently held in RAM by this partition."""
        if self._traces is None:
            return 0
        total = 0
        for tr in self._traces:
            if isinstance(tr, NodeTrace):
                total += tr.idxs.size
            else:
                total += tr.resident_nnz()
        return total

    # -- distributed property array helpers ---------------------------

    def scatter_properties(self, b: np.ndarray) -> List[np.ndarray]:
        """Split the global input property array into per-node shards."""
        return [
            b[self.col_starts[p] : self.col_starts[p + 1]]
            for p in range(self.n_nodes)
        ]

    def gather_outputs(self, shards: List[np.ndarray]) -> np.ndarray:
        """Concatenate per-node output shards back into the global array."""
        if len(shards) != self.n_nodes:
            raise ValueError("one shard per node required")
        return np.concatenate(shards, axis=0)


def balanced_by_nnz(matrix: COOMatrix, n_nodes: int) -> OneDPartition:
    """Nonzero-balanced contiguous 1D partition (§9.4 future work).

    Equal-row blocks leave the nodes owning dense row ranges with far
    more nonzeros (and communication) than the rest — the inter-node
    imbalance of Figure 19.  This partitioner instead places the block
    boundaries at equal quantiles of the row-nnz prefix sum, equalizing
    per-node work while keeping the contiguity 1D partitioning needs.
    """
    if n_nodes < 1:
        raise ValueError("need at least one node")
    if n_nodes > matrix.n_rows:
        raise ValueError("more nodes than matrix rows")
    row_nnz = np.bincount(matrix.rows, minlength=matrix.n_rows)
    row_starts = _balanced_row_starts(row_nnz, matrix.n_rows, n_nodes)
    return OneDPartition(matrix, n_nodes, row_starts=row_starts)
