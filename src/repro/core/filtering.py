"""Redundant-PR elimination: Idx Filter + Pending PR Table (§5.2).

Semantics modelled
------------------

A client RIG Unit about to issue a PR for ``idx`` drops it when either:

- **Filtering** — the Idx Filter bit for ``idx`` is set, i.e. some unit
  on this node already *received* the property.  The filter lives in
  SNIC DRAM and is shared by all units of the node.
- **Coalescing** — this unit's private Pending PR Table holds an
  *outstanding* PR for the same ``idx``.  Only same-unit PRs coalesce
  (the paper avoids cross-unit synchronization).

Both depend on timing: a duplicate is *filtered* only once the first
request completed, and *coalesced* only while it is still in flight and
was issued by the same unit.  The trace model captures this with an
``inflight_window``: the number of subsequently processed idxs during
which the first request is still outstanding (round-trip time times the
node's idx processing rate).

Batches of ``batch_size`` consecutive idxs are dispatched round-robin
to the client units, which fixes each idx's issuing unit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["FilterResult", "filter_and_coalesce",
           "first_occurrence_positions"]


@dataclass
class FilterResult:
    """Outcome of filter/coalesce over one node's remote idx stream."""

    issued_mask: np.ndarray       # True where a PR actually goes out
    unit_of: np.ndarray           # issuing client unit per position
    n_total: int
    n_issued: int
    n_filtered: int               # dropped via the Idx Filter
    n_coalesced: int              # dropped via the Pending PR Table

    @property
    def fc_rate(self) -> float:
        """Fraction of candidate PRs eliminated (Table 7 'F+C Rate')."""
        if self.n_total == 0:
            return 0.0
        return (self.n_filtered + self.n_coalesced) / self.n_total

    @property
    def n_dropped(self) -> int:
        return self.n_filtered + self.n_coalesced


def first_occurrence_positions(idxs: np.ndarray) -> np.ndarray:
    """Position of the first occurrence of each element's value.

    This is the *filter anchor*: the only part of
    :func:`filter_and_coalesce` that needs the ``np.unique`` sort, and
    it depends on the idx stream alone — not on the batch size, unit
    count or in-flight window.  A sweep over those knobs can therefore
    compute it once per trace and pass it back via ``first_pos``.
    """
    idxs = np.asarray(idxs)
    n = idxs.size
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    pos = np.arange(n, dtype=np.int64)
    uniq, inverse = np.unique(idxs, return_inverse=True)
    first_pos = np.full(uniq.size, n, dtype=np.int64)
    np.minimum.at(first_pos, inverse, pos)
    return first_pos[inverse]


def filter_and_coalesce(
    idxs: np.ndarray,
    n_units: int = 16,
    batch_size: int = 32 * 1024,
    inflight_window: int = 4096,
    enable_filtering: bool = True,
    enable_coalescing: bool = True,
    first_pos: Optional[np.ndarray] = None,
) -> FilterResult:
    """Apply Idx-Filter + Pending-PR-Table semantics to an idx stream.

    ``idxs`` is one node's remote property indices in processing order.
    Returns which of them turn into wire PRs.

    The model anchors each duplicate to the *first* occurrence of its
    idx: the duplicate is filtered if the first request has completed
    (``first_pos <= pos - inflight_window``), coalesced if it is still
    outstanding and was issued by the same unit.  Duplicates of PRs
    that are simultaneously in flight from *other* units escape both
    structures — exactly the cross-unit redundancy the paper accepts to
    avoid synchronization.

    ``first_pos`` optionally supplies a precomputed
    :func:`first_occurrence_positions` anchor for ``idxs`` (it must
    have been computed from exactly this stream); the result is
    bit-identical with or without it.
    """
    idxs = np.asarray(idxs)
    n = idxs.size
    if n_units < 1 or batch_size < 1:
        raise ValueError("n_units and batch_size must be positive")
    if inflight_window < 0:
        raise ValueError("inflight_window must be nonnegative")
    pos = np.arange(n, dtype=np.int64)
    unit_of = (pos // batch_size) % n_units
    if n == 0:
        return FilterResult(
            issued_mask=np.ones(0, dtype=bool),
            unit_of=unit_of, n_total=0, n_issued=0,
            n_filtered=0, n_coalesced=0,
        )

    if first_pos is not None:
        fp = np.asarray(first_pos)
        if fp.size != n:
            raise ValueError("first_pos must match the idx stream length")
    else:
        fp = first_occurrence_positions(idxs)
    is_duplicate = pos != fp
    completed = fp <= pos - inflight_window
    same_unit = unit_of == unit_of[fp]

    drop_filter = is_duplicate & completed if enable_filtering else np.zeros(n, bool)
    drop_coalesce = (
        is_duplicate & ~completed & same_unit
        if enable_coalescing
        else np.zeros(n, bool)
    )
    dropped = drop_filter | drop_coalesce
    return FilterResult(
        issued_mask=~dropped,
        unit_of=unit_of,
        n_total=n,
        n_issued=int((~dropped).sum()),
        n_filtered=int(drop_filter.sum()),
        n_coalesced=int(drop_coalesce.sum()),
    )
