"""Optional array-based Property Cache replay kernel (numba-ready).

:func:`replay_hits` is a flat-array reformulation of
:func:`repro.core.pcache_fast.delayed_cache_hits` for the ``lru`` and
``fifo`` policies: each set is ``ways`` slots in two parallel arrays
(``keys`` / ``stamps``) and the victim is the minimum-stamp slot —
equivalent to the insertion-ordered-dict bookkeeping because an LRU
hit re-stamps the line (dict re-insert) while a FIFO hit does not.

The kernel body is plain Python over numpy arrays, so it is
golden-testable everywhere; when `numba <https://numba.pydata.org>`_
happens to be importable it is JIT-wrapped at import time
(``HAVE_NUMBA``), turning the per-element loop into machine code.
numba is **never required** — the container images do not ship it —
and the ``random`` policy always falls back to the dict kernel (its
victim choice indexes the set's insertion order, which has no
array-local equivalent).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["HAVE_NUMBA", "replay_hits", "supports"]

_NEVER = 1 << 62


def _replay_kernel(
    idxs: np.ndarray,        # int64[n] stream
    keys: np.ndarray,        # int64[n_sets * ways], -1 = empty
    stamps: np.ndarray,      # int64[n_sets * ways]
    counts: np.ndarray,      # int64[n_sets] live lines per set
    hits: np.ndarray,        # bool[n] out
    n_sets: int,
    ways: int,
    delay: int,
    lru: bool,
) -> Tuple[int, int, int]:
    """Replay ``idxs``; returns (hits, insertions, evictions)."""
    n = idxs.shape[0]
    pend_idx = np.empty(n, dtype=np.int64)
    pend_pos = np.empty(n, dtype=np.int64)
    head = 0
    tail = 0
    next_due = _NEVER
    stamp = 0
    n_hit = 0
    n_ins = 0
    n_ev = 0

    for i in range(n):
        idx = idxs[i]
        while i >= next_due:
            v = pend_idx[head]
            head += 1
            if head < tail:
                next_due = pend_pos[head] + delay
            else:
                next_due = _NEVER
            base = (v % n_sets) * ways
            found = False
            for w in range(ways):
                if keys[base + w] == v:
                    found = True
                    break
            if not found:
                slot = -1
                if counts[v % n_sets] >= ways:
                    best = _NEVER
                    for w in range(ways):
                        if stamps[base + w] < best:
                            best = stamps[base + w]
                            slot = w
                    n_ev += 1
                    counts[v % n_sets] -= 1
                else:
                    for w in range(ways):
                        if keys[base + w] == -1:
                            slot = w
                            break
                keys[base + slot] = v
                stamp += 1
                stamps[base + slot] = stamp
                counts[v % n_sets] += 1
                n_ins += 1
        base = (idx % n_sets) * ways
        found = False
        for w in range(ways):
            if keys[base + w] == idx:
                found = True
                if lru:
                    stamp += 1
                    stamps[base + w] = stamp
                break
        if found:
            hits[i] = True
            n_hit += 1
        else:
            pend_idx[tail] = idx
            pend_pos[tail] = i
            tail += 1
            if next_due == _NEVER:
                next_due = i + delay

    while head < tail:
        v = pend_idx[head]
        head += 1
        base = (v % n_sets) * ways
        found = False
        for w in range(ways):
            if keys[base + w] == v:
                found = True
                break
        if not found:
            slot = -1
            if counts[v % n_sets] >= ways:
                best = _NEVER
                for w in range(ways):
                    if stamps[base + w] < best:
                        best = stamps[base + w]
                        slot = w
                n_ev += 1
                counts[v % n_sets] -= 1
            else:
                for w in range(ways):
                    if keys[base + w] == -1:
                        slot = w
                        break
            keys[base + slot] = v
            stamp += 1
            stamps[base + slot] = stamp
            counts[v % n_sets] += 1
            n_ins += 1

    return n_hit, n_ins, n_ev


try:                                               # pragma: no cover
    import numba

    _replay_kernel_jit = numba.njit(cache=False)(_replay_kernel)
    HAVE_NUMBA = True
except Exception:                                  # numba absent: fine
    _replay_kernel_jit = _replay_kernel
    HAVE_NUMBA = False


def supports(policy: str) -> bool:
    """Whether this kernel covers ``policy`` (lru / fifo only)."""
    return policy in ("lru", "fifo")


def replay_hits(idxs: np.ndarray, n_sets: int, ways: int, delay: int,
                policy: str = "lru"):
    """Array-kernel twin of ``delayed_cache_hits`` for lru / fifo.

    Returns ``(hits, (n_hits, n_ins, n_ev))``; raises ``ValueError``
    for policies the flat-array formulation cannot express.
    """
    if not supports(policy):
        raise ValueError(f"array kernel does not support policy {policy!r}")
    idxs = np.ascontiguousarray(idxs, dtype=np.int64)
    n = int(idxs.size)
    hits = np.zeros(n, dtype=bool)
    if n_sets <= 0 or n == 0:
        return hits, (0, 0, 0)
    keys = np.full(n_sets * ways, -1, dtype=np.int64)
    stamps = np.zeros(n_sets * ways, dtype=np.int64)
    counts = np.zeros(n_sets, dtype=np.int64)
    out = _replay_kernel_jit(
        idxs, keys, stamps, counts, hits,
        int(n_sets), int(ways), max(int(delay), 0), policy == "lru",
    )
    return hits, tuple(int(x) for x in out)
