"""Shared process pool for the ``pool`` kernel tier.

The cluster model's per-rack Property Cache replays are independent
deterministic kernels over disjoint streams — ideal fan-out units.
``REPRO_KERNELS=pool`` routes them through one lazily created
fork-context :class:`~concurrent.futures.ProcessPoolExecutor` shared
by the whole process (``REPRO_POOL_JOBS`` caps workers; default is
``os.cpu_count() - 1``).

Nesting guard: the execution engine's own worker processes (and any
other child process) must not each spawn a pool of their own —
:func:`pool_available` reports False inside a child process, in daemon
processes and when ``REPRO_POOL_DISABLE`` is set, and
:func:`map_cache_replays` then simply runs the replays serially with
the same fast kernel.  Results are bit-identical either way, so the
fallback is silent and safe.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from typing import List, Sequence, Tuple

import numpy as np

from repro.core.pcache_fast import delayed_cache_hits

__all__ = ["map_cache_replays", "pool_available", "pool_workers",
           "shutdown"]

_executor: ProcessPoolExecutor = None


def pool_workers() -> int:
    """Worker count the pool would use (``REPRO_POOL_JOBS`` override)."""
    raw = os.environ.get("REPRO_POOL_JOBS", "").strip()
    if raw:
        return max(int(raw), 1)
    return max((os.cpu_count() or 2) - 1, 1)


def pool_available() -> bool:
    """Whether fanning out to a process pool is safe here."""
    if os.environ.get("REPRO_POOL_DISABLE"):
        return False
    proc = multiprocessing.current_process()
    if proc.daemon:
        return False
    # Child processes (engine workers, pool workers themselves) run
    # their replays serially instead of spawning grandchild pools.
    if multiprocessing.parent_process() is not None:
        return False
    return True


def _get_executor() -> ProcessPoolExecutor:
    global _executor
    if _executor is None:
        ctx = multiprocessing.get_context("fork")
        _executor = ProcessPoolExecutor(
            max_workers=pool_workers(), mp_context=ctx
        )
        atexit.register(shutdown)
    return _executor


def shutdown() -> None:
    """Tear the shared pool down (tests, interpreter exit)."""
    global _executor
    if _executor is not None:
        _executor.shutdown(wait=True, cancel_futures=True)
        _executor = None


def _replay_one(task) -> Tuple[np.ndarray, object]:
    idxs, n_sets, ways, delay, policy = task
    return delayed_cache_hits(idxs, n_sets, ways, delay, policy=policy)


def map_cache_replays(
    tasks: Sequence[Tuple],
) -> List[Tuple[np.ndarray, object]]:
    """Run ``delayed_cache_hits`` over task tuples, fanned out when safe.

    Each task is ``(idxs, n_sets, ways, delay, policy)``.  Results come
    back in task order and are bit-identical to serial execution — the
    replays share no state.  Single tasks and nested contexts skip the
    pool (fork + pickle overhead would dominate).
    """
    tasks = list(tasks)
    if len(tasks) <= 1 or not pool_available():
        return [_replay_one(t) for t in tasks]
    try:
        return list(_get_executor().map(_replay_one, tasks))
    except (OSError, RuntimeError):
        # Pool creation can fail in constrained sandboxes; the serial
        # path is always equivalent.
        return [_replay_one(t) for t in tasks]
