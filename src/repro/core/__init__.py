"""The paper's primary contribution: NetSparse hardware mechanisms.

- :mod:`repro.core.protocol`  — the two-layer NetSparse packet format
  and header-overhead math (§6.1.1, Figure 6, Table 3).
- :mod:`repro.core.filtering` — Idx-Filter + Pending-PR-Table semantics
  (filtering and coalescing, §5.2), vectorized over idx traces.
- :mod:`repro.core.concat`    — PR concatenation: delay-queue DES
  components and the vectorized window model (§6.1.2).
- :mod:`repro.core.pcache`    — the segmented set-associative in-switch
  Property Cache (§6.2.2).
- :mod:`repro.core.rig`       — RIG Units: DES client/server models and
  the batch-scheduling timing math (§5.1, §5.3).
"""

from repro.core.protocol import header_traffic_fraction, sa_pair_header_bytes
from repro.core.filtering import FilterResult, filter_and_coalesce
from repro.core.concat import ConcatStats, DelayQueueConcatenator, window_concat
from repro.core.pcache import PropertyCache

__all__ = [
    "ConcatStats",
    "DelayQueueConcatenator",
    "FilterResult",
    "PropertyCache",
    "filter_and_coalesce",
    "header_traffic_fraction",
    "sa_pair_header_bytes",
    "window_concat",
]
