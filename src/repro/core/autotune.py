"""Dynamic RIG-batch-size selection (§9.4 future work).

The paper observes that its statically chosen batch sizes are often
non-optimal and proposes dynamically adjusting them.  This module
implements the natural online scheme: probe a log-spaced ladder of
batch sizes with the cluster model (standing in for a short warm-up
iteration on real hardware), then hill-climb around the best probe.

The result feeds the ``autotune`` experiment, which quantifies how much
of the Figure 15 spread the controller recovers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence

__all__ = ["TuneResult", "tune_rig_batch"]


@dataclass
class TuneResult:
    """Outcome of a batch-size search."""

    best_batch: int
    best_time: float
    probes: Dict[int, float] = field(default_factory=dict)
    n_evaluations: int = 0

    def speedup_over(self, batch: int) -> float:
        """How much the tuned batch beats a given static choice."""
        if batch not in self.probes:
            raise KeyError(f"batch {batch} was never evaluated")
        return self.probes[batch] / self.best_time


def tune_rig_batch(
    evaluate: Callable[[int], float],
    ladder: Optional[Sequence[int]] = None,
    refine_steps: int = 2,
    min_batch: int = 256,
    max_batch: int = 4 * 1024 * 1024,
) -> TuneResult:
    """Search batch sizes minimizing ``evaluate(batch) -> time``.

    ``ladder`` defaults to powers of four from 1k to 1M (six probes —
    cheap enough to amortize over a long kernel).  ``refine_steps``
    rounds of neighbour probing (x/÷2) then polish the winner.
    """
    if ladder is None:
        ladder = [1 << b for b in range(10, 21, 2)]   # 1k .. 1M
    ladder = sorted(set(int(b) for b in ladder))
    if not ladder or ladder[0] < 1:
        raise ValueError("ladder must contain positive batch sizes")

    probes: Dict[int, float] = {}

    def probe(batch: int) -> float:
        batch = int(min(max(batch, min_batch), max_batch))
        if batch not in probes:
            probes[batch] = evaluate(batch)
        return probes[batch]

    for batch in ladder:
        probe(batch)
    best = min(probes, key=probes.get)
    for _ in range(refine_steps):
        for candidate in (best // 2, best * 2):
            probe(candidate)
        new_best = min(probes, key=probes.get)
        if new_best == best:
            break
        best = new_best
    return TuneResult(
        best_batch=best,
        best_time=probes[best],
        probes=dict(probes),
        n_evaluations=len(probes),
    )
