"""Dynamic RIG-batch-size selection (§9.4 future work).

The paper observes that its statically chosen batch sizes are often
non-optimal and proposes dynamically adjusting them.  This module
implements the natural online scheme: probe a log-spaced ladder of
batch sizes with the cluster model (standing in for a short warm-up
iteration on real hardware), then hill-climb around the best probe.

The result feeds the ``autotune`` experiment, which quantifies how much
of the Figure 15 spread the controller recovers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence

__all__ = ["TuneResult", "tune_rig_batch"]


@dataclass
class TuneResult:
    """Outcome of a batch-size search."""

    best_batch: int
    best_time: float
    probes: Dict[int, float] = field(default_factory=dict)
    n_evaluations: int = 0

    def speedup_over(self, batch: int) -> float:
        """How much the tuned batch beats a given static choice."""
        if batch not in self.probes:
            raise KeyError(f"batch {batch} was never evaluated")
        return self.probes[batch] / self.best_time


def tune_rig_batch(
    evaluate: Optional[Callable[[int], float]] = None,
    ladder: Optional[Sequence[int]] = None,
    refine_steps: int = 2,
    min_batch: int = 256,
    max_batch: int = 4 * 1024 * 1024,
    evaluate_many: Optional[
        Callable[[Sequence[int]], Sequence[float]]
    ] = None,
) -> TuneResult:
    """Search batch sizes minimizing ``evaluate(batch) -> time``.

    ``ladder`` defaults to powers of four from 1k to 1M (six probes —
    cheap enough to amortize over a long kernel).  ``refine_steps``
    rounds of neighbour probing (x/÷2) then polish the winner.

    ``evaluate_many`` optionally evaluates a whole round of probes in
    one call — the ladder first, then each refinement round's
    neighbour pair — so a caller can route the round through
    :func:`repro.parallel.engine.simulate_many` and let the batch
    planner fuse it.  The probed batches, their order, and the result
    are identical to the scalar path (each probe is still one
    deterministic job); only call granularity changes.
    """
    if evaluate is None and evaluate_many is None:
        raise ValueError("provide evaluate or evaluate_many")
    if ladder is None:
        ladder = [1 << b for b in range(10, 21, 2)]   # 1k .. 1M
    ladder = sorted(set(int(b) for b in ladder))
    if not ladder or ladder[0] < 1:
        raise ValueError("ladder must contain positive batch sizes")

    probes: Dict[int, float] = {}

    def probe_round(candidates: Sequence[int]) -> None:
        todo = []
        for batch in candidates:
            batch = int(min(max(batch, min_batch), max_batch))
            if batch not in probes and batch not in todo:
                todo.append(batch)
        if not todo:
            return
        if evaluate_many is not None:
            times = list(evaluate_many(todo))
            if len(times) != len(todo):
                raise ValueError(
                    "evaluate_many returned %d results for %d probes"
                    % (len(times), len(todo))
                )
            probes.update(zip(todo, times))
        else:
            for batch in todo:
                probes[batch] = evaluate(batch)

    probe_round(ladder)
    best = min(probes, key=probes.get)
    for _ in range(refine_steps):
        probe_round((best // 2, best * 2))
        new_best = min(probes, key=probes.get)
        if new_best == best:
            break
        best = new_best
    return TuneResult(
        best_batch=best,
        best_time=probes[best],
        probes=dict(probes),
        n_evaluations=len(probes),
    )
