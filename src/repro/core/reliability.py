"""Packet-loss handling for RIG operations (§7 "Network Packet Loss").

The fabric is lossless (backpressure), so losses stem from hardware
failures.  Detection follows the paper: a watchdog timer is armed when
a RIG operation starts and reset when it terminates; on timeout the
operation is *failed* — the host is informed and the host-memory buffer
holding any partial results is discarded.  We add the natural recovery
loop on top: the host reissues the failed command, with the unit's
state (pending table, Idx Filter bits, received buffer) rolled back so
late/stale responses from the failed attempt are recognized and dropped
(see :meth:`repro.core.rig.RigClientUnit.run_rx`).

The re-issue schedule is pluggable (:mod:`repro.faults.policies`):
the default re-issues immediately (the historical behaviour), while
``backoff="exponential"`` waits out an exponential-with-seeded-jitter
schedule between attempts — the right policy when the failure is a
congested or flapping fabric rather than a dead unit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro import telemetry
from repro.core.rig import RigClientUnit
from repro.faults.policies import BackoffPolicy, backoff_from_spec
from repro.sim import Simulator

__all__ = ["RigWatchdog", "WatchdogReport", "RigOperationFailed"]


class RigOperationFailed(RuntimeError):
    """A RIG operation exceeded its retry budget."""


@dataclass
class WatchdogReport:
    """Outcome of a watchdog-protected RIG operation."""

    attempts: int
    timeouts: int
    discarded_properties: int
    completed: bool
    elapsed: float
    events: List[str] = field(default_factory=list)


class RigWatchdog:
    """Drive a client RIG Unit's command under a watchdog timer.

    ``backoff`` selects the re-issue schedule: a
    :class:`~repro.faults.policies.BackoffPolicy`, ``"fixed"``/``None``
    (immediate re-issue) or ``"exponential"`` (seeded jitter).
    """

    def __init__(
        self,
        sim: Simulator,
        unit: RigClientUnit,
        timeout: float,
        max_retries: int = 3,
        backoff: BackoffPolicy | str | None = None,
    ):
        if timeout <= 0:
            raise ValueError("watchdog timeout must be positive")
        if max_retries < 0:
            raise ValueError("max_retries must be nonnegative")
        self.sim = sim
        self.unit = unit
        self.timeout = timeout
        self.max_retries = max_retries
        self.backoff = backoff_from_spec(backoff, seed=unit.unit_id)

    def execute(self, idxs) -> "Process":
        """Returns a process-event whose value is a WatchdogReport."""
        return self.sim.process(self._execute(list(idxs)),
                                name=f"watchdog-rig{self.unit.unit_id}")

    def _execute(self, idxs):
        start = self.sim.now
        report = WatchdogReport(attempts=0, timeouts=0,
                                discarded_properties=0, completed=False,
                                elapsed=0.0)
        for attempt in range(self.max_retries + 1):
            report.attempts += 1
            telemetry.count("faults.watchdog.attempts")
            received_mark = len(self.unit.received_idxs)
            command = self.unit.execute(idxs)
            deadline = self.sim.timeout(self.timeout)
            yield self.sim.any_of([command, deadline])
            if command.processed:
                report.completed = True
                report.elapsed = self.sim.now - start
                report.events.append(f"attempt {attempt}: completed")
                return report
            # Watchdog fired: fail the operation and discard the buffer.
            report.timeouts += 1
            telemetry.count("faults.watchdog.timeouts")
            report.events.append(f"attempt {attempt}: watchdog timeout")
            if command.is_alive:
                command.interrupt("watchdog")
            report.discarded_properties += self._discard(received_mark)
            delay = self.backoff.delay(attempt)
            if delay > 0.0 and attempt < self.max_retries:
                telemetry.observe("faults.watchdog.backoff_s", delay)
                report.events.append(
                    f"attempt {attempt}: backoff {delay:.3g}s"
                )
                yield self.sim.timeout(delay)
        report.elapsed = self.sim.now - start
        telemetry.count("faults.watchdog.failures")
        raise RigOperationFailed(
            f"RIG operation failed after {report.attempts} attempts "
            f"({report.timeouts} watchdog timeouts)"
        )

    def _discard(self, received_mark: int) -> int:
        """Roll back the failed attempt's partial results (§7.1:
        'the whole buffer ... is discarded')."""
        unit = self.unit
        partial = unit.received_idxs[received_mark:]
        del unit.received_idxs[received_mark:]
        for idx in partial:
            unit.idx_filter.discard(idx)
        unit.pending.clear()
        # Wake anything parked on a pending-table slot.
        wake, unit._slot_free = unit._slot_free, self.sim.event()
        wake.succeed(None)
        return len(partial)
