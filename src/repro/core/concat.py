"""PR concatenation: Concatenation Queues with delay-based flush (§6.1.2).

Two implementations with the same semantics:

- :class:`DelayQueueConcatenator` — an exact DES component: one
  MTU-sized Concatenation Queue (CQ) per (type, destination), an
  Expiration-Time Queue scheduling flushes ``delay`` after the first PR
  enters an empty CQ, immediate flush on a full CQ.  Used in the
  packet-level validation simulations.
- :func:`window_concat` — the vectorized trace model: the PR stream is
  chopped into windows of ``window_prs`` consecutive PRs (the number of
  PRs that pass a concatenation point within one delay interval) and
  same-destination PRs within a window share packets.  Used at 128-node
  scale.

The equivalence of the two under steady arrival rates is asserted in
the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Tuple

import numpy as np

from repro.core import kernels
from repro.sim import Simulator

__all__ = [
    "ConcatStats",
    "DelayQueueConcatenator",
    "merge_concat_stats",
    "window_concat",
    "window_concat_stream",
    "window_concat_totals",
]


@dataclass
class ConcatStats:
    """Aggregate outcome of concatenating one PR stream.

    ``per_dest_*`` map destination node → counts, which the cluster
    model turns into per-flow wire bytes.
    """

    n_prs: int
    n_packets: int
    n_solo_packets: int            # packets carrying exactly one PR
    per_dest_prs: Dict[int, int]
    per_dest_packets: Dict[int, int]
    per_dest_solo: Dict[int, int]

    @property
    def avg_prs_per_packet(self) -> float:
        """Table 7's 'Avg #PR/Pkt'."""
        if self.n_packets == 0:
            return 0.0
        return self.n_prs / self.n_packets

    def wire_bytes_per_dest(
        self,
        pr_payload: int,
        header_upper: int = 50,
        header_concat: int = 14,
        header_concat_solo: int = 10,
        header_pr: int = 18,
    ) -> Dict[int, int]:
        """Total wire bytes toward each destination."""
        out = {}
        shared = header_upper + header_concat
        shared_solo = header_upper + header_concat_solo
        for dest, pkts in self.per_dest_packets.items():
            solo = self.per_dest_solo.get(dest, 0)
            prs = self.per_dest_prs[dest]
            out[dest] = (
                (pkts - solo) * shared
                + solo * shared_solo
                + prs * (header_pr + pr_payload)
            )
        return out


def window_concat(
    dests: np.ndarray,
    max_prs_per_packet: int,
    window_prs: int,
) -> ConcatStats:
    """Vectorized window model of delay-queue concatenation.

    Within each window of ``window_prs`` consecutive PRs, PRs to the
    same destination are packed ``max_prs_per_packet`` to a packet (a
    full CQ flushes immediately; the remainder flushes on expiry).

    ``window_prs <= 1`` (or ``max_prs_per_packet == 1``) degenerates to
    one packet per PR — the no-concatenation baseline.
    """
    dests = np.asarray(dests, dtype=np.int64)
    n = dests.size
    if max_prs_per_packet < 1:
        raise ValueError("max_prs_per_packet must be >= 1")
    if n == 0:
        return ConcatStats(0, 0, 0, {}, {}, {})
    window_prs = max(int(window_prs), 1)
    if kernels.is_fast():
        return _window_concat_fast(dests, max_prs_per_packet, window_prs)
    return _window_concat_reference(dests, max_prs_per_packet, window_prs)


def _window_concat_reference(
    dests: np.ndarray, max_prs_per_packet: int, window_prs: int
) -> ConcatStats:
    """Original window model with the per-destination reduction loop."""
    n = dests.size
    window_id = np.arange(n, dtype=np.int64) // window_prs
    key = window_id * (dests.max() + 1) + dests
    uniq_keys, counts = np.unique(key, return_counts=True)
    group_dest = uniq_keys % (dests.max() + 1)

    full, rem = np.divmod(counts, max_prs_per_packet)
    packets_per_group = full + (rem > 0)
    if max_prs_per_packet == 1:
        solo_per_group = counts
    else:
        solo_per_group = (rem == 1).astype(np.int64)

    per_dest_prs: Dict[int, int] = {}
    per_dest_packets: Dict[int, int] = {}
    per_dest_solo: Dict[int, int] = {}
    for d in np.unique(group_dest):
        sel = group_dest == d
        per_dest_prs[int(d)] = int(counts[sel].sum())
        per_dest_packets[int(d)] = int(packets_per_group[sel].sum())
        per_dest_solo[int(d)] = int(solo_per_group[sel].sum())

    return ConcatStats(
        n_prs=n,
        n_packets=int(packets_per_group.sum()),
        n_solo_packets=int(solo_per_group.sum()),
        per_dest_prs=per_dest_prs,
        per_dest_packets=per_dest_packets,
        per_dest_solo=per_dest_solo,
    )


def _window_concat_fast(
    dests: np.ndarray, max_prs_per_packet: int, window_prs: int
) -> ConcatStats:
    """Pure-integer vectorized form of :func:`_window_concat_reference`.

    Replaces both its sort-based ``np.unique`` over the (window, dest)
    key and the per-destination boolean-mask loop with ``bincount``
    histograms.  All quantities are integer counts, so the two
    implementations agree exactly (golden-tested).
    """
    n = dests.size
    window_id = np.arange(n, dtype=np.int64) // window_prs
    d_span = int(dests.max()) + 1
    n_windows = int(window_id[-1]) + 1
    keyspace = n_windows * d_span
    key = window_id * d_span + dests
    if keyspace <= max(4 * n, 1 << 16):
        all_counts = np.bincount(key, minlength=keyspace)
        nz = np.flatnonzero(all_counts)
        counts = all_counts[nz]
        group_dest = nz % d_span
    else:
        # Sparse destination space (e.g. raw row ids): fall back to the
        # sort, still aggregating per destination without a loop below.
        uniq_keys, counts = np.unique(key, return_counts=True)
        group_dest = uniq_keys % d_span

    full, rem = np.divmod(counts, max_prs_per_packet)
    packets_per_group = full + (rem > 0)
    if max_prs_per_packet == 1:
        solo_per_group = counts
    else:
        solo_per_group = (rem == 1).astype(np.int64)

    # Integer-weight histograms are exact (float64 holds counts < 2**53).
    prs_sum = np.bincount(group_dest, counts, minlength=d_span).astype(np.int64)
    pkt_sum = np.bincount(
        group_dest, packets_per_group, minlength=d_span
    ).astype(np.int64)
    solo_sum = np.bincount(
        group_dest, solo_per_group, minlength=d_span
    ).astype(np.int64)
    dest_ids = np.flatnonzero(prs_sum)  # every group holds >= 1 PR

    return ConcatStats(
        n_prs=n,
        n_packets=int(packets_per_group.sum()),
        n_solo_packets=int(solo_per_group.sum()),
        per_dest_prs={int(d): int(prs_sum[d]) for d in dest_ids},
        per_dest_packets={int(d): int(pkt_sum[d]) for d in dest_ids},
        per_dest_solo={int(d): int(solo_sum[d]) for d in dest_ids},
    )


def window_concat_totals(
    dests: np.ndarray,
    max_prs_per_packet: int,
    window_prs: int,
    pr_payload: int,
    header_upper: int = 50,
    header_concat: int = 14,
    header_concat_solo: int = 10,
    header_pr: int = 18,
) -> Tuple[int, int]:
    """``(total wire bytes, n_packets)`` of one concatenation stage.

    Equals ``sum(window_concat(...).wire_bytes_per_dest(...).values())``
    and ``.n_packets`` without materializing the per-destination maps:
    the per-destination byte formula is linear in the per-destination
    packet/solo/PR counts, so summing it over destinations only needs
    the stream totals.  All quantities are integer counts, making the
    collapse an exact identity (golden-tested against the full path).
    """
    dests = np.asarray(dests, dtype=np.int64)
    n = dests.size
    if max_prs_per_packet < 1:
        raise ValueError("max_prs_per_packet must be >= 1")
    if n == 0:
        return 0, 0
    window_prs = max(int(window_prs), 1)
    window_id = np.arange(n, dtype=np.int64) // window_prs
    d_span = int(dests.max()) + 1
    n_windows = int(window_id[-1]) + 1
    keyspace = n_windows * d_span
    key = window_id * d_span + dests
    if keyspace <= max(4 * n, 1 << 16):
        counts = np.bincount(key, minlength=keyspace)
        counts = counts[counts > 0]
    else:
        _, counts = np.unique(key, return_counts=True)
    full, rem = np.divmod(counts, max_prs_per_packet)
    n_packets = int(full.sum()) + int((rem > 0).sum())
    if max_prs_per_packet == 1:
        n_solo = n
    else:
        n_solo = int((rem == 1).sum())
    total = (
        (n_packets - n_solo) * (header_upper + header_concat)
        + n_solo * (header_upper + header_concat_solo)
        + n * (header_pr + pr_payload)
    )
    return total, n_packets


def merge_concat_stats(parts: List[ConcatStats]) -> ConcatStats:
    """Sum :class:`ConcatStats` over disjoint stream segments.

    Exact when the segments were cut on window boundaries: the window
    model couples elements only within one ``window_prs`` window, so
    no (window, destination) group spans a boundary and every count is
    a plain sum.
    """
    n_prs = n_packets = n_solo = 0
    per_dest_prs: Dict[int, int] = {}
    per_dest_packets: Dict[int, int] = {}
    per_dest_solo: Dict[int, int] = {}
    for st in parts:
        n_prs += st.n_prs
        n_packets += st.n_packets
        n_solo += st.n_solo_packets
        for d, v in st.per_dest_prs.items():
            per_dest_prs[d] = per_dest_prs.get(d, 0) + v
        for d, v in st.per_dest_packets.items():
            per_dest_packets[d] = per_dest_packets.get(d, 0) + v
        for d, v in st.per_dest_solo.items():
            per_dest_solo[d] = per_dest_solo.get(d, 0) + v
    return ConcatStats(n_prs, n_packets, n_solo, per_dest_prs,
                       per_dest_packets, per_dest_solo)


def window_concat_stream(
    dest_chunks: Iterable[np.ndarray],
    max_prs_per_packet: int,
    window_prs: int,
) -> ConcatStats:
    """:func:`window_concat` over a chunked PR stream.

    Buffers each incoming chunk to the last complete ``window_prs``
    boundary before reducing it, so the grouping — and therefore every
    count — is bit-identical to one whole-stream call while only one
    chunk (plus a sub-window remainder) is resident.
    """
    if max_prs_per_packet < 1:
        raise ValueError("max_prs_per_packet must be >= 1")
    window_prs = max(int(window_prs), 1)
    parts: List[ConcatStats] = []
    buf = np.zeros(0, dtype=np.int64)
    for chunk in dest_chunks:
        chunk = np.asarray(chunk, dtype=np.int64)
        arr = np.concatenate([buf, chunk]) if buf.size else chunk
        cut = (arr.size // window_prs) * window_prs
        if cut:
            parts.append(window_concat(arr[:cut], max_prs_per_packet,
                                       window_prs))
        buf = arr[cut:]
    if buf.size:
        parts.append(window_concat(buf, max_prs_per_packet, window_prs))
    return merge_concat_stats(parts)


@dataclass
class _CQ:
    """One Concatenation Queue: PRs waiting for the same destination."""

    prs: List[Any] = field(default_factory=list)
    generation: int = 0           # invalidates stale expiry callbacks


class DelayQueueConcatenator:
    """DES concatenation point (NIC or switch pipe).

    ``push(pr, dest, pr_type)`` enqueues a PR.  The PRs of a CQ are
    emitted as one packet (via ``on_emit(prs, dest, pr_type)``) when the
    CQ reaches ``max_prs_per_packet`` or ``delay`` seconds after the
    first PR entered the empty CQ — whichever comes first.  ``flush()``
    force-drains everything (end of kernel).
    """

    def __init__(
        self,
        sim: Simulator,
        max_prs_per_packet: int,
        delay: float,
        on_emit: Callable[[List[Any], int, str], None],
    ):
        if max_prs_per_packet < 1:
            raise ValueError("max_prs_per_packet must be >= 1")
        if delay < 0:
            raise ValueError("delay must be nonnegative")
        self.sim = sim
        self.max_prs = max_prs_per_packet
        self.delay = delay
        self.on_emit = on_emit
        self.cqs: Dict[Tuple[str, int], _CQ] = {}
        self.stats_packets = 0
        self.stats_prs = 0

    def push(self, pr: Any, dest: int, pr_type: str) -> None:
        cq = self.cqs.setdefault((pr_type, dest), _CQ())
        cq.prs.append(pr)
        if len(cq.prs) == 1 and self.delay > 0 and self.max_prs > 1:
            generation = cq.generation
            self.sim.call_at(
                self.sim.now + self.delay,
                lambda: self._expire(pr_type, dest, generation),
            )
        if len(cq.prs) >= self.max_prs:
            self._emit(pr_type, dest)

    def _expire(self, pr_type: str, dest: int, generation: int) -> None:
        cq = self.cqs.get((pr_type, dest))
        if cq is None or cq.generation != generation or not cq.prs:
            return  # flushed-full in the meantime
        self._emit(pr_type, dest)

    def _emit(self, pr_type: str, dest: int) -> None:
        cq = self.cqs[(pr_type, dest)]
        prs, cq.prs = cq.prs, []
        cq.generation += 1
        self.stats_packets += 1
        self.stats_prs += len(prs)
        self.on_emit(prs, dest, pr_type)

    def flush(self) -> None:
        """Emit every non-empty CQ immediately."""
        for (pr_type, dest), cq in list(self.cqs.items()):
            if cq.prs:
                self._emit(pr_type, dest)

    @property
    def avg_prs_per_packet(self) -> float:
        if self.stats_packets == 0:
            return 0.0
        return self.stats_prs / self.stats_packets


def deconcatenate(packet_prs: List[Any]) -> List[Any]:
    """Break a concatenated packet into its component PRs (§6.1.2:
    'its implementation is straightforward')."""
    return list(packet_prs)
