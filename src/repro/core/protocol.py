"""The NetSparse two-layer network protocol (§6.1.1, Figure 6).

A NetSparse packet rides as the payload of the RDMA/upper layers and
contains one *Concatenation-layer* header followed by one or more
PRs, each with its own *PR-layer* header:

=================  ======  =====================================
Field              Bytes   Notes
=================  ======  =====================================
Concat: Type          2    read / response
Concat: Dest          4    destination node
Concat: Len           4    property length (same for all PRs)
Concat: #PRs          4    omitted for unconcatenated packets
PR: Src               4    source node
PR: Src tid           2    source RIG Unit id
PR: Idx               8    property index
PR: ID                4    request id
=================  ======  =====================================

Hence concatenation shares the 50 B upper header + 14 B concat header
across N PRs (64 + 18N bytes of header for N PRs instead of 78N).

Read PRs carry no payload (the idx rides in the PR header); response
PRs carry the 4*K-byte property.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List

from repro.config import NetSparseConfig

__all__ = [
    "PRType",
    "PRHeader",
    "NetSparsePacket",
    "sa_pair_header_bytes",
    "header_traffic_fraction",
    "concat_header_savings",
    "encode_packet",
    "decode_packet",
]


class PRType:
    READ = "read"
    RESPONSE = "response"


@dataclass(frozen=True)
class PRHeader:
    """PR-layer header of a single property request."""

    src: int
    src_tid: int
    idx: int
    request_id: int


@dataclass
class NetSparsePacket:
    """A (possibly concatenated) NetSparse packet."""

    pr_type: str
    dest: int
    prop_len: int                 # payload bytes carried per response PR
    prs: List[PRHeader]

    def __post_init__(self):
        if not self.prs:
            raise ValueError("a NetSparse packet carries at least one PR")
        if self.pr_type not in (PRType.READ, PRType.RESPONSE):
            raise ValueError(f"bad PR type {self.pr_type!r}")

    @property
    def n_prs(self) -> int:
        return len(self.prs)

    def payload_bytes(self) -> int:
        if self.pr_type == PRType.READ:
            return 0
        return self.n_prs * self.prop_len

    def wire_bytes(self, config: NetSparseConfig) -> int:
        per_pr = 0 if self.pr_type == PRType.READ else self.prop_len
        return config.concat_packet_bytes(self.n_prs, per_pr)

    def fits_mtu(self, config: NetSparseConfig) -> bool:
        return self.wire_bytes(config) <= config.mtu


def sa_pair_header_bytes(config: NetSparseConfig) -> int:
    """Header bytes of one unconcatenated request/response PR pair.

    Vanilla SA sends each PR in its own packet: a read packet (78 B
    header, no payload) plus a response packet (78 B header + payload).
    """
    return 2 * config.vanilla_pr_header


def header_traffic_fraction(k: int, config: NetSparseConfig = None) -> float:
    """Fraction of total SA wire traffic that is headers, for property
    size K (Table 3 of the paper).

    Counts both directions of the PR pair: ``156 / (156 + 4K)``.
    """
    config = config or NetSparseConfig()
    headers = sa_pair_header_bytes(config)
    payload = config.property_bytes(k)
    return headers / (headers + payload)


def concat_header_savings(n_prs: int, config: NetSparseConfig = None) -> float:
    """Header bytes saved by concatenating N PRs vs N solo packets.

    §6.1.1's arithmetic: 78N separate vs 64 + 18N concatenated.
    """
    config = config or NetSparseConfig()
    if n_prs < 1:
        raise ValueError("n_prs must be >= 1")
    solo = n_prs * config.vanilla_pr_header
    if n_prs == 1:
        return 0.0
    packed = (
        config.header_upper + config.header_concat + n_prs * config.header_pr
    )
    return float(solo - packed)


# -- wire codec ------------------------------------------------------------

_CONCAT_FMT = "!HIII"          # Type(2) Dest(4) Len(4) #PRs(4)
_PR_FMT = "!IHQI"              # Src(4) Src-tid(2) Idx(8) ID(4)
_TYPE_CODES = {PRType.READ: 0, PRType.RESPONSE: 1}
_TYPE_NAMES = {v: k for k, v in _TYPE_CODES.items()}


def encode_packet(packet: NetSparsePacket, payloads=None) -> bytes:
    """Serialize a NetSparse packet body to wire bytes (Figure 6).

    Encodes the concatenation-layer header and each PR-layer header;
    response packets append each PR's ``prop_len``-byte payload
    (zero-filled placeholders unless ``payloads`` supplies them).  The
    upper (RDMA) layers are opaque to NetSparse and are not encoded.
    """
    if payloads is not None and len(payloads) != packet.n_prs:
        raise ValueError("one payload per PR required")
    out = [struct.pack(
        _CONCAT_FMT,
        _TYPE_CODES[packet.pr_type],
        packet.dest,
        packet.prop_len,
        packet.n_prs,
    )]
    for i, pr in enumerate(packet.prs):
        out.append(struct.pack(_PR_FMT, pr.src, pr.src_tid, pr.idx,
                               pr.request_id))
        if packet.pr_type == PRType.RESPONSE:
            body = payloads[i] if payloads is not None else b"\x00" * packet.prop_len
            if len(body) != packet.prop_len:
                raise ValueError(
                    f"payload {i} is {len(body)} B, expected {packet.prop_len}"
                )
            out.append(body)
    return b"".join(out)


def decode_packet(data: bytes):
    """Parse wire bytes back into (packet, payloads).

    Raises ``ValueError`` on truncated or malformed input.
    """
    header_size = struct.calcsize(_CONCAT_FMT)
    pr_size = struct.calcsize(_PR_FMT)
    if len(data) < header_size:
        raise ValueError("truncated concatenation-layer header")
    type_code, dest, prop_len, n_prs = struct.unpack_from(_CONCAT_FMT, data)
    if type_code not in _TYPE_NAMES:
        raise ValueError(f"unknown PR type code {type_code}")
    if n_prs < 1:
        raise ValueError("packet carries no PRs")
    pr_type = _TYPE_NAMES[type_code]
    body_len = prop_len if pr_type == PRType.RESPONSE else 0
    expected = header_size + n_prs * (pr_size + body_len)
    if len(data) != expected:
        raise ValueError(
            f"packet length {len(data)} != expected {expected} "
            f"for {n_prs} PRs"
        )
    prs, payloads = [], []
    offset = header_size
    for _ in range(n_prs):
        src, tid, idx, req = struct.unpack_from(_PR_FMT, data, offset)
        offset += pr_size
        prs.append(PRHeader(src=src, src_tid=tid, idx=idx, request_id=req))
        payloads.append(data[offset:offset + body_len])
        offset += body_len
    return NetSparsePacket(pr_type, dest, prop_len, prs), payloads
