"""Hot-path kernel backend selection: ``fast`` (array kernels),
``reference`` (the original pure-Python implementations) or ``pool``
(fast kernels with rack-level process fan-out).

The cluster model's inner loops — the delayed-insert Property Cache
front-end, the RIG batch-dispatch makespan and the window
concatenation aggregation — exist in implementations with
*bit-identical* semantics:

- ``fast``       — array-backed kernels (:mod:`repro.core.pcache_fast`,
  the vectorized scans in :func:`repro.core.rig.rig_generation_time`
  and :func:`repro.core.concat.window_concat`);
- ``reference``  — the original per-element Python loops, kept as the
  executable specification the fast kernels are golden-tested against
  (``tests/test_fast_kernels.py``);
- ``pool``       — the fast kernels, with independent per-rack cache
  replays fanned out across a forked
  :class:`~concurrent.futures.ProcessPoolExecutor`
  (:mod:`repro.core.poolexec`); falls back to serial execution inside
  nested worker processes.  Reductions are identical to ``fast`` —
  each rack's replay is an independent deterministic kernel.

Because all backends produce the same bits, the choice is *not*
part of a simulation's identity: it never enters
:meth:`repro.config.NetSparseConfig.digest` or a
:class:`~repro.parallel.jobs.SimJob` cache key.  Select with
``REPRO_KERNELS=reference`` (or ``pool``) in the environment, or
programmatically:

>>> from repro.core import kernels
>>> with kernels.use_backend("reference"):
...     assert not kernels.is_fast()
"""

from __future__ import annotations

import os
from contextlib import contextmanager

__all__ = [
    "BACKENDS",
    "get_backend",
    "set_backend",
    "use_backend",
    "is_fast",
    "is_pool",
]

#: Recognized kernel backends.
BACKENDS = ("fast", "reference", "pool")

_backend = os.environ.get("REPRO_KERNELS", "fast")
if _backend not in BACKENDS:
    raise RuntimeError(
        f"REPRO_KERNELS={_backend!r} is not one of {BACKENDS}"
    )


def get_backend() -> str:
    """The active kernel backend name."""
    return _backend


def is_fast() -> bool:
    """True when the array-based fast kernels are active (the ``pool``
    tier runs the same fast kernels, only fanned out)."""
    return _backend != "reference"


def is_pool() -> bool:
    """True when rack-level process fan-out is requested."""
    return _backend == "pool"


def set_backend(name: str) -> str:
    """Select the kernel backend; returns the previous one."""
    global _backend
    if name not in BACKENDS:
        raise ValueError(f"unknown kernel backend {name!r}; use {BACKENDS}")
    previous, _backend = _backend, name
    return previous


@contextmanager
def use_backend(name: str):
    """Temporarily switch the kernel backend (tests, A/B timing)."""
    previous = set_backend(name)
    try:
        yield
    finally:
        set_backend(previous)
