"""RIG Units: Remote Indexed Gather offload engines in the SNIC (§5).

Provides both fidelity levels used by the reproduction:

- :class:`RigClientUnit` / :class:`RigServerUnit` — DES models with the
  structures of Figure 5: pipelined idx processing (one idx per SNIC
  cycle), the shared Idx Filter, the private Pending PR Table (stall
  when full), Tx/Rx hardware queues with backpressure, DMA latencies.
  Used in the small-scale integration simulations and tests.
- :func:`rig_generation_time` — the analytic makespan of dispatching a
  node's batches over its client units (one host core issues RIG
  commands serially; units process batches pipelined), which the
  128-node cluster model uses as the PR-generation rate limit and which
  reproduces the batch-size tradeoff of Figure 15.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set

import numpy as np

from repro.core import kernels
from repro.sim import Simulator, Store

__all__ = [
    "ReadPR",
    "ResponsePR",
    "RigClientUnit",
    "RigServerUnit",
    "rig_generation_time",
]


@dataclass
class ReadPR:
    """A read property request on the wire.

    ``request_id`` is drawn from the owning :class:`Simulator`'s
    counter (see :meth:`Simulator.next_request_id`), so ids are
    deterministic per DES run — not dependent on what other
    simulations the process executed before (the old module-global
    ``itertools.count`` leaked state across runs and test orders).
    """

    idx: int
    src_node: int
    src_tid: int
    request_id: int = 0


@dataclass
class ResponsePR:
    """A response carrying one property back to the requester."""

    idx: int
    dst_node: int
    dst_tid: int
    request_id: int
    payload_bytes: int = 0


class RigClientUnit:
    """A RIG Unit in client mode (Figure 5).

    ``execute(idxs)`` returns a process-event that fires when the RIG
    command completes: every non-dropped idx turned into a PR *and* all
    responses arrived (the completion rule of §4).  Responses must be
    fed to :meth:`deliver_response` (normally by wiring ``rx_queue``
    through a network model into it via :meth:`run_rx`).
    """

    def __init__(
        self,
        sim: Simulator,
        unit_id: int,
        node: int,
        tx_queue: Store,
        rx_queue: Store,
        idx_filter: Set[int],
        freq: float = 2.2e9,
        pending_entries: int = 256,
        dma_latency: float = 200e-9,
        enable_filtering: bool = True,
        enable_coalescing: bool = True,
    ):
        self.sim = sim
        self.unit_id = unit_id
        self.node = node
        self.tx_queue = tx_queue
        self.rx_queue = rx_queue
        self.idx_filter = idx_filter       # shared per node (SNIC DRAM)
        self.cycle = 1.0 / freq
        self.pending_entries = pending_entries
        self.dma_latency = dma_latency
        self.enable_filtering = enable_filtering
        self.enable_coalescing = enable_coalescing
        self.pending: Dict[int, ReadPR] = {}   # idx -> outstanding PR
        #: Optional latency instrumentation (repro.dessim.monitoring):
        #: anything with issued(request_id) / completed(request_id).
        self.latency_probe = None
        self._slot_free = sim.event()
        self.stats_issued = 0
        self.stats_filtered = 0
        self.stats_coalesced = 0
        self.stats_responses = 0
        self.stats_stale_responses = 0
        self.received_idxs: List[int] = []
        sim.process(self.run_rx(), name=f"rig{unit_id}-rx")

    def execute(self, idxs):
        """Run one RIG command over ``idxs``; returns the completion event."""
        return self.sim.process(self._execute(list(idxs)),
                                name=f"rig{self.unit_id}-cmd")

    def _execute(self, idxs: List[int]):
        # DMA the idx batch from host memory into the Idx Buffer.
        yield self.sim.timeout(self.dma_latency)
        for idx in idxs:
            yield self.sim.timeout(self.cycle)  # pipelined: 1 idx / cycle
            if self.enable_filtering and idx in self.idx_filter:
                self.stats_filtered += 1
                continue
            if self.enable_coalescing and idx in self.pending:
                self.stats_coalesced += 1
                continue
            while len(self.pending) >= self.pending_entries:
                yield self._slot_free  # structural stall (§5.3)
            pr = ReadPR(idx=idx, src_node=self.node, src_tid=self.unit_id,
                        request_id=self.sim.next_request_id())
            self.pending[idx] = pr
            self.stats_issued += 1
            if self.latency_probe is not None:
                self.latency_probe.issued(pr.request_id)
            yield self.tx_queue.put(pr)
        # Completion: wait until every outstanding PR is answered.
        while self.pending:
            yield self._slot_free

    def run_rx(self):
        while True:
            resp: ResponsePR = yield self.rx_queue.get()
            yield self.sim.timeout(self.dma_latency)  # property DMA to host
            if resp.idx not in self.pending:
                # A response for an aborted (watchdog-failed) RIG op:
                # its host buffer was discarded, so drop it (§7.1).
                self.stats_stale_responses += 1
                continue
            self.stats_responses += 1
            self.received_idxs.append(resp.idx)
            if self.latency_probe is not None:
                self.latency_probe.completed(resp.request_id)
            self.idx_filter.add(resp.idx)
            self.pending.pop(resp.idx, None)
            wake, self._slot_free = self._slot_free, self.sim.event()
            wake.succeed(None)


class RigServerUnit:
    """A RIG Unit in server mode: answers read PRs from its host's memory."""

    def __init__(
        self,
        sim: Simulator,
        unit_id: int,
        node: int,
        rx_queue: Store,
        tx_queue: Store,
        payload_bytes: int,
        freq: float = 2.2e9,
        host_read_latency: float = 400e-9,
    ):
        self.sim = sim
        self.unit_id = unit_id
        self.node = node
        self.rx_queue = rx_queue
        self.tx_queue = tx_queue
        self.payload_bytes = payload_bytes
        self.cycle = 1.0 / freq
        self.host_read_latency = host_read_latency
        self.stats_served = 0
        sim.process(self.run(), name=f"rig-server{unit_id}")

    def run(self):
        while True:
            pr: ReadPR = yield self.rx_queue.get()
            yield self.sim.timeout(self.cycle + self.host_read_latency)
            resp = ResponsePR(
                idx=pr.idx,
                dst_node=pr.src_node,
                dst_tid=pr.src_tid,
                request_id=pr.request_id,
                payload_bytes=self.payload_bytes,
            )
            self.stats_served += 1
            yield self.tx_queue.put(resp)


def rig_generation_time(
    n_idxs: int,
    n_units: int,
    batch_size: int,
    freq: float = 2.2e9,
    cmd_overhead: float = 1.0e-6,
    policy: str = "least_loaded",
) -> float:
    """Makespan of PR generation for one node (the Figure 15 tradeoff).

    A single host core issues RIG commands back to back, one every
    ``cmd_overhead`` seconds; each command covers ``batch_size`` idxs
    and runs at one idx per cycle on a client unit chosen by
    ``policy`` — ``least_loaded`` (the host polls completion registers)
    or ``round_robin`` (fire-and-forget, cheaper host logic).

    Small batches pay the serial command overhead; large batches starve
    parallelism (few batches over many units) and leave a long last
    batch — the non-monotonic sensitivity the paper shows.
    """
    if n_idxs <= 0:
        return 0.0
    if n_units < 1 or batch_size < 1:
        raise ValueError("n_units and batch_size must be positive")
    if policy not in ("least_loaded", "round_robin"):
        raise ValueError(f"unknown scheduling policy {policy!r}")
    if kernels.is_fast():
        return _rig_generation_time_fast(
            n_idxs, n_units, batch_size, freq, cmd_overhead
        )
    return _rig_generation_time_reference(
        n_idxs, n_units, batch_size, freq, cmd_overhead, policy
    )


def _rig_generation_time_reference(
    n_idxs: int,
    n_units: int,
    batch_size: int,
    freq: float,
    cmd_overhead: float,
    policy: str,
) -> float:
    """The original per-batch scheduling loop — reference backend."""
    n_batches = -(-n_idxs // batch_size)
    sizes = np.full(n_batches, batch_size, dtype=np.int64)
    sizes[-1] = n_idxs - batch_size * (n_batches - 1)
    unit_free = np.zeros(n_units)
    for b in range(n_batches):
        issue_time = (b + 1) * cmd_overhead
        u = (
            int(np.argmin(unit_free))
            if policy == "least_loaded"
            else b % n_units
        )
        start = max(issue_time, unit_free[u])
        unit_free[u] = start + sizes[b] / freq
    return float(unit_free.max())


def _rig_generation_time_fast(
    n_idxs: int,
    n_units: int,
    batch_size: int,
    freq: float,
    cmd_overhead: float,
) -> float:
    """Per-round vectorized makespan scan, bit-identical to the loop.

    Batches are all ``batch_size`` idxs except the last, so
    ``least_loaded`` dispatch coincides with round-robin: the units'
    free times rise in assignment order within a round, and whenever
    ``argmin`` faces a tie the competing slots hold *equal* durations,
    leaving the multiset of free times — and its maximum — unchanged
    whichever unit wins.  That makes one schedule serve both policies,
    and it evaluates as a max-plus scan: round ``r`` updates every
    unit's free time with one elementwise ``max`` and one add — the
    same two float roundings, in the same order, as the reference
    recurrence ``free = max(issue, free) + dur``.
    """
    n_batches = -(-n_idxs // batch_size)
    b = np.arange(n_batches, dtype=np.float64)
    issue = (b + 1.0) * cmd_overhead
    dur = np.full(n_batches, np.float64(batch_size) / freq)
    dur[-1] = np.float64(n_idxs - batch_size * (n_batches - 1)) / freq
    unit_free = np.zeros(n_units)
    for r in range(0, n_batches, n_units):
        hi = min(r + n_units, n_batches)
        k = hi - r
        np.maximum(issue[r:hi], unit_free[:k], out=unit_free[:k])
        unit_free[:k] += dur[r:hi]
    return float(unit_free.max())
