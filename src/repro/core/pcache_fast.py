"""Array-backed Property Cache stream kernel (the hot path of the
128-node cluster model).

:func:`delayed_cache_hits` replays one merged rack PR stream through a
set-associative cache with delayed insertion and returns the exact
hit/miss sequence — bit-for-bit the behaviour of
:class:`repro.core.pcache.PropertyCache` driven by
:class:`repro.cluster.model.DelayedInsertCache`, for every replacement
policy, including the §6.2.1 corner cases (duplicate in-flight misses
both travel; an insert finding its property already present is a
no-op; a hit promotes to MRU under LRU only).

Why it is faster: the reference walks the stream through four Python
objects per element (front-end, cache, stats, deque).  This kernel is
one fused loop over pre-extracted flat arrays — the pending-response
queue is two parallel position/idx arrays with an implicit due time
(``enqueue position + delay``, monotone by construction, so the head
comparison is a single integer test), hit positions are batched into
one vectorized store, and statistics are counted in locals.  Golden
equivalence against the reference backend is enforced across seeds,
geometries and delays by ``tests/test_fast_kernels.py``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.core.pcache import CacheStats, PropertyCache, n_sets_for

__all__ = ["delayed_cache_hits", "property_cache_hits"]

_NEVER = 1 << 62          # sentinel "no pending insert is due"


def delayed_cache_hits(
    idxs: np.ndarray,
    n_sets: int,
    ways: int,
    delay: int,
    policy: str = "lru",
) -> Tuple[np.ndarray, CacheStats]:
    """Exact hit mask + stats for one idx stream.

    Semantics (the executable specification is the reference backend):
    at stream position ``i`` every pending insert whose miss happened
    at position ``<= i - delay`` is applied first (in miss order), then
    ``idxs[i]`` is looked up.  A miss enqueues an insert due ``delay``
    positions later; all still-pending inserts are applied after the
    stream ends.
    """
    if policy not in PropertyCache.POLICIES:
        raise ValueError(
            f"unknown policy {policy!r}; choose from {PropertyCache.POLICIES}"
        )
    idxs = np.asarray(idxs)
    n = int(idxs.size)
    delay = max(int(delay), 0)
    hits = np.zeros(n, dtype=bool)
    if n_sets <= 0 or n == 0:
        return hits, CacheStats(lookups=n)

    # One insertion-ordered dict per set: exactly the reference's LRU /
    # FIFO bookkeeping, shared here so victim selection cannot drift.
    sets = [dict() for _ in range(n_sets)]
    stream = idxs.tolist()
    pend_idx: list = []          # missed idxs, in miss order
    pend_pos: list = []          # their miss positions (due = pos + delay)
    push_idx = pend_idx.append
    push_pos = pend_pos.append
    head = 0
    next_due = _NEVER
    n_ins = n_ev = 0
    hit_pos: list = []
    push_hit = hit_pos.append
    lru = policy == "lru"
    rand = policy == "random"
    tick = 0

    for i, idx in enumerate(stream):
        while i >= next_due:
            v = pend_idx[head]
            head += 1
            next_due = (
                pend_pos[head] + delay if head < len(pend_pos) else _NEVER
            )
            s = sets[v % n_sets]
            if v not in s:
                if len(s) >= ways:
                    if rand:
                        tick = (tick * 1103515245 + 12345) & 0x7FFFFFFF
                        victim = list(s)[tick % len(s)]
                    else:
                        victim = next(iter(s))
                    del s[victim]
                    n_ev += 1
                s[v] = True
                n_ins += 1
        s = sets[idx % n_sets]
        if idx in s:
            push_hit(i)
            if lru:
                del s[idx]
                s[idx] = True      # move to MRU position
        else:
            push_idx(idx)
            push_pos(i)
            if next_due == _NEVER:
                next_due = i + delay

    while head < len(pend_idx):
        v = pend_idx[head]
        head += 1
        s = sets[v % n_sets]
        if v not in s:
            if len(s) >= ways:
                if rand:
                    tick = (tick * 1103515245 + 12345) & 0x7FFFFFFF
                    victim = list(s)[tick % len(s)]
                else:
                    victim = next(iter(s))
                del s[victim]
                n_ev += 1
            s[v] = True
            n_ins += 1

    if hit_pos:
        hits[hit_pos] = True
    return hits, CacheStats(
        lookups=n, hits=len(hit_pos), insertions=n_ins, evictions=n_ev,
    )


def property_cache_hits(
    idxs: np.ndarray,
    capacity_bytes: int,
    ways: int,
    property_bytes: int,
    delay: int,
    n_segments: int = 32,
    segment_bytes: int = 16,
    policy: str = "lru",
) -> Tuple[np.ndarray, CacheStats]:
    """:func:`delayed_cache_hits` with the geometry a
    :class:`PropertyCache` would derive from the same parameters."""
    n_sets = n_sets_for(capacity_bytes, ways, property_bytes,
                        n_segments, segment_bytes)
    return delayed_cache_hits(idxs, n_sets, ways, delay, policy=policy)
