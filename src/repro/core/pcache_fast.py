"""Array-backed Property Cache stream kernel (the hot path of the
128-node cluster model).

:func:`delayed_cache_hits` replays one merged rack PR stream through a
set-associative cache with delayed insertion and returns the exact
hit/miss sequence — bit-for-bit the behaviour of
:class:`repro.core.pcache.PropertyCache` driven by
:class:`repro.cluster.model.DelayedInsertCache`, for every replacement
policy, including the §6.2.1 corner cases (duplicate in-flight misses
both travel; an insert finding its property already present is a
no-op; a hit promotes to MRU under LRU only).

Why it is faster: the reference walks the stream through four Python
objects per element (front-end, cache, stats, deque).  This kernel is
one fused loop over pre-extracted flat arrays — the pending-response
queue is two parallel position/idx arrays with an implicit due time
(``enqueue position + delay``, monotone by construction, so the head
comparison is a single integer test), hit positions are batched into
one vectorized store, and statistics are counted in locals.  Golden
equivalence against the reference backend is enforced across seeds,
geometries and delays by ``tests/test_fast_kernels.py``.
"""

from __future__ import annotations

from typing import Iterable, Tuple, Union

import numpy as np

from repro.core.pcache import CacheStats, PropertyCache, n_sets_for

__all__ = ["DelayedCacheReplayer", "delayed_cache_hits",
           "property_cache_hits"]

_NEVER = 1 << 62          # sentinel "no pending insert is due"


class DelayedCacheReplayer:
    """Incremental form of :func:`delayed_cache_hits`.

    ``feed(chunk)`` replays one window of the stream and returns its
    hit mask; ``finish()`` drains the pending-insert queue and returns
    the stats.  Feeding a stream window-by-window is bit-identical to
    one whole-stream call — the cache state, the pending queue and the
    global stream positions all carry across windows — so sharded
    traces replay with only one window's idxs resident (the one-shot
    path used to materialize the whole stream as a Python list).
    """

    def __init__(self, n_sets: int, ways: int, delay: int,
                 policy: str = "lru"):
        if policy not in PropertyCache.POLICIES:
            raise ValueError(
                f"unknown policy {policy!r}; choose from "
                f"{PropertyCache.POLICIES}"
            )
        self.n_sets = int(n_sets)
        self.ways = int(ways)
        self.delay = max(int(delay), 0)
        self.policy = policy
        self._sets = [dict() for _ in range(max(self.n_sets, 0))]
        self._pend_idx: list = []    # missed idxs, in miss order
        self._pend_pos: list = []    # miss positions (due = pos + delay)
        self._head = 0
        self._next_due = _NEVER
        self._base = 0               # global position of the next element
        self._n_hits = 0
        self._n_ins = 0
        self._n_ev = 0
        self._tick = 0
        self._finished = False

    def _apply(self, v: int) -> None:
        s = self._sets[v % self.n_sets]
        if v not in s:
            if len(s) >= self.ways:
                if self.policy == "random":
                    self._tick = (self._tick * 1103515245 + 12345) & 0x7FFFFFFF
                    victim = list(s)[self._tick % len(s)]
                else:
                    victim = next(iter(s))
                del s[victim]
                self._n_ev += 1
            s[v] = True
            self._n_ins += 1

    def feed(self, idxs: np.ndarray) -> np.ndarray:
        """Replay one stream window; returns its boolean hit mask."""
        if self._finished:
            raise RuntimeError("replayer already finished")
        idxs = np.asarray(idxs)
        n = int(idxs.size)
        hits = np.zeros(n, dtype=bool)
        base = self._base
        self._base += n
        if self.n_sets <= 0 or n == 0:
            return hits

        sets = self._sets
        n_sets = self.n_sets
        ways = self.ways
        delay = self.delay
        lru = self.policy == "lru"
        rand = self.policy == "random"
        tick = self._tick
        pend_idx = self._pend_idx
        pend_pos = self._pend_pos
        push_idx = pend_idx.append
        push_pos = pend_pos.append
        head = self._head
        next_due = self._next_due
        n_ins = n_ev = 0
        hit_pos: list = []
        push_hit = hit_pos.append
        stream = idxs.tolist()

        for j, idx in enumerate(stream):
            i = base + j
            while i >= next_due:
                v = pend_idx[head]
                head += 1
                next_due = (
                    pend_pos[head] + delay if head < len(pend_pos) else _NEVER
                )
                s = sets[v % n_sets]
                if v not in s:
                    if len(s) >= ways:
                        if rand:
                            tick = (tick * 1103515245 + 12345) & 0x7FFFFFFF
                            victim = list(s)[tick % len(s)]
                        else:
                            victim = next(iter(s))
                        del s[victim]
                        n_ev += 1
                    s[v] = True
                    n_ins += 1
            s = sets[idx % n_sets]
            if idx in s:
                push_hit(j)
                if lru:
                    del s[idx]
                    s[idx] = True      # move to MRU position
            else:
                push_idx(idx)
                push_pos(i)
                if next_due == _NEVER:
                    next_due = i + delay

        if hit_pos:
            hits[hit_pos] = True
        self._n_hits += len(hit_pos)
        self._n_ins += n_ins
        self._n_ev += n_ev
        self._tick = tick
        self._next_due = next_due
        # Trim the consumed prefix of the pending queue so state stays
        # bounded by the in-flight window, not the whole stream.
        if head > 0:
            del pend_idx[:head]
            del pend_pos[:head]
        self._head = 0
        return hits

    def finish(self) -> CacheStats:
        """Apply all still-pending inserts; returns the final stats."""
        if not self._finished:
            self._finished = True
            if self.n_sets > 0:
                while self._head < len(self._pend_idx):
                    v = self._pend_idx[self._head]
                    self._head += 1
                    self._apply(v)
        return CacheStats(
            lookups=self._base, hits=self._n_hits,
            insertions=self._n_ins, evictions=self._n_ev,
        )


def delayed_cache_hits(
    idxs: Union[np.ndarray, Iterable[np.ndarray]],
    n_sets: int,
    ways: int,
    delay: int,
    policy: str = "lru",
) -> Tuple[np.ndarray, CacheStats]:
    """Exact hit mask + stats for one idx stream.

    Semantics (the executable specification is the reference backend):
    at stream position ``i`` every pending insert whose miss happened
    at position ``<= i - delay`` is applied first (in miss order), then
    ``idxs[i]`` is looked up.  A miss enqueues an insert due ``delay``
    positions later; all still-pending inserts are applied after the
    stream ends.

    ``idxs`` may be one array or an iterable of window arrays (a
    sharded stream); windows are replayed through one
    :class:`DelayedCacheReplayer`, so the result is bit-identical
    either way while only one window is resident at a time.
    """
    replayer = DelayedCacheReplayer(n_sets, ways, delay, policy=policy)
    if isinstance(idxs, np.ndarray):
        hits = replayer.feed(idxs)
        return hits, replayer.finish()
    masks = [replayer.feed(chunk) for chunk in idxs]
    stats = replayer.finish()
    if not masks:
        return np.zeros(0, dtype=bool), stats
    return np.concatenate(masks), stats


def property_cache_hits(
    idxs: np.ndarray,
    capacity_bytes: int,
    ways: int,
    property_bytes: int,
    delay: int,
    n_segments: int = 32,
    segment_bytes: int = 16,
    policy: str = "lru",
) -> Tuple[np.ndarray, CacheStats]:
    """:func:`delayed_cache_hits` with the geometry a
    :class:`PropertyCache` would derive from the same parameters."""
    n_sets = n_sets_for(capacity_bytes, ways, property_bytes,
                        n_segments, segment_bytes)
    return delayed_cache_hits(idxs, n_sets, ways, delay, policy=policy)
