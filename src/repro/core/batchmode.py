"""The ``REPRO_BATCH`` switch: single-pass sweep evaluation on/off.

Mirrors the :mod:`repro.core.kernels` backend switch: the environment
variable picks the initial mode, tests flip it with
:func:`use_batch`, and — exactly like ``REPRO_KERNELS`` — the mode is
**not** part of any job digest, because both modes are bit-identical by
construction (enforced by the golden-equivalence suites in
``tests/test_reusedist.py`` and ``tests/test_batch_planner.py``).

When enabled (the default), the cluster model reuses logically-keyed
intermediate results across a sweep (filter anchors, merged rack
streams, reuse-distance profiles, whole-simulation templates) and the
execution engine groups compatible jobs into fused batches.  When
disabled (``REPRO_BATCH=0``) every job replays every stage from
scratch — the legacy path, kept alive by a CI matrix leg.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

__all__ = ["batch_enabled", "set_batch_enabled", "use_batch"]


def _from_env() -> bool:
    return os.environ.get("REPRO_BATCH", "1").strip() != "0"


_enabled = _from_env()


def batch_enabled() -> bool:
    """Whether batch-aware (single-pass) sweep evaluation is active."""
    return _enabled


def set_batch_enabled(flag: bool) -> bool:
    """Set the mode; returns the previous value."""
    global _enabled
    previous, _enabled = _enabled, bool(flag)
    return previous


@contextmanager
def use_batch(flag: bool):
    """Temporarily force the mode (tests, the A/B benchmark)."""
    previous = set_batch_enabled(flag)
    try:
        yield
    finally:
        set_batch_enabled(previous)
