"""Reuse-distance profiles: score many cache geometries from one pass.

A sweep replays the *same* merged rack PR stream through the Property
Cache once per knob point (capacity, ways, line geometry), even though
the stream never changes.  A :class:`StreamProfile` extracts what the
delayed-insert cache model actually consumes from the stream — the
sorted unique values, each element's first-occurrence position, and the
per-set occupancy under any geometry — once, then scores each knob
point from the profile instead of an independent LRU replay.

Exactness, not approximation
----------------------------

The delayed-insert LRU violates stack inclusion across geometries (a
miss alters the pending-insert schedule), so no classical Mattson
single-pass algorithm applies.  The profile instead exploits two exact
structural facts:

- **Eviction-free geometries.**  If every cache set receives at most
  ``ways`` distinct values over the whole stream, nothing is ever
  evicted and presence is monotone: position ``i`` hits iff
  ``i >= first_pos + max(delay, 1)``.  This is a fully vectorized
  closed form — it covers the "infinite cache" sweep points that
  otherwise allocate millions of empty sets just to never evict.
- **Per-set independence.**  Sets interact only through the eviction
  tick of the ``random`` policy, and evictions can only happen in
  *contended* sets (those receiving more than ``ways`` distinct
  values).  Replaying only the contended sets' subsequence — carrying
  global stream positions so the delayed-insert due times are
  preserved — is therefore bit-identical to the full replay, while the
  untouched majority of elements score through the closed form.

Both paths are pinned against :class:`repro.core.pcache.PropertyCache`
driven by the reference front-end in ``tests/test_reusedist.py``
(seeds x set geometries x ways x capacities x segmented line sizes).

The profile is the scoring kernel behind the batch planner
(:mod:`repro.parallel.batch`); the cluster model consults it when
``REPRO_BATCH`` is enabled and falls back to
:func:`repro.core.pcache_fast.delayed_cache_hits` verbatim for
anything the profile cannot fold (the hit masks are identical either
way — the profile only changes which loop produces them).
"""

from __future__ import annotations

import time
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.pcache_fast import delayed_cache_hits

__all__ = ["StreamProfile", "build_profile", "profile_stats",
           "reset_profile_stats", "score_many"]

_NEVER = 1 << 62

#: Module counters surfaced as ``perf.batch.*`` telemetry and in the
#: ``batch`` BENCH block.
_STATS = {
    "profiles_built": 0,
    "scores": 0,
    "closed_form": 0,        # scores fully answered by the closed form
    "hybrid": 0,             # contended-subset replays
    "delegated": 0,          # full-replay fallbacks
    "build_seconds": 0.0,
    "score_seconds": 0.0,
}


def profile_stats() -> Dict[str, float]:
    """Snapshot of the profile build/score counters."""
    return dict(_STATS)


def reset_profile_stats() -> None:
    for key in _STATS:
        _STATS[key] = 0.0 if key.endswith("seconds") else 0


class StreamProfile:
    """One stream's reuse structure, reusable across cache geometries.

    Holds the stream itself (for exact fallback), its sorted unique
    values, and each element's first-occurrence position.  Scoring a
    geometry never mutates the profile, so one profile safely serves a
    whole knob grid.
    """

    __slots__ = ("idxs", "size", "uniq", "inverse", "first_pos")

    def __init__(self, idxs: np.ndarray):
        t0 = time.perf_counter()
        self.idxs = np.asarray(idxs)
        self.size = int(self.idxs.size)
        if self.size:
            uniq, first_index, inverse = np.unique(
                self.idxs, return_index=True, return_inverse=True
            )
            self.uniq = uniq
            self.inverse = inverse
            self.first_pos = first_index[inverse]
        else:
            self.uniq = np.zeros(0, dtype=self.idxs.dtype)
            self.inverse = np.zeros(0, dtype=np.int64)
            self.first_pos = np.zeros(0, dtype=np.int64)
        _STATS["profiles_built"] += 1
        _STATS["build_seconds"] += time.perf_counter() - t0

    # -- structure queries --------------------------------------------

    def n_unique(self) -> int:
        return int(self.uniq.size)

    def reuse_distances(self) -> np.ndarray:
        """Position distance to the first occurrence, for every reuse
        (duplicate) element — the profile's telemetry-facing view."""
        pos = np.arange(self.size, dtype=np.int64)
        dup = pos != self.first_pos
        return (pos - self.first_pos)[dup]

    def reuse_histogram(self, bins: Sequence[int] = (1, 16, 256, 4096,
                                                     65536)) -> Dict[str, int]:
        """Reuse-distance counts in log-spaced buckets."""
        dist = self.reuse_distances()
        edges = list(bins)
        out: Dict[str, int] = {}
        lo = 0
        for hi in edges:
            out[f"<{hi}"] = int(((dist >= lo) & (dist < hi)).sum())
            lo = hi
        out[f">={lo}"] = int((dist >= lo).sum())
        return out

    def _set_partition(
        self, n_sets: int, ways: int
    ) -> Tuple[int, np.ndarray]:
        """(max per-set occupancy, per-element contended mask)."""
        uniq_sets = self.uniq % n_sets
        occupied, counts = np.unique(uniq_sets, return_counts=True)
        occ_max = int(counts.max()) if counts.size else 0
        if occ_max <= ways:
            return occ_max, np.zeros(0, dtype=bool)
        contended = occupied[counts > ways]
        elem_mask = np.isin(uniq_sets, contended)[self.inverse]
        return occ_max, elem_mask

    # -- scoring -------------------------------------------------------

    def score(self, n_sets: int, ways: int, delay: int,
              policy: str = "lru") -> np.ndarray:
        """Exact hit mask under one geometry (bit-identical to
        :func:`~repro.core.pcache_fast.delayed_cache_hits`)."""
        t0 = time.perf_counter()
        try:
            _STATS["scores"] += 1
            n_sets = int(n_sets)
            ways = int(ways)
            delay = max(int(delay), 0)
            if self.size == 0 or n_sets <= 0:
                return np.zeros(self.size, dtype=bool)
            occ_max, elem_mask = self._set_partition(n_sets, ways)
            pos = np.arange(self.size, dtype=np.int64)
            if occ_max <= ways:
                # No set can ever evict: presence is monotone from the
                # first occurrence's delayed insert.
                _STATS["closed_form"] += 1
                return (pos - self.first_pos) >= max(delay, 1)
            frac = float(elem_mask.mean())
            if frac >= 0.95:
                # Nearly everything is contended — the subset replay
                # would walk the whole stream anyway; use the pinned
                # kernel directly.
                _STATS["delegated"] += 1
                return delayed_cache_hits(self.idxs, n_sets, ways, delay,
                                          policy=policy)[0]
            _STATS["hybrid"] += 1
            hits = (pos - self.first_pos) >= max(delay, 1)
            hits[elem_mask] = False
            self._replay_contended(hits, elem_mask, n_sets, ways, delay,
                                   policy)
            return hits
        finally:
            _STATS["score_seconds"] += time.perf_counter() - t0

    def _replay_contended(self, hits: np.ndarray, elem_mask: np.ndarray,
                          n_sets: int, ways: int, delay: int,
                          policy: str) -> None:
        """Replay only the contended sets' elements, at their *global*
        stream positions, mirroring ``DelayedCacheReplayer`` exactly.

        Applying a pending insert at the next contended element (rather
        than the next element of any set) is exact: an insert only
        matters to lookups of its own set, and those are all contended
        elements.  Non-contended inserts never evict (their sets never
        exceed ``ways`` distinct values), so even the ``random``
        policy's global eviction tick sees the same sequence.
        """
        gpos = np.flatnonzero(elem_mask).tolist()
        vals = self.idxs[elem_mask].tolist()
        sets: Dict[int, dict] = {}
        lru = policy == "lru"
        rand = policy == "random"
        tick = 0
        pend_v: list = []
        pend_p: list = []
        head = 0
        next_due = _NEVER
        hit_pos: list = []
        push_hit = hit_pos.append

        for i, v in zip(gpos, vals):
            while i >= next_due:
                w = pend_v[head]
                head += 1
                next_due = (
                    pend_p[head] + delay if head < len(pend_p) else _NEVER
                )
                s = sets.get(w % n_sets)
                if s is None:
                    s = sets[w % n_sets] = {}
                if w not in s:
                    if len(s) >= ways:
                        if rand:
                            tick = (tick * 1103515245 + 12345) & 0x7FFFFFFF
                            victim = list(s)[tick % len(s)]
                        else:
                            victim = next(iter(s))
                        del s[victim]
                    s[w] = True
            s = sets.get(v % n_sets)
            if s is None:
                s = sets[v % n_sets] = {}
            if v in s:
                push_hit(i)
                if lru:
                    del s[v]
                    s[v] = True
            else:
                pend_v.append(v)
                pend_p.append(i)
                if next_due == _NEVER:
                    next_due = i + delay
        if hit_pos:
            hits[hit_pos] = True


def build_profile(idxs: np.ndarray) -> StreamProfile:
    """Profile one stream (counted in ``profile_stats``)."""
    return StreamProfile(idxs)


def score_many(
    profile: StreamProfile,
    points: Sequence[Tuple[int, int, int, str]],
) -> List[np.ndarray]:
    """Hit masks for ``[(n_sets, ways, delay, policy), ...]`` — the
    one-profile-many-geometries entry point the planner uses."""
    return [profile.score(*point) for point in points]
