"""Virtualized Concatenation Queues (§7 "Scalability of the
Concatenation Mechanism").

The baseline design allocates one MTU-sized CQ per possible destination
— SRAM grows with cluster size and utilization drops at large scale.
The paper sketches the fix: a *fixed* pool of small sub-MTU "physical"
CQs, dynamically assigned on demand; physical CQs holding PRs for the
same destination are linked into a "virtual" CQ, which is flushed as
one packet when its total occupancy reaches the MTU (or its delay
expires).  When the pool is exhausted, the fullest virtual CQ is
flushed early to free physical queues.

This module implements that design as a drop-in alternative to
:class:`repro.core.concat.DelayQueueConcatenator`, with occupancy and
early-flush statistics so the SRAM-vs-goodput tradeoff can be measured
(see the ``concat_virtualization`` experiment).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.sim import Simulator

__all__ = ["VirtualConcatenator"]


@dataclass
class _PhysicalCQ:
    """A small fixed-capacity queue, linkable into a virtual CQ."""

    capacity_prs: int
    prs: List[Any] = field(default_factory=list)

    @property
    def is_full(self) -> bool:
        return len(self.prs) >= self.capacity_prs


@dataclass
class _VirtualCQ:
    """A chain of physical CQs holding one (type, destination) flow."""

    key: Tuple[str, int]
    chain: List[_PhysicalCQ] = field(default_factory=list)
    generation: int = 0

    @property
    def occupancy(self) -> int:
        return sum(len(p.prs) for p in self.chain)

    def drain(self) -> List[Any]:
        prs = [pr for p in self.chain for pr in p.prs]
        freed = self.chain
        self.chain = []
        for p in freed:
            p.prs = []
        self.generation += 1
        return prs, freed


class VirtualConcatenator:
    """Concatenation point with a fixed physical-CQ pool.

    Parameters mirror the paper's sketch: ``n_physical`` sub-MTU queues
    of ``physical_capacity_prs`` entries each, shared by *all*
    destinations, so SRAM is independent of cluster size.
    """

    def __init__(
        self,
        sim: Simulator,
        max_prs_per_packet: int,
        delay: float,
        on_emit: Callable[[List[Any], int, str], None],
        n_physical: int = 32,
        physical_capacity_prs: int = 8,
    ):
        if max_prs_per_packet < 1:
            raise ValueError("max_prs_per_packet must be >= 1")
        if delay < 0:
            raise ValueError("delay must be nonnegative")
        if n_physical < 1 or physical_capacity_prs < 1:
            raise ValueError("pool dimensions must be positive")
        self.sim = sim
        self.max_prs = max_prs_per_packet
        self.delay = delay
        self.on_emit = on_emit
        self._free: List[_PhysicalCQ] = [
            _PhysicalCQ(physical_capacity_prs) for _ in range(n_physical)
        ]
        self._virtual: Dict[Tuple[str, int], _VirtualCQ] = {}
        self.stats_packets = 0
        self.stats_prs = 0
        self.stats_early_flushes = 0      # pool-pressure flushes
        self.stats_peak_physical_in_use = 0

    # -- helpers -----------------------------------------------------------

    @property
    def physical_in_use(self) -> int:
        return sum(len(v.chain) for v in self._virtual.values())

    def _allocate(self) -> Optional[_PhysicalCQ]:
        if self._free:
            return self._free.pop()
        return None

    def _evict_for_space(self) -> None:
        """Flush the fullest virtual CQ to free physical queues."""
        victim = max(self._virtual.values(), key=lambda v: v.occupancy,
                     default=None)
        if victim is None or victim.occupancy == 0:
            raise RuntimeError("physical CQ pool exhausted with no victim")
        self.stats_early_flushes += 1
        self._flush_virtual(victim)

    # -- interface -----------------------------------------------------------

    def push(self, pr: Any, dest: int, pr_type: str) -> None:
        key = (pr_type, dest)
        vcq = self._virtual.get(key)
        if vcq is None:
            vcq = _VirtualCQ(key)
            self._virtual[key] = vcq
        if not vcq.chain or vcq.chain[-1].is_full:
            phys = self._allocate()
            if phys is None:
                self._evict_for_space()
                phys = self._allocate()
                if phys is None:
                    raise RuntimeError("eviction freed no physical CQs")
            vcq.chain.append(phys)
        was_empty = vcq.occupancy == 0
        vcq.chain[-1].prs.append(pr)
        self.stats_peak_physical_in_use = max(
            self.stats_peak_physical_in_use, self.physical_in_use
        )
        if was_empty and self.delay > 0 and self.max_prs > 1:
            generation = vcq.generation
            self.sim.call_at(
                self.sim.now + self.delay,
                lambda: self._expire(key, generation),
            )
        if vcq.occupancy >= self.max_prs:
            self._flush_virtual(vcq)

    def _expire(self, key: Tuple[str, int], generation: int) -> None:
        vcq = self._virtual.get(key)
        if vcq is None or vcq.generation != generation:
            return
        if vcq.occupancy:
            self._flush_virtual(vcq)

    def _flush_virtual(self, vcq: _VirtualCQ) -> None:
        prs, freed = vcq.drain()
        self._free.extend(freed)
        pr_type, dest = vcq.key
        # Respect the MTU: an over-full virtual CQ emits several packets.
        for start in range(0, len(prs), self.max_prs):
            chunk = prs[start:start + self.max_prs]
            self.stats_packets += 1
            self.stats_prs += len(chunk)
            self.on_emit(chunk, dest, pr_type)

    def flush(self) -> None:
        for vcq in list(self._virtual.values()):
            if vcq.occupancy:
                self._flush_virtual(vcq)

    @property
    def avg_prs_per_packet(self) -> float:
        if self.stats_packets == 0:
            return 0.0
        return self.stats_prs / self.stats_packets
