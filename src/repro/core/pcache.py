"""The in-switch Property Cache (§6.2).

A set-associative, LRU, *segmented* hardware cache living in the middle
pipes of NetSparse ToR switches.  Read PRs heading out of the rack look
it up (a hit turns the read into a response at the switch); response
PRs returning into the rack insert their property if absent.

Segmentation (§6.2.2, Figure 9): the data array is split into 32
segments of ``min_line`` bytes each per line-slot, and a property
occupies ``ceil(property_bytes / min_line)`` adjacent segments, so the
whole capacity is usable for any configured property size between
``min_line`` and ``max_line``.  Functionally that means the number of
line slots is ``capacity / slot_bytes`` where ``slot_bytes`` is the
property size rounded up to a ``min_line`` multiple; the
:class:`SegmentSelector` models the enable-mask hardware itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["PropertyCache", "SegmentSelector", "CacheStats",
           "slot_bytes_for", "n_sets_for"]


def slot_bytes_for(property_bytes: int, n_segments: int = 32,
                   segment_bytes: int = 16) -> int:
    """Bytes one line slot occupies for a configured property size.

    The single source of truth shared by :meth:`PropertyCache.configure`
    and the array kernel in :mod:`repro.core.pcache_fast` — a property
    is rounded up to a power-of-two number of segments, and properties
    larger than the maximum line are tiled across whole lines (§6.2.2).
    """
    if property_bytes < 1:
        raise ValueError("property size must be positive")
    max_line = n_segments * segment_bytes
    if property_bytes > max_line:
        return max_line * (-(-property_bytes // max_line))
    needed = -(-property_bytes // segment_bytes)
    segs = 1
    while segs < needed:
        segs *= 2
    return segs * segment_bytes


def n_sets_for(capacity_bytes: int, ways: int, property_bytes: int,
               n_segments: int = 32, segment_bytes: int = 16) -> int:
    """Number of cache sets a :class:`PropertyCache` will have once
    configured for ``property_bytes`` — without allocating one."""
    slot = slot_bytes_for(property_bytes, n_segments, segment_bytes)
    return max((capacity_bytes // slot) // ways, 0)


@dataclass
class CacheStats:
    lookups: int = 0
    hits: int = 0
    insertions: int = 0
    evictions: int = 0
    flushes: int = 0

    @property
    def hit_rate(self) -> float:
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups


class SegmentSelector:
    """The Mode + Segment-bits → Enable-bitmask logic of Figure 9."""

    def __init__(self, n_segments: int = 32, segment_bytes: int = 16):
        if n_segments < 1 or n_segments & (n_segments - 1):
            raise ValueError("n_segments must be a power of two")
        self.n_segments = n_segments
        self.segment_bytes = segment_bytes
        self._mode_segments = 1

    def configure(self, property_bytes: int) -> None:
        """Set the Mode for a kernel's property size."""
        if property_bytes < 1:
            raise ValueError("property size must be positive")
        needed = -(-property_bytes // self.segment_bytes)  # ceil division
        # Round up to a power of two so enables stay aligned.
        segs = 1
        while segs < needed:
            segs *= 2
        if segs > self.n_segments:
            raise ValueError(
                f"property of {property_bytes} B exceeds the cache's maximum "
                f"line of {self.n_segments * self.segment_bytes} B"
            )
        self._mode_segments = segs

    @property
    def segments_per_property(self) -> int:
        return self._mode_segments

    def enable_mask(self, segment_bits: int) -> int:
        """Bitmask of enabled segments for an access.

        In 16 B mode one bit is set; in 32 B mode two adjacent bits; in
        full-line mode all bits (the paper's 1110X example: the LSBs of
        the segment bits are ignored in wider modes).
        """
        if not 0 <= segment_bits < self.n_segments:
            raise ValueError("segment bits out of range")
        group = segment_bits // self._mode_segments
        base = group * self._mode_segments
        mask = 0
        for s in range(base, base + self._mode_segments):
            mask |= 1 << s
        return mask


class PropertyCache:
    """Exact set-associative LRU cache over property indices.

    The functional behaviour the cluster model needs: which PRs hit.
    ``configure(property_bytes)`` must be called before a kernel (the
    control plane's job in the paper); it also invalidates all data.
    """

    #: Supported replacement policies.  The paper's design uses LRU
    #: (Table 5); FIFO and a deterministic pseudo-random policy are
    #: provided for the replacement-policy ablation.
    POLICIES = ("lru", "fifo", "random")

    def __init__(
        self,
        capacity_bytes: int = 32 * 1024 * 1024,
        ways: int = 16,
        n_segments: int = 32,
        segment_bytes: int = 16,
        policy: str = "lru",
    ):
        if capacity_bytes < 0:
            raise ValueError("capacity must be nonnegative")
        if ways < 1:
            raise ValueError("ways must be >= 1")
        if policy not in self.POLICIES:
            raise ValueError(
                f"unknown policy {policy!r}; choose from {self.POLICIES}"
            )
        self.capacity_bytes = capacity_bytes
        self.ways = ways
        self.policy = policy
        self.selector = SegmentSelector(n_segments, segment_bytes)
        self.stats = CacheStats()
        self._sets: Optional[list] = None
        self.n_sets = 0
        self.slot_bytes = 0
        self._tick = 0   # deterministic counter for the random policy

    def configure(self, property_bytes: int) -> None:
        """Size the line slots for this kernel and invalidate the cache.

        Properties larger than the maximum line (all segments) are
        *tiled* across multiple line slots (§6.2.2: "the input property
        array can be tiled into chunks"), so capacity in properties
        shrinks proportionally but hits remain property-granular.
        """
        if property_bytes < 1:
            raise ValueError("property size must be positive")
        max_line = self.selector.n_segments * self.selector.segment_bytes
        self.selector.configure(min(property_bytes, max_line))
        self.slot_bytes = slot_bytes_for(
            property_bytes, self.selector.n_segments,
            self.selector.segment_bytes,
        )
        self.n_sets = n_sets_for(
            self.capacity_bytes, self.ways, property_bytes,
            self.selector.n_segments, self.selector.segment_bytes,
        )
        # One OrderedDict-like plain dict per set: insertion order is
        # LRU order (move-to-end on touch).  Python dicts preserve
        # insertion order, so this is an exact, fast LRU.
        self._sets = [dict() for _ in range(self.n_sets)]
        self.stats = CacheStats()

    def _check_ready(self) -> None:
        if self._sets is None:
            raise RuntimeError("PropertyCache.configure() must be called first")

    @property
    def n_slots(self) -> int:
        return self.n_sets * self.ways

    def lookup(self, idx: int) -> bool:
        """Read-PR path: hit check + LRU touch.  No insertion on miss."""
        self._check_ready()
        self.stats.lookups += 1
        if self.n_sets == 0:
            return False
        s = self._sets[idx % self.n_sets]
        if idx in s:
            self.stats.hits += 1
            if self.policy == "lru":
                del s[idx]
                s[idx] = True  # move to MRU position
            return True
        return False

    def insert(self, idx: int) -> None:
        """Response-PR path: insert if absent, evicting the LRU line."""
        self._check_ready()
        if self.n_sets == 0:
            return
        s = self._sets[idx % self.n_sets]
        if idx in s:
            return  # §6.2.1: present already — no action
        if len(s) >= self.ways:
            if self.policy == "random":
                # Deterministic pseudo-random victim (reproducible runs).
                self._tick = (self._tick * 1103515245 + 12345) & 0x7FFFFFFF
                victim = list(s)[self._tick % len(s)]
            else:
                # Insertion order is LRU order under "lru" (touches
                # re-insert) and arrival order under "fifo".
                victim = next(iter(s))
            del s[victim]
            self.stats.evictions += 1
        s[idx] = True
        self.stats.insertions += 1

    def contains(self, idx: int) -> bool:
        """Non-mutating membership check (no stats, no LRU update)."""
        self._check_ready()
        if self.n_sets == 0:
            return False
        return idx in self._sets[idx % self.n_sets]

    def clear(self) -> int:
        """Invalidate every cached property, keeping the configuration
        and accumulated stats (fault injection: a flushed or corrupted
        cache restarts cold).  Returns the number of lines dropped."""
        self._check_ready()
        dropped = sum(len(s) for s in self._sets)
        for s in self._sets:
            s.clear()
        self.stats.flushes += 1
        return dropped
