"""The common result record of every communication-scheme simulation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

__all__ = ["CommResult"]


@dataclass
class CommResult:
    """Outcome of simulating one kernel iteration's communication.

    All byte counts are *wire* bytes (headers included) except
    ``useful_payload_bytes``, which is the unique remote property data
    each node actually needs — the numerator of goodput.
    """

    scheme: str
    matrix_name: str
    k: int
    n_nodes: int
    total_time: float
    per_node_time: np.ndarray
    recv_wire_bytes: np.ndarray
    sent_wire_bytes: np.ndarray
    useful_payload_bytes: np.ndarray
    link_bandwidth: float

    # mechanism statistics (zero where not applicable)
    n_pr_candidates: int = 0       # remote nonzeros scanned
    n_prs_issued: int = 0
    n_filtered: int = 0
    n_coalesced: int = 0
    n_packets: int = 0             # fabric-stage packets
    cache_lookups: int = 0
    cache_hits: int = 0
    pr_gen_time: np.ndarray = field(default_factory=lambda: np.zeros(0))
    extras: Dict = field(default_factory=dict)

    # -- derived -------------------------------------------------------

    @property
    def tail_node(self) -> int:
        return int(np.argmax(self.per_node_time))

    @property
    def fc_rate(self) -> float:
        """Fraction of candidate PRs filtered or coalesced (Table 7)."""
        if self.n_pr_candidates == 0:
            return 0.0
        return (self.n_filtered + self.n_coalesced) / self.n_pr_candidates

    @property
    def avg_prs_per_packet(self) -> float:
        if self.n_packets == 0:
            return 0.0
        return self.n_prs_issued / self.n_packets

    @property
    def cache_hit_rate(self) -> float:
        if self.cache_lookups == 0:
            return 0.0
        return self.cache_hits / self.cache_lookups

    def goodput(self, node: Optional[int] = None) -> float:
        """Useful payload rate / line rate at a node (default: tail)."""
        node = self.tail_node if node is None else node
        if self.total_time == 0:
            return 0.0
        return float(
            self.useful_payload_bytes[node]
            / self.total_time
            / self.link_bandwidth
        )

    def line_utilization(self, node: Optional[int] = None) -> float:
        """Wire byte rate / line rate at a node's receive port."""
        node = self.tail_node if node is None else node
        if self.total_time == 0:
            return 0.0
        return float(
            self.recv_wire_bytes[node] / self.total_time / self.link_bandwidth
        )

    def tail_traffic_bytes(self) -> float:
        """Wire bytes into the tail node (Table 7/8 traffic comparisons)."""
        return float(self.recv_wire_bytes[self.tail_node])

    def active_nodes_over_time(self, n_points: int = 200):
        """Figure 19: number of still-communicating nodes vs time."""
        t = np.linspace(0.0, float(self.per_node_time.max()), n_points)
        active = (self.per_node_time[None, :] > t[:, None]).sum(axis=1)
        return t, active
