"""SPADE accelerator compute-time model (Table 5, §8.2).

The paper integrates one SPADE accelerator (ISCA'23) per node: 128 PEs
at 1 GHz with 64 GB of HBM at 800 GB/s.  For the end-to-end experiments
(Figures 13, 14, 21) what matters is the relative magnitude of
hardware-accelerated *compute* versus *communication* per node, so we
model SPADE as a roofline:

- compute bound: 2 FLOPs per nonzero per property element, across
  ``n_pes`` MAC pipelines;
- memory bound: streaming the nonzeros plus the property traffic that
  misses on-chip reuse (unique input properties read once, outputs
  written once).

The same roofline with CPU parameters models the §9.6 CPU study.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SpadeConfig", "spmm_compute_time"]

#: Compressed nonzero storage: 4 B value + 4 B column index.
BYTES_PER_NONZERO = 8


@dataclass(frozen=True)
class SpadeConfig:
    """One node's SPADE accelerator (Table 5 defaults)."""

    n_pes: int = 128
    freq: float = 1.0e9
    flops_per_pe_per_cycle: float = 8.0      # vector MAC lanes per PE
    mem_bandwidth: float = 800e9             # HBM bytes/s
    utilization: float = 0.7                 # achieved fraction of peak

    @property
    def peak_flops(self) -> float:
        return self.n_pes * self.freq * self.flops_per_pe_per_cycle


def spmm_compute_time(
    nnz: int,
    n_rows: int,
    unique_cols: int,
    k: int,
    config: SpadeConfig = SpadeConfig(),
) -> float:
    """Roofline SpMM time for one partition of the matrix.

    ``unique_cols`` is the number of distinct input properties the
    partition touches (each streamed from memory once thanks to
    on-chip tiling/reuse — SPADE's design goal).
    """
    if nnz < 0 or n_rows < 0 or unique_cols < 0:
        raise ValueError("sizes must be nonnegative")
    if k < 1:
        raise ValueError("K must be >= 1")
    flops = 2.0 * nnz * k
    t_compute = flops / (config.peak_flops * config.utilization)
    bytes_moved = (
        nnz * BYTES_PER_NONZERO
        + unique_cols * 4 * k        # input properties, read once
        + n_rows * 4 * k * 2         # output properties, read+write
    )
    t_memory = bytes_moved / (config.mem_bandwidth * config.utilization)
    return max(t_compute, t_memory)
