"""CPU compute models for the §9.6 study (Figure 21).

The paper calibrates against two Intel Sapphire Rapids servers running
MKL's inspector-executor SpMM: a 48-core DDR machine and a 56-core
machine with HBM (bandwidth comparable to the SPADE model's 800 GB/s).
We reuse the SPADE roofline with CPU parameters; ``utilization``
reflects the measured efficiency of MKL relative to peak.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accel.spade import SpadeConfig

__all__ = ["CpuConfig", "SPR_DDR", "SPR_HBM"]


@dataclass(frozen=True)
class CpuConfig:
    """A CPU node described in the same roofline vocabulary."""

    name: str
    cores: int
    freq: float
    flops_per_core_per_cycle: float
    mem_bandwidth: float
    utilization: float

    def as_roofline(self) -> SpadeConfig:
        """View the CPU as a SpadeConfig so the same kernels apply."""
        return SpadeConfig(
            n_pes=self.cores,
            freq=self.freq,
            flops_per_pe_per_cycle=self.flops_per_core_per_cycle,
            mem_bandwidth=self.mem_bandwidth,
            utilization=self.utilization,
        )


#: 48-core Sapphire Rapids with DDR5 (~300 GB/s).
SPR_DDR = CpuConfig(
    name="SPR+DDR",
    cores=48,
    freq=2.1e9,
    flops_per_core_per_cycle=32.0,   # 2x AVX-512 FMA
    mem_bandwidth=300e9,
    utilization=0.35,                # sparse MKL efficiency
)

#: 56-core Sapphire Rapids Max with HBM2e (~800 GB/s usable).
SPR_HBM = CpuConfig(
    name="SPR+HBM",
    cores=56,
    freq=2.0e9,
    flops_per_core_per_cycle=32.0,
    mem_bandwidth=800e9,
    utilization=0.35,
)
