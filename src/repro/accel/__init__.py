"""Per-node compute models: SPADE accelerators and server CPUs."""

from repro.accel.spade import SpadeConfig, spmm_compute_time
from repro.accel.cpu import CpuConfig, SPR_DDR, SPR_HBM

__all__ = ["CpuConfig", "SPR_DDR", "SPR_HBM", "SpadeConfig", "spmm_compute_time"]
