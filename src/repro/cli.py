"""Command-line entry point.

Usage::

    netsparse list
    netsparse run table1 [--scale small] [--jobs 4]
    netsparse run all [--scale tiny] [--jobs 4] [--no-cache]
    netsparse report [--scale small] [-o report.md] [--jobs 4]
    netsparse profile fig12 [--scale tiny] [-o DIR]
    netsparse profile --smoke
    netsparse resilience [--scale small] [-o DIR]
    netsparse resilience --smoke
    netsparse collectives [--scale small] [-o DIR]
    netsparse collectives --smoke
    netsparse cache info
    netsparse cache clear
    netsparse version        (also: netsparse --version)

``run`` and ``report`` route every simulation through the execution
engine (:mod:`repro.parallel`): ``--jobs N`` fans independent jobs out
over N worker processes, and results are memoized in a
content-addressed on-disk cache (``--cache-dir``, default
``$NETSPARSE_CACHE_DIR`` or ``~/.cache/netsparse``) so repeated runs
replay instead of recompute.  Simulations are deterministic, so cached
and parallel runs are bit-identical to serial ones.

``profile`` runs one experiment under full telemetry
(:mod:`repro.telemetry`) — serial and uncached so every instrumented
code path actually executes — and writes a JSON metrics dump, a CSV,
and a Chrome ``trace_event`` file (open in Perfetto), then prints the
per-stage breakdown.

``resilience`` sweeps the canonical fault scenario
(:mod:`repro.faults`) over the schemes and writes a markdown
degradation report plus a telemetry JSON; ``--smoke`` additionally
asserts the NetSparse speedup column decreases strictly with fault
intensity and that the ``faults.*`` counters are live.

``collectives`` runs the sparse ML workload families
(:mod:`repro.workloads`: sparse allreduce + iterative SpMV) on both
substrates — every round through the analytic cluster model, plus the
DES keep-vs-flush cache sweep — and writes a per-scheme speedup report;
``--smoke`` forces tiny scale and asserts both families run end-to-end
on both substrates, regenerated traces are digest-identical (generator
determinism), and the cache/DES counters are live.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

import repro
from repro.experiments import EXPERIMENTS, list_experiments, run_experiment

__all__ = ["main"]


def _run_with_scale(exp_id: str, scale: str):
    """Pass --scale only to experiments that take it (hardware and
    protocol experiments are scale-free)."""
    import inspect

    fn = EXPERIMENTS.get(exp_id)
    if fn is None:
        raise KeyError(
            f"unknown experiment {exp_id!r}; available: {list_experiments()}"
        )
    if "scale" in inspect.signature(fn).parameters:
        return run_experiment(exp_id, scale=scale)
    return run_experiment(exp_id)


def _add_engine_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for independent simulation jobs "
             "(default: 1, serial)",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="simulation result cache directory (default: "
             "$NETSPARSE_CACHE_DIR or ~/.cache/netsparse)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the on-disk simulation result cache",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="netsparse",
        description="NetSparse (MICRO 2025) reproduction harness",
    )
    parser.add_argument(
        "--version", action="version",
        version=f"netsparse {repro.__version__}",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    sub.add_parser("version", help="print the installed package version")
    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment", help="experiment id, e.g. table1, fig12")
    run.add_argument(
        "--scale",
        default="small",
        choices=["tiny", "small", "medium", "large"],
        help="benchmark matrix scale (default: small)",
    )
    _add_engine_flags(run)
    report = sub.add_parser(
        "report", help="run the whole suite and write a markdown report"
    )
    report.add_argument("--scale", default="small",
                        choices=["tiny", "small", "medium", "large"])
    report.add_argument("-o", "--output", default="report.md",
                        help="output markdown path (default: report.md)")
    report.add_argument("--only", nargs="*", default=None,
                        help="restrict to these experiment ids")
    _add_engine_flags(report)
    prof = sub.add_parser(
        "profile",
        help="run one experiment under full telemetry and write a JSON "
             "metrics dump, CSV, and Chrome trace (Perfetto)",
    )
    prof.add_argument(
        "experiment", nargs="?", default="table7",
        help="experiment id to profile (default: table7)",
    )
    prof.add_argument("--scale", default="small",
                      choices=["tiny", "small", "medium", "large"])
    prof.add_argument(
        "-o", "--out-dir", default=".", metavar="DIR",
        help="directory for profile_<exp>_<scale>.{json,csv,trace.json} "
             "(default: current directory)",
    )
    prof.add_argument(
        "--smoke", action="store_true",
        help="CI self-check: force tiny scale and fail unless the "
             "filter/coalesce/cache counters are live and the artifacts "
             "were written",
    )
    res = sub.add_parser(
        "resilience",
        help="sweep fault intensity across the schemes and write a "
             "degradation report (speedup vs fault intensity)",
    )
    res.add_argument("--scale", default="small",
                     choices=["tiny", "small", "medium", "large"])
    res.add_argument(
        "-o", "--out-dir", default=".", metavar="DIR",
        help="directory for resilience_<scale>.md and the telemetry "
             "JSON (default: current directory)",
    )
    res.add_argument(
        "--smoke", action="store_true",
        help="CI self-check: force tiny scale and fail unless the "
             "NetSparse speedup decreases strictly with intensity and "
             "the faults.* counters are live",
    )
    col = sub.add_parser(
        "collectives",
        help="run the sparse ML workload families (allreduce + iterative "
             "SpMV) on the analytic and DES substrates and write a "
             "speedup report",
    )
    col.add_argument("--scale", default="small",
                     choices=["tiny", "small", "medium", "large"])
    col.add_argument(
        "-o", "--out-dir", default=".", metavar="DIR",
        help="directory for collectives_<scale>.md and the telemetry "
             "JSON (default: current directory)",
    )
    col.add_argument(
        "--smoke", action="store_true",
        help="CI self-check: force tiny scale and fail unless both "
             "workload families run on both substrates, regenerated "
             "traces are digest-identical, and the cache/DES counters "
             "are live",
    )
    cache = sub.add_parser(
        "cache", help="inspect or clear the simulation result cache"
    )
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    info = cache_sub.add_parser("info", help="entry count, size, held "
                                             "simulation time")
    clear = cache_sub.add_parser("clear", help="delete every cached result")
    for p in (info, clear):
        p.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="cache directory (default: $NETSPARSE_CACHE_DIR "
                            "or ~/.cache/netsparse)")
    return parser


def _print_engine_summary(engine) -> None:
    from repro.partition import get_trace_cache

    print(f"[engine] {engine.stats.summary()}")
    tc = get_trace_cache().stats()
    print(
        f"[trace-cache] entries={tc['entries']}/{tc['max_entries']} "
        f"hits={tc['hits']} misses={tc['misses']} "
        f"evictions={tc['evictions']}"
    )


def _cache_main(args) -> int:
    from repro.parallel import ResultCache

    cache = ResultCache(args.cache_dir)
    if args.cache_command == "info":
        print(cache.info().format())
    else:
        removed = cache.clear()
        print(f"removed {removed} cached results from {cache.root}")
    return 0


def main(argv=None) -> int:
    try:
        return _main(argv)
    except BrokenPipeError:
        # stdout went away (e.g. piped into `head`): not an error, but
        # suppress the interpreter's close-time flush complaint too.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


def _profile_main(args) -> int:
    from repro.telemetry import breakdown_lines, profile_experiment

    scale = "tiny" if args.smoke else args.scale
    try:
        prof = profile_experiment(args.experiment, scale=scale,
                                  out_dir=args.out_dir)
    except KeyError as exc:
        print(exc, file=sys.stderr)
        return 1
    print(prof.table.format())
    print()
    for line in breakdown_lines(prof.registry):
        print(line)
    print()
    for path in (prof.json_path, prof.trace_path, prof.csv_path):
        print(f"wrote {path}")
    if args.smoke:
        counters = {k: c.value for k, c in prof.registry.counters.items()}
        required = ("cluster.filter.candidates", "cluster.filter.issued",
                    "pcache.lookups", "concat.packets", "engine.executed")
        missing = [k for k in required if counters.get(k, 0) <= 0]
        spans = prof.registry.span_totals("wall")
        if not any(n.startswith("cluster.stage.") for n in spans):
            missing.append("cluster.stage.* spans")
        if missing:
            print(f"[smoke] FAIL: dead instrumentation: {missing}",
                  file=sys.stderr)
            return 1
        print("[smoke] telemetry instrumentation live")
    return 0


def _resilience_main(args) -> int:
    from repro.experiments.resilience import degradation_report, run_resilience
    from repro.parallel import ExecutionEngine, engine_scope
    from repro.telemetry import (
        MetricsRegistry,
        telemetry_scope,
        write_metrics_json,
    )

    scale = "tiny" if args.smoke else args.scale
    reg = MetricsRegistry()
    # Serial + uncached, like `profile`: every fault-injection code
    # path must actually execute for the counters to mean anything.
    with engine_scope(ExecutionEngine(jobs=1, cache=None)):
        with telemetry_scope(reg):
            table = run_resilience(scale=scale)
    print(table.format())
    print()
    os.makedirs(args.out_dir, exist_ok=True)
    md_path = os.path.join(args.out_dir, f"resilience_{scale}.md")
    with open(md_path, "w") as fh:
        fh.write(degradation_report(table))
    json_path = write_metrics_json(
        reg, os.path.join(args.out_dir, f"resilience_{scale}.metrics.json"),
        meta={"experiment": "resilience", "scale": scale},
    )
    print(f"wrote {md_path}")
    print(f"wrote {json_path}")
    if args.smoke:
        failures = []
        speedups = table.column("NS/SUOpt x")
        if not all(a > b for a, b in zip(speedups, speedups[1:])):
            failures.append(
                f"NetSparse speedup not strictly decreasing: {speedups}"
            )
        counters = {k: c.value for k, c in reg.counters.items()}
        live = sorted(
            k for k, v in counters.items()
            if k.split("{")[0].startswith("faults.") and v > 0
        )
        if not live:
            failures.append("no live faults.* counters")
        if failures:
            for f in failures:
                print(f"[smoke] FAIL: {f}", file=sys.stderr)
            return 1
        print(f"[smoke] degradation monotone; live counters: {live}")
    return 0


def _collectives_main(args) -> int:
    from repro.experiments.collectives import (
        collectives_report,
        run_collectives,
        run_collectives_des,
    )
    from repro.parallel import ExecutionEngine, engine_scope
    from repro.telemetry import (
        MetricsRegistry,
        telemetry_scope,
        write_metrics_json,
    )
    from repro.workloads import WORKLOADS, trace_digest

    scale = "tiny" if args.smoke else args.scale
    reg = MetricsRegistry()
    # Serial + uncached, like `profile`/`resilience`: the smoke check
    # needs every substrate to actually execute, not replay from cache.
    with engine_scope(ExecutionEngine(jobs=1, cache=None)):
        with telemetry_scope(reg):
            analytic = run_collectives(scale=scale)
            des = run_collectives_des()
    print(analytic.format())
    print()
    print(des.format())
    print()
    os.makedirs(args.out_dir, exist_ok=True)
    md_path = os.path.join(args.out_dir, f"collectives_{scale}.md")
    with open(md_path, "w") as fh:
        fh.write(collectives_report(analytic, des))
    json_path = write_metrics_json(
        reg, os.path.join(args.out_dir, f"collectives_{scale}.metrics.json"),
        meta={"experiment": "collectives", "scale": scale},
    )
    print(f"wrote {md_path}")
    print(f"wrote {json_path}")
    if args.smoke:
        failures = []
        kinds = set(analytic.column("kind"))
        if kinds != {"allreduce", "spmv"}:
            failures.append(f"analytic sweep missing a family kind: {kinds}")
        des_kinds = {WORKLOADS[w].kind for w in des.column("workload")}
        if des_kinds != {"allreduce", "spmv"}:
            failures.append(f"DES sweep missing a family kind: {des_kinds}")
        for fam in analytic.column("workload"):
            if (trace_digest(fam, scale, round_idx=1, fresh=True)
                    != trace_digest(fam, scale, round_idx=1)):
                failures.append(f"non-deterministic generator: {fam}")
        bad = [row[0] for row in analytic.rows if row[4] <= 1.0]
        if bad:
            failures.append(f"NetSparse not ahead of SUOpt on: {bad}")
        for row in des.rows:
            if row[3] < row[2]:
                failures.append(
                    f"persistent cache hit rate below flushed on {row[0]}: "
                    f"{row[3]} < {row[2]}"
                )
        counters = {k: c.value for k, c in reg.counters.items()}
        for key in ("pcache.lookups", "dessim.prs.issued",
                    "dessim.fabric.packets"):
            if counters.get(key, 0) <= 0:
                failures.append(f"dead counter: {key}")
        if failures:
            for f in failures:
                print(f"[smoke] FAIL: {f}", file=sys.stderr)
            return 1
        print("[smoke] both families ran on both substrates; "
              "traces deterministic; cache/DES counters live")
    return 0


def _main(argv=None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        for exp_id in list_experiments():
            print(exp_id)
        return 0

    if args.command == "version":
        print(f"netsparse {repro.__version__}")
        return 0

    if args.command == "profile":
        return _profile_main(args)

    if args.command == "resilience":
        return _resilience_main(args)

    if args.command == "collectives":
        return _collectives_main(args)

    if args.command == "cache":
        return _cache_main(args)

    from repro.parallel import configure_engine

    engine = configure_engine(jobs=args.jobs, cache_dir=args.cache_dir,
                              use_cache=not args.no_cache)

    if args.command == "report":
        from repro.experiments.report import generate_report

        text = generate_report(
            scale=args.scale,
            experiments=args.only,
            progress=lambda e, t: print(f"  {e}: {t:.1f}s", flush=True),
        )
        with open(args.output, "w") as fh:
            fh.write(text)
        print(f"wrote {args.output}")
        _print_engine_summary(engine)
        return 0

    targets = (
        list_experiments() if args.experiment == "all" else [args.experiment]
    )
    for exp_id in targets:
        t0 = time.time()
        try:
            table = _run_with_scale(exp_id, args.scale)
        except KeyError as exc:
            print(exc, file=sys.stderr)
            return 1
        print(table.format())
        print(f"[{time.time() - t0:.1f}s]")
        print()
    _print_engine_summary(engine)
    return 0


if __name__ == "__main__":
    sys.exit(main())
