"""Command-line entry point.

Usage::

    netsparse list
    netsparse run table1 [--scale small]
    netsparse run all [--scale tiny]
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import EXPERIMENTS, list_experiments, run_experiment

__all__ = ["main"]


def _run_with_scale(exp_id: str, scale: str):
    """Pass --scale only to experiments that take it (hardware and
    protocol experiments are scale-free)."""
    import inspect

    fn = EXPERIMENTS[exp_id]
    if "scale" in inspect.signature(fn).parameters:
        return run_experiment(exp_id, scale=scale)
    return run_experiment(exp_id)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="netsparse",
        description="NetSparse (MICRO 2025) reproduction harness",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment", help="experiment id, e.g. table1, fig12")
    run.add_argument(
        "--scale",
        default="small",
        choices=["tiny", "small", "medium"],
        help="benchmark matrix scale (default: small)",
    )
    report = sub.add_parser(
        "report", help="run the whole suite and write a markdown report"
    )
    report.add_argument("--scale", default="small",
                        choices=["tiny", "small", "medium"])
    report.add_argument("-o", "--output", default="report.md",
                        help="output markdown path (default: report.md)")
    report.add_argument("--only", nargs="*", default=None,
                        help="restrict to these experiment ids")
    return parser


def main(argv=None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        for exp_id in list_experiments():
            print(exp_id)
        return 0

    if args.command == "report":
        from repro.experiments.report import generate_report

        text = generate_report(
            scale=args.scale,
            experiments=args.only,
            progress=lambda e, t: print(f"  {e}: {t:.1f}s", flush=True),
        )
        with open(args.output, "w") as fh:
            fh.write(text)
        print(f"wrote {args.output}")
        return 0

    targets = (
        list_experiments() if args.experiment == "all" else [args.experiment]
    )
    for exp_id in targets:
        t0 = time.time()
        try:
            table = _run_with_scale(exp_id, args.scale)
        except KeyError as exc:
            print(exc, file=sys.stderr)
            return 1
        print(table.format())
        print(f"[{time.time() - t0:.1f}s]")
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
