"""Command-line entry point.

Usage::

    netsparse list
    netsparse run table1 [--scale small] [--jobs 4]
    netsparse run all [--scale tiny] [--jobs 4] [--no-cache]
    netsparse report [--scale small] [-o report.md] [--jobs 4]
    netsparse profile fig12 [--scale tiny] [-o DIR]
    netsparse profile --smoke
    netsparse resilience [--scale small] [-o DIR]
    netsparse resilience --smoke
    netsparse collectives [--scale small] [-o DIR]
    netsparse collectives --smoke
    netsparse cache info
    netsparse cache clear
    netsparse store info [--dsn sqlite:///...]
    netsparse store migrate
    netsparse store history [--experiment E] [--scheme S] [--since 7d]
    netsparse store gc [--days 30] [--ledger] [--dry-run]
    netsparse serve [--port 8642] [--jobs 4] [--queue-limit 64]
    netsparse submit --scheme netsparse --matrix arabic -k 16 [--wait]
    netsparse submit --scheme netsparse,suopt --matrix arabic,uk -k 8,16
    netsparse jobs [--url http://127.0.0.1:8642]
    netsparse version        (also: netsparse --version)

``run`` and ``report`` route every simulation through the execution
engine (:mod:`repro.parallel`): ``--jobs N`` fans independent jobs out
over N worker processes, and results are memoized in a
content-addressed on-disk cache (``--cache-dir``, default
``$NETSPARSE_CACHE_DIR`` or ``~/.cache/netsparse``) so repeated runs
replay instead of recompute.  Simulations are deterministic, so cached
and parallel runs are bit-identical to serial ones.

``profile`` runs one experiment under full telemetry
(:mod:`repro.telemetry`) — serial and uncached so every instrumented
code path actually executes — and writes a JSON metrics dump, a CSV,
and a Chrome ``trace_event`` file (open in Perfetto), then prints the
per-stage breakdown.

``resilience`` sweeps the canonical fault scenario
(:mod:`repro.faults`) over the schemes and writes a markdown
degradation report plus a telemetry JSON; ``--smoke`` additionally
asserts the NetSparse speedup column decreases strictly with fault
intensity and that the ``faults.*`` counters are live.

``serve`` turns the engine into a shared service
(:mod:`repro.service`): clients submit jobs and sweeps over HTTP,
duplicates coalesce onto single executions, repeats come straight from
the result cache, and per-job progress streams over WebSocket.
``submit`` and ``jobs`` are thin clients for it; comma-separated values
to ``submit`` expand into a sweep.  Ctrl-C on a running server drains
in-flight jobs before exiting.

``store`` inspects the shared result/artifact store
(:mod:`repro.store`): ``info`` prints backend/schema/row counts,
``migrate`` applies pending schema migrations (idempotent — a second
run is a no-op), ``history`` queries the append-only run ledger
(filter by experiment, scheme, matrix, scale, source, ``--since 7d``),
and ``gc`` reclaims old result rows and artifacts (the ledger is kept
unless ``--ledger`` is given).  The DSN comes from ``--dsn`` or
``$REPRO_STORE_DSN``; with the env var set, ``run``/``report``/
``serve`` transparently share results through the store and
``cache info`` reports both tiers.

``collectives`` runs the sparse ML workload families
(:mod:`repro.workloads`: sparse allreduce + iterative SpMV) on both
substrates — every round through the analytic cluster model, plus the
DES keep-vs-flush cache sweep — and writes a per-scheme speedup report;
``--smoke`` forces tiny scale and asserts both families run end-to-end
on both substrates, regenerated traces are digest-identical (generator
determinism), and the cache/DES counters are live.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

import repro
from repro.experiments import EXPERIMENTS, list_experiments, run_experiment

__all__ = ["main"]


def _run_with_scale(exp_id: str, scale: str):
    """Pass --scale only to experiments that take it (hardware and
    protocol experiments are scale-free)."""
    import inspect

    fn = EXPERIMENTS.get(exp_id)
    if fn is None:
        raise KeyError(
            f"unknown experiment {exp_id!r}; available: {list_experiments()}"
        )
    if "scale" in inspect.signature(fn).parameters:
        return run_experiment(exp_id, scale=scale)
    return run_experiment(exp_id)


def _add_engine_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for independent simulation jobs "
             "(default: 1, serial)",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="simulation result cache directory (default: "
             "$NETSPARSE_CACHE_DIR or ~/.cache/netsparse)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the on-disk simulation result cache",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="netsparse",
        description="NetSparse (MICRO 2025) reproduction harness",
    )
    parser.add_argument(
        "--version", action="version",
        version=f"netsparse {repro.__version__}",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    sub.add_parser("version", help="print the installed package version")
    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment", help="experiment id, e.g. table1, fig12")
    run.add_argument(
        "--scale",
        default="small",
        choices=["tiny", "small", "medium", "large"],
        help="benchmark matrix scale (default: small)",
    )
    _add_engine_flags(run)
    report = sub.add_parser(
        "report", help="run the whole suite and write a markdown report"
    )
    report.add_argument("--scale", default="small",
                        choices=["tiny", "small", "medium", "large"])
    report.add_argument("-o", "--output", default="report.md",
                        help="output markdown path (default: report.md)")
    report.add_argument("--only", nargs="*", default=None,
                        help="restrict to these experiment ids")
    _add_engine_flags(report)
    prof = sub.add_parser(
        "profile",
        help="run one experiment under full telemetry and write a JSON "
             "metrics dump, CSV, and Chrome trace (Perfetto)",
    )
    prof.add_argument(
        "experiment", nargs="?", default="table7",
        help="experiment id to profile (default: table7)",
    )
    prof.add_argument("--scale", default="small",
                      choices=["tiny", "small", "medium", "large"])
    prof.add_argument(
        "-o", "--out-dir", default=".", metavar="DIR",
        help="directory for profile_<exp>_<scale>.{json,csv,trace.json} "
             "(default: current directory)",
    )
    prof.add_argument(
        "--smoke", action="store_true",
        help="CI self-check: force tiny scale and fail unless the "
             "filter/coalesce/cache counters are live and the artifacts "
             "were written",
    )
    res = sub.add_parser(
        "resilience",
        help="sweep fault intensity across the schemes and write a "
             "degradation report (speedup vs fault intensity)",
    )
    res.add_argument("--scale", default="small",
                     choices=["tiny", "small", "medium", "large"])
    res.add_argument(
        "-o", "--out-dir", default=".", metavar="DIR",
        help="directory for resilience_<scale>.md and the telemetry "
             "JSON (default: current directory)",
    )
    res.add_argument(
        "--smoke", action="store_true",
        help="CI self-check: force tiny scale and fail unless the "
             "NetSparse speedup decreases strictly with intensity and "
             "the faults.* counters are live",
    )
    col = sub.add_parser(
        "collectives",
        help="run the sparse ML workload families (allreduce + iterative "
             "SpMV) on the analytic and DES substrates and write a "
             "speedup report",
    )
    col.add_argument("--scale", default="small",
                     choices=["tiny", "small", "medium", "large"])
    col.add_argument(
        "-o", "--out-dir", default=".", metavar="DIR",
        help="directory for collectives_<scale>.md and the telemetry "
             "JSON (default: current directory)",
    )
    col.add_argument(
        "--smoke", action="store_true",
        help="CI self-check: force tiny scale and fail unless both "
             "workload families run on both substrates, regenerated "
             "traces are digest-identical, and the cache/DES counters "
             "are live",
    )
    serve = sub.add_parser(
        "serve",
        help="run the job service: HTTP/WebSocket API over the "
             "execution engine (coalescing, cache serving, admission "
             "control)",
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=None, metavar="P",
                       help="bind port (default: 8642; 0 picks a free "
                            "port)")
    serve.add_argument("--queue-limit", type=int, default=64, metavar="N",
                       help="max in-flight jobs before submissions get "
                            "429 (default: 64)")
    _add_engine_flags(serve)
    submit = sub.add_parser(
        "submit",
        help="submit a job (or, with comma-separated values, a sweep) "
             "to a running service",
    )
    submit.add_argument("--url", default=None, metavar="URL",
                        help="service endpoint (default: "
                             "$NETSPARSE_SERVICE_URL or "
                             "http://127.0.0.1:8642)")
    submit.add_argument("--scheme", required=True,
                        help="scheme id(s), comma-separated")
    submit.add_argument("--matrix", required=True,
                        help="matrix name(s), comma-separated")
    submit.add_argument("-k", required=True, metavar="K",
                        help="SpMM column count(s), comma-separated")
    submit.add_argument("--scale", default="small",
                        choices=["tiny", "small", "medium", "large"])
    submit.add_argument("--seed", type=int, default=7)
    submit.add_argument("--wait", action="store_true",
                        help="block until every job finishes and print "
                             "result summaries")
    submit.add_argument("--watch", action="store_true",
                        help="stream each job's lifecycle + span events "
                             "(implies --wait ordering)")
    jobs_p = sub.add_parser(
        "jobs", help="list jobs and service stats of a running service"
    )
    jobs_p.add_argument("--url", default=None, metavar="URL",
                        help="service endpoint (default: "
                             "$NETSPARSE_SERVICE_URL or "
                             "http://127.0.0.1:8642)")
    cache = sub.add_parser(
        "cache", help="inspect or clear the simulation result cache"
    )
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    info = cache_sub.add_parser("info", help="entry count, size, held "
                                             "simulation time")
    clear = cache_sub.add_parser("clear", help="delete every cached result")
    for p in (info, clear):
        p.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="cache directory (default: $NETSPARSE_CACHE_DIR "
                            "or ~/.cache/netsparse)")
    store = sub.add_parser(
        "store", help="inspect, migrate, query, or garbage-collect the "
                      "shared result/artifact store"
    )
    store_sub = store.add_subparsers(dest="store_command", required=True)
    st_info = store_sub.add_parser(
        "info", help="backend, schema version, row/artifact/ledger counts")
    st_migrate = store_sub.add_parser(
        "migrate", help="apply pending schema migrations (idempotent)")
    st_history = store_sub.add_parser(
        "history", help="query the append-only run ledger")
    st_history.add_argument("--experiment", default=None,
                            help="filter by experiment id (e.g. table8)")
    st_history.add_argument("--scheme", default=None,
                            help="filter by scheme (netsparse, suopt, ...)")
    st_history.add_argument("--matrix", default=None,
                            help="filter by benchmark matrix name")
    st_history.add_argument("--scale", default=None,
                            help="filter by scale name (tiny, small, ...)")
    st_history.add_argument("--source", default=None,
                            help="filter by answer source (executed, cache, "
                                 "memo, inflight, coalesced)")
    st_history.add_argument("--since", default=None, metavar="WHEN",
                            help="only rows at/after WHEN: ISO date "
                                 "(2026-08-01), relative (7d, 12h, 30m), "
                                 "or epoch seconds")
    st_history.add_argument("--limit", type=int, default=50, metavar="N",
                            help="max rows (default 50; 0 = unlimited)")
    st_history.add_argument("--json", action="store_true",
                            help="emit rows as JSON instead of a table")
    st_gc = store_sub.add_parser(
        "gc", help="reclaim result rows and artifacts older than a cutoff")
    st_gc.add_argument("--days", type=float, default=30.0, metavar="D",
                       help="age cutoff in days (default 30)")
    st_gc.add_argument("--ledger", action="store_true",
                       help="also prune run-ledger rows older than the "
                            "cutoff (kept by default: it is the audit "
                            "trail)")
    st_gc.add_argument("--dry-run", action="store_true",
                       help="report what would be removed, remove nothing")
    for p in (st_info, st_migrate, st_history, st_gc):
        p.add_argument("--dsn", default=None, metavar="DSN",
                       help="store DSN (default: $REPRO_STORE_DSN), e.g. "
                            "sqlite:////var/lib/netsparse/store.sqlite3")
    return parser


def _print_engine_summary(engine) -> None:
    from repro.partition import get_trace_cache

    print(f"[engine] {engine.stats.summary()}")
    tc = get_trace_cache().stats()
    print(
        f"[trace-cache] entries={tc['entries']}/{tc['max_entries']} "
        f"hits={tc['hits']} misses={tc['misses']} "
        f"evictions={tc['evictions']}"
    )


def _store_report_artifact(text: str, args) -> None:
    """Mirror the markdown report into the store's artifact table when
    ``REPRO_STORE_DSN`` is set, and append a ledger row carrying its
    sha so ``netsparse store history`` points at the report a run
    produced.  Best-effort: a broken store never fails the report."""
    from repro.store import store_from_env

    try:
        store = store_from_env()
        if store is None:
            return
        sha = store.put_artifact(
            text.encode("utf-8"), kind="report",
            name=os.path.basename(args.output),
            meta={"scale": args.scale,
                  "experiments": args.only if args.only else "all"})
        store.record_run(sha, source="report", experiment="report",
                         meta={"scale_name": args.scale})
        print(f"stored report artifact {sha[:12]}")
    except Exception as exc:
        print(f"store upload skipped: {exc}", file=sys.stderr)


def _cache_main(args) -> int:
    from repro.parallel import ResultCache

    cache = ResultCache(args.cache_dir)
    if args.cache_command == "info":
        print(cache.info().format())
    else:
        removed = cache.clear()
        print(f"removed {removed} cached files from {cache.root}")
    return 0


def _store_dsn(args) -> str:
    dsn = args.dsn or os.environ.get("REPRO_STORE_DSN")
    if not dsn:
        raise SystemExit(
            "no store configured: pass --dsn or set $REPRO_STORE_DSN "
            "(e.g. sqlite:////var/lib/netsparse/store.sqlite3)")
    return dsn


def _parse_since(text):
    """``--since`` spellings -> epoch seconds: ISO date(time), relative
    (``7d``/``12h``/``30m``), or raw epoch seconds."""
    import datetime as dt
    import re

    if text is None:
        return None
    text = text.strip()
    m = re.fullmatch(r"(\d+(?:\.\d+)?)([dhm])", text)
    if m:
        mult = {"d": 86400.0, "h": 3600.0, "m": 60.0}[m.group(2)]
        return time.time() - float(m.group(1)) * mult
    try:
        return float(text)
    except ValueError:
        pass
    try:
        return dt.datetime.fromisoformat(text).timestamp()
    except ValueError:
        raise SystemExit(f"cannot parse --since {text!r}: use an ISO "
                         "date, a relative window (7d, 12h, 30m), or "
                         "epoch seconds")


def _store_main(args) -> int:
    import json as _json

    from repro.store import SCHEMA_VERSION, StoreError, open_store

    try:
        store = open_store(_store_dsn(args),
                           migrate=args.store_command != "migrate")
    except StoreError as exc:
        print(f"cannot open store: {exc}", file=sys.stderr)
        return 1

    if args.store_command == "migrate":
        applied = store.migrate()
        if applied:
            print(f"applied migration(s): {applied} "
                  f"(schema now v{store.schema_version()})")
        else:
            print(f"up to date (schema v{store.schema_version()} of "
                  f"v{SCHEMA_VERSION}); nothing to apply")
        return 0

    if args.store_command == "info":
        info = store.describe()
        print(f"store        : {info.get('backend')} ({info.get('dsn')})")
        if "size_bytes" in info:
            print(f"size         : {info['size_bytes'] / 1e6:.2f} MB")
        print(f"schema       : v{info.get('schema_version')} "
              f"(latest v{info.get('latest_schema_version')})")
        print(f"results      : {info.get('results', 0)}")
        print(f"artifacts    : {info.get('artifacts', 0)}")
        print(f"ledger rows  : {info.get('ledger', 0)}")
        return 0

    if args.store_command == "history":
        rows = store.history(
            experiment=args.experiment, scheme=args.scheme,
            matrix=args.matrix, scale=args.scale, source=args.source,
            since=_parse_since(args.since),
            limit=args.limit if args.limit > 0 else None,
        )
        if args.json:
            print(_json.dumps(rows, indent=2, sort_keys=True))
            return 0
        if not rows:
            print("no ledger rows match")
            return 0
        for row in rows:
            stamp = time.strftime("%Y-%m-%d %H:%M:%S",
                                  time.localtime(row["ts"]))
            what = (f"{row['scheme'] or '?'}/{row['matrix'] or '?'}"
                    f"/k={row['k'] if row['k'] is not None else '?'}"
                    f"@{row['scale'] or '?'}")
            exp = f"  exp={row['experiment']}" if row["experiment"] else ""
            print(f"{stamp}  {row['source']:<9} {what:<32} "
                  f"{row['elapsed']:>7.2f}s  {row['worker']}"
                  f"{exp}  {row['digest'][:10]}")
        print(f"({len(rows)} row(s))")
        return 0

    # gc
    removed = store.gc(older_than_days=args.days,
                       include_ledger=args.ledger, dry_run=args.dry_run)
    verb = "would remove" if args.dry_run else "removed"
    parts = [f"{n} {table} row(s)" for table, n in removed.items()]
    print(f"{verb} {', '.join(parts)} older than {args.days:g} day(s)")
    if not args.ledger:
        print("(run ledger kept; pass --ledger to prune it too)")
    return 0


def main(argv=None) -> int:
    try:
        return _main(argv)
    except BrokenPipeError:
        # stdout went away (e.g. piped into `head`): not an error, but
        # suppress the interpreter's close-time flush complaint too.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


def _profile_main(args) -> int:
    from repro.telemetry import breakdown_lines, profile_experiment

    scale = "tiny" if args.smoke else args.scale
    try:
        prof = profile_experiment(args.experiment, scale=scale,
                                  out_dir=args.out_dir)
    except KeyError as exc:
        print(exc, file=sys.stderr)
        return 1
    print(prof.table.format())
    print()
    for line in breakdown_lines(prof.registry):
        print(line)
    print()
    for path in (prof.json_path, prof.trace_path, prof.csv_path):
        print(f"wrote {path}")
    if args.smoke:
        counters = {k: c.value for k, c in prof.registry.counters.items()}
        required = ("cluster.filter.candidates", "cluster.filter.issued",
                    "pcache.lookups", "concat.packets", "engine.executed")
        missing = [k for k in required if counters.get(k, 0) <= 0]
        spans = prof.registry.span_totals("wall")
        if not any(n.startswith("cluster.stage.") for n in spans):
            missing.append("cluster.stage.* spans")
        if missing:
            print(f"[smoke] FAIL: dead instrumentation: {missing}",
                  file=sys.stderr)
            return 1
        print("[smoke] telemetry instrumentation live")
    return 0


def _resilience_main(args) -> int:
    from repro.experiments.resilience import degradation_report, run_resilience
    from repro.parallel import ExecutionEngine, engine_scope
    from repro.telemetry import (
        MetricsRegistry,
        telemetry_scope,
        write_metrics_json,
    )

    scale = "tiny" if args.smoke else args.scale
    reg = MetricsRegistry()
    # Serial + uncached, like `profile`: every fault-injection code
    # path must actually execute for the counters to mean anything.
    with engine_scope(ExecutionEngine(jobs=1, cache=None)):
        with telemetry_scope(reg):
            table = run_resilience(scale=scale)
    print(table.format())
    print()
    os.makedirs(args.out_dir, exist_ok=True)
    md_path = os.path.join(args.out_dir, f"resilience_{scale}.md")
    with open(md_path, "w") as fh:
        fh.write(degradation_report(table))
    json_path = write_metrics_json(
        reg, os.path.join(args.out_dir, f"resilience_{scale}.metrics.json"),
        meta={"experiment": "resilience", "scale": scale},
    )
    print(f"wrote {md_path}")
    print(f"wrote {json_path}")
    if args.smoke:
        failures = []
        speedups = table.column("NS/SUOpt x")
        if not all(a > b for a, b in zip(speedups, speedups[1:])):
            failures.append(
                f"NetSparse speedup not strictly decreasing: {speedups}"
            )
        counters = {k: c.value for k, c in reg.counters.items()}
        live = sorted(
            k for k, v in counters.items()
            if k.split("{")[0].startswith("faults.") and v > 0
        )
        if not live:
            failures.append("no live faults.* counters")
        if failures:
            for f in failures:
                print(f"[smoke] FAIL: {f}", file=sys.stderr)
            return 1
        print(f"[smoke] degradation monotone; live counters: {live}")
    return 0


def _collectives_main(args) -> int:
    from repro.experiments.collectives import (
        collectives_report,
        run_collectives,
        run_collectives_des,
    )
    from repro.parallel import ExecutionEngine, engine_scope
    from repro.telemetry import (
        MetricsRegistry,
        telemetry_scope,
        write_metrics_json,
    )
    from repro.workloads import WORKLOADS, trace_digest

    scale = "tiny" if args.smoke else args.scale
    reg = MetricsRegistry()
    # Serial + uncached, like `profile`/`resilience`: the smoke check
    # needs every substrate to actually execute, not replay from cache.
    with engine_scope(ExecutionEngine(jobs=1, cache=None)):
        with telemetry_scope(reg):
            analytic = run_collectives(scale=scale)
            des = run_collectives_des()
    print(analytic.format())
    print()
    print(des.format())
    print()
    os.makedirs(args.out_dir, exist_ok=True)
    md_path = os.path.join(args.out_dir, f"collectives_{scale}.md")
    with open(md_path, "w") as fh:
        fh.write(collectives_report(analytic, des))
    json_path = write_metrics_json(
        reg, os.path.join(args.out_dir, f"collectives_{scale}.metrics.json"),
        meta={"experiment": "collectives", "scale": scale},
    )
    print(f"wrote {md_path}")
    print(f"wrote {json_path}")
    if args.smoke:
        failures = []
        kinds = set(analytic.column("kind"))
        if kinds != {"allreduce", "spmv"}:
            failures.append(f"analytic sweep missing a family kind: {kinds}")
        des_kinds = {WORKLOADS[w].kind for w in des.column("workload")}
        if des_kinds != {"allreduce", "spmv"}:
            failures.append(f"DES sweep missing a family kind: {des_kinds}")
        for fam in analytic.column("workload"):
            if (trace_digest(fam, scale, round_idx=1, fresh=True)
                    != trace_digest(fam, scale, round_idx=1)):
                failures.append(f"non-deterministic generator: {fam}")
        bad = [row[0] for row in analytic.rows if row[4] <= 1.0]
        if bad:
            failures.append(f"NetSparse not ahead of SUOpt on: {bad}")
        for row in des.rows:
            if row[3] < row[2]:
                failures.append(
                    f"persistent cache hit rate below flushed on {row[0]}: "
                    f"{row[3]} < {row[2]}"
                )
        counters = {k: c.value for k, c in reg.counters.items()}
        for key in ("pcache.lookups", "dessim.prs.issued",
                    "dessim.fabric.packets"):
            if counters.get(key, 0) <= 0:
                failures.append(f"dead counter: {key}")
        if failures:
            for f in failures:
                print(f"[smoke] FAIL: {f}", file=sys.stderr)
            return 1
        print("[smoke] both families ran on both substrates; "
              "traces deterministic; cache/DES counters live")
    return 0


def _service_url(args) -> str:
    return (args.url or os.environ.get("NETSPARSE_SERVICE_URL")
            or "http://127.0.0.1:8642")


def _serve_main(args) -> int:
    from repro.parallel import configure_engine
    from repro.service import DEFAULT_PORT, run_server

    engine = configure_engine(jobs=args.jobs, cache_dir=args.cache_dir,
                              use_cache=not args.no_cache)
    port = DEFAULT_PORT if args.port is None else args.port
    return run_server(engine, host=args.host, port=port,
                      queue_limit=args.queue_limit, close_engine=True)


def _submit_main(args) -> int:
    from repro.service import ServiceClient, ServiceError

    client = ServiceClient(_service_url(args))
    schemes = [s for s in args.scheme.split(",") if s]
    matrices = [m for m in args.matrix.split(",") if m]
    try:
        ks = [int(x) for x in args.k.split(",") if x]
    except ValueError:
        print(f"-k must be integer(s), got {args.k!r}", file=sys.stderr)
        return 2
    try:
        if len(schemes) * len(matrices) * len(ks) > 1:
            out = client.submit_sweep({
                "schemes": schemes, "matrices": matrices, "ks": ks,
                "scale_name": args.scale, "seed": args.seed,
            })
            print(f"sweep {out['sweep_id']}: {out['n_jobs']} jobs "
                  f"({out['n_coalesced']} coalesced)")
            statuses = out["jobs"]
        else:
            statuses = [client.submit({
                "scheme": schemes[0], "matrix": matrices[0], "k": ks[0],
                "scale_name": args.scale, "seed": args.seed,
            })]
    except ServiceError as exc:
        hint = (f" (retry after {exc.retry_after:.0f}s)"
                if exc.retry_after else "")
        print(f"submit rejected: {exc}{hint}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"cannot reach service at {_service_url(args)}: {exc}",
              file=sys.stderr)
        return 1
    for st in statuses:
        d = st.describe
        print(f"  {st.job_id}  {st.state:<9} "
              f"{d.get('scheme')}/{d.get('matrix')}/k={d.get('k')}"
              f"{'  [coalesced]' if st.coalesced else ''}")
    if args.watch:
        for st in statuses:
            print(f"-- events {st.job_id} --")
            for ev in client.events(st.job_id):
                if ev.get("type") == "span":
                    print(f"  span {ev['name']}: {ev['duration_s']:.4f}s")
                elif ev.get("type") == "status":
                    print(f"  {ev['state']}")
    if args.wait or args.watch:
        for st in statuses:
            try:
                res = client.wait(st.job_id)
            except ServiceError as exc:
                print(f"{st.job_id}: {exc}", file=sys.stderr)
                return 1
            comm = res.comm_result()
            print(f"{st.job_id}: total_time={comm.total_time:.6g} "
                  f"source={res.source} elapsed={res.elapsed:.2f}s")
    return 0


def _jobs_main(args) -> int:
    from repro.service import ServiceClient

    client = ServiceClient(_service_url(args))
    try:
        statuses = client.jobs()
        stats = client.stats()
    except OSError as exc:
        print(f"cannot reach service at {_service_url(args)}: {exc}",
              file=sys.stderr)
        return 1
    if not statuses:
        print("no jobs")
    for st in statuses:
        d = st.describe
        print(f"{st.job_id}  {st.state:<9} {st.source or '-':<8} "
              f"{d.get('scheme')}/{d.get('matrix')}/k={d.get('k')}"
              f"@{d.get('scale_name')}")
    counters = stats["service"]["counters"]
    jobs_info = stats["jobs"]
    print(f"[service] inflight={jobs_info['inflight']}"
          f"/{jobs_info['queue_limit']} "
          f"submitted={counters.get('service.submitted', 0)} "
          f"coalesced={counters.get('service.coalesced', 0)} "
          f"cache-hits={counters.get('service.cache_hits', 0)} "
          f"rejected={counters.get('service.rejected', 0)}")
    return 0


def _main(argv=None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        for exp_id in list_experiments():
            print(exp_id)
        return 0

    if args.command == "version":
        print(f"netsparse {repro.__version__}")
        return 0

    if args.command == "profile":
        return _profile_main(args)

    if args.command == "resilience":
        return _resilience_main(args)

    if args.command == "collectives":
        return _collectives_main(args)

    if args.command == "cache":
        return _cache_main(args)

    if args.command == "serve":
        return _serve_main(args)

    if args.command == "submit":
        return _submit_main(args)

    if args.command == "jobs":
        return _jobs_main(args)

    if args.command == "store":
        return _store_main(args)

    from repro.parallel import configure_engine

    engine = configure_engine(jobs=args.jobs, cache_dir=args.cache_dir,
                              use_cache=not args.no_cache)

    if args.command == "report":
        from repro.experiments.report import generate_report

        engine.context["experiment"] = "report"
        text = generate_report(
            scale=args.scale,
            experiments=args.only,
            progress=lambda e, t: print(f"  {e}: {t:.1f}s", flush=True),
        )
        with open(args.output, "w") as fh:
            fh.write(text)
        print(f"wrote {args.output}")
        _store_report_artifact(text, args)
        _print_engine_summary(engine)
        return 0

    targets = (
        list_experiments() if args.experiment == "all" else [args.experiment]
    )
    for exp_id in targets:
        t0 = time.time()
        engine.context["experiment"] = exp_id
        try:
            table = _run_with_scale(exp_id, args.scale)
        except KeyError as exc:
            print(exc, file=sys.stderr)
            return 1
        print(table.format())
        print(f"[{time.time() - t0:.1f}s]")
        print()
    _print_engine_summary(engine)
    return 0


if __name__ == "__main__":
    sys.exit(main())
