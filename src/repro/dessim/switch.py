"""DES switches: NetSparse ToR with middle pipes, and plain spines.

The ToR implements the §6.2.1 packet algorithm exactly:

- an arriving **read** packet is deconcatenated and every PR looks up
  the Property Cache; a hit turns the PR into a response PR whose
  destination is the original requester; hits and misses alike then go
  through a concatenation step toward their (possibly new) output.
- an arriving **response** packet is deconcatenated and every PR
  deposits its property in the cache unless already present, then
  re-concatenates toward its destination.

Spines are plain crossbars (no NetSparse extensions — Table 5:
"NetSparse extensions only in ToR switches").
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.config import NetSparseConfig
from repro.core.concat import DelayQueueConcatenator
from repro.core.pcache import PropertyCache
from repro.core.rig import ResponsePR
from repro.dessim.components import NetPacket, SerialLink
from repro.network.topology import SWITCH_LATENCY_S
from repro.sim import Simulator, Store

__all__ = ["DesToR", "DesSpine"]


class DesToR:
    """A NetSparse Top-of-Rack switch for one rack of hosts."""

    def __init__(
        self,
        sim: Simulator,
        rack: int,
        hosts: List[int],
        payload_bytes: int,
        config: NetSparseConfig,
        rack_of: Callable[[int], int],
        enable_cache: bool = True,
        enable_concat: bool = True,
        concat_delay: Optional[float] = None,
        cache_bytes: Optional[int] = None,
    ):
        self.sim = sim
        self.rack = rack
        self.hosts = list(hosts)
        self.payload_bytes = payload_bytes
        self.config = config
        self.rack_of = rack_of
        self.rx = Store(sim, name=f"tor{rack}.rx")
        #: dst host -> downlink; spine choice -> uplink (set by cluster)
        self.host_links: Dict[int, SerialLink] = {}
        self.spine_links: List[SerialLink] = []

        self.enable_cache = enable_cache
        self.cache: Optional[PropertyCache] = None
        if enable_cache:
            self.cache = PropertyCache(
                capacity_bytes=(
                    cache_bytes if cache_bytes is not None
                    else config.pcache_bytes
                ),
                ways=config.pcache_ways,
                n_segments=config.pcache_segments,
                segment_bytes=config.pcache_min_line,
            )
            self.cache.configure(max(payload_bytes, 1))

        if concat_delay is None:
            concat_delay = (
                config.concat_delay_cycles_switch / config.switch_freq
            )
        max_read = config.max_prs_per_packet(0) if enable_concat else 1
        max_resp = (
            config.max_prs_per_packet(payload_bytes) if enable_concat else 1
        )
        self._concat = {
            "read": DelayQueueConcatenator(sim, max_read, concat_delay,
                                           self._emit),
            "response": DelayQueueConcatenator(sim, max_resp, concat_delay,
                                               self._emit),
        }
        self.stats_turnaround = 0      # read PRs answered from the cache
        sim.process(self._run(), name=f"tor{rack}")

    # -- middle pipe ------------------------------------------------------

    def _run(self):
        while True:
            packet: NetPacket = yield self.rx.get()
            yield self.sim.timeout(SWITCH_LATENCY_S)
            if packet.pr_type == "read":
                self._handle_read(packet)
            else:
                self._handle_response(packet)

    def _handle_read(self, packet: NetPacket):
        for pr in packet.prs:          # deconcatenate
            if self.cache is not None and self.cache.lookup(pr.idx):
                # Hit: the read becomes a response to its requester.
                resp = ResponsePR(
                    idx=pr.idx,
                    dst_node=pr.src_node,
                    dst_tid=pr.src_tid,
                    request_id=pr.request_id,
                    payload_bytes=self.payload_bytes,
                )
                self.stats_turnaround += 1
                self._concat["response"].push(resp, resp.dst_node, "response")
            else:
                self._concat["read"].push(pr, packet.dst_node, "read")

    def _handle_response(self, packet: NetPacket):
        for pr in packet.prs:
            if self.cache is not None and not self.cache.contains(pr.idx):
                self.cache.insert(pr.idx)
            self._concat["response"].push(pr, packet.dst_node, "response")

    # -- egress ------------------------------------------------------------

    def _emit(self, prs, dest, pr_type):
        payload = self.payload_bytes if pr_type == "response" else 0
        packet = NetPacket(pr_type, -1, dest, list(prs), payload)
        self.sim.process(self._route(packet))

    def _route(self, packet: NetPacket):
        if self.rack_of(packet.dst_node) == self.rack:
            link = self.host_links[packet.dst_node]
        else:
            spine = packet.dst_node % max(len(self.spine_links), 1)
            link = self.spine_links[spine]
        yield link.send(packet)

    def flush(self):
        for cq in self._concat.values():
            cq.flush()

    def flush_cache(self) -> int:
        """Drop every cached property (fault injection: power event or
        corruption scrub).  Returns the number of lines lost; a ToR
        without a cache loses nothing."""
        if self.cache is None:
            return 0
        return self.cache.clear()


class DesSpine:
    """A spine switch: forwards packets to the destination rack's ToR."""

    def __init__(
        self,
        sim: Simulator,
        spine_id: int,
        rack_of: Callable[[int], int],
    ):
        self.sim = sim
        self.spine_id = spine_id
        self.rack_of = rack_of
        self.rx = Store(sim, name=f"spine{spine_id}.rx")
        self.tor_links: Dict[int, SerialLink] = {}   # rack -> downlink
        sim.process(self._run(), name=f"spine{spine_id}")

    def _run(self):
        while True:
            packet: NetPacket = yield self.rx.get()
            yield self.sim.timeout(SWITCH_LATENCY_S)
            rack = self.rack_of(packet.dst_node)
            yield self.tor_links[rack].send(packet)
