"""DES cluster assembly and the gather driver.

Builds a leaf-spine fabric of :class:`DesHostNic`, :class:`DesToR` and
:class:`DesSpine` components, runs every node's remote indexed gather
to completion, and reports delivered properties, per-stage traffic and
the simulated finish time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro import telemetry
from repro.config import NetSparseConfig
from repro.dessim.components import SerialLink
from repro.dessim.nic import DesHostNic
from repro.dessim.switch import DesSpine, DesToR
from repro.partition import cached_partition, col_owner_array
from repro.sim import Simulator

__all__ = ["DesCluster", "DesResult", "run_des_gather", "run_des_rounds"]


@dataclass
class DesResult:
    """Outcome of one DES gather run."""

    finish_time: float
    received: Dict[int, List[int]]        # node -> delivered idxs
    issued_prs: int
    dropped_prs: int
    cache_turnarounds: int
    host_up_bytes: np.ndarray
    host_down_bytes: np.ndarray
    fabric_bytes: int
    total_prs_on_fabric: int
    fabric_packets: int
    extras: Dict = field(default_factory=dict)

    @property
    def avg_prs_per_fabric_packet(self) -> float:
        if self.fabric_packets == 0:
            return 0.0
        return self.total_prs_on_fabric / self.fabric_packets


class DesCluster:
    """A small leaf-spine NetSparse cluster, fully event-driven."""

    def __init__(
        self,
        n_racks: int = 2,
        nodes_per_rack: int = 4,
        n_spines: int = 1,
        k: int = 16,
        n_cols: int = 1024,
        col_owner: Optional[np.ndarray] = None,
        config: Optional[NetSparseConfig] = None,
        n_client_units: int = 1,
        enable_cache: bool = True,
        enable_concat: bool = True,
        cache_bytes: Optional[int] = None,
        concat_delay: Optional[float] = None,
        probe_latency: bool = False,
        fault_injector=None,
    ):
        self.sim = Simulator()
        self.config = config or NetSparseConfig(
            n_nodes=n_racks * nodes_per_rack,
            n_racks=n_racks,
            nodes_per_rack=nodes_per_rack,
        )
        self.n_nodes = n_racks * nodes_per_rack
        self.nodes_per_rack = nodes_per_rack
        payload = self.config.property_bytes(k)
        if col_owner is None:
            per = n_cols // self.n_nodes
            col_owner = np.minimum(
                np.arange(n_cols) // max(per, 1), self.n_nodes - 1
            ).astype(np.int64)
        self.col_owner = col_owner

        rack_of = lambda node: node // nodes_per_rack  # noqa: E731

        self.nics = [
            DesHostNic(self.sim, node, col_owner, payload, self.config,
                       n_client_units=n_client_units,
                       concat_delay=concat_delay,
                       enable_concat=enable_concat)
            for node in range(self.n_nodes)
        ]
        self.latency_probe = None
        if probe_latency:
            from repro.dessim.monitoring import LatencyProbe

            self.latency_probe = LatencyProbe(self.sim)
            for nic in self.nics:
                for unit in nic.clients:
                    unit.latency_probe = self.latency_probe
        self.tors = [
            DesToR(self.sim, rack,
                   hosts=list(range(rack * nodes_per_rack,
                                    (rack + 1) * nodes_per_rack)),
                   payload_bytes=payload, config=self.config,
                   rack_of=rack_of, enable_cache=enable_cache,
                   enable_concat=enable_concat, concat_delay=concat_delay,
                   cache_bytes=cache_bytes)
            for rack in range(n_racks)
        ]
        self.spines = [
            DesSpine(self.sim, s, rack_of) for s in range(n_spines)
        ]

        # Wire the links.
        self.up_links: List[SerialLink] = []
        self.down_links: List[SerialLink] = []
        self.fabric_links: List[SerialLink] = []
        for node, nic in enumerate(self.nics):
            tor = self.tors[rack_of(node)]
            up = SerialLink(self.sim, f"h{node}->tor", tor.rx, self.config)
            down = SerialLink(self.sim, f"tor->h{node}", nic.rx, self.config)
            nic.uplink = up
            tor.host_links[node] = down
            self.up_links.append(up)
            self.down_links.append(down)
        for tor in self.tors:
            for spine in self.spines:
                t2s = SerialLink(self.sim, f"tor{tor.rack}->sp{spine.spine_id}",
                                 spine.rx, self.config)
                s2t = SerialLink(self.sim, f"sp{spine.spine_id}->tor{tor.rack}",
                                 tor.rx, self.config)
                tor.spine_links.append(t2s)
                spine.tor_links[tor.rack] = s2t
                self.fabric_links.extend([t2s, s2t])

        # Fault injection last: the injector reshapes the healthy cluster
        # (kills RIG units, arms link degradation/flush processes).
        self.fault_injector = fault_injector
        if fault_injector is not None:
            fault_injector.install(self)

    def run_gather(self, idxs_per_node: Dict[int, List[int]],
                   max_events: int = 5_000_000) -> DesResult:
        """Run every node's gather to completion and collect statistics."""
        events = []
        for node, idxs in idxs_per_node.items():
            events.extend(self.nics[node].execute_gather(idxs))
        sim_t0 = self.sim.now
        with telemetry.span("dessim.run_gather", nodes=self.n_nodes):
            self.sim.run(max_events=max_events)
        telemetry.add_span("dessim.gather", sim_t0, self.sim.now - sim_t0,
                           clock="sim", nodes=self.n_nodes)
        still_running = [ev for ev in events if not ev.processed]
        if still_running:
            raise RuntimeError(
                f"{len(still_running)} RIG commands never completed "
                "(deadlock or starvation in the DES fabric)"
            )

        up = np.array([ln.bytes_carried for ln in self.up_links], dtype=float)
        down = np.array([ln.bytes_carried for ln in self.down_links],
                        dtype=float)
        telemetry.count("dessim.prs.issued",
                        sum(nic.stats_issued for nic in self.nics))
        telemetry.count("dessim.prs.dropped",
                        sum(nic.stats_dropped for nic in self.nics))
        telemetry.count("dessim.cache.turnarounds",
                        sum(t.stats_turnaround for t in self.tors))
        telemetry.count("dessim.fabric.packets",
                        sum(ln.packets_carried for ln in self.fabric_links))
        telemetry.count("dessim.fabric.bytes",
                        sum(ln.bytes_carried for ln in self.fabric_links))
        return DesResult(
            finish_time=self.sim.now,
            received={
                node: sorted(self.nics[node].received_idxs)
                for node in idxs_per_node
            },
            issued_prs=sum(nic.stats_issued for nic in self.nics),
            dropped_prs=sum(nic.stats_dropped for nic in self.nics),
            cache_turnarounds=sum(t.stats_turnaround for t in self.tors),
            host_up_bytes=up,
            host_down_bytes=down,
            fabric_bytes=sum(ln.bytes_carried for ln in self.fabric_links),
            total_prs_on_fabric=sum(
                ln.prs_carried for ln in self.fabric_links
            ),
            fabric_packets=sum(
                ln.packets_carried for ln in self.fabric_links
            ),
            extras={
                "cache_stats": [
                    t.cache.stats if t.cache else None for t in self.tors
                ],
                "latency": (
                    self.latency_probe.stats()
                    if self.latency_probe is not None
                    else None
                ),
                "faults": (
                    self.fault_injector.summary()
                    if self.fault_injector is not None
                    else None
                ),
            },
        )


def run_des_gather(
    matrix,
    k: int,
    n_racks: int = 2,
    nodes_per_rack: int = 4,
    **cluster_kw,
) -> DesResult:
    """Partition ``matrix`` over a small DES cluster and gather all
    remote properties that its nonzeros reference."""
    n_nodes = n_racks * nodes_per_rack
    part = cached_partition(matrix, n_nodes)
    cluster = DesCluster(
        n_racks=n_racks,
        nodes_per_rack=nodes_per_rack,
        k=k,
        n_cols=matrix.n_cols,
        col_owner=col_owner_array(part),
        **cluster_kw,
    )
    idxs_per_node = {
        node: tr.remote_idxs.tolist()
        for node, tr in enumerate(part.node_traces())
        if tr.remote.any()
    }
    return cluster.run_gather(idxs_per_node)


def run_des_rounds(
    matrices,
    k: int,
    n_racks: int = 2,
    nodes_per_rack: int = 4,
    keep_cache: bool = False,
    **cluster_kw,
) -> List[DesResult]:
    """Run a multi-round workload sweep, one gather per round trace.

    Each round gets a *fresh* cluster (the NIC Idx Filters and received
    sets are per-gather state: a training step or SpMV iteration fetches
    its working set anew).  With ``keep_cache=True`` the ToR Property
    Cache objects are carried over between rounds — the switch-resident
    segment cache of §6 persists across collective operations, which is
    what makes cross-round reuse (persistent top-k hot sets, nested
    PageRank frontiers) visible at the middle pipe.  ``keep_cache=False``
    models a switch whose cache is flushed between collectives; the
    difference between the two sweeps is the reuse a persistent cache
    recovers.

    Every per-round :class:`DesResult` gains ``extras["round_cache"]``
    with that round's cache lookups/hits (deltas, so carried-over stats
    do not double count).  All round matrices must share the same
    dimensions: one model/graph, evolving nonzero set.
    """
    matrices = list(matrices)
    if not matrices:
        raise ValueError("need at least one round matrix")
    dims = {(m.n_rows, m.n_cols) for m in matrices}
    if len(dims) > 1:
        raise ValueError(
            f"round traces must share dimensions, got {sorted(dims)}"
        )
    n_nodes = n_racks * nodes_per_rack
    results: List[DesResult] = []
    carried = None  # previous round's ToR PropertyCache objects
    for matrix in matrices:
        part = cached_partition(matrix, n_nodes)
        cluster = DesCluster(
            n_racks=n_racks,
            nodes_per_rack=nodes_per_rack,
            k=k,
            n_cols=matrix.n_cols,
            col_owner=col_owner_array(part),
            **cluster_kw,
        )
        if keep_cache and carried is not None:
            # Equal-row 1D partitioning of same-dims matrices yields the
            # same col_owner every round, so cached entries stay valid.
            for tor, cache in zip(cluster.tors, carried):
                if tor.cache is not None and cache is not None:
                    tor.cache = cache
        base = [
            (t.cache.stats.lookups, t.cache.stats.hits)
            if t.cache is not None else (0, 0)
            for t in cluster.tors
        ]
        idxs_per_node = {
            node: tr.remote_idxs.tolist()
            for node, tr in enumerate(part.node_traces())
            if tr.remote.any()
        }
        result = cluster.run_gather(idxs_per_node)
        lookups = hits = 0
        for t, (l0, h0) in zip(cluster.tors, base):
            if t.cache is not None:
                lookups += t.cache.stats.lookups - l0
                hits += t.cache.stats.hits - h0
        result.extras["round_cache"] = {
            "lookups": lookups,
            "hits": hits,
            "hit_rate": hits / lookups if lookups else 0.0,
        }
        results.append(result)
        carried = [t.cache for t in cluster.tors]
    return results
