"""Shared DES building blocks: packets and serial links."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List, Optional, Union

from repro.config import NetSparseConfig
from repro.core.rig import ReadPR, ResponsePR
from repro.sim import Simulator, Store

__all__ = ["NetPacket", "SerialLink", "packet_wire_bytes"]

_packet_seq = itertools.count()

PR = Union[ReadPR, ResponsePR]


@dataclass
class NetPacket:
    """A NetSparse packet on the DES fabric.

    ``dst_node`` drives routing; the concatenation layer guarantees all
    contained PRs share it.  ``payload_per_pr`` is 0 for read packets
    and 4*K for response packets.
    """

    pr_type: str                   # "read" | "response"
    src_node: int
    dst_node: int
    prs: List[PR]
    payload_per_pr: int
    packet_id: int = field(default_factory=lambda: next(_packet_seq))

    @property
    def n_prs(self) -> int:
        return len(self.prs)


def packet_wire_bytes(packet: NetPacket, config: NetSparseConfig) -> int:
    """Wire size of a packet under the NetSparse protocol (§6.1.1)."""
    return config.concat_packet_bytes(packet.n_prs, packet.payload_per_pr)


class SerialLink:
    """A directed link: bounded input queue -> serializer -> sink store.

    Serialization occupies the link (bytes / bandwidth); propagation is
    pipelined.  The bounded input queue plus blocking puts give the
    lossless backpressure of the modelled fabric.  Per-packet and
    per-byte counters feed the traffic validation.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        sink: Store,
        config: NetSparseConfig,
        bandwidth: Optional[float] = None,
        latency: float = 450e-9,
        queue_packets: int = 64,
        drop_fn=None,
    ):
        self.sim = sim
        self.name = name
        self.sink = sink
        self.config = config
        self.bandwidth = bandwidth or config.link_bandwidth
        self.latency = latency
        self.queue = Store(sim, capacity=queue_packets, name=f"{name}.q")
        #: Failure-injection hook: drop_fn(packet) -> True drops it
        #: in flight (§7.1: losses are hardware failures, not queueing).
        self.drop_fn = drop_fn
        self.bytes_carried = 0
        self.packets_carried = 0
        self.prs_carried = 0
        self.packets_dropped = 0
        sim.process(self._run(), name=name)

    def _run(self):
        while True:
            packet: NetPacket = yield self.queue.get()
            size = packet_wire_bytes(packet, self.config)
            self.bytes_carried += size
            self.packets_carried += 1
            self.prs_carried += packet.n_prs
            yield self.sim.timeout(size / self.bandwidth)
            self.sim.process(self._deliver(packet))

    def _deliver(self, packet: NetPacket):
        yield self.sim.timeout(self.latency)
        if self.drop_fn is not None and self.drop_fn(packet):
            self.packets_dropped += 1
            return
        yield self.sink.put(packet)

    def send(self, packet: NetPacket):
        """Blocking-put event for upstream components to yield on."""
        return self.queue.put(packet)
