"""DES host NIC: RIG Units + concatenators + (de)packetization.

Mirrors Figure 4: client RIG Units generate read PRs for remote idxs
(sharing the node's Idx Filter), a destination solver maps each idx to
its owner node, a delay-queue concatenator packs same-destination PRs,
and the Tx side pushes packets onto the host uplink.  The Rx side
deconcatenates arriving packets, steering read PRs to the server unit
and response PRs to the requesting client unit.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.config import NetSparseConfig
from repro.core.concat import DelayQueueConcatenator
from repro.core.rig import ReadPR, ResponsePR, RigClientUnit, RigServerUnit
from repro.dessim.components import NetPacket, SerialLink
from repro.sim import Simulator, Store

__all__ = ["DesHostNic"]


class DesHostNic:
    """One node's SmartNIC with NetSparse extensions."""

    def __init__(
        self,
        sim: Simulator,
        node: int,
        col_owner: np.ndarray,
        payload_bytes: int,
        config: NetSparseConfig,
        n_client_units: int = 1,
        concat_delay: Optional[float] = None,
        enable_concat: bool = True,
    ):
        self.sim = sim
        self.node = node
        self.col_owner = col_owner
        self.payload_bytes = payload_bytes
        self.config = config
        self.rx = Store(sim, name=f"nic{node}.rx")       # fed by the ToR link
        self.uplink: Optional[SerialLink] = None          # set by the cluster

        self.idx_filter = set()
        self._client_tx = Store(sim, name=f"nic{node}.ctx")
        self._server_rx = Store(sim, name=f"nic{node}.srx")
        self._server_tx = Store(sim, name=f"nic{node}.stx")
        self.clients: List[RigClientUnit] = []
        self._client_rx: Dict[int, Store] = {}
        for u in range(n_client_units):
            rx = Store(sim, name=f"nic{node}.crx{u}")
            unit = RigClientUnit(
                sim,
                unit_id=u,
                node=node,
                tx_queue=self._client_tx,
                rx_queue=rx,
                idx_filter=self.idx_filter,
                freq=config.snic_freq,
                pending_entries=config.pending_pr_entries,
                dma_latency=config.pcie_latency,
            )
            self.clients.append(unit)
            self._client_rx[u] = rx
        self.server = RigServerUnit(
            sim,
            unit_id=1000 + node,
            node=node,
            rx_queue=self._server_rx,
            tx_queue=self._server_tx,
            payload_bytes=payload_bytes,
            freq=config.snic_freq,
        )

        if concat_delay is None:
            concat_delay = config.concat_delay_cycles_nic / config.snic_freq
        max_read = config.max_prs_per_packet(0) if enable_concat else 1
        max_resp = (
            config.max_prs_per_packet(payload_bytes) if enable_concat else 1
        )
        self._concat_read = DelayQueueConcatenator(
            sim, max_read, concat_delay, self._emit_read
        )
        self._concat_resp = DelayQueueConcatenator(
            sim, max_resp, concat_delay, self._emit_response
        )
        sim.process(self._tx_client_loop(), name=f"nic{node}.ctxloop")
        sim.process(self._tx_server_loop(), name=f"nic{node}.stxloop")
        sim.process(self._rx_loop(), name=f"nic{node}.rxloop")

    # -- Tx path -------------------------------------------------------

    def _tx_client_loop(self):
        while True:
            pr: ReadPR = yield self._client_tx.get()
            dest = int(self.col_owner[pr.idx])   # the Destination Solver
            self._concat_read.push(pr, dest, "read")

    def _tx_server_loop(self):
        while True:
            pr: ResponsePR = yield self._server_tx.get()
            self._concat_resp.push(pr, pr.dst_node, "response")

    def _emit_read(self, prs, dest, pr_type):
        self._inject(NetPacket("read", self.node, dest, list(prs), 0))

    def _emit_response(self, prs, dest, pr_type):
        self._inject(
            NetPacket("response", self.node, dest, list(prs),
                      self.payload_bytes)
        )

    def _inject(self, packet: NetPacket):
        if self.uplink is None:
            raise RuntimeError("NIC not wired to a ToR uplink")
        self.sim.process(self._send(packet))

    def _send(self, packet: NetPacket):
        yield self.uplink.send(packet)

    # -- Rx path -------------------------------------------------------

    def _rx_loop(self):
        while True:
            packet: NetPacket = yield self.rx.get()
            for pr in packet.prs:   # deconcatenation
                if packet.pr_type == "read":
                    yield self._server_rx.put(pr)
                else:
                    rx = self._client_rx.get(pr.dst_tid)
                    if rx is None:
                        raise RuntimeError(
                            f"response for unknown unit {pr.dst_tid} "
                            f"at node {self.node}"
                        )
                    yield rx.put(pr)

    # -- driving ---------------------------------------------------------

    def execute_gather(self, idxs) -> List:
        """Launch the node's remote gather, round-robin over client units.

        Returns the completion events (one per unit).
        """
        if self.uplink is None:
            raise RuntimeError("NIC not wired to a ToR uplink")
        idxs = list(idxs)
        n = len(self.clients)
        chunks = [idxs[i::n] for i in range(n)]
        return [
            unit.execute(chunk)
            for unit, chunk in zip(self.clients, chunks)
            if chunk
        ]

    def fail_units(self, n_dead: int) -> int:
        """Permanently fail ``n_dead`` client RIG units (fault
        injection).  At least one unit survives — a node with zero
        client units could never gather.  Failed units stop receiving
        work; their rx queues stay wired so any in-flight responses
        addressed to them drain harmlessly.  Returns how many units
        actually died.  Must be called before :meth:`execute_gather`.
        """
        n_dead = max(min(int(n_dead), len(self.clients) - 1), 0)
        for _ in range(n_dead):
            self.clients.pop()
        return n_dead

    def flush(self):
        self._concat_read.flush()
        self._concat_resp.flush()

    @property
    def received_idxs(self) -> List[int]:
        out = []
        for unit in self.clients:
            out.extend(unit.received_idxs)
        return out

    @property
    def stats_issued(self) -> int:
        return sum(u.stats_issued for u in self.clients)

    @property
    def stats_dropped(self) -> int:
        return sum(u.stats_filtered + u.stats_coalesced for u in self.clients)
