"""Packet-level DES simulation of a NetSparse cluster.

This subpackage is the reproduction's analogue of the paper's
SST/Merlin simulation: an event-driven, packet-granular model of a
leaf-spine cluster where every node carries DES RIG Units
(:mod:`repro.core.rig`), NIC concatenators, and every ToR switch runs
middle-pipe Property Caches with (de)concatenators — all connected by
bandwidth/latency links with bounded queues and backpressure.

It is used at small node counts to *validate* the vectorized trace
model (:mod:`repro.cluster.model`): both must agree on delivered
properties, filter/coalesce effectiveness, cache behaviour and traffic
ordering (see ``tests/test_dessim.py`` and the ``des_validation``
experiment).

Topology modelled::

    host NIC  <->  ToR (cache + concat)  <->  spines  <->  ToR  <->  host NIC
"""

from repro.dessim.cluster import (
    DesCluster,
    DesResult,
    run_des_gather,
    run_des_rounds,
)

__all__ = ["DesCluster", "DesResult", "run_des_gather", "run_des_rounds"]
