"""DES instrumentation: PR latency and queue-occupancy profiles.

The trace model reasons about throughput; the DES can additionally
answer *latency* questions — how long an individual property request
waits end to end, and how deep the hardware queues run (which sizes the
Table 5 buffers).  This module provides:

- :class:`LatencyProbe` — records per-PR issue/response timestamps via
  the RIG units' hooks and reports percentiles.
- :class:`QueueMonitor` — samples Store occupancies on a fixed period.

Both are adapters onto :mod:`repro.telemetry`: when a registry is
active, every completed-PR latency feeds the ``dessim.pr.latency``
histogram and every occupancy sample feeds
``dessim.queue.occupancy{store=...}`` — so a ``netsparse profile`` run
over the DES lands in the same metrics dump and Chrome trace as the
trace-model stages.  With telemetry disabled they keep their original
stand-alone behaviour at the cost of one ``None`` check per sample.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro import telemetry
from repro.sim import Simulator, Store

__all__ = ["LatencyProbe", "LatencyStats", "QueueMonitor"]


@dataclass
class LatencyStats:
    """Percentile summary of observed PR round-trip latencies."""

    count: int
    p50: float
    p90: float
    p99: float
    mean: float
    max: float

    @staticmethod
    def from_samples(samples: Sequence[float]) -> "LatencyStats":
        if not samples:
            return LatencyStats(0, 0.0, 0.0, 0.0, 0.0, 0.0)
        arr = np.asarray(samples, dtype=float)
        return LatencyStats(
            count=arr.size,
            p50=float(np.percentile(arr, 50)),
            p90=float(np.percentile(arr, 90)),
            p99=float(np.percentile(arr, 99)),
            mean=float(arr.mean()),
            max=float(arr.max()),
        )


class LatencyProbe:
    """Track per-request round-trip latency across a DES run.

    Wire it between issue and completion: call :meth:`issued` when a PR
    leaves a RIG unit and :meth:`completed` when its response lands
    (keyed by request id).
    """

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._issue_times: Dict[int, float] = {}
        self.samples: List[float] = []
        self.unmatched_completions = 0

    def issued(self, request_id: int) -> None:
        self._issue_times[request_id] = self.sim.now

    def completed(self, request_id: int) -> None:
        start = self._issue_times.pop(request_id, None)
        if start is None:
            self.unmatched_completions += 1
            return
        latency = self.sim.now - start
        self.samples.append(latency)
        reg = telemetry.active()
        if reg is not None:
            reg.observe("dessim.pr.latency", latency)

    @property
    def outstanding(self) -> int:
        return len(self._issue_times)

    def stats(self) -> LatencyStats:
        return LatencyStats.from_samples(self.samples)


class QueueMonitor:
    """Periodically sample Store occupancies during a DES run."""

    def __init__(self, sim: Simulator, stores: Dict[str, Store],
                 period: float):
        if period <= 0:
            raise ValueError("sampling period must be positive")
        self.sim = sim
        self.stores = dict(stores)
        self.period = period
        self.samples: Dict[str, List[int]] = {n: [] for n in self.stores}
        self._proc = sim.process(self._run(), name="queue-monitor")

    def _run(self):
        while True:
            reg = telemetry.active()
            for name, store in self.stores.items():
                occupancy = len(store)
                self.samples[name].append(occupancy)
                if reg is not None:
                    reg.observe("dessim.queue.occupancy", occupancy,
                                store=name)
            yield self.sim.timeout(self.period)

    def occupancy_stats(self) -> Dict[str, Dict[str, float]]:
        out = {}
        for name, series in self.samples.items():
            arr = np.asarray(series or [0], dtype=float)
            out[name] = {
                "mean": float(arr.mean()),
                "p99": float(np.percentile(arr, 99)),
                "max": float(arr.max()),
            }
        return out
