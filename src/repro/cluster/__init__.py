"""Cluster-level end-to-end models.

- :mod:`repro.cluster.results` — the :class:`CommResult` record every
  communication scheme produces (timing, traffic, per-mechanism stats).
- :mod:`repro.cluster.model`   — the NetSparse trace-level cluster
  model: partitions the matrix, applies RIG → filter/coalesce →
  concatenate → property-cache semantics exactly, and derives timing
  from the interacting rate limits.
- :mod:`repro.cluster.endtoend` — combines a communication scheme with
  the per-node compute models for the strong-scaling studies.
"""

from repro.results import CommResult
from repro.cluster.model import (
    batch_stats,
    build_cluster_topology,
    reset_batch_state,
    simulate_netsparse,
)
# Submodule (not package-attribute) imports: repro.baselines also imports
# repro.cluster.results, and attribute imports would break whichever
# package is entered second.
from repro.baselines.saopt import simulate_saopt
from repro.baselines.su import simulate_suopt
from repro.cluster.endtoend import end_to_end_time, single_node_time
from repro.cluster.execute import (
    distributed_sddmm,
    distributed_spmm,
    distributed_spmv,
)

__all__ = [
    "CommResult",
    "batch_stats",
    "build_cluster_topology",
    "reset_batch_state",
    "distributed_sddmm",
    "distributed_spmm",
    "distributed_spmv",
    "end_to_end_time",
    "simulate_netsparse",
    "simulate_saopt",
    "simulate_suopt",
    "single_node_time",
]
